package parsurf_test

import (
	"context"
	"sync"
	"testing"

	"parsurf"
	"parsurf/internal/goldentrace"
)

// newGoldenEngine builds the named engine over the shared compiled
// model (nil for the model-free ziff) with default options, on a fresh
// configuration, drawing from the given seed.
func newGoldenEngine(t *testing.T, name string, cm *parsurf.Compiled, lat *parsurf.Lattice, seed uint64) parsurf.Engine {
	t.Helper()
	var usedCM *parsurf.Compiled
	if spec, ok := parsurf.LookupEngine(name); !ok {
		t.Fatalf("engine %q not registered", name)
	} else if !spec.ModelFree {
		usedCM = cm
	}
	eng, err := parsurf.NewEngine(name, usedCM, parsurf.NewConfig(lat), parsurf.NewRNG(seed))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return eng
}

// Reset equivalence: for every registered engine, build→run→Reset→run
// must produce fingerprints bit-identical to two independent fresh
// builds — Reset leaves no residue of the first trajectory, and a
// reset engine reproduces a fresh one's draws, clock and configuration
// exactly. One compiled arena is shared by every construction, which
// also pins the arena's immutability across full engine lifecycles.
func TestEngineResetEquivalence(t *testing.T) {
	const seedA, seedB = 12345, 977
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	lat := parsurf.NewSquareLattice(goldentrace.Side)
	cm := parsurf.MustCompile(m, lat)
	for _, name := range parsurf.Engines() {
		steps := goldentrace.StepsFor(name)

		freshA := goldentrace.Fingerprint(newGoldenEngine(t, name, cm, lat, seedA), steps)
		freshB := goldentrace.Fingerprint(newGoldenEngine(t, name, cm, lat, seedB), steps)
		if freshA == freshB {
			t.Fatalf("%s: distinct seeds gave identical fingerprints; test cannot discriminate", name)
		}

		eng := newGoldenEngine(t, name, cm, lat, seedA)
		if got := goldentrace.Fingerprint(eng, steps); got != freshA {
			t.Errorf("%s: first run fingerprint 0x%016x, want 0x%016x", name, got, freshA)
		}
		eng.Reset(parsurf.NewConfig(lat), parsurf.NewRNG(seedB))
		if got := goldentrace.Fingerprint(eng, steps); got != freshB {
			t.Errorf("%s: post-Reset run fingerprint 0x%016x, want fresh-build 0x%016x", name, got, freshB)
		}
		// Resetting back to the first stream rewinds completely.
		eng.Reset(parsurf.NewConfig(lat), parsurf.NewRNG(seedA))
		if got := goldentrace.Fingerprint(eng, steps); got != freshA {
			t.Errorf("%s: second Reset fingerprint 0x%016x, want 0x%016x", name, got, freshA)
		}
		if eng.Steps() != uint64(steps) {
			t.Errorf("%s: Steps() = %d after Reset + %d steps", name, eng.Steps(), steps)
		}
	}
}

// Session.Reset reproduces spec.Session() bit for bit, including the
// init-preset stream: a session that already ran a trajectory rewinds
// to exactly the state a fresh build starts from.
func TestSessionResetEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []parsurf.SessionOption
	}{
		{"vssm+random-init", []parsurf.SessionOption{
			parsurf.WithModelPreset("zgb", nil),
			parsurf.WithLattice(16, 16),
			parsurf.WithEngine("vssm"),
			parsurf.WithSeed(7),
			parsurf.WithInit(parsurf.RandomInit(0.6, 0.2, 0.2)),
		}},
		{"ziff", []parsurf.SessionOption{
			parsurf.WithLattice(16, 16),
			parsurf.WithEngine("ziff", parsurf.COFraction(0.5)),
			parsurf.WithSeed(11),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := parsurf.NewSpec(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := spec.Session()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.Run(context.Background(), parsurf.ForSteps(40)); err != nil {
				t.Fatal(err)
			}

			reused, err := spec.Session()
			if err != nil {
				t.Fatal(err)
			}
			// Drive the session somewhere else first, then rewind.
			if _, err := reused.Run(context.Background(), parsurf.ForSteps(13)); err != nil {
				t.Fatal(err)
			}
			reused.Reset(parsurf.NewRNG(spec.Seed()))
			if _, err := reused.Run(context.Background(), parsurf.ForSteps(40)); err != nil {
				t.Fatal(err)
			}

			if !fresh.Config().Equal(reused.Config()) {
				t.Error("reset session configuration differs from fresh build")
			}
			if a, b := fresh.Engine().Time(), reused.Engine().Time(); a != b {
				t.Errorf("reset session clock %v differs from fresh build %v", b, a)
			}
			if fresh.Compiled() != reused.Compiled() && fresh.Compiled() != nil {
				t.Error("sessions from one spec do not share the compiled arena")
			}
		})
	}
}

// Session.Reset is allocation-free, including the init-preset re-draw:
// the built preset func is cached on the spec and the init stream is
// derived into the session's stable storage. This is the per-replica
// steady-state cost of the pooled ensemble path.
func TestSessionResetAllocationFree(t *testing.T) {
	spec, err := parsurf.NewSpec(
		parsurf.WithModelPreset("zgb", nil),
		parsurf.WithLattice(16, 16),
		parsurf.WithEngine("rsm"),
		parsurf.WithInit(parsurf.RandomInit(0.8, 0.1, 0.1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := spec.Session()
	if err != nil {
		t.Fatal(err)
	}
	var src parsurf.RNG
	seed := uint64(0)
	allocs := testing.AllocsPerRun(50, func() {
		seed++
		src.Seed(seed)
		sess.Reset(&src)
	})
	if allocs != 0 {
		t.Errorf("Session.Reset allocates %v objects per call, want 0", allocs)
	}
}

// The default (streaming) ensemble path runs replicas through pooled,
// Reset sessions; KeepReplicas builds every replica fresh. Both must
// produce bit-identical Mean/Std — the pooled replicas reproduce
// fresh-build trajectories exactly.
func TestEnsemblePooledMatchesFresh(t *testing.T) {
	ctx := context.Background()
	for _, engine := range []string{"vssm", "frm", "ziff"} {
		t.Run(engine, func(t *testing.T) {
			opts := []parsurf.SessionOption{
				parsurf.WithLattice(16, 16),
				parsurf.WithSeed(42),
			}
			if engine == "ziff" {
				opts = append(opts, parsurf.WithEngine(engine, parsurf.COFraction(0.51)))
			} else {
				opts = append(opts,
					parsurf.WithModelPreset("zgb", nil),
					parsurf.WithEngine(engine),
					parsurf.WithInit(parsurf.RandomInit(0.8, 0.1, 0.1)))
			}
			spec, err := parsurf.NewSpec(opts...)
			if err != nil {
				t.Fatal(err)
			}
			// replicas >> workers so every pooled session serves several
			// replica indices through Reset.
			const replicas, workers, until, every = 8, 2, 3, 0.5
			pooled, err := parsurf.RunEnsemble(ctx, spec, replicas, workers, until, every)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := parsurf.RunEnsemble(ctx, spec, replicas, workers, until, every, parsurf.KeepReplicas())
			if err != nil {
				t.Fatal(err)
			}
			if !seriesEqual(pooled.Mean, fresh.Mean) || !seriesEqual(pooled.Std, fresh.Std) {
				t.Error("pooled ensemble Mean/Std differ from fresh-build ensemble")
			}
		})
	}
}

// Many replicas — across RunEnsemble workers and direct goroutines —
// read one spec's shared compiled arena concurrently while engines
// with incremental bookkeeping (VSSM's enabled sets, FRM's event
// queue) step through full lifecycles. Run under -race this proves the
// arena is never written after Compile.
func TestSharedCompiledArenaRace(t *testing.T) {
	spec, err := parsurf.NewSpec(
		parsurf.WithModelPreset("zgb", nil),
		parsurf.WithLattice(20, 20),
		parsurf.WithEngine("vssm"),
		parsurf.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, err := spec.Session()
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < 3; r++ {
				sess.Reset(parsurf.NewRNG(uint64(100*g + r)))
				if _, err := sess.Run(context.Background(), parsurf.ForSteps(200)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := parsurf.RunEnsemble(context.Background(), spec, 8, 4, 2, 0.5); err != nil {
		t.Fatal(err)
	}
}
