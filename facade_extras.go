package parsurf

import (
	"io"

	"parsurf/internal/cluster"
	"parsurf/internal/model"
	"parsurf/internal/modelfile"
	"parsurf/internal/persist"
	"parsurf/internal/sim"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

// Observation layer (internal/sim).
type (
	// Runner drives a simulator and fans samples out to observers.
	Runner = sim.Runner
	// Observer receives samples of the live configuration.
	Observer = sim.Observer
	// ObserverFunc adapts a plain function to the Observer interface.
	ObserverFunc = sim.ObserverFunc
	// CoverageObserver records per-species coverage series.
	CoverageObserver = sim.CoverageObserver
	// SnapshotObserver stores configuration copies.
	SnapshotObserver = sim.SnapshotObserver
	// SteadyState detects equilibration of a scalar series.
	SteadyState = sim.SteadyState
	// Checkpoint is a saved simulation state.
	Checkpoint = persist.Checkpoint
	// ClusterStats summarises connected-component analysis.
	ClusterStats = cluster.Stats
	// Oscillation describes a detected oscillation.
	Oscillation = stats.Oscillation
)

// NewRunner returns a runner sampling every dt simulated time units.
func NewRunner(s Simulator, dt float64) *Runner { return sim.NewRunner(s, dt) }

// NewCoverageObserver tracks the coverages of the given species.
func NewCoverageObserver(species ...Species) *CoverageObserver {
	return sim.NewCoverageObserver(species...)
}

// NewSnapshotObserver stores every k-th sampled configuration.
func NewSnapshotObserver(every int) *SnapshotObserver { return sim.NewSnapshotObserver(every) }

// NewSteadyState detects two consecutive windows agreeing within tol.
func NewSteadyState(window int, tol float64) *SteadyState { return sim.NewSteadyState(window, tol) }

// SaveCheckpoint writes the simulation state (configuration, random
// source, clock) in the compact binary format of internal/persist.
func SaveCheckpoint(w io.Writer, cfg *Config, src *RNG, time float64) error {
	return persist.Save(w, cfg, src, time)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return persist.Load(r) }

// ParseModel reads a model definition in the internal/modelfile text
// format.
func ParseModel(r io.Reader) (*Model, error) { return modelfile.Parse(r) }

// FormatModel writes a model in the text format ParseModel accepts.
func FormatModel(w io.Writer, m *Model) error { return modelfile.Format(w, m) }

// Clusters labels the 4-connected domains of one species and returns
// aggregate statistics.
func Clusters(c *Config, sp Species) ClusterStats {
	return cluster.Summarize(cluster.SpeciesComponents(c, sp))
}

// DetectOscillation estimates the dominant oscillation of a series
// (autocorrelation peak over n resampled points; minStrength gates
// detection).
func DetectOscillation(s *Series, n int, minStrength float64) (Oscillation, bool) {
	return stats.DetectOscillation(s, n, minStrength)
}

// NewZiffWithDesorption returns the classic ZGB dynamics extended with
// CO desorption probability pdes per trial.
func NewZiffWithDesorption(lat *Lattice, src *RNG, y, pdes float64) *ziff.WithDesorption {
	return ziff.NewWithDesorption(lat, src, y, pdes)
}

// WriteSVG renders series as an SVG line chart.
func WriteSVG(w io.Writer, title string, labels []string, series ...*Series) error {
	return trace.WriteSVG(w, trace.SVGOptions{Title: title, Labels: labels}, series...)
}

// Arrhenius returns ν·exp(−E/(kB·T)), the paper's §2 rate expression.
func Arrhenius(nu, activationEnergy, temp float64) float64 {
	return model.Arrhenius(nu, activationEnergy, temp)
}
