package parsurf

import (
	"context"
	"encoding/json"
	"fmt"

	"parsurf/internal/core"
	"parsurf/internal/initpreset"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
	"parsurf/internal/sim"
	"parsurf/internal/specfile"
)

// Engine is the uniform contract of every simulation engine: the
// dmc.Simulator methods (Step/Time/Config) plus identity and
// bookkeeping accessors (Name/TotalRate/Steps). Every engine of the
// paper's comparison is constructible by name through NewEngine or a
// Session; Engines lists the names.
type Engine = registry.Engine

// EngineSpec describes one registered engine (name, one-line doc,
// accepted options).
type EngineSpec = registry.Spec

// Engines returns the names of every registered engine, sorted.
func Engines() []string { return registry.Names() }

// EngineSpecs returns the full registry listing, sorted by name.
func EngineSpecs() []EngineSpec { return registry.Specs() }

// LookupEngine returns the spec registered under name.
func LookupEngine(name string) (EngineSpec, bool) { return registry.Lookup(name) }

// PartitionBuilders returns the names of the registered partition
// builders ("vonneumann5", "checkerboard", "modular", …) usable with
// PartitionNamed and in serialized specs.
func PartitionBuilders() []string { return registry.PartitionBuilderNames() }

// TypeSplitBuilders returns the names of the registered type-split
// builders ("bydirection") usable with TypeSplitNamed and in serialized
// specs.
func TypeSplitBuilders() []string { return registry.TypeSplitBuilderNames() }

// InitPresets returns the names of the registered initial-configuration
// presets ("empty", "fill", "random", "checkerboard").
func InitPresets() []string { return initpreset.Names() }

// ModelPresets returns the names of the model presets a serialized spec
// may reference ("zgb", "ptco", "diffusion", "ising").
func ModelPresets() []string { return specfile.ModelNames() }

// Option bits of EngineSpec.Accepts: consumers (e.g. CLIs) can forward
// a flag to every engine that understands it without per-engine
// dispatch.
const (
	OptL                 = registry.OptL
	OptStrategy          = registry.OptStrategy
	OptPartition         = registry.OptPartition
	OptTypeSplit         = registry.OptTypeSplit
	OptWorkers           = registry.OptWorkers
	OptY                 = registry.OptY
	OptBlocks            = registry.OptBlocks
	OptDeterministicTime = registry.OptDeterministicTime
)

// EngineOption configures one engine construction. Options populate the
// plain-data registry.Options value; the ones that consult the model or
// lattice (PartitionWith) are applied when both are known — at NewSpec
// time for sessions, at construction for NewEngine.
type EngineOption func(m *Model, lat *Lattice, o *registry.Options) error

// Trials sets the L-PNDCA trials per chunk selection (the paper's L).
func Trials(l int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.L = l
		return nil
	}
}

// Strategy sets the L-PNDCA chunk-selection strategy (AllInOrder,
// AllRandomOrder, RandomReplacement or RateWeighted).
func Strategy(s core.Strategy) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Strategy = s.String()
		return nil
	}
}

// StrategyName sets the L-PNDCA chunk-selection strategy by its CLI
// name: "order", "randomorder", "random" or "rates".
func StrategyName(name string) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Strategy = name
		return nil
	}
}

// Workers sets the sweep-goroutine count (pndca, typepart) or strip
// count (ddrsm). Partitioned sweeps are bit-identical for every worker
// count.
func Workers(n int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Workers = n
		return nil
	}
}

// COFraction sets the ZGB CO impingement fraction y (ziff engine).
func COFraction(y float64) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Y = y
		o.HasY = true
		return nil
	}
}

// BlockSize sets the BCA block dimensions.
func BlockSize(w, h int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.BlockW, o.BlockH = w, h
		return nil
	}
}

// DeterministicClock replaces the exponential clock increments of the
// trial-based engines with their mean 1/(N·K).
func DeterministicClock() EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.DeterministicTime = true
		return nil
	}
}

// PartitionNamed selects the site partition for pndca/lpndca by the
// name of a registered builder — "vonneumann5", "checkerboard",
// "singlechunk", "singletons" or "modular[:K]". Unlike UsePartition the
// choice is plain data: it survives JSON serialization and is rebuilt
// deterministically from the spec's model and lattice.
func PartitionNamed(spec string) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.PartitionSpec = spec
		return nil
	}
}

// TypeSplitNamed selects the Ω×T reaction-type split for typepart by
// builder name ("bydirection"); the serializable counterpart of
// UseTypeSplit.
func TypeSplitNamed(spec string) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.TypeSplitSpec = spec
		return nil
	}
}

// UsePartition supplies the site partition for pndca/lpndca directly.
// A spec carrying a raw partition cannot be serialized; prefer
// PartitionNamed unless the partition is deliberately hand-built.
func UsePartition(p *Partition) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Partition = p
		return nil
	}
}

// PartitionWith builds the site partition for pndca/lpndca from the
// session's model and lattice, e.g.
//
//	PartitionWith(func(m *Model, lat *Lattice) (*Partition, error) {
//		return ModularColoring(m, lat, 16)
//	})
//
// The builder runs once, at NewSpec time; like UsePartition the result
// is a raw partition, so the spec cannot be serialized.
func PartitionWith(build func(m *Model, lat *Lattice) (*Partition, error)) EngineOption {
	return func(m *Model, lat *Lattice, o *registry.Options) error {
		p, err := build(m, lat)
		if err != nil {
			return err
		}
		o.Partition = p
		return nil
	}
}

// UseTypeSplit supplies the Ω×T reaction-type split for typepart
// directly (not serializable; prefer TypeSplitNamed).
func UseTypeSplit(ts *TypeSplit) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.TypeSplit = ts
		return nil
	}
}

// NewEngine constructs the named engine over explicit pieces (a
// compiled model, a configuration and a random source), validating the
// options against what the engine accepts. Model-free engines (ziff)
// accept a nil cm. This is the low-level entry; NewSession owns the
// wiring for everyday use.
func NewEngine(name string, cm *Compiled, cfg *Config, src *RNG, opts ...EngineOption) (Engine, error) {
	var o registry.Options
	var m *Model
	var lat *Lattice
	if cm != nil {
		m, lat = cm.Model, cm.Lat
	} else if cfg != nil {
		lat = cfg.Lattice()
	}
	for _, opt := range opts {
		if err := opt(m, lat, &o); err != nil {
			return nil, err
		}
	}
	return registry.New(name, cm, cfg, src, o)
}

// InitSpec names an initial-configuration preset with its parameters —
// plain data, the serializable replacement for init closures. The
// preset is applied once before the engine is built, drawing from a
// random stream split off the session seed, so initialisation never
// perturbs the engine's stream. InitPresets lists the names.
type InitSpec = specfile.InitRef

// EmptyInit returns the all-vacant initial condition (the default).
func EmptyInit() InitSpec { return InitSpec{Preset: "empty"} }

// FillInit returns the single-species initial condition.
func FillInit(species int) InitSpec {
	return InitSpec{Preset: "fill", Species: []int{species}}
}

// RandomInit returns the independent per-site draw with the given
// per-species weights (index = species value; need not be normalised).
func RandomInit(fractions ...float64) InitSpec {
	return InitSpec{Preset: "random", Fractions: fractions}
}

// CheckerboardInit returns the two-species parity initial condition.
func CheckerboardInit(a, b int) InitSpec {
	return InitSpec{Preset: "checkerboard", Species: []int{a, b}}
}

// SessionSpec is a replayable, closure-free description of a
// simulation: model, lattice, engine (by name, with plain-data
// options), seed and a named initial-configuration preset. Build one
// with NewSpec (or decode one from JSON — the spec round-trips exactly
// through MarshalJSON/UnmarshalJSON), instantiate with Session, or
// hand it to RunEnsemble to run many replicas.
type SessionSpec struct {
	model    *Model
	modelRef *specfile.ModelRef // declarative origin; nil when set via WithModel
	l0, l1   int
	engine   string
	engOpts  []EngineOption // pending until finish resolves them into opts
	opts     registry.Options
	seed     uint64
	init     *specfile.InitRef

	// lat, cm and initFn are resolved once by finish and shared,
	// read-only, by every session and ensemble replica built from the
	// spec: the compiled model arena is immutable after Compile, so a
	// 1000-replica sweep compiles the translation tables and dependency
	// CSR exactly once instead of once per replica, and the built init
	// preset (stateless: it reads only its captured parameters and
	// writes only the config it is handed) is applied without
	// re-validating or re-building per replica.
	lat    *Lattice
	cm     *Compiled
	initFn initpreset.Func
}

// SessionOption configures a SessionSpec.
type SessionOption func(*SessionSpec) error

// WithModel sets the reaction model. Required for every engine except
// the model-free ones (ziff). A model set this way serializes as an
// inline definition in the modelfile text format; WithModelPreset
// keeps the compact named form.
func WithModel(m *Model) SessionOption {
	return func(sp *SessionSpec) error {
		sp.model = m
		sp.modelRef = nil
		return nil
	}
}

// WithModelPreset sets the reaction model by preset name ("zgb",
// "ptco", "diffusion", "ising") with optional parameter overrides —
// the declarative counterpart of WithModel. ModelPresets lists the
// names; unknown parameters are rejected with the accepted set.
func WithModelPreset(name string, params map[string]float64) SessionOption {
	return func(sp *SessionSpec) error {
		m, err := specfile.BuildNamedModel(name, params)
		if err != nil {
			return err
		}
		ref := &specfile.ModelRef{Name: name}
		if len(params) > 0 {
			ref.Params = make(map[string]float64, len(params))
			for k, v := range params {
				ref.Params[k] = v
			}
		}
		sp.model = m
		sp.modelRef = ref
		return nil
	}
}

// WithLattice sets the periodic lattice extents (default 100×100).
func WithLattice(l0, l1 int) SessionOption {
	return func(sp *SessionSpec) error {
		if l0 < 1 || l1 < 1 {
			return fmt.Errorf("parsurf: lattice extents must be positive, got %dx%d", l0, l1)
		}
		sp.l0, sp.l1 = l0, l1
		return nil
	}
}

// WithEngine selects the engine by registry name with its options.
func WithEngine(name string, opts ...EngineOption) SessionOption {
	return func(sp *SessionSpec) error {
		sp.engine = name
		sp.engOpts = opts
		return nil
	}
}

// WithSeed sets the deterministic base seed (default 1). The engine
// draws from NewRNG(seed) exactly as the direct constructors do, so a
// Session reproduces their trajectories bit for bit.
func WithSeed(seed uint64) SessionOption {
	return func(sp *SessionSpec) error {
		sp.seed = seed
		return nil
	}
}

// WithInit selects the named initial-configuration preset, e.g.
//
//	parsurf.WithInit(parsurf.RandomInit(0.5, 0.5))
//
// The preset draws from a random stream split off the session seed (so
// ensemble replicas, which run on split streams of their own, get
// distinct initial surfaces), and being plain data it survives the
// spec's JSON round-trip — unlike the init closures it replaces.
func WithInit(init InitSpec) SessionOption {
	return func(sp *SessionSpec) error {
		cp := init
		cp.Fractions = append([]float64(nil), init.Fractions...)
		cp.Species = append([]int(nil), init.Species...)
		sp.init = &cp
		return nil
	}
}

// initStreamID derives the init-preset stream from the session seed;
// any fixed id distinct from the ensemble replica ids works.
const initStreamID = 0x696e6974 // "init"

// NewSpec validates and returns a replayable session spec. Engine
// options are resolved into plain data here — including named partition
// and type-split builders, which are built once against the spec's
// model and lattice and shared (read-only) by every session and
// ensemble replica built from the spec.
func NewSpec(opts ...SessionOption) (*SessionSpec, error) {
	sp := &SessionSpec{l0: 100, l1: 100, seed: 1}
	for _, opt := range opts {
		if err := opt(sp); err != nil {
			return nil, err
		}
	}
	if err := sp.finish(); err != nil {
		return nil, err
	}
	return sp, nil
}

// finish validates the spec and resolves every pending option into the
// plain-data options value. It is the shared tail of NewSpec and
// UnmarshalJSON.
func (sp *SessionSpec) finish() error {
	if sp.engine == "" {
		return fmt.Errorf("parsurf: session needs an engine (WithEngine); registered: %v", Engines())
	}
	spec, ok := registry.Lookup(sp.engine)
	if !ok {
		return fmt.Errorf("parsurf: unknown engine %q (registered: %v)", sp.engine, Engines())
	}
	if sp.model == nil && !spec.ModelFree {
		return fmt.Errorf("parsurf: engine %q needs a model (WithModel)", sp.engine)
	}
	lat := NewLattice(sp.l0, sp.l1)
	sp.lat = lat
	for _, opt := range sp.engOpts {
		if err := opt(sp.model, lat, &sp.opts); err != nil {
			return err
		}
	}
	sp.engOpts = nil
	if sp.opts.Partition != nil && sp.opts.PartitionSpec != "" {
		return fmt.Errorf("parsurf: both a raw partition and the named builder %q are set; pick one", sp.opts.PartitionSpec)
	}
	if sp.opts.TypeSplit != nil && sp.opts.TypeSplitSpec != "" {
		return fmt.Errorf("parsurf: both a raw type split and the named builder %q are set; pick one", sp.opts.TypeSplitSpec)
	}
	if err := registry.CheckOptions(sp.engine, sp.opts); err != nil {
		return err
	}
	// Resolve named builders once; the result is read-only during
	// stepping, so sessions and replicas can share it.
	if sp.opts.PartitionSpec != "" {
		p, err := registry.BuildPartition(sp.opts.PartitionSpec, sp.model, lat)
		if err != nil {
			return err
		}
		sp.opts.Partition = p
	}
	if sp.opts.TypeSplitSpec != "" {
		ts, err := registry.BuildTypeSplit(sp.opts.TypeSplitSpec, sp.model, lat)
		if err != nil {
			return err
		}
		sp.opts.TypeSplit = ts
	}
	if sp.init != nil {
		fn, err := initpreset.Build(sp.init.Preset, sp.init.Params())
		if err != nil {
			return fmt.Errorf("parsurf: %w", err)
		}
		sp.initFn = fn
	}
	// Compile once, here: the arena (translation tables, dependency
	// CSR, cumulative rates) is immutable after Compile, so every
	// session and replica reads the same tables. This also surfaces
	// compile errors (e.g. a pattern self-colliding on a too-small
	// lattice) at NewSpec instead of first build.
	if sp.model != nil {
		cm, err := Compile(sp.model, lat)
		if err != nil {
			return err
		}
		sp.cm = cm
	}
	return nil
}

// Session returns a ready-to-run session built from the spec.
func (sp *SessionSpec) Session() (*Session, error) {
	return sp.build(rng.New(sp.seed))
}

// EngineName returns the spec's engine registry name.
func (sp *SessionSpec) EngineName() string { return sp.engine }

// Seed returns the spec's base seed.
func (sp *SessionSpec) Seed() uint64 { return sp.seed }

// Extents returns the spec's lattice extents.
func (sp *SessionSpec) Extents() (l0, l1 int) { return sp.l0, sp.l1 }

// NumSpecies returns the number of species of the spec's model, or the
// three ZGB species for the model-free ziff engine — known without
// building a session, which is what lets the ensemble runner size its
// streaming accumulators up front.
func (sp *SessionSpec) NumSpecies() int {
	if sp.model != nil {
		return sp.model.NumSpecies()
	}
	return 3 // ziff: vacant, CO, O
}

// SpeciesNames returns the species labels of the spec's model (the ZGB
// labels for the model-free ziff engine).
func (sp *SessionSpec) SpeciesNames() []string {
	if sp.model != nil {
		return sp.model.Species
	}
	return zgbSpeciesNames
}

// File renders the spec in its serialized form. It fails when the spec
// carries values that exist only as Go pointers — a partition from
// UsePartition/PartitionWith, a type split from UseTypeSplit — since
// those cannot be rebuilt from a file; use the named builders instead.
func (sp *SessionSpec) File() (*specfile.Spec, error) {
	if sp.opts.Partition != nil && sp.opts.PartitionSpec == "" {
		return nil, fmt.Errorf("parsurf: spec carries a raw partition; use PartitionNamed for a serializable spec")
	}
	if sp.opts.TypeSplit != nil && sp.opts.TypeSplitSpec == "" {
		return nil, fmt.Errorf("parsurf: spec carries a raw type split; use TypeSplitNamed for a serializable spec")
	}
	f := &specfile.Spec{
		Lattice: &specfile.Extents{L0: sp.l0, L1: sp.l1},
		Engine: specfile.EngineRef{
			Name:              sp.engine,
			L:                 sp.opts.L,
			Strategy:          sp.opts.Strategy,
			Partition:         sp.opts.PartitionSpec,
			TypeSplit:         sp.opts.TypeSplitSpec,
			Workers:           sp.opts.Workers,
			BlockW:            sp.opts.BlockW,
			BlockH:            sp.opts.BlockH,
			DeterministicTime: sp.opts.DeterministicTime,
		},
	}
	seed := sp.seed
	f.Seed = &seed
	if sp.opts.HasY {
		y := sp.opts.Y
		f.Engine.Y = &y
	}
	if sp.init != nil {
		init := *sp.init
		f.Init = &init
	}
	// The model section is omitted for model-free engines: the strict
	// decoder rejects a model a spec cannot use.
	if eng, ok := registry.Lookup(sp.engine); ok && !eng.ModelFree {
		switch {
		case sp.modelRef != nil:
			ref := *sp.modelRef
			f.Model = &ref
		case sp.model != nil:
			text, err := specfile.ModelText(sp.model)
			if err != nil {
				return nil, fmt.Errorf("parsurf: serializing model: %w", err)
			}
			f.Model = &specfile.ModelRef{Text: text}
		}
	}
	return f, nil
}

// MarshalJSON renders the spec as a specfile JSON document; the exact
// inverse of UnmarshalJSON (decode → encode is byte-stable, and the
// decoded spec reproduces the original's trajectories bit for bit).
func (sp *SessionSpec) MarshalJSON() ([]byte, error) {
	f, err := sp.File()
	if err != nil {
		return nil, err
	}
	return json.Marshal(f)
}

// UnmarshalJSON decodes and validates a specfile JSON document (see
// internal/specfile for the schema). Unknown fields and unknown names
// are rejected with registry-aware messages.
func (sp *SessionSpec) UnmarshalJSON(data []byte) error {
	f, err := specfile.ParseBytes(data)
	if err != nil {
		return err
	}
	ns, err := specFromFile(f)
	if err != nil {
		return err
	}
	*sp = *ns
	return nil
}

// ParseSpec decodes a serialized spec — the programmatic form of
// `surfsim -spec file.json`.
func ParseSpec(data []byte) (*SessionSpec, error) {
	sp := new(SessionSpec)
	if err := sp.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return sp, nil
}

// specFromFile builds the runnable spec from its serialized form.
func specFromFile(f *specfile.Spec) (*SessionSpec, error) {
	sp := &SessionSpec{l0: 100, l1: 100, seed: 1, engine: f.Engine.Name}
	if f.Lattice != nil {
		sp.l0, sp.l1 = f.Lattice.L0, f.Lattice.L1
	}
	if f.Seed != nil {
		sp.seed = *f.Seed
	}
	if f.Model != nil {
		m, err := f.Model.Build()
		if err != nil {
			return nil, err
		}
		ref := *f.Model
		sp.model = m
		sp.modelRef = &ref
	}
	sp.opts = f.Engine.Options()
	if f.Init != nil {
		init := *f.Init
		sp.init = &init
	}
	if err := sp.finish(); err != nil {
		return nil, err
	}
	return sp, nil
}

// build wires configuration → init preset → engine around the given
// engine stream. The lattice and compiled model arena come from the
// spec (compiled once in finish) and are shared, read-only, by every
// session built from it.
func (sp *SessionSpec) build(src *RNG) (*Session, error) {
	cfg := NewConfig(sp.lat)
	if sp.initFn != nil {
		sp.initFn(cfg, src.Split(initStreamID))
	}
	eng, err := registry.New(sp.engine, sp.cm, cfg, src, sp.opts)
	if err != nil {
		return nil, err
	}
	return &Session{spec: sp, lat: sp.lat, cm: sp.cm, cfg: cfg, eng: eng, src: src}, nil
}

// Session is one wired simulation: a lattice, a compiled model (when
// the engine needs one), a configuration and an engine, ready to Run.
type Session struct {
	spec *SessionSpec
	lat  *Lattice
	cm   *Compiled
	cfg  *Config
	eng  Engine
	// src is the engine's random source; Checkpoint saves its raw state
	// and ResumeSession restores it in place (the engine holds the same
	// pointer).
	src *RNG
	// initSrc is stable storage for the init-preset stream derived on
	// every Reset, so rewinding a pooled session allocates nothing.
	initSrc RNG
}

// Reset rewinds the session for replica reuse instead of rebuilding
// it: the configuration is cleared and re-initialised from the spec's
// init preset (drawing from src's split init stream, exactly as a
// fresh build does) and the engine is Reset over it, rewinding its
// clock, counters and incremental state while keeping every allocated
// buffer. After Reset the session's trajectory is bit-identical to
// spec.Session() built around the same stream — the ensemble runner
// uses this to run successive replica indices through one pooled
// session per worker. The session's lattice and compiled arena are
// untouched (they are immutable and shared with the spec).
func (s *Session) Reset(src *RNG) {
	s.src = src
	s.cfg.Fill(0)
	if s.spec.initFn != nil {
		src.SplitInto(&s.initSrc, initStreamID)
		s.spec.initFn(s.cfg, &s.initSrc)
	}
	s.eng.Reset(s.cfg, src)
}

// NewSession builds a session in one call:
//
//	sess, err := parsurf.NewSession(
//		parsurf.WithModelPreset("zgb", nil),
//		parsurf.WithLattice(256, 256),
//		parsurf.WithEngine("lpndca", parsurf.Trials(100), parsurf.Strategy(parsurf.RateWeighted)),
//		parsurf.WithSeed(42),
//	)
func NewSession(opts ...SessionOption) (*Session, error) {
	sp, err := NewSpec(opts...)
	if err != nil {
		return nil, err
	}
	return sp.Session()
}

// Engine returns the session's engine. Type-assert to the concrete
// engine type (*RSM, *LPNDCA, …) for engine-specific counters.
func (s *Session) Engine() Engine { return s.eng }

// Config returns the live configuration.
func (s *Session) Config() *Config { return s.cfg }

// Lattice returns the session lattice.
func (s *Session) Lattice() *Lattice { return s.lat }

// Model returns the session model (nil for model-free engines).
func (s *Session) Model() *Model { return s.spec.model }

// Compiled returns the compiled model (nil for model-free engines).
func (s *Session) Compiled() *Compiled { return s.cm }

// NumSpecies returns the number of species of the session's model, or
// the three ZGB species for the model-free ziff engine.
func (s *Session) NumSpecies() int { return s.spec.NumSpecies() }

// runSpec collects Run options.
type runSpec struct {
	tEnd     float64
	hasEnd   bool
	steps    int
	hasSteps bool
	dt       float64
	obs      []sim.Observer
}

// RunOption configures one Session.Run call.
type RunOption func(*runSpec)

// Until runs the engine until its clock reaches t.
func Until(t float64) RunOption {
	return func(r *runSpec) {
		r.tEnd = t
		r.hasEnd = true
	}
}

// ForSteps runs the engine for n Step calls instead of a time horizon.
func ForSteps(n int) RunOption {
	return func(r *runSpec) {
		r.steps = n
		r.hasSteps = true
	}
}

// SampleEvery observes the live configuration every dt of simulated
// time (only meaningful with Until). The sample schedule is an
// index-derived TimeGrid (the same grid arithmetic the ensemble merge
// uses), so the k-th sample targets exactly k·dt — never an
// accumulated, drifting sum — and a final sample is taken at the end
// time exactly when it is not on the dt grid.
func SampleEvery(dt float64, obs ...Observer) RunOption {
	return func(r *runSpec) {
		r.dt = dt
		r.obs = append(r.obs, obs...)
	}
}

// RunStats summarises one Run call.
type RunStats struct {
	// Steps is the number of engine Step calls made.
	Steps int
	// Samples is the number of observation points.
	Samples int
	// Time is the engine clock after the run.
	Time float64
}

// Run advances the session per the options, fanning samples out to the
// observers, honouring context cancellation between engine steps. An
// absorbing state ends the run early without error; a cancelled context
// returns ctx's error alongside the progress made.
func (s *Session) Run(ctx context.Context, opts ...RunOption) (RunStats, error) {
	var r runSpec
	for _, opt := range opts {
		opt(&r)
	}
	if r.hasEnd && r.hasSteps {
		return RunStats{}, fmt.Errorf("parsurf: Run with both Until and ForSteps")
	}
	if !r.hasEnd && !r.hasSteps {
		return RunStats{}, fmt.Errorf("parsurf: Run needs Until or ForSteps")
	}
	if r.hasSteps {
		if len(r.obs) > 0 {
			return RunStats{}, fmt.Errorf("parsurf: SampleEvery requires Until, not ForSteps")
		}
		steps, err := sim.StepContext(ctx, s.eng, r.steps)
		return RunStats{Steps: steps, Time: s.eng.Time()}, err
	}
	steps, samples, err := sim.RunContext(ctx, s.eng, r.dt, r.tEnd, r.obs...)
	return RunStats{Steps: steps, Samples: samples, Time: s.eng.Time()}, err
}

// zgbSpeciesNames are the species labels of the model-free ziff engine.
var zgbSpeciesNames = []string{"*", "CO", "O"}

// SpeciesNames returns the species labels of the session's model (the
// ZGB labels for the model-free ziff engine).
func (s *Session) SpeciesNames() []string { return s.spec.SpeciesNames() }
