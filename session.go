package parsurf

import (
	"context"
	"fmt"

	"parsurf/internal/core"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
	"parsurf/internal/sim"
)

// Engine is the uniform contract of every simulation engine: the
// dmc.Simulator methods (Step/Time/Config) plus identity and
// bookkeeping accessors (Name/TotalRate/Steps). Every engine of the
// paper's comparison is constructible by name through NewEngine or a
// Session; Engines lists the names.
type Engine = registry.Engine

// EngineSpec describes one registered engine (name, one-line doc,
// accepted options).
type EngineSpec = registry.Spec

// Engines returns the names of every registered engine, sorted.
func Engines() []string { return registry.Names() }

// EngineSpecs returns the full registry listing, sorted by name.
func EngineSpecs() []EngineSpec { return registry.Specs() }

// LookupEngine returns the spec registered under name.
func LookupEngine(name string) (EngineSpec, bool) { return registry.Lookup(name) }

// Option bits of EngineSpec.Accepts: consumers (e.g. CLIs) can forward
// a flag to every engine that understands it without per-engine
// dispatch.
const (
	OptL                 = registry.OptL
	OptStrategy          = registry.OptStrategy
	OptPartition         = registry.OptPartition
	OptTypeSplit         = registry.OptTypeSplit
	OptWorkers           = registry.OptWorkers
	OptY                 = registry.OptY
	OptBlocks            = registry.OptBlocks
	OptDeterministicTime = registry.OptDeterministicTime
)

// EngineOption configures one engine construction. Options are applied
// at build time, when the model and lattice are known, so partition and
// type-split builders can depend on both. Passing an option the chosen
// engine does not understand is a construction error.
type EngineOption func(m *Model, lat *Lattice, o *registry.Options) error

// Trials sets the L-PNDCA trials per chunk selection (the paper's L).
func Trials(l int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.L = l
		return nil
	}
}

// Strategy sets the L-PNDCA chunk-selection strategy (AllInOrder,
// AllRandomOrder, RandomReplacement or RateWeighted).
func Strategy(s core.Strategy) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Strategy = s.String()
		return nil
	}
}

// StrategyName sets the L-PNDCA chunk-selection strategy by its CLI
// name: "order", "randomorder", "random" or "rates".
func StrategyName(name string) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Strategy = name
		return nil
	}
}

// Workers sets the sweep-goroutine count (pndca, typepart) or strip
// count (ddrsm). Partitioned sweeps are bit-identical for every worker
// count.
func Workers(n int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Workers = n
		return nil
	}
}

// COFraction sets the ZGB CO impingement fraction y (ziff engine).
func COFraction(y float64) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Y = y
		o.HasY = true
		return nil
	}
}

// BlockSize sets the BCA block dimensions.
func BlockSize(w, h int) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.BlockW, o.BlockH = w, h
		return nil
	}
}

// DeterministicClock replaces the exponential clock increments of the
// trial-based engines with their mean 1/(N·K).
func DeterministicClock() EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.DeterministicTime = true
		return nil
	}
}

// UsePartition supplies the site partition for pndca/lpndca directly.
func UsePartition(p *Partition) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.Partition = p
		return nil
	}
}

// PartitionWith builds the site partition for pndca/lpndca from the
// session's model and lattice at construction time, e.g.
//
//	PartitionWith(func(m *Model, lat *Lattice) (*Partition, error) {
//		return ModularColoring(m, lat, 16)
//	})
func PartitionWith(build func(m *Model, lat *Lattice) (*Partition, error)) EngineOption {
	return func(m *Model, lat *Lattice, o *registry.Options) error {
		p, err := build(m, lat)
		if err != nil {
			return err
		}
		o.Partition = p
		return nil
	}
}

// UseTypeSplit supplies the Ω×T reaction-type split for typepart.
func UseTypeSplit(ts *TypeSplit) EngineOption {
	return func(_ *Model, _ *Lattice, o *registry.Options) error {
		o.TypeSplit = ts
		return nil
	}
}

// NewEngine constructs the named engine over explicit pieces (a
// compiled model, a configuration and a random source), validating the
// options against what the engine accepts. Model-free engines (ziff)
// accept a nil cm. This is the low-level entry; NewSession owns the
// wiring for everyday use.
func NewEngine(name string, cm *Compiled, cfg *Config, src *RNG, opts ...EngineOption) (Engine, error) {
	var o registry.Options
	var m *Model
	var lat *Lattice
	if cm != nil {
		m, lat = cm.Model, cm.Lat
	} else if cfg != nil {
		lat = cfg.Lattice()
	}
	for _, opt := range opts {
		if err := opt(m, lat, &o); err != nil {
			return nil, err
		}
	}
	return registry.New(name, cm, cfg, src, o)
}

// SessionSpec is a replayable description of a simulation: model,
// lattice, engine (by name, with options), seed and initial
// configuration. Build one with NewSpec, instantiate with Session, or
// hand it to RunEnsemble to run many replicas.
type SessionSpec struct {
	model   *Model
	l0, l1  int
	engine  string
	engOpts []EngineOption
	seed    uint64
	init    func(cfg *Config, src *RNG)
}

// SessionOption configures a SessionSpec.
type SessionOption func(*SessionSpec) error

// WithModel sets the reaction model. Required for every engine except
// the model-free ones (ziff).
func WithModel(m *Model) SessionOption {
	return func(sp *SessionSpec) error {
		sp.model = m
		return nil
	}
}

// WithLattice sets the periodic lattice extents (default 100×100).
func WithLattice(l0, l1 int) SessionOption {
	return func(sp *SessionSpec) error {
		if l0 < 1 || l1 < 1 {
			return fmt.Errorf("parsurf: lattice extents must be positive, got %dx%d", l0, l1)
		}
		sp.l0, sp.l1 = l0, l1
		return nil
	}
}

// WithEngine selects the engine by registry name with its options.
func WithEngine(name string, opts ...EngineOption) SessionOption {
	return func(sp *SessionSpec) error {
		sp.engine = name
		sp.engOpts = opts
		return nil
	}
}

// WithSeed sets the deterministic base seed (default 1). The engine
// draws from NewRNG(seed) exactly as the direct constructors do, so a
// Session reproduces their trajectories bit for bit.
func WithSeed(seed uint64) SessionOption {
	return func(sp *SessionSpec) error {
		sp.seed = seed
		return nil
	}
}

// WithInit installs an initial-configuration hook, run once before the
// engine is built. It receives a random stream split off the session
// seed (so using it does not perturb the engine's stream) — ignore it
// if the initialisation needs its own seeding discipline.
func WithInit(init func(cfg *Config, src *RNG)) SessionOption {
	return func(sp *SessionSpec) error {
		sp.init = init
		return nil
	}
}

// initStreamID derives the WithInit stream from the session seed; any
// fixed id distinct from the ensemble replica ids works.
const initStreamID = 0x696e6974 // "init"

// NewSpec validates and returns a replayable session spec.
func NewSpec(opts ...SessionOption) (*SessionSpec, error) {
	sp := &SessionSpec{l0: 100, l1: 100, seed: 1}
	for _, opt := range opts {
		if err := opt(sp); err != nil {
			return nil, err
		}
	}
	if sp.engine == "" {
		return nil, fmt.Errorf("parsurf: session needs an engine (WithEngine); registered: %v", Engines())
	}
	spec, ok := registry.Lookup(sp.engine)
	if !ok {
		return nil, fmt.Errorf("parsurf: unknown engine %q (registered: %v)", sp.engine, Engines())
	}
	if sp.model == nil && !spec.ModelFree {
		return nil, fmt.Errorf("parsurf: engine %q needs a model (WithModel)", sp.engine)
	}
	return sp, nil
}

// Session returns a ready-to-run session built from the spec.
func (sp *SessionSpec) Session() (*Session, error) {
	return sp.build(rng.New(sp.seed))
}

// NumSpecies returns the number of species of the spec's model, or the
// three ZGB species for the model-free ziff engine — known without
// building a session, which is what lets the ensemble runner size its
// streaming accumulators up front.
func (sp *SessionSpec) NumSpecies() int {
	if sp.model != nil {
		return sp.model.NumSpecies()
	}
	return 3 // ziff: vacant, CO, O
}

// SpeciesNames returns the species labels of the spec's model (the ZGB
// labels for the model-free ziff engine).
func (sp *SessionSpec) SpeciesNames() []string {
	if sp.model != nil {
		return sp.model.Species
	}
	return zgbSpeciesNames
}

// build wires lattice → compile → configuration → init → engine around
// the given engine stream.
func (sp *SessionSpec) build(src *RNG) (*Session, error) {
	lat := NewLattice(sp.l0, sp.l1)
	var cm *Compiled
	if sp.model != nil {
		var err error
		if cm, err = Compile(sp.model, lat); err != nil {
			return nil, err
		}
	}
	cfg := NewConfig(lat)
	if sp.init != nil {
		sp.init(cfg, src.Split(initStreamID))
	}
	var o registry.Options
	for _, opt := range sp.engOpts {
		if err := opt(sp.model, lat, &o); err != nil {
			return nil, err
		}
	}
	eng, err := registry.New(sp.engine, cm, cfg, src, o)
	if err != nil {
		return nil, err
	}
	return &Session{spec: sp, lat: lat, cm: cm, cfg: cfg, eng: eng}, nil
}

// Session is one wired simulation: a lattice, a compiled model (when
// the engine needs one), a configuration and an engine, ready to Run.
type Session struct {
	spec *SessionSpec
	lat  *Lattice
	cm   *Compiled
	cfg  *Config
	eng  Engine
}

// NewSession builds a session in one call:
//
//	sess, err := parsurf.NewSession(
//		parsurf.WithModel(parsurf.NewZGBModel(parsurf.DefaultZGBRates())),
//		parsurf.WithLattice(256, 256),
//		parsurf.WithEngine("lpndca", parsurf.Trials(100), parsurf.Strategy(parsurf.RateWeighted)),
//		parsurf.WithSeed(42),
//	)
func NewSession(opts ...SessionOption) (*Session, error) {
	sp, err := NewSpec(opts...)
	if err != nil {
		return nil, err
	}
	return sp.Session()
}

// Engine returns the session's engine. Type-assert to the concrete
// engine type (*RSM, *LPNDCA, …) for engine-specific counters.
func (s *Session) Engine() Engine { return s.eng }

// Config returns the live configuration.
func (s *Session) Config() *Config { return s.cfg }

// Lattice returns the session lattice.
func (s *Session) Lattice() *Lattice { return s.lat }

// Model returns the session model (nil for model-free engines).
func (s *Session) Model() *Model { return s.spec.model }

// Compiled returns the compiled model (nil for model-free engines).
func (s *Session) Compiled() *Compiled { return s.cm }

// NumSpecies returns the number of species of the session's model, or
// the three ZGB species for the model-free ziff engine.
func (s *Session) NumSpecies() int { return s.spec.NumSpecies() }

// runSpec collects Run options.
type runSpec struct {
	tEnd     float64
	hasEnd   bool
	steps    int
	hasSteps bool
	dt       float64
	obs      []sim.Observer
}

// RunOption configures one Session.Run call.
type RunOption func(*runSpec)

// Until runs the engine until its clock reaches t.
func Until(t float64) RunOption {
	return func(r *runSpec) {
		r.tEnd = t
		r.hasEnd = true
	}
}

// ForSteps runs the engine for n Step calls instead of a time horizon.
func ForSteps(n int) RunOption {
	return func(r *runSpec) {
		r.steps = n
		r.hasSteps = true
	}
}

// SampleEvery observes the live configuration every dt of simulated
// time (only meaningful with Until). The sample schedule is an
// index-derived TimeGrid (the same grid arithmetic the ensemble merge
// uses), so the k-th sample targets exactly k·dt — never an
// accumulated, drifting sum — and a final sample is taken at the end
// time exactly when it is not on the dt grid.
func SampleEvery(dt float64, obs ...Observer) RunOption {
	return func(r *runSpec) {
		r.dt = dt
		r.obs = append(r.obs, obs...)
	}
}

// RunStats summarises one Run call.
type RunStats struct {
	// Steps is the number of engine Step calls made.
	Steps int
	// Samples is the number of observation points.
	Samples int
	// Time is the engine clock after the run.
	Time float64
}

// Run advances the session per the options, fanning samples out to the
// observers, honouring context cancellation between engine steps. An
// absorbing state ends the run early without error; a cancelled context
// returns ctx's error alongside the progress made.
func (s *Session) Run(ctx context.Context, opts ...RunOption) (RunStats, error) {
	var r runSpec
	for _, opt := range opts {
		opt(&r)
	}
	if r.hasEnd && r.hasSteps {
		return RunStats{}, fmt.Errorf("parsurf: Run with both Until and ForSteps")
	}
	if !r.hasEnd && !r.hasSteps {
		return RunStats{}, fmt.Errorf("parsurf: Run needs Until or ForSteps")
	}
	if r.hasSteps {
		if len(r.obs) > 0 {
			return RunStats{}, fmt.Errorf("parsurf: SampleEvery requires Until, not ForSteps")
		}
		steps, err := sim.StepContext(ctx, s.eng, r.steps)
		return RunStats{Steps: steps, Time: s.eng.Time()}, err
	}
	steps, samples, err := sim.RunContext(ctx, s.eng, r.dt, r.tEnd, r.obs...)
	return RunStats{Steps: steps, Samples: samples, Time: s.eng.Time()}, err
}

// zgbSpeciesNames are the species labels of the model-free ziff engine.
var zgbSpeciesNames = []string{"*", "CO", "O"}

// SpeciesNames returns the species labels of the session's model (the
// ZGB labels for the model-free ziff engine).
func (s *Session) SpeciesNames() []string { return s.spec.SpeciesNames() }
