package parsurf_test

import (
	"context"
	"strings"
	"testing"

	"parsurf"
	"parsurf/internal/goldentrace"
	"parsurf/internal/stats"
)

// wantEngines is the engine set the registry must cover (the paper's
// full comparison).
var wantEngines = []string{
	"rsm", "vssm", "frm", "ndca", "syncndca", "bca",
	"pndca", "lpndca", "typepart", "ddrsm", "ziff",
}

func TestRegistryCoversAllEngines(t *testing.T) {
	have := map[string]bool{}
	for _, name := range parsurf.Engines() {
		have[name] = true
	}
	for _, name := range wantEngines {
		if !have[name] {
			t.Errorf("engine %q not registered (have %v)", name, parsurf.Engines())
		}
	}
}

// Round trip: every registered engine constructs through NewEngine,
// steps, and reports a consistent identity.
func TestRegistryRoundTrip(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	for _, name := range parsurf.Engines() {
		eng, err := parsurf.NewEngine(name, cm, parsurf.NewConfig(lat), parsurf.NewRNG(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("%s: Name() = %q", name, eng.Name())
		}
		if eng.TotalRate() <= 0 {
			t.Errorf("%s: TotalRate() = %v", name, eng.TotalRate())
		}
		for i := 0; i < 3; i++ {
			if !eng.Step() {
				t.Fatalf("%s: could not step", name)
			}
		}
		if eng.Steps() != 3 {
			t.Errorf("%s: Steps() = %d after 3 steps", name, eng.Steps())
		}
		if eng.Time() <= 0 {
			t.Errorf("%s: time did not advance", name)
		}
	}
}

// Model-free engines work without a compiled model; model-bound ones
// reject the omission.
func TestRegistryModelFree(t *testing.T) {
	lat := parsurf.NewSquareLattice(16)
	eng, err := parsurf.NewEngine("ziff", nil, parsurf.NewConfig(lat), parsurf.NewRNG(1),
		parsurf.COFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Step() {
		t.Fatal("ziff could not step")
	}
	if _, err := parsurf.NewEngine("rsm", nil, parsurf.NewConfig(lat), parsurf.NewRNG(1)); err == nil {
		t.Fatal("rsm without a model should fail")
	}
}

func TestRegistryOptionValidation(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	cases := []struct {
		name   string
		engine string
		opts   []parsurf.EngineOption
		substr string
	}{
		{"unknown engine", "nope", nil, "unknown engine"},
		{"rsm rejects L", "rsm", []parsurf.EngineOption{parsurf.Trials(5)}, "does not accept"},
		{"vssm rejects workers", "vssm", []parsurf.EngineOption{parsurf.Workers(4)}, "does not accept"},
		{"lpndca bad strategy", "lpndca", []parsurf.EngineOption{parsurf.StrategyName("bogus")}, "strategy"},
		{"ziff bad y", "ziff", []parsurf.EngineOption{parsurf.COFraction(1.5)}, "outside"},
	}
	for _, tc := range cases {
		_, err := parsurf.NewEngine(tc.engine, cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), tc.opts...)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// coverageSeries samples per-species coverages of a running simulator
// the way the Session observers do.
func coverageSeries(sim parsurf.Simulator, numSpecies int, dt, tEnd float64) []*stats.Series {
	series := make([]*stats.Series, numSpecies)
	for i := range series {
		series[i] = &stats.Series{}
	}
	cfg := sim.Config()
	n := float64(cfg.Lattice().N())
	parsurf.Sample(sim, dt, tEnd, func(t float64) {
		counts := cfg.CountAll(numSpecies)
		for sp := range series {
			series[sp].Append(t, float64(counts[sp])/n)
		}
	})
	return series
}

func seriesEqual(a, b []*stats.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].T) != len(b[i].T) {
			return false
		}
		for j := range a[i].T {
			if a[i].T[j] != b[i].T[j] || a[i].X[j] != b[i].X[j] {
				return false
			}
		}
	}
	return true
}

// A Session reproduces the direct-constructor trajectories bit for bit:
// same seed + engine name ⇒ identical coverage series.
func TestSessionMatchesDirectConstructors(t *testing.T) {
	const side, seed = 20, 99
	const dt, tEnd = 0.5, 5.0
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	lat := parsurf.NewSquareLattice(side)
	cm := parsurf.MustCompile(m, lat)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}

	direct := map[string]func() parsurf.Simulator{
		"rsm":  func() parsurf.Simulator { return parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed)) },
		"vssm": func() parsurf.Simulator { return parsurf.NewVSSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed)) },
		"frm":  func() parsurf.Simulator { return parsurf.NewFRM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed)) },
		"ndca": func() parsurf.Simulator { return parsurf.NewNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed)) },
		"pndca": func() parsurf.Simulator {
			return parsurf.NewPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed), part)
		},
		"lpndca": func() parsurf.Simulator {
			return parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed), part, 10)
		},
	}
	sessionOpts := map[string][]parsurf.EngineOption{
		"lpndca": {parsurf.Trials(10)},
	}
	for name, mk := range direct {
		want := coverageSeries(mk(), m.NumSpecies(), dt, tEnd)

		sess, err := parsurf.NewSession(
			parsurf.WithModel(m),
			parsurf.WithLattice(side, side),
			parsurf.WithEngine(name, sessionOpts[name]...),
			parsurf.WithSeed(seed),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]*stats.Series, m.NumSpecies())
		for i := range got {
			got[i] = &stats.Series{}
		}
		n := float64(lat.N())
		obs := parsurf.ObserverFunc(func(tm float64, cfg *parsurf.Config) {
			counts := cfg.CountAll(m.NumSpecies())
			for sp := range got {
				got[sp].Append(tm, float64(counts[sp])/n)
			}
		})
		if _, err := sess.Run(context.Background(), parsurf.Until(tEnd), parsurf.SampleEvery(dt, obs)); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if !seriesEqual(want, got) {
			t.Errorf("%s: session series differ from direct constructor", name)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	if _, err := parsurf.NewSession(parsurf.WithModel(m)); err == nil {
		t.Error("session without engine should fail")
	}
	if _, err := parsurf.NewSession(parsurf.WithEngine("rsm")); err == nil {
		t.Error("rsm session without model should fail")
	}
	if _, err := parsurf.NewSession(parsurf.WithModel(m), parsurf.WithEngine("rsm"), parsurf.WithLattice(0, 5)); err == nil {
		t.Error("degenerate lattice should fail")
	}
	sess, err := parsurf.NewSession(parsurf.WithModel(m), parsurf.WithEngine("rsm"), parsurf.WithLattice(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err == nil {
		t.Error("Run without Until/ForSteps should fail")
	}
	if _, err := sess.Run(context.Background(), parsurf.Until(1), parsurf.ForSteps(3)); err == nil {
		t.Error("Run with both Until and ForSteps should fail")
	}
}

func TestSessionContextCancellation(t *testing.T) {
	sess, err := parsurf.NewSession(
		parsurf.WithModel(parsurf.NewZGBModel(parsurf.DefaultZGBRates())),
		parsurf.WithLattice(20, 20),
		parsurf.WithEngine("rsm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(ctx, parsurf.Until(1e9)); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func zgbEnsembleSpec(t testing.TB) *parsurf.SessionSpec {
	t.Helper()
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(24, 24),
		parsurf.WithEngine("ziff", parsurf.COFraction(0.51)),
		parsurf.WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// RunEnsemble is invariant under the worker count: replica i always
// draws from the same split stream, so only the wall clock changes.
func TestEnsembleWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	spec := zgbEnsembleSpec(t)
	const replicas, until, every = 6, 10, 1
	e1, err := parsurf.RunEnsemble(ctx, spec, replicas, 1, until, every, parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	e4, err := parsurf.RunEnsemble(ctx, spec, replicas, 4, until, every, parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.Replicas {
		if !seriesEqual(e1.Replicas[i].Coverage, e4.Replicas[i].Coverage) {
			t.Errorf("replica %d differs between 1 and 4 workers", i)
		}
	}
	if !seriesEqual(e1.Mean, e4.Mean) || !seriesEqual(e1.Std, e4.Std) {
		t.Error("merged series differ between 1 and 4 workers")
	}
}

// Replicas are independent: distinct split streams give distinct
// trajectories, and the merged mean lies within the replica envelope.
func TestEnsembleReplicaIndependence(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	ens, err := parsurf.RunEnsemble(context.Background(), spec, 4, 2, 10, 1, parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	if seriesEqual(ens.Replicas[0].Coverage, ens.Replicas[1].Coverage) {
		t.Error("replicas 0 and 1 produced identical trajectories")
	}
	// CO coverage mean at the final grid point must lie within the
	// replica min/max envelope.
	co := 1
	last := len(ens.Mean[co].X) - 1
	lo, hi := 1.0, 0.0
	for _, r := range ens.Replicas {
		v := r.Coverage[co].At(ens.Mean[co].T[last])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if mean := ens.Mean[co].X[last]; mean < lo || mean > hi {
		t.Errorf("ensemble mean %.4f outside replica envelope [%.4f, %.4f]", mean, lo, hi)
	}
}

func TestEnsembleValidation(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	ctx := context.Background()
	if _, err := parsurf.RunEnsemble(ctx, nil, 2, 1, 1, 1); err == nil {
		t.Error("nil spec should fail")
	}
	if _, err := parsurf.RunEnsemble(ctx, spec, 0, 1, 1, 1); err == nil {
		t.Error("zero replicas should fail")
	}
	if _, err := parsurf.RunEnsemble(ctx, spec, 2, 1, 0, 1); err == nil {
		t.Error("zero horizon should fail")
	}
}

// The final sample lands on tEnd exactly even when tEnd is off the dt
// grid (the old Sample dropped the tail).
func TestSampleTakesFinalSampleAtTEnd(t *testing.T) {
	lat := parsurf.NewSquareLattice(12)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	sim := parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(3))
	const dt, tEnd = 0.25, 1.1
	var times []float64
	parsurf.Sample(sim, dt, tEnd, func(tm float64) { times = append(times, tm) })
	if len(times) == 0 {
		t.Fatal("no samples")
	}
	if last := times[len(times)-1]; last < tEnd {
		t.Fatalf("run tail dropped: last sample at %v < tEnd %v", last, tEnd)
	}
	if sim.Time() < tEnd {
		t.Fatalf("simulation stopped at %v before tEnd %v", sim.Time(), tEnd)
	}
	// On-grid horizons take no duplicate final sample.
	sim2 := parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(3))
	times = times[:0]
	parsurf.Sample(sim2, 0.25, 1.0, func(tm float64) { times = append(times, tm) })
	if len(times) != 5 { // t = 0, 0.25, 0.5, 0.75, 1.0
		t.Fatalf("on-grid sampling took %d samples, want 5", len(times))
	}
}

// Float drift: dt=0.1 accumulates to 99.99999999999986 < 100, so the
// last grid sample already covers tEnd; the tail branch must not
// observe a second time at the identical clock value.
func TestSampleNoDuplicateOnGridDrift(t *testing.T) {
	lat := parsurf.NewSquareLattice(8)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	sim := parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(3))
	var times []float64
	parsurf.Sample(sim, 0.1, 100, func(tm float64) { times = append(times, tm) })
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			t.Fatalf("duplicate sample at t=%v (index %d)", times[i], i)
		}
	}
	if n := len(times); n != 1001 {
		t.Fatalf("got %d samples, want 1001", n)
	}
}

// goldenTraces are FNV-64a fingerprints of (configuration, time) after
// every step of a fixed-seed run per engine, captured from the
// implementation BEFORE the hot-loop flattening (closure-based
// dependency enumeration, map-indexed event queue, byte enabled flags,
// unbatched RNG). The flattened fast paths must reproduce every
// trajectory bit for bit.
// Exception: ddrsm's hash was re-captured after this PR made its clock
// merge deterministic (worker-order subtotal summation) — the seed
// implementation summed per-strip time increments in channel-arrival
// order, so its clock float rounding varied run to run; configurations
// were and remain identical.
var goldenTraces = map[string]uint64{
	"bca":      0x776d1cf099a3a672,
	"ddrsm":    0x5a9f8603f13b6249,
	"frm":      0xf48e9567d20323f2,
	"lpndca":   0xca8a100f2c8d4bed,
	"ndca":     0xb1aa4a182de9df79,
	"pndca":    0xc31d8f90fd29642c,
	"rsm":      0xedcb34c9d34f7099,
	"syncndca": 0x8945c69eeec30d06,
	"typepart": 0xd0532beee17730fb,
	"vssm":     0x9a80065dff927007,
	"ziff":     0x594b21eb7e43c3f2,
}

// Every engine must reproduce, bit for bit, the trajectory the
// pre-flattening implementation produced for the same seed: identical
// configurations after every step and identical clock values down to
// the last float64 bit. The run parameters and the hash live in
// internal/goldentrace, shared with cmd/goldengen (which regenerates
// the table when a PR intentionally changes trajectories).
func TestGoldenTracesBitIdentical(t *testing.T) {
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	for _, name := range parsurf.Engines() {
		want, ok := goldenTraces[name]
		if !ok {
			t.Errorf("engine %q has no golden trace; run cmd/goldengen and add it", name)
			continue
		}
		lat := parsurf.NewSquareLattice(goldentrace.Side)
		cm := parsurf.MustCompile(m, lat)
		eng, err := parsurf.NewEngine(name, cm, parsurf.NewConfig(lat), parsurf.NewRNG(goldentrace.Seed))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := goldentrace.Fingerprint(eng, goldentrace.StepsFor(name))
		if got != want {
			t.Errorf("engine %q trace fingerprint 0x%016x, want golden 0x%016x — trajectory changed",
				name, got, want)
		}
	}
}
