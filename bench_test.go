// Benchmarks regenerating the computational core of every table and
// figure in the paper's evaluation, plus the ablations called out in
// DESIGN.md. Sizes are scaled down from the paper's 100×100/1000×1000 so
// `go test -bench=.` completes quickly; cmd/experiments runs the
// full-size versions and EXPERIMENTS.md records the results.
package parsurf_test

import (
	"testing"

	"parsurf"
	"parsurf/internal/ca"
	"parsurf/internal/lattice"
	"parsurf/internal/stats"
	"parsurf/internal/ziff"
)

// --- Table I ---------------------------------------------------------

// BenchmarkTable1ZGBTrials measures the cost of RSM trials on the seven
// reaction types of Table I.
func BenchmarkTable1ZGBTrials(b *testing.B) {
	lat := parsurf.NewSquareLattice(64)
	cm := parsurf.MustCompile(parsurf.NewZGBModel(parsurf.DefaultZGBRates()), lat)
	sim := parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Trial()
	}
}

// --- Table II --------------------------------------------------------

// BenchmarkTable2TypePartitioned measures one step of the Ω×T algorithm
// over the Table II split.
func BenchmarkTable2TypePartitioned(b *testing.B) {
	lat := parsurf.NewSquareLattice(64)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	ts, err := parsurf.SplitByDirection(m, lat)
	if err != nil {
		b.Fatal(err)
	}
	sim := parsurf.NewTypePartitioned(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- Fig. 3 ----------------------------------------------------------

// BenchmarkFig3BCA1D measures the shifting-block 1-D CA.
func BenchmarkFig3BCA1D(b *testing.B) {
	initial := make([]lattice.Species, 3*64)
	for i := range initial {
		initial[i] = 1
	}
	initial[0] = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.BCA1D(initial, 3, 1, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4 ----------------------------------------------------------

// BenchmarkFig4PartitionBuildVerify measures constructing the five-chunk
// partition and verifying the non-overlap rule at the paper's 100×100.
func BenchmarkFig4PartitionBuildVerify(b *testing.B) {
	lat := parsurf.NewSquareLattice(100)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := parsurf.VonNeumann5(lat)
		if err != nil {
			b.Fatal(err)
		}
		if err := parsurf.VerifyNonOverlap(p, m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6 ----------------------------------------------------------

// BenchmarkFig6SplitByDirection measures building and verifying the
// Table II / Fig. 6 checkerboard type split.
func BenchmarkFig6SplitByDirection(b *testing.B) {
	lat := parsurf.NewSquareLattice(100)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := parsurf.SplitByDirection(m, lat)
		if err != nil {
			b.Fatal(err)
		}
		if err := ts.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7 ----------------------------------------------------------

// BenchmarkFig7Speedup evaluates the full modeled speedup surface of
// Fig. 7 (9 sizes × 9 worker counts).
func BenchmarkFig7Speedup(b *testing.B) {
	mm := parsurf.DefaultMachine()
	sides := []int{200, 300, 400, 500, 600, 700, 800, 900, 1000}
	workers := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.SpeedupSurface(sides, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PNDCAWorkers measures a real parallel PNDCA step at
// several worker counts (bit-identical trajectories; wall-clock gain
// requires multiple cores).
func BenchmarkFig7PNDCAWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			lat := parsurf.NewSquareLattice(50)
			cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
			part, err := parsurf.VonNeumann5(lat)
			if err != nil {
				b.Fatal(err)
			}
			sim := parsurf.NewPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), part)
			sim.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// --- Fig. 8 ----------------------------------------------------------

// BenchmarkFig8Limits measures L-PNDCA at the RSM-equivalent limit
// (m=1, L=N) on the Pt(100) model.
func BenchmarkFig8Limits(b *testing.B) {
	lat := parsurf.NewSquareLattice(40)
	cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
	sim := parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1),
		parsurf.SingleChunk(lat), lat.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- Fig. 9 ----------------------------------------------------------

// BenchmarkFig9L measures L-PNDCA steps for the two L values of Fig. 9.
func BenchmarkFig9L(b *testing.B) {
	for _, l := range []int{1, 100} {
		b.Run(benchName("L", l), func(b *testing.B) {
			lat := parsurf.NewSquareLattice(40)
			cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
			part, err := parsurf.VonNeumann5(lat)
			if err != nil {
				b.Fatal(err)
			}
			sim := parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), part, l)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// --- Fig. 10 ---------------------------------------------------------

// BenchmarkFig10RandomOrder measures the random-order once-per-step
// sweep at the maximal L = N/m.
func BenchmarkFig10RandomOrder(b *testing.B) {
	lat := parsurf.NewSquareLattice(40)
	cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		b.Fatal(err)
	}
	sim := parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), part,
		lat.N()/part.NumChunks())
	sim.Strategy = parsurf.AllRandomOrder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- Ziff phase diagram ---------------------------------------------

// BenchmarkZGBPhaseDiagram measures one phase-diagram point of the
// classic adsorption-limited ZGB model.
func BenchmarkZGBPhaseDiagram(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ziff.Measure(32, 0.46, 20, 10, uint64(i))
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationEngines compares the exact DMC engines per unit of
// work on identical ZGB systems: RSM per N trials, VSSM and FRM per N
// events.
func BenchmarkAblationEngines(b *testing.B) {
	lat := parsurf.NewSquareLattice(64)
	cm := parsurf.MustCompile(parsurf.NewZGBModel(parsurf.DefaultZGBRates()), lat)
	b.Run("rsm", func(b *testing.B) {
		sim := parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Step()
		}
	})
	b.Run("vssm", func(b *testing.B) {
		sim := parsurf.NewVSSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1))
		n := lat.N()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if !sim.Step() {
					b.Fatal("absorbed")
				}
			}
		}
	})
	b.Run("frm", func(b *testing.B) {
		sim := parsurf.NewFRM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1))
		n := lat.N()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if !sim.Step() {
					b.Fatal("absorbed")
				}
			}
		}
	})
}

// BenchmarkAblationChunkStrategies compares the four §5 chunk-selection
// strategies of L-PNDCA.
func BenchmarkAblationChunkStrategies(b *testing.B) {
	lat := parsurf.NewSquareLattice(50)
	cm := parsurf.MustCompile(parsurf.NewZGBModel(parsurf.DefaultZGBRates()), lat)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []struct {
		name     string
		strategy int
	}{
		{"order", int(parsurf.AllInOrder)},
		{"randomorder", int(parsurf.AllRandomOrder)},
		{"replacement", int(parsurf.RandomReplacement)},
		{"rates", int(parsurf.RateWeighted)},
	} {
		b.Run(s.name, func(b *testing.B) {
			sim := parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), part, 10)
			sim.Strategy = parsurf.AllInOrder
			switch s.strategy {
			case int(parsurf.AllRandomOrder):
				sim.Strategy = parsurf.AllRandomOrder
			case int(parsurf.RandomReplacement):
				sim.Strategy = parsurf.RandomReplacement
			case int(parsurf.RateWeighted):
				sim.Strategy = parsurf.RateWeighted
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkAblationSyncConflicts measures the synchronous NDCA with
// conflict resolution (what partitions avoid paying per step).
func BenchmarkAblationSyncConflicts(b *testing.B) {
	lat := parsurf.NewSquareLattice(64)
	cm := parsurf.MustCompile(parsurf.NewDiffusionModel(1), lat)
	cfg := parsurf.NewConfig(lat)
	cfg.Randomize([]float64{0.5, 0.5}, parsurf.NewRNG(2).Float64)
	sim := parsurf.NewSyncNDCA(cm, cfg, parsurf.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkAblationDDRSM measures the Segers-style domain-decomposition
// baseline per MC step.
func BenchmarkAblationDDRSM(b *testing.B) {
	lat := parsurf.NewSquareLattice(64)
	cm := parsurf.MustCompile(parsurf.NewZGBModel(parsurf.DefaultZGBRates()), lat)
	sim, err := parsurf.NewDDRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(1), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkAblationOscillationDetection measures the analysis pipeline
// of Figs. 8–10 (resampling + autocorrelation).
func BenchmarkAblationOscillationDetection(b *testing.B) {
	s := &stats.Series{}
	src := parsurf.NewRNG(3)
	for i := 0; i <= 4000; i++ {
		t := float64(i) * 0.25
		s.Append(t, 0.4+0.3*osc(t)+0.02*(src.Float64()-0.5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := stats.DetectOscillation(s, 800, 0.2); !ok {
			b.Fatal("oscillation lost")
		}
	}
}

func osc(t float64) float64 {
	// Triangle wave with period 25, cheap stand-in for a sine.
	phase := t / 25
	frac := phase - float64(int(phase))
	if frac < 0.5 {
		return 4*frac - 1
	}
	return 3 - 4*frac
}

func benchName(prefix string, v int) string {
	if v < 10 {
		return prefix + "=" + string(rune('0'+v))
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return prefix + "=" + out
}
