package partition

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
)

// TypeSplit is the partitioning of Ω×T of §5 of the paper: the reaction
// type set T is split into subsets T_j, each with an associated site
// partition that satisfies the per-type non-overlap rule for every type
// in the subset. Because only one reaction type is swept at a time, the
// site partitions can be much coarser than the all-types partition (two
// chunks instead of five for the CO-oxidation model).
type TypeSplit struct {
	Model *model.Model
	// Subsets[j] lists the indices into Model.Types belonging to T_j.
	Subsets [][]int
	// Partitions[j] is the site partition used when sweeping a type
	// from T_j.
	Partitions []*Partition
	// SubsetRates[j] is K_Tj, the summed rate of T_j.
	SubsetRates []float64
}

// K returns the total rate over all subsets.
func (ts *TypeSplit) K() float64 {
	k := 0.0
	for _, r := range ts.SubsetRates {
		k += r
	}
	return k
}

// NumSubsets returns |T|, the number of subsets T_j.
func (ts *TypeSplit) NumSubsets() int { return len(ts.Subsets) }

// Verify checks that every subset's partition satisfies the per-type
// non-overlap rule for every type in the subset.
func (ts *TypeSplit) Verify() error {
	for j, subset := range ts.Subsets {
		for _, rt := range subset {
			if err := VerifyNonOverlapType(ts.Partitions[j], &ts.Model.Types[rt]); err != nil {
				return fmt.Errorf("subset %d type %q: %w", j, ts.Model.Types[rt].Name, err)
			}
		}
	}
	return nil
}

// SplitByDirection builds the Table II split for models whose reaction
// patterns are single sites or dominoes (two-site patterns along a
// lattice axis): types whose pattern fits in a horizontal domino (pure
// single-site types included) go to T_0, vertically oriented types to
// T_1. Both subsets use the two-chunk checkerboard partition, which
// satisfies the per-type rule for any domino orientation.
//
// For the CO-oxidation model of Table I this reproduces Table II exactly:
// T_0 = {RtCO+O(0), RtCO+O(2), RtO2(0), RtCO}, T_1 = {RtCO+O(1),
// RtCO+O(3), RtO2(1)}.
func SplitByDirection(m *model.Model, lat *lattice.Lattice) (*TypeSplit, error) {
	board, err := Checkerboard(lat)
	if err != nil {
		return nil, err
	}
	ts := &TypeSplit{
		Model:       m,
		Subsets:     [][]int{nil, nil},
		Partitions:  []*Partition{board, board},
		SubsetRates: []float64{0, 0},
	}
	for i := range m.Types {
		j, err := dominoDirection(&m.Types[i])
		if err != nil {
			return nil, err
		}
		ts.Subsets[j] = append(ts.Subsets[j], i)
		ts.SubsetRates[j] += m.Types[i].Rate
	}
	if len(ts.Subsets[1]) == 0 {
		// Purely horizontal/single-site model: collapse to one subset.
		ts.Subsets = ts.Subsets[:1]
		ts.Partitions = ts.Partitions[:1]
		ts.SubsetRates = ts.SubsetRates[:1]
	}
	return ts, nil
}

// dominoDirection classifies a reaction type's pattern: 0 for
// single-site or horizontal dominoes, 1 for vertical dominoes. A pattern
// fits a domino when it spans at most two adjacent sites along one axis
// (spread ≤ 1); anything wider (e.g. a three-site tromino) is an error,
// because the checkerboard cannot guarantee non-overlap for it.
func dominoDirection(rt *model.ReactionType) (int, error) {
	minX, maxX := 0, 0
	minY, maxY := 0, 0
	for _, tr := range rt.Triples {
		if tr.Off.DX < minX {
			minX = tr.Off.DX
		}
		if tr.Off.DX > maxX {
			maxX = tr.Off.DX
		}
		if tr.Off.DY < minY {
			minY = tr.Off.DY
		}
		if tr.Off.DY > maxY {
			maxY = tr.Off.DY
		}
	}
	spreadX, spreadY := maxX-minX, maxY-minY
	switch {
	case spreadY == 0 && spreadX <= 1:
		return 0, nil
	case spreadX == 0 && spreadY <= 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("partition: reaction %q does not fit a domino", rt.Name)
	}
}
