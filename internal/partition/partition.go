// Package partition implements the partitions of §5 of the paper: a
// partition P is a collection of disjoint chunks P_i covering the
// lattice, chosen such that reactions applied at distinct sites of the
// same chunk never touch each other's neighbourhoods (the non-overlap
// rule). All sites of one chunk can then be updated simultaneously.
//
// The package provides the concrete partitions the paper uses — the
// five-chunk von Neumann colouring of Fig. 4, the two-chunk checkerboard
// of Fig. 6, block partitions for the BCA, and the degenerate single-
// chunk (m=1) and singleton (m=N) partitions that reduce L-PNDCA to RSM
// — plus a generic modular-colouring search for arbitrary models, and
// verifiers for both forms of the non-overlap rule.
package partition

import (
	"fmt"
	"sort"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
)

// Partition is a disjoint cover of the lattice by chunks.
type Partition struct {
	Lat    *lattice.Lattice
	Chunks [][]int32
	// chunkOf maps a site to its chunk index.
	chunkOf []int32
}

// FromChunks validates that the chunks are disjoint and cover the
// lattice, and returns the partition.
func FromChunks(lat *lattice.Lattice, chunks [][]int32) (*Partition, error) {
	p := &Partition{Lat: lat, Chunks: chunks, chunkOf: make([]int32, lat.N())}
	for i := range p.chunkOf {
		p.chunkOf[i] = -1
	}
	total := 0
	for ci, chunk := range chunks {
		if len(chunk) == 0 {
			return nil, fmt.Errorf("partition: chunk %d is empty", ci)
		}
		for _, s := range chunk {
			if s < 0 || int(s) >= lat.N() {
				return nil, fmt.Errorf("partition: site %d out of range", s)
			}
			if p.chunkOf[s] != -1 {
				return nil, fmt.Errorf("partition: site %d in chunks %d and %d", s, p.chunkOf[s], ci)
			}
			p.chunkOf[s] = int32(ci)
		}
		total += len(chunk)
	}
	if total != lat.N() {
		return nil, fmt.Errorf("partition: chunks cover %d of %d sites", total, lat.N())
	}
	return p, nil
}

// NumChunks returns |P|, the number of chunks (the paper's m).
func (p *Partition) NumChunks() int { return len(p.Chunks) }

// ChunkOf returns the index of the chunk containing site s.
func (p *Partition) ChunkOf(s int) int { return int(p.chunkOf[s]) }

// Sizes returns the chunk sizes |P_i|.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Chunks))
	for i, c := range p.Chunks {
		out[i] = len(c)
	}
	return out
}

// fromColoring builds a partition from a site → colour map with the
// given number of colours.
func fromColoring(lat *lattice.Lattice, colours int, colourOf func(x, y int) int) (*Partition, error) {
	chunks := make([][]int32, colours)
	for y := 0; y < lat.L1; y++ {
		for x := 0; x < lat.L0; x++ {
			c := colourOf(x, y)
			if c < 0 || c >= colours {
				return nil, fmt.Errorf("partition: colour %d out of range", c)
			}
			chunks[c] = append(chunks[c], int32(lat.Index(x, y)))
		}
	}
	return FromChunks(lat, chunks)
}

// SingleChunk returns the m=1 partition: one chunk containing the whole
// lattice. With L = N, L-PNDCA over this partition is exactly RSM.
func SingleChunk(lat *lattice.Lattice) *Partition {
	chunk := make([]int32, lat.N())
	for i := range chunk {
		chunk[i] = int32(i)
	}
	p, err := FromChunks(lat, [][]int32{chunk})
	if err != nil {
		panic(err) // cannot happen
	}
	return p
}

// Singletons returns the m=N partition: one chunk per site. With L = 1,
// L-PNDCA over this partition is exactly RSM.
func Singletons(lat *lattice.Lattice) *Partition {
	chunks := make([][]int32, lat.N())
	for i := range chunks {
		chunks[i] = []int32{int32(i)}
	}
	p, err := FromChunks(lat, chunks)
	if err != nil {
		panic(err)
	}
	return p
}

// VonNeumann5 returns the five-chunk colouring of Fig. 4 of the paper:
// colour(x, y) = (x + 3y) mod 5, the optimal partition for models whose
// reaction patterns fit in the von Neumann cross (such as the
// CO-oxidation model of Table I). Both lattice extents must be multiples
// of five for the colouring to wrap consistently.
func VonNeumann5(lat *lattice.Lattice) (*Partition, error) {
	if lat.L0%5 != 0 || lat.L1%5 != 0 {
		return nil, fmt.Errorf("partition: VonNeumann5 needs extents divisible by 5, got %dx%d", lat.L0, lat.L1)
	}
	return fromColoring(lat, 5, func(x, y int) int { return (x + 3*y) % 5 })
}

// Checkerboard returns the two-chunk partition of Fig. 6:
// colour(x, y) = (x + y) mod 2. It satisfies the per-type non-overlap
// rule for any model whose patterns fit in a two-site domino (any single
// orientation at a time), which is what the type-partitioned algorithm
// of §5 needs. Both extents must be even.
func Checkerboard(lat *lattice.Lattice) (*Partition, error) {
	if lat.L0%2 != 0 || lat.L1%2 != 0 {
		return nil, fmt.Errorf("partition: Checkerboard needs even extents, got %dx%d", lat.L0, lat.L1)
	}
	return fromColoring(lat, 2, func(x, y int) int { return (x + y) % 2 })
}

// Blocks returns the block partition used by Block Cellular Automata:
// the lattice is tiled by bw×bh blocks with the tiling origin shifted by
// (ox, oy); each block is one chunk. Block chunks contain adjacent sites
// and therefore do not satisfy the non-overlap rule — the BCA instead
// confines reactions to block interiors. Extents must be divisible by
// the block dimensions.
func Blocks(lat *lattice.Lattice, bw, bh, ox, oy int) (*Partition, error) {
	if bw <= 0 || bh <= 0 {
		return nil, fmt.Errorf("partition: non-positive block size %dx%d", bw, bh)
	}
	if lat.L0%bw != 0 || lat.L1%bh != 0 {
		return nil, fmt.Errorf("partition: %dx%d lattice not tileable by %dx%d blocks", lat.L0, lat.L1, bw, bh)
	}
	bx := lat.L0 / bw
	colours := bx * (lat.L1 / bh)
	return fromColoring(lat, colours, func(x, y int) int {
		// Shift the tiling origin; the site at (x, y) belongs to the
		// block containing (x-ox, y-oy).
		xx := ((x-ox)%lat.L0 + lat.L0) % lat.L0
		yy := ((y-oy)%lat.L1 + lat.L1) % lat.L1
		return (yy/bh)*bx + xx/bw
	})
}

// conflictOffsets returns the set Δ of non-zero offsets δ such that the
// combined neighbourhoods of the model's reaction types at two sites s
// and s+δ can intersect: Δ = {o1 − o2 : o1, o2 ∈ O} \ {0} where O is the
// union of all pattern offsets.
func conflictOffsets(m *model.Model) []lattice.Vec {
	offs := make(map[lattice.Vec]bool)
	for i := range m.Types {
		for _, tr := range m.Types[i].Triples {
			offs[tr.Off] = true
		}
	}
	deltas := make(map[lattice.Vec]bool)
	for a := range offs {
		for b := range offs {
			d := lattice.Vec{DX: a.DX - b.DX, DY: a.DY - b.DY}
			if d != (lattice.Vec{}) {
				deltas[d] = true
			}
		}
	}
	return sortedVecs(deltas)
}

// sortedVecs flattens a Vec set into a (DX, DY)-ordered slice: callers
// iterate the result, so a stable order keeps search outcomes and
// conflict error messages identical run to run.
func sortedVecs(set map[lattice.Vec]bool) []lattice.Vec {
	out := make([]lattice.Vec, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DX != out[j].DX {
			return out[i].DX < out[j].DX
		}
		return out[i].DY < out[j].DY
	})
	return out
}

// ModularColoring searches for the smallest modular colouring
// colour(x, y) = (x + r·y) mod k, k ≤ maxK, that satisfies the
// all-types non-overlap rule for the model on the given lattice: no
// conflict offset δ of the model may satisfy δx + r·δy ≡ 0 (mod k), and
// the colouring must wrap (k | L0 and k | r·L1). It returns the
// partition, or an error if no such colouring exists within maxK.
//
// For the CO-oxidation model this finds the k=5 colouring of Fig. 4; for
// single-site models it finds... k=2 (conflicts only at distance-1
// offsets); the search generalises the paper's hand-constructed
// partitions.
func ModularColoring(m *model.Model, lat *lattice.Lattice, maxK int) (*Partition, error) {
	deltas := conflictOffsets(m)
	if len(deltas) == 0 {
		// Single-site patterns only: every site is independent; one
		// chunk suffices.
		return SingleChunk(lat), nil
	}
	for k := 2; k <= maxK; k++ {
		if lat.L0%k != 0 {
			continue
		}
		for r := 0; r < k; r++ {
			if (r*lat.L1)%k != 0 {
				continue
			}
			ok := true
			for _, d := range deltas {
				v := (d.DX + r*d.DY) % k
				if v < 0 {
					v += k
				}
				if v == 0 {
					ok = false
					break
				}
			}
			if ok {
				return fromColoring(lat, k, func(x, y int) int { return (x + r*y) % k })
			}
		}
	}
	return nil, fmt.Errorf("partition: no modular colouring with k <= %d for this model on %dx%d", maxK, lat.L0, lat.L1)
}

// VerifyNonOverlap checks the all-types non-overlap rule of §5: for all
// distinct sites s, t of the same chunk and all reaction types Rt, Rt',
// Nb_Rt(s) ∩ Nb_Rt'(t) = ∅. Because the rule quantifies over all type
// pairs it is equivalent to: the unions U(s) of all pattern sites at s
// are pairwise disjoint within a chunk. Returns nil if the rule holds.
func VerifyNonOverlap(p *Partition, m *model.Model) error {
	offs := make(map[lattice.Vec]bool)
	for i := range m.Types {
		for _, tr := range m.Types[i].Triples {
			offs[tr.Off] = true
		}
	}
	return verifyDisjointUnions(p, mapKeys(offs))
}

// VerifyNonOverlapType checks the per-type non-overlap rule used by the
// type-partitioned algorithm: for the single reaction type rt,
// Nb_rt(s) ∩ Nb_rt(t) = ∅ for distinct s, t in the same chunk.
func VerifyNonOverlapType(p *Partition, rt *model.ReactionType) error {
	offs := make([]lattice.Vec, len(rt.Triples))
	for i, tr := range rt.Triples {
		offs[i] = tr.Off
	}
	return verifyDisjointUnions(p, offs)
}

func mapKeys(m map[lattice.Vec]bool) []lattice.Vec {
	return sortedVecs(m)
}

// verifyDisjointUnions stamps every site of U(s) = s + offs for each
// chunk member s and reports a conflict when a site is stamped twice by
// different members of the same chunk.
func verifyDisjointUnions(p *Partition, offs []lattice.Vec) error {
	lat := p.Lat
	owner := make([]int32, lat.N())
	for ci, chunk := range p.Chunks {
		if len(chunk) == 1 {
			continue // a single member cannot conflict with itself
		}
		for i := range owner {
			owner[i] = -1
		}
		for _, s := range chunk {
			for _, o := range offs {
				site := lat.Translate(int(s), o)
				if owner[site] != -1 && owner[site] != s {
					return fmt.Errorf(
						"partition: chunk %d members %d and %d overlap at site %d",
						ci, owner[site], s, site)
				}
				owner[site] = s
			}
		}
	}
	return nil
}
