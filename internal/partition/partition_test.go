package partition

import (
	"math"
	"testing"
	"testing/quick"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
)

func TestFromChunksValidation(t *testing.T) {
	lat := lattice.New(2, 2)
	cases := []struct {
		name   string
		chunks [][]int32
	}{
		{"empty chunk", [][]int32{{0, 1, 2, 3}, {}}},
		{"out of range", [][]int32{{0, 1, 2, 4}}},
		{"duplicate", [][]int32{{0, 1}, {1, 2, 3}}},
		{"incomplete", [][]int32{{0, 1, 2}}},
	}
	for _, c := range cases {
		if _, err := FromChunks(lat, c.chunks); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	p, err := FromChunks(lat, [][]int32{{0, 3}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 2 || p.ChunkOf(0) != 0 || p.ChunkOf(1) != 1 {
		t.Fatal("valid partition misparsed")
	}
	if s := p.Sizes(); s[0] != 2 || s[1] != 2 {
		t.Fatalf("Sizes = %v", s)
	}
}

func TestSingleChunkAndSingletons(t *testing.T) {
	lat := lattice.New(4, 3)
	one := SingleChunk(lat)
	if one.NumChunks() != 1 || len(one.Chunks[0]) != 12 {
		t.Fatal("SingleChunk malformed")
	}
	all := Singletons(lat)
	if all.NumChunks() != 12 {
		t.Fatal("Singletons malformed")
	}
	for s := 0; s < 12; s++ {
		if all.ChunkOf(s) != s {
			t.Fatal("Singletons chunk mapping wrong")
		}
	}
}

// Fig. 4 of the paper: the 5×5 tile with rows 01234 / 34012 / 12340 /
// 40123 / 23401 (colour = (x + 3y) mod 5).
func TestVonNeumann5Tile(t *testing.T) {
	lat := lattice.NewSquare(5)
	p, err := VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	want := [5][5]int{
		{0, 1, 2, 3, 4},
		{3, 4, 0, 1, 2},
		{1, 2, 3, 4, 0},
		{4, 0, 1, 2, 3},
		{2, 3, 4, 0, 1},
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if got := p.ChunkOf(lat.Index(x, y)); got != want[y][x] {
				t.Errorf("chunk(%d,%d) = %d, want %d", x, y, got, want[y][x])
			}
		}
	}
	// Five equal chunks.
	for _, size := range p.Sizes() {
		if size != 5 {
			t.Fatalf("chunk sizes %v", p.Sizes())
		}
	}
}

func TestVonNeumann5NonOverlapZGB(t *testing.T) {
	lat := lattice.NewSquare(20)
	p, err := VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewZGB(model.DefaultZGBRates())
	if err := VerifyNonOverlap(p, m); err != nil {
		t.Fatalf("Fig. 4 partition violates the non-overlap rule: %v", err)
	}
}

func TestVonNeumann5NonOverlapPtCO(t *testing.T) {
	lat := lattice.NewSquare(20)
	p, _ := VonNeumann5(lat)
	m := model.NewPtCO(model.DefaultPtCORates())
	if err := VerifyNonOverlap(p, m); err != nil {
		t.Fatalf("von Neumann 5-colouring fails for PtCO: %v", err)
	}
}

func TestVonNeumann5RequiresDivisibility(t *testing.T) {
	if _, err := VonNeumann5(lattice.New(12, 10)); err == nil {
		t.Fatal("accepted width not divisible by 5")
	}
	if _, err := VonNeumann5(lattice.New(10, 12)); err == nil {
		t.Fatal("accepted height not divisible by 5")
	}
}

// The checkerboard must fail the all-types rule for ZGB (opposite
// orientations of CO+O overlap between same-colour sites)...
func TestCheckerboardFailsAllTypesZGB(t *testing.T) {
	lat := lattice.NewSquare(8)
	p, err := Checkerboard(lat)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewZGB(model.DefaultZGBRates())
	if err := VerifyNonOverlap(p, m); err == nil {
		t.Fatal("checkerboard wrongly satisfies the all-types rule for ZGB")
	}
}

// ...but satisfy the per-type rule for every ZGB type, which is what the
// type-partitioned algorithm needs (Fig. 6).
func TestCheckerboardPerTypeZGB(t *testing.T) {
	lat := lattice.NewSquare(8)
	p, _ := Checkerboard(lat)
	m := model.NewZGB(model.DefaultZGBRates())
	for i := range m.Types {
		if err := VerifyNonOverlapType(p, &m.Types[i]); err != nil {
			t.Errorf("type %q: %v", m.Types[i].Name, err)
		}
	}
}

func TestCheckerboardFig6Membership(t *testing.T) {
	// Paper Fig. 6 on a width-6 lattice: P0 = {0,2,4,7,9,11,...},
	// P1 = {1,3,5,6,8,10,...}.
	lat := lattice.New(6, 4)
	p, _ := Checkerboard(lat)
	for _, s := range []int{0, 2, 4, 7, 9, 11} {
		if p.ChunkOf(s) != 0 {
			t.Errorf("site %d in chunk %d, want 0", s, p.ChunkOf(s))
		}
	}
	for _, s := range []int{1, 3, 5, 6, 8, 10} {
		if p.ChunkOf(s) != 1 {
			t.Errorf("site %d in chunk %d, want 1", s, p.ChunkOf(s))
		}
	}
}

func TestBlocks(t *testing.T) {
	lat := lattice.New(9, 6)
	p, err := Blocks(lat, 3, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 6 {
		t.Fatalf("NumChunks = %d, want 6", p.NumChunks())
	}
	for _, size := range p.Sizes() {
		if size != 9 {
			t.Fatalf("block sizes %v", p.Sizes())
		}
	}
	// Sites (0,0) and (2,2) share a block; (3,0) does not.
	if p.ChunkOf(lat.Index(0, 0)) != p.ChunkOf(lat.Index(2, 2)) {
		t.Error("same block split")
	}
	if p.ChunkOf(lat.Index(0, 0)) == p.ChunkOf(lat.Index(3, 0)) {
		t.Error("different blocks merged")
	}
}

func TestBlocksShifted(t *testing.T) {
	lat := lattice.New(6, 6)
	p0, _ := Blocks(lat, 3, 3, 0, 0)
	p1, err := Blocks(lat, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The shifted tiling must place (0,0) and (2,2) in different blocks
	// (the boundary moved).
	if p1.ChunkOf(lat.Index(0, 0)) == p1.ChunkOf(lat.Index(2, 2)) {
		t.Error("shift did not move the block boundary")
	}
	// Shifted and unshifted tilings are both valid partitions of all
	// sites.
	if p0.NumChunks() != p1.NumChunks() {
		t.Error("shifted tiling changed the chunk count")
	}
}

func TestBlocksErrors(t *testing.T) {
	lat := lattice.New(6, 6)
	if _, err := Blocks(lat, 4, 3, 0, 0); err == nil {
		t.Error("accepted non-dividing block width")
	}
	if _, err := Blocks(lat, 0, 3, 0, 0); err == nil {
		t.Error("accepted zero block width")
	}
}

func TestModularColoringZGB(t *testing.T) {
	lat := lattice.NewSquare(20)
	m := model.NewZGB(model.DefaultZGBRates())
	p, err := ModularColoring(m, lat, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 5 {
		t.Fatalf("modular search found %d chunks for ZGB, the optimum is 5", p.NumChunks())
	}
	if err := VerifyNonOverlap(p, m); err != nil {
		t.Fatal(err)
	}
}

func TestModularColoringSingleSite(t *testing.T) {
	lat := lattice.NewSquare(6)
	m := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "ads", Rate: 1,
			Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}},
		}},
	}
	p, err := ModularColoring(m, lat, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 1 {
		t.Fatalf("single-site model needs 1 chunk, got %d", p.NumChunks())
	}
}

func TestModularColoringIsing(t *testing.T) {
	// Ising flips read the full von Neumann cross, same conflict set as
	// ZGB: five colours.
	lat := lattice.NewSquare(10)
	m := model.NewIsing(0.5)
	p, err := ModularColoring(m, lat, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNonOverlap(p, m); err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 5 {
		t.Fatalf("Ising colouring uses %d chunks, want 5", p.NumChunks())
	}
}

func TestModularColoringFailsWhenTooConstrained(t *testing.T) {
	lat := lattice.New(7, 7) // prime extents: only k=7 divides
	m := model.NewZGB(model.DefaultZGBRates())
	if _, err := ModularColoring(m, lat, 6); err == nil {
		t.Fatal("expected failure with maxK below any divisor")
	}
}

func TestSplitByDirectionTableII(t *testing.T) {
	lat := lattice.NewSquare(8)
	m := model.NewZGB(model.DefaultZGBRates())
	ts, err := SplitByDirection(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumSubsets() != 2 {
		t.Fatalf("|T| = %d, want 2", ts.NumSubsets())
	}
	names := func(subset []int) map[string]bool {
		out := make(map[string]bool)
		for _, i := range subset {
			out[m.Types[i].Name] = true
		}
		return out
	}
	t0 := names(ts.Subsets[0])
	t1 := names(ts.Subsets[1])
	// Table II: T0 = horizontal orientations + RtCO; T1 = vertical.
	for _, n := range []string{"RtCO+O(0)", "RtCO+O(2)", "RtO2(0)", "RtCO"} {
		if !t0[n] {
			t.Errorf("T0 missing %s (have %v)", n, t0)
		}
	}
	for _, n := range []string{"RtCO+O(1)", "RtCO+O(3)", "RtO2(1)"} {
		if !t1[n] {
			t.Errorf("T1 missing %s (have %v)", n, t1)
		}
	}
	if err := ts.Verify(); err != nil {
		t.Fatalf("Table II split fails verification: %v", err)
	}
	// K_T0 + K_T1 = K (up to summation-order rounding).
	if k := ts.K(); math.Abs(k-m.K()) > 1e-9 {
		t.Fatalf("subset rates sum to %v, want %v", k, m.K())
	}
}

func TestSplitByDirectionRejectsWidePatterns(t *testing.T) {
	lat := lattice.NewSquare(8)
	m := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "tromino", Rate: 1,
			Triples: []model.Triple{
				{Off: lattice.Vec{DX: -1}, Src: 0, Tgt: 1},
				{Off: lattice.Vec{}, Src: 0, Tgt: 1},
				{Off: lattice.Vec{DX: 1}, Src: 0, Tgt: 1},
			},
		}},
	}
	if _, err := SplitByDirection(m, lat); err == nil {
		t.Fatal("tromino accepted as a domino")
	}
}

func TestSplitByDirectionCollapsesHorizontalOnly(t *testing.T) {
	lat := lattice.NewSquare(8)
	m := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "ads", Rate: 1,
			Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}},
		}},
	}
	ts, err := SplitByDirection(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumSubsets() != 1 {
		t.Fatalf("single-site model split into %d subsets", ts.NumSubsets())
	}
}

// Property: every builder yields a true partition (disjoint cover), for
// assorted lattice sizes.
func TestQuickBuildersPartition(t *testing.T) {
	f := func(wSeed, hSeed uint8) bool {
		w := (int(wSeed%4) + 1) * 10 // 10,20,30,40: divisible by 2 and 5
		h := (int(hSeed%4) + 1) * 10
		lat := lattice.New(w, h)
		ps := []*Partition{SingleChunk(lat)}
		if p, err := VonNeumann5(lat); err == nil {
			ps = append(ps, p)
		} else {
			return false
		}
		if p, err := Checkerboard(lat); err == nil {
			ps = append(ps, p)
		} else {
			return false
		}
		for _, p := range ps {
			covered := make([]bool, lat.N())
			total := 0
			for _, chunk := range p.Chunks {
				for _, s := range chunk {
					if covered[s] {
						return false
					}
					covered[s] = true
					total++
				}
			}
			if total != lat.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// Property: VerifyNonOverlap agrees with a brute-force pairwise check on
// small lattices.
func TestQuickVerifyAgainstBruteForce(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(10)
	// Offsets union for ZGB: the von Neumann cross.
	union := lattice.VonNeumann()
	brute := func(p *Partition) bool {
		for _, chunk := range p.Chunks {
			for i := 0; i < len(chunk); i++ {
				for j := i + 1; j < len(chunk); j++ {
					seen := make(map[int]bool)
					for _, o := range union {
						seen[lat.Translate(int(chunk[i]), o)] = true
					}
					for _, o := range union {
						if seen[lat.Translate(int(chunk[j]), o)] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	for _, build := range []func() (*Partition, error){
		func() (*Partition, error) { return VonNeumann5(lat) },
		func() (*Partition, error) { return Checkerboard(lat) },
		func() (*Partition, error) { return Blocks(lat, 5, 5, 0, 0) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		fast := VerifyNonOverlap(p, m) == nil
		if fast != brute(p) {
			t.Fatalf("verifier disagrees with brute force (fast=%v)", fast)
		}
	}
}

// conflictOffsets and mapKeys flatten map-keyed sets; their output
// order feeds the modular-colouring search and the overlap error
// messages, so it must not inherit Go's randomized map iteration.
// Regression test for a surflint:maporder finding.
func TestConflictOffsetsDeterministic(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	first := conflictOffsets(m)
	if len(first) == 0 {
		t.Fatal("ZGB has no conflict offsets?")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.DX > b.DX || (a.DX == b.DX && a.DY >= b.DY) {
			t.Fatalf("conflictOffsets not in (DX, DY) order at %d: %v then %v", i-1, a, b)
		}
	}
	for trial := 0; trial < 8; trial++ {
		again := conflictOffsets(m)
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d offsets vs %d", trial, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("trial %d: order diverged at %d: %v vs %v", trial, i, again[i], first[i])
			}
		}
	}
}
