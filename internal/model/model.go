// Package model implements the reaction formalism of §2 of the paper: a
// finite species domain D, reaction types given as collections of
// (site, source, target) triples relative to the site they are applied
// at, rate constants, and the state-transition semantics (a reaction type
// is enabled at s when its source pattern matches; executing it writes
// the target pattern).
//
// The package also provides the concrete models the paper uses: the
// CO-oxidation / Ziff–Gulari–Barshad model of Table I, the Pt(100)
// surface-reconstruction model used for the oscillation experiments, and
// several auxiliary models (dimer diffusion, Ising spin flips, single-file
// diffusion) referenced in the discussion of CA biases.
package model

import (
	"fmt"
	"math"

	"parsurf/internal/lattice"
)

// Triple is one element of a reaction type's transformation: the site at
// offset Off must hold Src for the reaction to be enabled, and is
// rewritten to Tgt when the reaction executes. This is the (t.site,
// t.src, t.tg) of the paper with the site expressed as a translation-
// invariant offset.
type Triple struct {
	Off lattice.Vec
	Src lattice.Species
	Tgt lattice.Species
}

// ReactionType is an instance-generating rule: applied at a site s it
// denotes the reaction replacing the source pattern around s with the
// target pattern, at rate Rate (probability per unit time).
type ReactionType struct {
	Name    string
	Rate    float64
	Triples []Triple
}

// Neighborhood returns the set of offsets the reaction type touches.
func (rt *ReactionType) Neighborhood() []lattice.Vec {
	out := make([]lattice.Vec, len(rt.Triples))
	for i, tr := range rt.Triples {
		out[i] = tr.Off
	}
	return out
}

// Changes reports whether executing the reaction modifies any site
// (some triple has Src != Tgt).
func (rt *ReactionType) Changes() bool {
	for _, tr := range rt.Triples {
		if tr.Src != tr.Tgt {
			return true
		}
	}
	return false
}

// Enabled reports whether the reaction type's source pattern matches at
// site s in configuration c.
func (rt *ReactionType) Enabled(c *lattice.Config, s int) bool {
	lat := c.Lattice()
	for _, tr := range rt.Triples {
		if c.Get(lat.Translate(s, tr.Off)) != tr.Src {
			return false
		}
	}
	return true
}

// Execute applies the reaction type at site s, writing the target
// pattern. The caller is responsible for having checked Enabled; Execute
// does not re-verify.
func (rt *ReactionType) Execute(c *lattice.Config, s int) {
	lat := c.Lattice()
	for _, tr := range rt.Triples {
		c.Set(lat.Translate(s, tr.Off), tr.Tgt)
	}
}

// Model is a species domain plus a set of reaction types.
type Model struct {
	// Species names the domain D; index is the lattice.Species value.
	// Species[0] is conventionally the vacant site "*".
	Species []string
	Types   []ReactionType
}

// NumSpecies returns |D|.
func (m *Model) NumSpecies() int { return len(m.Species) }

// K returns the sum of the rate constants of all reaction types, the K
// of the paper's RSM and NDCA algorithms.
func (m *Model) K() float64 {
	k := 0.0
	for i := range m.Types {
		k += m.Types[i].Rate
	}
	return k
}

// CumulativeRates returns the prefix sums of the reaction-type rates,
// used to select a type with probability k_i/K.
func (m *Model) CumulativeRates() []float64 {
	cum := make([]float64, len(m.Types))
	acc := 0.0
	for i := range m.Types {
		acc += m.Types[i].Rate
		cum[i] = acc
	}
	return cum
}

// Validate checks structural sanity of the model: a non-empty domain,
// species indices within the domain, positive finite rates, non-empty
// patterns, each neighbourhood containing the origin (property 1 of the
// paper: s ∈ Nb(s)), and no duplicate offsets within one pattern.
func (m *Model) Validate() error {
	if len(m.Species) == 0 {
		return fmt.Errorf("model: empty species domain")
	}
	if len(m.Species) > 256 {
		return fmt.Errorf("model: more than 256 species")
	}
	if len(m.Types) == 0 {
		return fmt.Errorf("model: no reaction types")
	}
	for i := range m.Types {
		rt := &m.Types[i]
		if rt.Rate <= 0 || math.IsInf(rt.Rate, 0) || math.IsNaN(rt.Rate) {
			return fmt.Errorf("model: reaction %q has invalid rate %v", rt.Name, rt.Rate)
		}
		if len(rt.Triples) == 0 {
			return fmt.Errorf("model: reaction %q has an empty pattern", rt.Name)
		}
		seen := make(map[lattice.Vec]bool, len(rt.Triples))
		origin := false
		for _, tr := range rt.Triples {
			if int(tr.Src) >= len(m.Species) || int(tr.Tgt) >= len(m.Species) {
				return fmt.Errorf("model: reaction %q uses species outside the domain", rt.Name)
			}
			if seen[tr.Off] {
				return fmt.Errorf("model: reaction %q repeats offset %v", rt.Name, tr.Off)
			}
			seen[tr.Off] = true
			if tr.Off == (lattice.Vec{}) {
				origin = true
			}
		}
		if !origin {
			return fmt.Errorf("model: reaction %q neighbourhood does not contain the origin", rt.Name)
		}
	}
	return nil
}

// MaxPatternRadius returns the largest Chebyshev radius of any offset in
// any reaction type, a bound partition builders use.
func (m *Model) MaxPatternRadius() int {
	r := 0
	for i := range m.Types {
		for _, tr := range m.Types[i].Triples {
			if d := abs(tr.Off.DX); d > r {
				r = d
			}
			if d := abs(tr.Off.DY); d > r {
				r = d
			}
		}
	}
	return r
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// SpeciesByName returns the species index for a name, or an error.
func (m *Model) SpeciesByName(name string) (lattice.Species, error) {
	for i, n := range m.Species {
		if n == name {
			return lattice.Species(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown species %q", name)
}

// TypeByName returns the index of the reaction type with the given name,
// or -1 if absent.
func (m *Model) TypeByName(name string) int {
	for i := range m.Types {
		if m.Types[i].Name == name {
			return i
		}
	}
	return -1
}

// Arrhenius returns the rate constant ν·exp(−E/(kB·T)) of the paper's §2.
// E is the activation energy in joules, temp in kelvin, nu the
// pre-exponential factor.
func Arrhenius(nu, activationEnergy, temp float64) float64 {
	const kB = 1.380649e-23 // J/K
	return nu * math.Exp(-activationEnergy/(kB*temp))
}
