package model

import "parsurf/internal/lattice"

// Species indices of the CO-oxidation (Ziff–Gulari–Barshad) model,
// D = {*, CO, O} as in §2 of the paper.
const (
	ZGBEmpty lattice.Species = 0
	ZGBCO    lattice.Species = 1
	ZGBO     lattice.Species = 2
)

// ZGBRates are the three rate constants of the paper's example model:
// CO adsorption, dissociative O2 adsorption and CO2 formation/desorption.
type ZGBRates struct {
	KCO  float64
	KO2  float64
	KCO2 float64
}

// DefaultZGBRates places the model in the reactive steady state of the
// finite-rate ZGB phase diagram (measured: θ_CO ≈ 0.06, θ_O ≈ 0.51,
// θ_* ≈ 0.43 under exact DMC on a 60×60 lattice).
func DefaultZGBRates() ZGBRates {
	return ZGBRates{KCO: 0.55, KO2: 0.275, KCO2: 10}
}

// NewZGB builds the seven reaction types of Table I of the paper:
//
//   - RtCO: one CO adsorption type,
//   - RtO2: two dissociative O2 adsorption orientations,
//   - RtCO+O: four CO2 formation/desorption orientations.
//
// Note: Table I of the paper prints the fourth RtCO+O orientation as
// {(s,CO,*),(s+(0,-1),CO,*)}; the second triple's source is a typo for O
// (the reaction consumes one CO and one O in every orientation, as the
// text and Fig. 5 state). We implement the corrected pattern.
//
// Each O2 orientation carries the full kO2 and each CO+O orientation the
// full kCO2, matching the paper's convention that every orientation is a
// separate reaction type with rate constant k_i.
func NewZGB(r ZGBRates) *Model {
	axes := lattice.Axes4()
	m := &Model{Species: []string{"*", "CO", "O"}}

	// RtCO: CO adsorbs on a single vacant site.
	m.Types = append(m.Types, ReactionType{
		Name: "RtCO",
		Rate: r.KCO,
		Triples: []Triple{
			{Off: lattice.Vec{}, Src: ZGBEmpty, Tgt: ZGBCO},
		},
	})

	// RtO2(0), RtO2(1): O2 dissociates onto two adjacent vacant sites.
	// Two orientations suffice (east and north); the west/south pairs
	// are the same reactions applied at the other site.
	for j, d := range axes[:2] {
		m.Types = append(m.Types, ReactionType{
			Name: "RtO2(" + itoa(j) + ")",
			Rate: r.KO2,
			Triples: []Triple{
				{Off: lattice.Vec{}, Src: ZGBEmpty, Tgt: ZGBO},
				{Off: d, Src: ZGBEmpty, Tgt: ZGBO},
			},
		})
	}

	// RtCO+O(0..3): adjacent CO and O form CO2 and desorb, leaving two
	// vacancies. Four orientations of the O relative to the CO.
	for j, d := range axes {
		m.Types = append(m.Types, ReactionType{
			Name: "RtCO+O(" + itoa(j) + ")",
			Rate: r.KCO2,
			Triples: []Triple{
				{Off: lattice.Vec{}, Src: ZGBCO, Tgt: ZGBEmpty},
				{Off: d, Src: ZGBO, Tgt: ZGBEmpty},
			},
		})
	}
	return m
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
