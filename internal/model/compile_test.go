package model

import (
	"math"
	"testing"
	"testing/quick"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

func TestCompileZGB(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(16, 16)
	cm, err := Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumTypes() != 7 {
		t.Fatalf("compiled %d types", cm.NumTypes())
	}
	if math.Abs(cm.K-m.K()) > 1e-12 {
		t.Fatal("K mismatch")
	}
}

func TestCompileRejectsInvalidModel(t *testing.T) {
	m := &Model{Species: []string{"*"}}
	if _, err := Compile(m, lattice.New(4, 4)); err == nil {
		t.Fatal("compiled an invalid model")
	}
}

func TestCompileRejectsSelfCollision(t *testing.T) {
	// A two-site horizontal pattern on a width-1 lattice wraps onto
	// itself.
	m := NewSingleFile(1)
	if _, err := Compile(m, lattice.New(1, 1)); err == nil {
		t.Fatal("self-colliding pattern accepted")
	}
	// Width 2 is fine for offsets ±1.
	if _, err := Compile(m, lattice.New(2, 1)); err != nil {
		t.Fatalf("width-2 ring rejected: %v", err)
	}
}

// The compiled Enabled/Execute must agree with the interpreted
// ReactionType methods on random configurations.
func TestCompiledMatchesInterpreted(t *testing.T) {
	m := NewPtCO(DefaultPtCORates())
	lat := lattice.New(12, 10)
	cm := MustCompile(m, lat)
	src := rng.New(99)
	c := lattice.NewConfig(lat)
	c.Randomize([]float64{1, 1, 1, 1, 1, 1}, src.Float64)
	for trial := 0; trial < 5000; trial++ {
		s := src.Intn(lat.N())
		rt := src.Intn(cm.NumTypes())
		want := m.Types[rt].Enabled(c, s)
		got := cm.Enabled(c.Cells(), rt, s)
		if got != want {
			t.Fatalf("Enabled mismatch at rt=%d s=%d: compiled %v interpreted %v", rt, s, got, want)
		}
		if got {
			d := c.Clone()
			m.Types[rt].Execute(d, s)
			cm.Execute(c.Cells(), rt, s)
			if !c.Equal(d) {
				t.Fatalf("Execute mismatch at rt=%d s=%d", rt, s)
			}
		}
	}
}

func TestTryExecute(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(4, 4)
	cm := MustCompile(m, lat)
	c := lattice.NewConfig(lat)
	co := m.TypeByName("RtCO")
	if !cm.TryExecute(c.Cells(), co, 0) {
		t.Fatal("TryExecute failed on enabled reaction")
	}
	if cm.TryExecute(c.Cells(), co, 0) {
		t.Fatal("TryExecute fired on disabled reaction")
	}
	if c.Get(0) != ZGBCO {
		t.Fatal("TryExecute did not write")
	}
}

func TestPickTypeDistribution(t *testing.T) {
	m := NewZGB(ZGBRates{KCO: 1, KO2: 2, KCO2: 3})
	cm := MustCompile(m, lattice.New(4, 4))
	src := rng.New(3)
	const draws = 200000
	counts := make([]int, cm.NumTypes())
	for i := 0; i < draws; i++ {
		counts[cm.PickType(src.Float64())]++
	}
	for i, c := range counts {
		want := m.Types[i].Rate / cm.K * draws
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("type %d picked %d times, want ~%v", i, c, want)
		}
	}
}

func TestPickTypeEdges(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	cm := MustCompile(m, lattice.New(4, 4))
	if got := cm.PickType(0); got != 0 {
		t.Fatalf("PickType(0) = %d", got)
	}
	if got := cm.PickType(0.9999999999); got != cm.NumTypes()-1 {
		t.Fatalf("PickType(~1) = %d", got)
	}
}

func TestChangedSites(t *testing.T) {
	m := NewIsing(0.5)
	lat := lattice.New(6, 6)
	cm := MustCompile(m, lat)
	// Ising flips change only the centre site even though the pattern
	// reads five sites.
	for rt := 0; rt < cm.NumTypes(); rt++ {
		changed := cm.ChangedSites(nil, rt, 7)
		if len(changed) != 1 || changed[0] != 7 {
			t.Fatalf("Ising type %d changes %v, want [7]", rt, changed)
		}
		nb := cm.NbSites(nil, rt, 7)
		if len(nb) != 5 {
			t.Fatalf("Ising type %d neighbourhood %v", rt, nb)
		}
	}
}

// Dependencies must enumerate exactly the (type, site) pairs whose
// pattern covers the changed site.
func TestDependenciesComplete(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(8, 8)
	cm := MustCompile(m, lat)
	z := lat.Index(4, 4)
	got := make(map[[2]int]bool)
	cm.Dependencies(z, func(rt, s int) { got[[2]int{rt, s}] = true })
	// Brute force: all (rt, s) with z in the resolved pattern.
	want := make(map[[2]int]bool)
	for rt := range cm.Types {
		for s := 0; s < lat.N(); s++ {
			for _, site := range cm.NbSites(nil, rt, s) {
				if site == z {
					want[[2]int{rt, s}] = true
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Dependencies visited %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing dependency %v", k)
		}
	}
}

// Property: compiled translation tables implement lattice.Translate.
func TestQuickTables(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(11, 5)
	cm := MustCompile(m, lat)
	f := func(s16 uint16, which, tri uint8) bool {
		s := int(s16) % lat.N()
		rt := int(which) % len(m.Types)
		j := int(tri) % len(m.Types[rt].Triples)
		off := m.Types[rt].Triples[j].Off
		return int(cm.Types[rt].Triples[j].Table[s]) == lat.Translate(s, off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompiledTrial(b *testing.B) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(256, 256)
	cm := MustCompile(m, lat)
	c := lattice.NewConfig(lat)
	src := rng.New(1)
	c.Randomize([]float64{1, 1, 1}, src.Float64)
	cells := c.Cells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := src.Intn(lat.N())
		rt := cm.PickType(src.Float64())
		cm.TryExecute(cells, rt, s)
	}
}

// DepPairs (the CSR fast path) must enumerate, for every changed site,
// exactly the pairs the closure-based enumeration historically produced
// and in the same order — types ascending, triples ascending, each
// application site the changed site translated by the negated offset.
// The reference here is computed independently from the model offsets
// (not through Dependencies, which is itself a DepPairs wrapper), so
// the test pins the order against a reordered CSR build.
func TestDepPairsMatchesDependencies(t *testing.T) {
	m := NewPtCO(DefaultPtCORates())
	lat := lattice.New(10, 12)
	cm := MustCompile(m, lat)
	for z := 0; z < lat.N(); z++ {
		var want [][2]int
		for r := range m.Types {
			for _, tr := range m.Types[r].Triples {
				want = append(want, [2]int{r, lat.Translate(z, tr.Off.Neg())})
			}
		}
		rts, sites := cm.DepPairs(z)
		if len(rts) != len(want) || len(sites) != len(want) {
			t.Fatalf("z=%d: DepPairs %d pairs, want %d", z, len(rts), len(want))
		}
		for j := range rts {
			if int(rts[j]) != want[j][0] || int(sites[j]) != want[j][1] {
				t.Fatalf("z=%d pair %d: CSR (%d,%d) != reference %v",
					z, j, rts[j], sites[j], want[j])
			}
		}
	}
}

// The CSR rows must all have the same width (one entry per triple of
// every type) and cover every site.
func TestDepCSRShape(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(8, 8)
	cm := MustCompile(m, lat)
	want := 0
	for i := range m.Types {
		want += len(m.Types[i].Triples)
	}
	for z := 0; z < lat.N(); z++ {
		rts, _ := cm.DepPairs(z)
		if len(rts) != want {
			t.Fatalf("site %d has %d dependency pairs, want %d", z, len(rts), want)
		}
	}
}

// PickType must reject models with no positive total rate instead of
// silently returning the last type.
func TestPickTypeRejectsZeroK(t *testing.T) {
	cm := &Compiled{Cum: []float64{0, 0}, K: 0, Types: make([]CompiledType, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("PickType with K=0 did not panic")
		}
	}()
	cm.PickType(0.5)
}

// A target landing at or beyond the cumulative total (floating-point
// rounding of u ≈ 1, or trailing zero-rate types) must resolve to the
// last type with positive rate.
func TestPickTypeBoundaryFallsToPositiveRate(t *testing.T) {
	cm := &Compiled{
		Cum:   []float64{1, 3, 3}, // type 2 has zero rate
		K:     3,
		Types: []CompiledType{{Rate: 1}, {Rate: 2}, {Rate: 0}},
	}
	// u*K == K exactly: must not land on the zero-rate tail type.
	if got := cm.PickType(1.0); got != 1 {
		t.Fatalf("PickType(1.0) = %d, want 1 (last positive-rate type)", got)
	}
	// An exact interior boundary selects the next type (intervals are
	// half-open [Cum[i-1], Cum[i])).
	if got := cm.PickType(1.0 / 3.0); got != 1 {
		t.Fatalf("PickType(1/3) = %d, want 1", got)
	}
}
