package model

import "parsurf/internal/lattice"

// Species of the Pt(100) surface-reconstruction model (§6 of the paper,
// after Kuzovkov et al. and Kortlüke et al.). Every site carries a
// surface phase — hexagonal (hex) or reconstructed square (1×1, "sq") —
// and an adsorbate. The paper does not reproduce Kuzovkov's full rate
// table; DESIGN.md §5 documents this reformulation in the paper's own
// reaction-type formalism.
const (
	PtHexEmpty lattice.Species = 0 // hex phase, vacant
	PtHexCO    lattice.Species = 1 // hex phase, CO adsorbed
	PtHexO     lattice.Species = 2 // hex phase, O adsorbed (unused by the dynamics, kept for completeness)
	PtSqEmpty  lattice.Species = 3 // square phase, vacant
	PtSqCO     lattice.Species = 4 // square phase, CO adsorbed
	PtSqO      lattice.Species = 5 // square phase, O adsorbed
)

// PtCORates parameterises the oscillation model.
//
// Mechanism (each line a family of reaction types):
//
//   - CO adsorbs on any vacant site at rate YCO.
//   - O2 adsorbs dissociatively on pairs of vacant *square* sites only,
//     at rate YO2 per orientation (the hex reconstruction of Pt(100)
//     does not dissociate O2).
//   - CO desorbs at rate KDes.
//   - CO diffuses to vacant neighbour sites at rate KDiff per direction
//     (fast diffusion synchronises the lattice, as the paper notes for
//     Fig. 10).
//   - Adjacent CO and O react to CO2 and leave two vacancies, rate KRx.
//   - Phase fronts: a CO-covered hex site adjacent to a square site
//     transforms to square at rate VLift (CO lifts the reconstruction,
//     islands of the 1×1 phase grow); a vacant square site adjacent to
//     a hex site relaxes to hex at rate VRelax (the reconstruction
//     re-forms from phase boundaries).
//   - Nucleation: a CO-covered hex site anywhere converts at the small
//     rate VNucLift (seeds 1×1 islands); a vacant square site anywhere
//     relaxes at the small rate VNucRelax.
//
// The front/nucleation split gives the phase dynamics the hysteresis
// that produces relaxation oscillations: a mostly-hex CO-covered surface
// converts to 1×1, oxygen then adsorbs and burns off the CO, the emptied
// 1×1 relaxes back to hex from its boundaries, and CO accumulates again.
type PtCORates struct {
	YCO       float64
	YO2       float64
	KDes      float64
	KDiff     float64
	KRx       float64
	VLift     float64
	VRelax    float64
	VNucLift  float64
	VNucRelax float64
}

// DefaultPtCORates places the model in the oscillatory regime used for
// the paper's Figs. 8–10 comparisons (tuned empirically; see
// EXPERIMENTS.md for the resulting period and amplitude under RSM).
func DefaultPtCORates() PtCORates {
	return PtCORates{
		YCO:       1.0,
		YO2:       1.0,
		KDes:      0.1,
		KDiff:     15.0,
		KRx:       50.0,
		VLift:     1.0,
		VRelax:    4.0,
		VNucLift:  0.01,
		VNucRelax: 0.001,
	}
}

// NewPtCO builds the Pt(100) CO-oxidation model with surface
// reconstruction.
func NewPtCO(r PtCORates) *Model {
	axes := lattice.Axes4()
	m := &Model{Species: []string{"h*", "hCO", "hO", "s*", "sCO", "sO"}}

	add := func(name string, rate float64, triples ...Triple) {
		if rate <= 0 {
			return
		}
		m.Types = append(m.Types, ReactionType{Name: name, Rate: rate, Triples: triples})
	}

	// CO adsorption on both phases.
	add("COads(hex)", r.YCO, Triple{Off: lattice.Vec{}, Src: PtHexEmpty, Tgt: PtHexCO})
	add("COads(sq)", r.YCO, Triple{Off: lattice.Vec{}, Src: PtSqEmpty, Tgt: PtSqCO})

	// O2 dissociative adsorption on square-phase pairs, two orientations.
	for j, d := range axes[:2] {
		add("O2ads("+itoa(j)+")", r.YO2,
			Triple{Off: lattice.Vec{}, Src: PtSqEmpty, Tgt: PtSqO},
			Triple{Off: d, Src: PtSqEmpty, Tgt: PtSqO},
		)
	}

	// CO desorption from both phases.
	add("COdes(hex)", r.KDes, Triple{Off: lattice.Vec{}, Src: PtHexCO, Tgt: PtHexEmpty})
	add("COdes(sq)", r.KDes, Triple{Off: lattice.Vec{}, Src: PtSqCO, Tgt: PtSqEmpty})

	// CO diffusion: a CO hops to a vacant neighbour. The adsorbate
	// moves, the surface phases of both sites stay what they are.
	srcPhases := []struct{ co, emptied lattice.Species }{
		{PtHexCO, PtHexEmpty},
		{PtSqCO, PtSqEmpty},
	}
	dstPhases := []struct{ empty, filled lattice.Species }{
		{PtHexEmpty, PtHexCO},
		{PtSqEmpty, PtSqCO},
	}
	for j, d := range axes {
		for pi, p := range srcPhases {
			for qi, q := range dstPhases {
				add("COdiff("+itoa(j)+","+itoa(pi)+itoa(qi)+")", r.KDiff,
					Triple{Off: lattice.Vec{}, Src: p.co, Tgt: p.emptied},
					Triple{Off: d, Src: q.empty, Tgt: q.filled},
				)
			}
		}
	}

	// CO + O → CO2: the CO (either phase) reacts with an O on an
	// adjacent square site; both sites are vacated, phases preserved.
	for j, d := range axes {
		add("rx(hex,"+itoa(j)+")", r.KRx,
			Triple{Off: lattice.Vec{}, Src: PtHexCO, Tgt: PtHexEmpty},
			Triple{Off: d, Src: PtSqO, Tgt: PtSqEmpty},
		)
		add("rx(sq,"+itoa(j)+")", r.KRx,
			Triple{Off: lattice.Vec{}, Src: PtSqCO, Tgt: PtSqEmpty},
			Triple{Off: d, Src: PtSqO, Tgt: PtSqEmpty},
		)
	}

	// Lifting front: a CO-covered hex site next to any square-phase
	// site converts to square.
	sqStates := []lattice.Species{PtSqEmpty, PtSqCO, PtSqO}
	for j, d := range axes {
		for si, sq := range sqStates {
			add("lift(front,"+itoa(j)+","+itoa(si)+")", r.VLift,
				Triple{Off: lattice.Vec{}, Src: PtHexCO, Tgt: PtSqCO},
				Triple{Off: d, Src: sq, Tgt: sq},
			)
		}
	}
	// Lifting nucleation: a CO-covered hex site converts anywhere.
	add("lift(nuc)", r.VNucLift, Triple{Off: lattice.Vec{}, Src: PtHexCO, Tgt: PtSqCO})

	// Relaxation front: a vacant square site next to any hex-phase site
	// reverts to hex.
	hexStates := []lattice.Species{PtHexEmpty, PtHexCO}
	for j, d := range axes {
		for hi, hx := range hexStates {
			add("relax(front,"+itoa(j)+","+itoa(hi)+")", r.VRelax,
				Triple{Off: lattice.Vec{}, Src: PtSqEmpty, Tgt: PtHexEmpty},
				Triple{Off: d, Src: hx, Tgt: hx},
			)
		}
	}
	// Relaxation nucleation: a vacant square site reverts anywhere.
	add("relax(nuc)", r.VNucRelax, Triple{Off: lattice.Vec{}, Src: PtSqEmpty, Tgt: PtHexEmpty})

	return m
}

// PtCoverages extracts the CO, O and square-phase coverages from a
// configuration of the Pt(100) model, the observables of Figs. 8–10.
func PtCoverages(c *lattice.Config) (co, o, sq float64) {
	n := float64(c.Lattice().N())
	counts := c.CountAll(6)
	co = float64(counts[PtHexCO]+counts[PtSqCO]) / n
	o = float64(counts[PtHexO]+counts[PtSqO]) / n
	sq = float64(counts[PtSqEmpty]+counts[PtSqCO]+counts[PtSqO]) / n
	return
}
