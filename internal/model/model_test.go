package model

import (
	"math"
	"testing"
	"testing/quick"

	"parsurf/internal/lattice"
)

func TestZGBTableI(t *testing.T) {
	m := NewZGB(ZGBRates{KCO: 1, KO2: 2, KCO2: 3})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Types); got != 7 {
		t.Fatalf("ZGB has %d reaction types, Table I has 7", got)
	}
	// One CO adsorption, two O2 orientations, four CO+O orientations.
	var nCO, nO2, nRx int
	for i := range m.Types {
		rt := &m.Types[i]
		switch {
		case rt.Name == "RtCO":
			nCO++
			if len(rt.Triples) != 1 || rt.Rate != 1 {
				t.Errorf("RtCO malformed: %+v", rt)
			}
		case len(rt.Name) >= 4 && rt.Name[:4] == "RtO2":
			nO2++
			if len(rt.Triples) != 2 || rt.Rate != 2 {
				t.Errorf("RtO2 malformed: %+v", rt)
			}
			for _, tr := range rt.Triples {
				if tr.Src != ZGBEmpty || tr.Tgt != ZGBO {
					t.Errorf("RtO2 triple wrong: %+v", tr)
				}
			}
		default:
			nRx++
			if len(rt.Triples) != 2 || rt.Rate != 3 {
				t.Errorf("RtCO+O malformed: %+v", rt)
			}
			// Corrected Table I: every orientation consumes one CO and
			// one O.
			var srcs []lattice.Species
			for _, tr := range rt.Triples {
				srcs = append(srcs, tr.Src)
				if tr.Tgt != ZGBEmpty {
					t.Errorf("RtCO+O target not vacant: %+v", tr)
				}
			}
			if !(srcs[0] == ZGBCO && srcs[1] == ZGBO) {
				t.Errorf("RtCO+O sources = %v, want [CO O]", srcs)
			}
		}
	}
	if nCO != 1 || nO2 != 2 || nRx != 4 {
		t.Fatalf("type counts CO=%d O2=%d rx=%d, want 1/2/4", nCO, nO2, nRx)
	}
	if k := m.K(); math.Abs(k-(1+2*2+4*3)) > 1e-12 {
		t.Fatalf("K = %v, want 17", k)
	}
}

func TestZGBOrientationsDistinct(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	offs := make(map[lattice.Vec]int)
	for i := range m.Types {
		if len(m.Types[i].Triples) == 2 && m.Types[i].Triples[0].Src == ZGBCO {
			offs[m.Types[i].Triples[1].Off]++
		}
	}
	if len(offs) != 4 {
		t.Fatalf("CO+O orientations cover %d directions, want 4: %v", len(offs), offs)
	}
}

func TestEnabledExecute(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(8, 8)
	c := lattice.NewConfig(lat)
	co := m.TypeByName("RtCO")
	if co < 0 {
		t.Fatal("RtCO missing")
	}
	s := lat.Index(3, 3)
	if !m.Types[co].Enabled(c, s) {
		t.Fatal("CO adsorption should be enabled on empty site")
	}
	m.Types[co].Execute(c, s)
	if c.Get(s) != ZGBCO {
		t.Fatal("execution did not adsorb CO")
	}
	if m.Types[co].Enabled(c, s) {
		t.Fatal("CO adsorption still enabled on occupied site")
	}

	// Set up an O east of the CO and fire the reaction.
	east := lat.Translate(s, lattice.Vec{DX: 1})
	c.Set(east, ZGBO)
	rx := m.TypeByName("RtCO+O(0)")
	if !m.Types[rx].Enabled(c, s) {
		t.Fatal("CO+O east orientation should be enabled")
	}
	m.Types[rx].Execute(c, s)
	if c.Get(s) != ZGBEmpty || c.Get(east) != ZGBEmpty {
		t.Fatal("CO+O execution did not vacate both sites")
	}
}

func TestValidateRejects(t *testing.T) {
	good := Triple{Off: lattice.Vec{}, Src: 0, Tgt: 1}
	cases := []struct {
		name string
		m    *Model
	}{
		{"no species", &Model{Types: []ReactionType{{Name: "x", Rate: 1, Triples: []Triple{good}}}}},
		{"no types", &Model{Species: []string{"*"}}},
		{"zero rate", &Model{Species: []string{"*", "A"}, Types: []ReactionType{{Name: "x", Rate: 0, Triples: []Triple{good}}}}},
		{"nan rate", &Model{Species: []string{"*", "A"}, Types: []ReactionType{{Name: "x", Rate: math.NaN(), Triples: []Triple{good}}}}},
		{"empty pattern", &Model{Species: []string{"*", "A"}, Types: []ReactionType{{Name: "x", Rate: 1}}}},
		{"species out of range", &Model{Species: []string{"*"}, Types: []ReactionType{{Name: "x", Rate: 1, Triples: []Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 5}}}}}},
		{"no origin", &Model{Species: []string{"*", "A"}, Types: []ReactionType{{Name: "x", Rate: 1, Triples: []Triple{{Off: lattice.Vec{DX: 1}, Src: 0, Tgt: 1}}}}}},
		{"dup offset", &Model{Species: []string{"*", "A"}, Types: []ReactionType{{Name: "x", Rate: 1, Triples: []Triple{good, {Off: lattice.Vec{}, Src: 0, Tgt: 0}}}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid model", tc.name)
		}
	}
}

func TestValidateAcceptsModels(t *testing.T) {
	models := map[string]*Model{
		"zgb":        NewZGB(DefaultZGBRates()),
		"ptco":       NewPtCO(DefaultPtCORates()),
		"dimer":      NewDimerDiffusion(1),
		"singlefile": NewSingleFile(1),
		"ising":      NewIsing(0.4),
		"ab":         NewAB(1, 1, 5),
	}
	for name, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCumulativeRates(t *testing.T) {
	m := NewZGB(ZGBRates{KCO: 1, KO2: 2, KCO2: 3})
	cum := m.CumulativeRates()
	if len(cum) != 7 {
		t.Fatalf("cum length %d", len(cum))
	}
	if math.Abs(cum[len(cum)-1]-m.K()) > 1e-12 {
		t.Fatalf("last cumulative %v != K %v", cum[len(cum)-1], m.K())
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Fatal("cumulative rates not increasing")
		}
	}
}

func TestMaxPatternRadius(t *testing.T) {
	if r := NewZGB(DefaultZGBRates()).MaxPatternRadius(); r != 1 {
		t.Errorf("ZGB radius %d, want 1", r)
	}
	if r := NewIsing(1).MaxPatternRadius(); r != 1 {
		t.Errorf("Ising radius %d, want 1", r)
	}
}

func TestSpeciesByName(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	sp, err := m.SpeciesByName("CO")
	if err != nil || sp != ZGBCO {
		t.Fatalf("SpeciesByName(CO) = %v, %v", sp, err)
	}
	if _, err := m.SpeciesByName("Xe"); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestArrhenius(t *testing.T) {
	// At infinite temperature the rate is the prefactor.
	if k := Arrhenius(5, 1e-20, 1e12); math.Abs(k-5) > 0.01 {
		t.Fatalf("Arrhenius high-T limit: %v", k)
	}
	// Higher activation energy means lower rate.
	k1 := Arrhenius(1, 0.5*1.602e-19, 300)
	k2 := Arrhenius(1, 1.0*1.602e-19, 300)
	if k2 >= k1 {
		t.Fatalf("Arrhenius not decreasing in E: %v >= %v", k2, k1)
	}
}

func TestIsingDetailedBalanceRates(t *testing.T) {
	m := NewIsing(0.5)
	if len(m.Types) != 32 {
		t.Fatalf("Ising has %d types, want 32", len(m.Types))
	}
	for i := range m.Types {
		r := m.Types[i].Rate
		if r <= 0 || r > 1 {
			t.Fatalf("Metropolis rate out of (0,1]: %v", r)
		}
	}
	// Flipping an up spin with all up neighbours must be the rarest
	// move; with all down neighbours it must be certain.
	allUp := m.TypeByName("flip(c=1,nb=15)")
	allDn := m.TypeByName("flip(c=1,nb=0)")
	if m.Types[allDn].Rate != 1 {
		t.Fatalf("favourable flip rate %v, want 1", m.Types[allDn].Rate)
	}
	want := math.Exp(-2 * 0.5 * 4)
	if math.Abs(m.Types[allUp].Rate-want) > 1e-12 {
		t.Fatalf("unfavourable flip rate %v, want %v", m.Types[allUp].Rate, want)
	}
}

func TestPtCOModelStructure(t *testing.T) {
	m := NewPtCO(DefaultPtCORates())
	if len(m.Species) != 6 {
		t.Fatalf("PtCO species %d, want 6", len(m.Species))
	}
	// O2 must only adsorb on square sites.
	for i := range m.Types {
		rt := &m.Types[i]
		if len(rt.Name) >= 5 && rt.Name[:5] == "O2ads" {
			for _, tr := range rt.Triples {
				if tr.Src != PtSqEmpty || tr.Tgt != PtSqO {
					t.Errorf("O2 adsorbs off the square phase: %+v", tr)
				}
			}
		}
	}
	// Zeroing the front rates must drop those type families.
	r := DefaultPtCORates()
	r.VLift = 0
	r.VRelax = 0
	m2 := NewPtCO(r)
	if len(m2.Types) >= len(m.Types) {
		t.Error("zero front rates did not reduce the type count")
	}
}

func TestPtCoverages(t *testing.T) {
	lat := lattice.New(2, 2)
	c := lattice.NewConfig(lat)
	c.Set(0, PtSqCO)
	c.Set(1, PtSqO)
	c.Set(2, PtHexCO)
	c.Set(3, PtHexEmpty)
	co, o, sq := PtCoverages(c)
	if co != 0.5 || o != 0.25 || sq != 0.5 {
		t.Fatalf("coverages co=%v o=%v sq=%v", co, o, sq)
	}
}

// Property: executing then "un-executing" (swapping src/tgt) restores the
// configuration, for any site on any lattice — reaction execution is a
// pure pattern write.
func TestQuickExecuteInvertible(t *testing.T) {
	m := NewZGB(DefaultZGBRates())
	lat := lattice.New(9, 7)
	f := func(s16 uint16, which uint8) bool {
		s := int(s16) % lat.N()
		rt := &m.Types[int(which)%len(m.Types)]
		c := lattice.NewConfig(lat)
		// Prepare the source pattern so the reaction is enabled.
		for _, tr := range rt.Triples {
			c.Set(lat.Translate(s, tr.Off), tr.Src)
		}
		before := c.Clone()
		rt.Execute(c, s)
		// Invert.
		for _, tr := range rt.Triples {
			c.Set(lat.Translate(s, tr.Off), tr.Src)
		}
		_ = tr0(rt)
		return c.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func tr0(rt *ReactionType) Triple { return rt.Triples[0] }

// Property: Enabled is exactly "all source triples match".
func TestQuickEnabledMeaning(t *testing.T) {
	m := NewPtCO(DefaultPtCORates())
	lat := lattice.New(6, 6)
	f := func(s16 uint16, which uint8, fill uint8) bool {
		s := int(s16) % lat.N()
		rt := &m.Types[int(which)%len(m.Types)]
		c := lattice.NewConfig(lat)
		c.Fill(lattice.Species(fill % 6))
		want := true
		for _, tr := range rt.Triples {
			if c.Get(lat.Translate(s, tr.Off)) != tr.Src {
				want = false
			}
		}
		return rt.Enabled(c, s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
