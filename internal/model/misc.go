package model

import (
	"math"

	"parsurf/internal/lattice"
)

// NewDimerDiffusion builds the two-species diffusion model of the
// paper's Fig. 2: a particle hops to a vacant von Neumann neighbour at
// rate hop per direction. This is the canonical model exhibiting CA
// conflicts (two particles competing for the same vacancy).
func NewDimerDiffusion(hop float64) *Model {
	m := &Model{Species: []string{"*", "A"}}
	for j, d := range lattice.Axes4() {
		m.Types = append(m.Types, ReactionType{
			Name: "hop(" + itoa(j) + ")",
			Rate: hop,
			Triples: []Triple{
				{Off: lattice.Vec{}, Src: 1, Tgt: 0},
				{Off: d, Src: 0, Tgt: 1},
			},
		})
	}
	return m
}

// NewSingleFile builds a one-dimensional single-file diffusion model
// (hard-core particles on a ring, hops left/right at rate hop). The
// paper cites single-file systems among those for which plain NDCA
// degenerates. Use with a lattice of height 1.
func NewSingleFile(hop float64) *Model {
	m := &Model{Species: []string{"*", "A"}}
	for j, d := range []lattice.Vec{{DX: 1}, {DX: -1}} {
		m.Types = append(m.Types, ReactionType{
			Name: "hop1d(" + itoa(j) + ")",
			Rate: hop,
			Triples: []Triple{
				{Off: lattice.Vec{}, Src: 1, Tgt: 0},
				{Off: d, Src: 0, Tgt: 1},
			},
		})
	}
	return m
}

// NewIsing builds a Metropolis spin-flip Ising model on the square
// lattice with coupling J (in units of kB·T) and inverse temperature
// folded into J. Species 0 is spin down, species 1 spin up.
//
// The reaction-type formalism has fixed source patterns, so the
// neighbour-dependent Metropolis rate is expressed by enumerating all
// 2^4 neighbour configurations for each centre spin: 32 reaction types
// with rate min(1, exp(−ΔE)), ΔE = 2·J·s·Σ_nb s_nb (spins ±1). The paper
// cites Ising dynamics among the systems where plain NDCA gives
// degenerate results; tests use this model to demonstrate the bias.
func NewIsing(betaJ float64) *Model {
	axes := lattice.Axes4()
	m := &Model{Species: []string{"dn", "up"}}
	for centre := 0; centre < 2; centre++ {
		for mask := 0; mask < 16; mask++ {
			spinSum := 0 // Σ neighbour spins in ±1
			triples := make([]Triple, 0, 5)
			cs := lattice.Species(centre)
			var ct lattice.Species = 1 - cs
			triples = append(triples, Triple{Off: lattice.Vec{}, Src: cs, Tgt: ct})
			for b, d := range axes {
				nb := (mask >> b) & 1
				if nb == 1 {
					spinSum++
				} else {
					spinSum--
				}
				triples = append(triples, Triple{
					Off: d,
					Src: lattice.Species(nb),
					Tgt: lattice.Species(nb),
				})
			}
			s := 2*centre - 1 // centre spin in ±1
			dE := 2 * betaJ * float64(s) * float64(spinSum)
			rate := 1.0
			if dE > 0 {
				rate = math.Exp(-dE)
			}
			m.Types = append(m.Types, ReactionType{
				Name:    "flip(c=" + itoa(centre) + ",nb=" + itoa(mask) + ")",
				Rate:    rate,
				Triples: triples,
			})
		}
	}
	return m
}

// NewAB builds a two-species annihilation model A + B → 0: adjacent A
// and B particles annihilate at rate k; A and B adsorb on vacant sites
// at rates aA and aB. A small model used by tests and examples.
func NewAB(aA, aB, k float64) *Model {
	const (
		vac lattice.Species = 0
		a   lattice.Species = 1
		b   lattice.Species = 2
	)
	m := &Model{Species: []string{"*", "A", "B"}}
	m.Types = append(m.Types,
		ReactionType{Name: "adsA", Rate: aA, Triples: []Triple{{Off: lattice.Vec{}, Src: vac, Tgt: a}}},
		ReactionType{Name: "adsB", Rate: aB, Triples: []Triple{{Off: lattice.Vec{}, Src: vac, Tgt: b}}},
	)
	for j, d := range lattice.Axes4() {
		m.Types = append(m.Types, ReactionType{
			Name: "annih(" + itoa(j) + ")",
			Rate: k,
			Triples: []Triple{
				{Off: lattice.Vec{}, Src: a, Tgt: vac},
				{Off: d, Src: b, Tgt: vac},
			},
		})
	}
	return m
}
