package model

import (
	"fmt"
	"math"

	"parsurf/internal/lattice"
)

// Compiled binds a Model to a concrete lattice and precomputes every
// lookup the simulation hot loops need:
//
//   - one flat translation-table arena holding, for every offset used by
//     any reaction pattern (and its inverse), the full site → site map,
//     so Enabled/Execute/TryExecute run over contiguous memory with no
//     per-trial modular arithmetic;
//   - per reaction type, the triples fused into parallel table-offset /
//     source / target arrays (no struct-of-slices pointer chasing);
//   - the dependency pairs of every site in a flat CSR layout
//     (depStart/depRT/depSite), so the VSSM/FRM/tracker bookkeeping
//     after an executed reaction is a closure-free slice scan.
//
// A Compiled is immutable after Compile returns: no method writes to
// the arena, the CSR tables, or the per-type arrays, and the slices
// DepPairs hands out alias the shared tables read-only. It is therefore
// safe to share one Compiled across any number of engines and
// goroutines — SessionSpec compiles once per spec and every session,
// ensemble replica and job worker reads the same tables (covered by
// the -race replica tests). Anything mutable lives in the engines, in
// the Config, or in per-call scratch the caller owns.
type Compiled struct {
	Model *Model
	Lat   *lattice.Lattice

	// Types holds one compiled pattern per reaction type, same order as
	// Model.Types.
	Types []CompiledType

	// Cum are the cumulative rates, K the total.
	Cum []float64
	K   float64

	// flat is the translation-table arena: table ordinal t occupies
	// flat[t*N : (t+1)*N], and flat[t*N+s] is site s translated by the
	// ordinal's offset.
	flat []int32

	// CSR dependency tables: for a changed site z, the (reaction type,
	// application site) pairs whose enabledness may have changed are
	// (depRT[j], depSite[depStart[z]+j]) for j in [0, len(depRT)).
	// Every row has the same width (one pair per triple of every type)
	// and the same type sequence, so the reaction-type column is stored
	// once and shared by all sites instead of repeated n times —
	// half the memory traffic on the post-execution refresh path.
	depStart []int32
	depRT    []int32
	depSite  []int32
}

// CompiledType is a reaction type with its offsets resolved to shared
// translation tables. The Triples view and the fused tabOff/src/tgt
// arrays describe the same pattern; the hot-path methods use the fused
// form, Triples remains for inspection and tests.
type CompiledType struct {
	Rate    float64
	Triples []CompiledTriple

	// tabOff[i] is the arena offset of triple i's translation table:
	// the affected site for an application at s is flat[tabOff[i]+s].
	tabOff []int32
	// src and tgt are the triple source/target species, fused into
	// contiguous arrays.
	src []lattice.Species
	tgt []lattice.Species
	// changedIdx indexes the triples with src != tgt (the sites an
	// execution actually modifies).
	changedIdx []int32
}

// CompiledTriple mirrors Triple with a resolved translation table:
// the affected site for an application at s is Table[s].
type CompiledTriple struct {
	Table []int32
	Src   lattice.Species
	Tgt   lattice.Species
}

// Compile validates the model against the lattice and returns the
// compiled form. Compilation fails if the model is invalid or if any
// pattern self-collides on this lattice (two distinct offsets resolving
// to the same site because an extent is smaller than the pattern), which
// would make execution order-dependent.
func Compile(m *Model, lat *lattice.Lattice) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := lat.N()
	cm := &Compiled{
		Model: m,
		Lat:   lat,
		Types: make([]CompiledType, len(m.Types)),
		Cum:   m.CumulativeRates(),
		K:     m.K(),
	}

	// Collect the distinct offsets in deterministic first-use order:
	// every pattern offset, then every negated offset (the inverse
	// tables the dependency CSR is built from).
	ordinals := make(map[lattice.Vec]int32)
	var offsets []lattice.Vec
	intern := func(v lattice.Vec) int32 {
		if t, ok := ordinals[v]; ok {
			return t
		}
		t := int32(len(offsets))
		ordinals[v] = t
		offsets = append(offsets, v)
		return t
	}
	numTriples := 0
	for i := range m.Types {
		for _, tr := range m.Types[i].Triples {
			intern(tr.Off)
			numTriples++
		}
	}
	for i := range m.Types {
		for _, tr := range m.Types[i].Triples {
			intern(tr.Off.Neg())
		}
	}
	if int64(len(offsets))*int64(n) > math.MaxInt32 ||
		int64(numTriples)*int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("model: %d offsets × %d sites overflow the compiled table arena", len(offsets), n)
	}

	// Fill the arena: one contiguous translation table per offset.
	cm.flat = make([]int32, len(offsets)*n)
	for t, off := range offsets {
		table := cm.flat[t*n : (t+1)*n]
		for s := 0; s < n; s++ {
			table[s] = int32(lat.Translate(s, off))
		}
	}
	tableOf := func(v lattice.Vec) []int32 {
		t := int(ordinals[v])
		return cm.flat[t*n : (t+1)*n]
	}

	for i := range m.Types {
		rt := &m.Types[i]
		k := len(rt.Triples)
		ct := CompiledType{
			Rate:    rt.Rate,
			Triples: make([]CompiledTriple, k),
			tabOff:  make([]int32, k),
			src:     make([]lattice.Species, k),
			tgt:     make([]lattice.Species, k),
		}
		for j, tr := range rt.Triples {
			ct.Triples[j] = CompiledTriple{
				Table: tableOf(tr.Off),
				Src:   tr.Src,
				Tgt:   tr.Tgt,
			}
			ct.tabOff[j] = ordinals[tr.Off] * int32(n)
			ct.src[j] = tr.Src
			ct.tgt[j] = tr.Tgt
			if tr.Src != tr.Tgt {
				ct.changedIdx = append(ct.changedIdx, int32(j))
			}
		}
		// Detect wrap-around self-collision: the resolved sites of an
		// application at site 0 must be pairwise distinct.
		seen := make(map[int32]bool, k)
		for _, tr := range ct.Triples {
			site := tr.Table[0]
			if seen[site] {
				return nil, fmt.Errorf(
					"model: reaction %q pattern self-collides on a %dx%d lattice",
					rt.Name, lat.L0, lat.L1)
			}
			seen[site] = true
		}
		cm.Types[i] = ct
	}

	// Build the dependency CSR. For a changed site z the affected pairs
	// are, for every type r and triple offset o, (r, z translated by
	// −o); the enumeration order (types ascending, triples ascending)
	// is part of the engines' reproducibility contract and must match
	// the order the closure-based Dependencies historically used.
	cm.depStart = make([]int32, n+1)
	cm.depRT = make([]int32, 0, numTriples)
	cm.depSite = make([]int32, n*numTriples)
	inv := make([][]int32, 0, numTriples)
	for r := range m.Types {
		for _, tr := range m.Types[r].Triples {
			inv = append(inv, tableOf(tr.Off.Neg()))
			cm.depRT = append(cm.depRT, int32(r))
		}
	}
	j := 0
	for z := 0; z < n; z++ {
		cm.depStart[z] = int32(j)
		for _, table := range inv {
			cm.depSite[j] = table[z]
			j++
		}
	}
	cm.depStart[n] = int32(j)
	return cm, nil
}

// MustCompile is Compile that panics on error, for tests and examples
// with statically known-good models.
func MustCompile(m *Model, lat *lattice.Lattice) *Compiled {
	cm, err := Compile(m, lat)
	if err != nil {
		panic(err)
	}
	return cm
}

// NumTypes returns the number of reaction types.
func (cm *Compiled) NumTypes() int { return len(cm.Types) }

// Enabled reports whether reaction type rt is enabled at site s: the
// source pattern matches the configuration.
func (cm *Compiled) Enabled(cells []lattice.Species, rt, s int) bool {
	ct := &cm.Types[rt]
	flat := cm.flat
	tab := ct.tabOff
	srcs := ct.src
	// Surface-reaction patterns are almost always one or two sites;
	// the unrolled forms skip the loop bookkeeping on that path.
	if len(tab) == 2 && len(srcs) == 2 {
		return cells[flat[int(tab[0])+s]] == srcs[0] &&
			cells[flat[int(tab[1])+s]] == srcs[1]
	}
	if len(tab) == 1 && len(srcs) == 1 {
		return cells[flat[int(tab[0])+s]] == srcs[0]
	}
	for i, off := range tab {
		if cells[flat[int(off)+s]] != srcs[i] {
			return false
		}
	}
	return true
}

// Execute applies reaction type rt at site s (no enabledness check).
func (cm *Compiled) Execute(cells []lattice.Species, rt, s int) {
	ct := &cm.Types[rt]
	flat := cm.flat
	for i, off := range ct.tabOff {
		cells[flat[int(off)+s]] = ct.tgt[i]
	}
}

// TryExecute checks enabledness and executes on success, reporting
// whether the reaction fired. This is the body of one RSM/NDCA trial.
func (cm *Compiled) TryExecute(cells []lattice.Species, rt, s int) bool {
	ct := &cm.Types[rt]
	flat := cm.flat
	for i, off := range ct.tabOff {
		if cells[flat[int(off)+s]] != ct.src[i] {
			return false
		}
	}
	for i, off := range ct.tabOff {
		cells[flat[int(off)+s]] = ct.tgt[i]
	}
	return true
}

// PickType selects a reaction type with probability k_i/K given a uniform
// u in [0,1). Linear scan over the cumulative table: models have few
// types and the scan beats binary search at these sizes. It panics on a
// model with no positive total rate, and guards the u·K ≥ K boundary
// (reachable through floating-point rounding of u ≈ 1) by returning the
// last type with positive rate rather than whatever type is last.
func (cm *Compiled) PickType(u float64) int {
	if cm.K <= 0 {
		panic("model: PickType on a model with non-positive total rate")
	}
	target := u * cm.K
	for i, c := range cm.Cum {
		if target < c {
			return i
		}
	}
	for i := len(cm.Types) - 1; i >= 0; i-- {
		if cm.Types[i].Rate > 0 {
			return i
		}
	}
	return len(cm.Cum) - 1
}

// ChangedSites appends to dst the sites whose contents executing rt at s
// modifies (triples with Src != Tgt), and returns the extended slice.
func (cm *Compiled) ChangedSites(dst []int, rt, s int) []int {
	ct := &cm.Types[rt]
	flat := cm.flat
	for _, i := range ct.changedIdx {
		dst = append(dst, int(flat[int(ct.tabOff[i])+s]))
	}
	return dst
}

// DepPairs returns the precomputed dependency pairs of changed site z as
// parallel slices: for every j, reaction type rts[j] at application site
// sites[j] may have changed enabledness. The slices alias the compiled
// CSR tables and must not be modified. Pair order is fixed (types
// ascending, triples ascending), which the incremental engines rely on
// for bit-identical trajectories.
func (cm *Compiled) DepPairs(z int) (rts, sites []int32) {
	a, b := cm.depStart[z], cm.depStart[z+1]
	return cm.depRT, cm.depSite[a:b]
}

// Dependencies enumerates, for a changed site z, all (reaction type,
// application site) pairs whose enabledness may have changed. The visit
// function is called once per pair, in DepPairs order. Hot loops should
// consume DepPairs directly; this closure form remains for tests and
// non-critical callers.
func (cm *Compiled) Dependencies(z int, visit func(rt, s int)) {
	rts, sites := cm.DepPairs(z)
	for j, rt := range rts {
		visit(int(rt), int(sites[j]))
	}
}

// NbSites appends to dst the resolved neighbourhood sites of reaction
// type rt applied at s (all triples, changed or not).
func (cm *Compiled) NbSites(dst []int, rt, s int) []int {
	ct := &cm.Types[rt]
	flat := cm.flat
	for _, off := range ct.tabOff {
		dst = append(dst, int(flat[int(off)+s]))
	}
	return dst
}
