package model

import (
	"fmt"

	"parsurf/internal/lattice"
)

// Compiled binds a Model to a concrete lattice and precomputes, for every
// offset used by any reaction type, the full translation table
// offset → (site → site). This removes per-trial modular arithmetic from
// the simulation hot loops and is shared by all engines (DMC and CA).
type Compiled struct {
	Model *Model
	Lat   *lattice.Lattice

	// Types holds one compiled pattern per reaction type, same order as
	// Model.Types.
	Types []CompiledType

	// Cum are the cumulative rates, K the total.
	Cum []float64
	K   float64

	tables map[lattice.Vec][]int32
}

// CompiledType is a reaction type with its offsets resolved to shared
// translation tables.
type CompiledType struct {
	Rate    float64
	Triples []CompiledTriple
}

// CompiledTriple mirrors Triple with a resolved translation table:
// the affected site for an application at s is Table[s].
type CompiledTriple struct {
	Table []int32
	Src   lattice.Species
	Tgt   lattice.Species
}

// Compile validates the model against the lattice and returns the
// compiled form. Compilation fails if the model is invalid or if any
// pattern self-collides on this lattice (two distinct offsets resolving
// to the same site because an extent is smaller than the pattern), which
// would make execution order-dependent.
func Compile(m *Model, lat *lattice.Lattice) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cm := &Compiled{
		Model:  m,
		Lat:    lat,
		Types:  make([]CompiledType, len(m.Types)),
		Cum:    m.CumulativeRates(),
		K:      m.K(),
		tables: make(map[lattice.Vec][]int32),
	}
	for i := range m.Types {
		rt := &m.Types[i]
		ct := CompiledType{Rate: rt.Rate, Triples: make([]CompiledTriple, len(rt.Triples))}
		for j, tr := range rt.Triples {
			ct.Triples[j] = CompiledTriple{
				Table: cm.table(tr.Off),
				Src:   tr.Src,
				Tgt:   tr.Tgt,
			}
		}
		// Detect wrap-around self-collision: the resolved sites of an
		// application at site 0 must be pairwise distinct.
		seen := make(map[int32]bool, len(ct.Triples))
		for _, tr := range ct.Triples {
			site := tr.Table[0]
			if seen[site] {
				return nil, fmt.Errorf(
					"model: reaction %q pattern self-collides on a %dx%d lattice",
					rt.Name, lat.L0, lat.L1)
			}
			seen[site] = true
		}
		cm.Types[i] = ct
	}
	return cm, nil
}

// MustCompile is Compile that panics on error, for tests and examples
// with statically known-good models.
func MustCompile(m *Model, lat *lattice.Lattice) *Compiled {
	cm, err := Compile(m, lat)
	if err != nil {
		panic(err)
	}
	return cm
}

// table returns (building if needed) the translation table for offset v.
func (cm *Compiled) table(v lattice.Vec) []int32 {
	if t, ok := cm.tables[v]; ok {
		return t
	}
	n := cm.Lat.N()
	t := make([]int32, n)
	for s := 0; s < n; s++ {
		t[s] = int32(cm.Lat.Translate(s, v))
	}
	cm.tables[v] = t
	return t
}

// NumTypes returns the number of reaction types.
func (cm *Compiled) NumTypes() int { return len(cm.Types) }

// Enabled reports whether reaction type rt is enabled at site s: the
// source pattern matches the configuration.
func (cm *Compiled) Enabled(cells []lattice.Species, rt, s int) bool {
	for i := range cm.Types[rt].Triples {
		tr := &cm.Types[rt].Triples[i]
		if cells[tr.Table[s]] != tr.Src {
			return false
		}
	}
	return true
}

// Execute applies reaction type rt at site s (no enabledness check).
func (cm *Compiled) Execute(cells []lattice.Species, rt, s int) {
	for i := range cm.Types[rt].Triples {
		tr := &cm.Types[rt].Triples[i]
		cells[tr.Table[s]] = tr.Tgt
	}
}

// TryExecute checks enabledness and executes on success, reporting
// whether the reaction fired. This is the body of one RSM/NDCA trial.
func (cm *Compiled) TryExecute(cells []lattice.Species, rt, s int) bool {
	if !cm.Enabled(cells, rt, s) {
		return false
	}
	cm.Execute(cells, rt, s)
	return true
}

// PickType selects a reaction type with probability k_i/K given a uniform
// u in [0,1). Linear scan over the cumulative table: models have few
// types and the scan beats binary search at these sizes.
func (cm *Compiled) PickType(u float64) int {
	target := u * cm.K
	for i, c := range cm.Cum {
		if target < c {
			return i
		}
	}
	return len(cm.Cum) - 1
}

// ChangedSites appends to dst the sites whose contents executing rt at s
// modifies (triples with Src != Tgt), and returns the extended slice.
func (cm *Compiled) ChangedSites(dst []int, rt, s int) []int {
	for i := range cm.Types[rt].Triples {
		tr := &cm.Types[rt].Triples[i]
		if tr.Src != tr.Tgt {
			dst = append(dst, int(tr.Table[s]))
		}
	}
	return dst
}

// Dependencies enumerates, for a changed site z, all (reaction type,
// application site) pairs whose enabledness may have changed: for every
// type r and every offset o in r's pattern, the application site z−o.
// The visit function is called once per pair; pairs are not deduplicated
// across offsets of the same type unless they resolve to distinct sites.
func (cm *Compiled) Dependencies(z int, visit func(rt, s int)) {
	for r := range cm.Types {
		triples := cm.Types[r].Triples
		// For patterns of size ≤ 2 (the common case) duplicates cannot
		// occur; for larger ones the caller's data structure must
		// tolerate repeated visits (ours do).
		for i := range triples {
			s := cm.invTable(r, i)[z]
			visit(r, int(s))
		}
	}
}

// invTables caches inverse translation tables per (type, triple).
func (cm *Compiled) invTable(r, i int) []int32 {
	// The inverse of translating by v is translating by -v; reuse the
	// shared table map keyed by the negated offset.
	off := cm.Model.Types[r].Triples[i].Off.Neg()
	return cm.table(off)
}

// NbSites appends to dst the resolved neighbourhood sites of reaction
// type rt applied at s (all triples, changed or not).
func (cm *Compiled) NbSites(dst []int, rt, s int) []int {
	for i := range cm.Types[rt].Triples {
		dst = append(dst, int(cm.Types[rt].Triples[i].Table[s]))
	}
	return dst
}
