package ca

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// ConflictPolicy selects how a synchronous NDCA resolves two proposed
// reactions whose neighbourhoods overlap (the situation of Fig. 2).
type ConflictPolicy int

const (
	// DropAll rejects every reaction involved in a conflict.
	DropAll ConflictPolicy = iota
	// RandomWinner keeps, per conflict cluster, the proposal that wins a
	// site-order lottery drawn this step, dropping the overlapping rest.
	RandomWinner
)

// SyncNDCA is the fully synchronous Non-Deterministic CA: every site
// proposes a rate-weighted reaction based on the state at time t−1, all
// proposals are checked against that same state, and conflicting
// proposals are resolved by the configured policy before the survivors
// are applied simultaneously.
//
// This engine exists to *measure* the conflict problem the paper solves
// with partitions: it counts proposals, conflicts and executed
// reactions, and its kinetics deviate from the Master Equation in
// exactly the way §4 describes.
type SyncNDCA struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	time  float64

	Policy ConflictPolicy
	// DeterministicTime uses 1/K per step (N trials of mean 1/(N·K)).
	DeterministicTime bool

	// claim[s] is the proposal index+1 that currently holds site s.
	claim     []int32
	proposals []proposal
	order     []int
	// scratch buffers of one Step, reused across steps so the
	// steady-state update allocates nothing.
	nbScratch []int
	winners   []int32
	dropped   map[int32]bool
	// swap is the Shuffle callback over order, built once: a closure
	// literal in Step would escape and allocate every call.
	swap func(i, j int)

	steps     uint64
	proposed  uint64
	conflicts uint64
	executed  uint64
}

type proposal struct {
	site int
	rt   int
}

// NewSyncNDCA returns a synchronous NDCA engine.
func NewSyncNDCA(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *SyncNDCA {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("ca: configuration lattice differs from compiled lattice")
	}
	n := cm.Lat.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	a := &SyncNDCA{
		cm: cm, cfg: cfg, cells: cfg.Cells(), src: src,
		Policy:  RandomWinner,
		claim:   make([]int32, n),
		order:   order,
		dropped: make(map[int32]bool),
	}
	a.swap = func(i, j int) { a.order[i], a.order[j] = a.order[j], a.order[i] }
	return a
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The claim table, proposal and winner buffers
// are cleared in place; Step re-derives them from scratch every update
// anyway.
func (a *SyncNDCA) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(a.cm.Lat) {
		panic("ca: Reset configuration lattice differs from compiled lattice")
	}
	a.cfg, a.cells, a.src = cfg, cfg.Cells(), src
	a.time = 0
	a.steps, a.proposed, a.conflicts, a.executed = 0, 0, 0, 0
	clear(a.claim)
	a.proposals = a.proposals[:0]
}

// Step performs one synchronous update: propose at all sites from the
// frozen state, resolve conflicts, apply survivors simultaneously.
//
//surflint:hotpath
func (a *SyncNDCA) Step() bool {
	n := a.cm.Lat.N()
	a.proposals = a.proposals[:0]
	for i := range a.claim {
		a.claim[i] = 0
	}

	// Phase 1: every site proposes a reaction enabled in the *current*
	// (frozen) state.
	for s := 0; s < n; s++ {
		rt := a.cm.PickType(a.src.Float64())
		if a.cm.Enabled(a.cells, rt, s) {
			a.proposals = append(a.proposals, proposal{site: s, rt: rt})
		}
	}
	a.proposed += uint64(len(a.proposals))

	// Phase 2: conflict resolution. Proposals claim the full
	// neighbourhood of their pattern; a proposal finding any of its
	// sites already claimed is in conflict. Under RandomWinner the
	// claim order is a random permutation (first claimant wins); under
	// DropAll conflicting proposals additionally evict the earlier
	// winner.
	idx := a.order[:len(a.proposals)]
	for i := range idx {
		idx[i] = i
	}
	a.src.Shuffle(len(idx), a.swap)

	clear(a.dropped)
	winners := a.winners[:0]
	for _, pi := range idx {
		p := a.proposals[pi]
		scratch := a.cm.NbSites(a.nbScratch[:0], p.rt, p.site)
		a.nbScratch = scratch
		conflict := false
		for _, site := range scratch {
			if a.claim[site] != 0 {
				conflict = true
				if a.Policy == DropAll {
					a.dropped[a.claim[site]-1] = true
				}
			}
		}
		if conflict {
			a.conflicts++
			continue
		}
		for _, site := range scratch {
			a.claim[site] = int32(pi) + 1
		}
		winners = append(winners, int32(pi))
	}
	a.winners = winners

	// Phase 3: apply the surviving proposals simultaneously. Winners
	// have pairwise disjoint neighbourhoods, so application order is
	// irrelevant — this is the property partitions guarantee up front.
	for _, pi := range winners {
		if a.Policy == DropAll && a.dropped[pi] {
			a.conflicts++
			continue
		}
		p := a.proposals[pi]
		a.cm.Execute(a.cells, p.rt, p.site)
		a.executed++
	}

	a.steps++
	if a.DeterministicTime {
		a.time += 1 / a.cm.K
	} else {
		a.time += a.src.Exp(a.cm.K)
	}
	return true
}

// Time returns the simulated time (one synchronous step corresponds to
// one MC step of N trials).
func (a *SyncNDCA) Time() float64 { return a.time }

// Config returns the live configuration.
func (a *SyncNDCA) Config() *lattice.Config { return a.cfg }

// Steps returns the number of synchronous steps.
func (a *SyncNDCA) Steps() uint64 { return a.steps }

// Proposed returns the number of enabled proposals generated.
func (a *SyncNDCA) Proposed() uint64 { return a.proposed }

// Conflicts returns the number of proposals rejected by conflicts.
func (a *SyncNDCA) Conflicts() uint64 { return a.conflicts }

// Executed returns the number of reactions applied.
func (a *SyncNDCA) Executed() uint64 { return a.executed }
