package ca

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// BCA is the Block Cellular Automaton of §5: the lattice is tiled by
// blocks; each step applies reactions *within* blocks only (a reaction
// whose pattern crosses a block edge is rejected), and the tiling origin
// shifts between steps so the edges move, as in Fig. 3. Blocks are
// mutually independent within a step and could be updated concurrently;
// the confinement rule replaces the non-overlap rule of the partitioned
// algorithms.
type BCA struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	time  float64

	// tilings are the precomputed shifted block partitions, cycled
	// through step by step.
	tilings []*partition.Partition
	phase   int
	scratch []int // confinement-check neighbourhood buffer, reused

	// DeterministicTime uses 1/(N·K) per trial instead of Exp(N·K).
	DeterministicTime bool

	steps     uint64
	trials    uint64
	successes uint64
	rejected  uint64 // enabled reactions rejected for crossing an edge
}

// NewBCA builds a BCA with bw×bh blocks and the given cyclic sequence
// of tiling origins (e.g. {{0,0},{bw/2,bh/2}} for half-block shifts).
// At least one origin is required and the lattice extents must be
// divisible by the block dimensions.
func NewBCA(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, bw, bh int, origins []lattice.Vec) (*BCA, error) {
	if !cfg.Lattice().SameShape(cm.Lat) {
		return nil, fmt.Errorf("ca: configuration lattice differs from compiled lattice")
	}
	if len(origins) == 0 {
		return nil, fmt.Errorf("ca: BCA needs at least one tiling origin")
	}
	b := &BCA{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src}
	for _, o := range origins {
		p, err := partition.Blocks(cm.Lat, bw, bh, o.DX, o.DY)
		if err != nil {
			return nil, err
		}
		b.tilings = append(b.tilings, p)
	}
	return b, nil
}

// Step performs one BCA step under the current tiling: every block
// receives as many trials as it has sites (so a step is N trials, one
// MC step), then the tiling advances to the next origin.
//
//surflint:hotpath
func (b *BCA) Step() bool {
	p := b.tilings[b.phase]
	n := b.cm.Lat.N()
	nk := float64(n) * b.cm.K
	scratch := b.scratch
	for _, block := range p.Chunks {
		for i := 0; i < len(block); i++ {
			s := int(block[b.src.Intn(len(block))])
			rt := b.cm.PickType(b.src.Float64())
			if b.cm.Enabled(b.cells, rt, s) {
				// Confinement: every pattern site must stay within the
				// block.
				scratch = b.cm.NbSites(scratch[:0], rt, s)
				inside := true
				home := p.ChunkOf(s)
				for _, site := range scratch {
					if p.ChunkOf(site) != home {
						inside = false
						break
					}
				}
				if inside {
					b.cm.Execute(b.cells, rt, s)
					b.successes++
				} else {
					b.rejected++
				}
			}
			b.trials++
			if b.DeterministicTime {
				b.time += 1 / nk
			} else {
				b.time += b.src.Exp(nk)
			}
		}
	}
	b.scratch = scratch
	b.phase = (b.phase + 1) % len(b.tilings)
	b.steps++
	return true
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The precomputed shifted tilings depend only
// on the lattice shape and block geometry, so they are kept; the phase
// returns to the first tiling origin.
func (b *BCA) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(b.cm.Lat) {
		panic("ca: Reset configuration lattice differs from compiled lattice")
	}
	b.cfg, b.cells, b.src = cfg, cfg.Cells(), src
	b.time = 0
	b.phase = 0
	b.steps, b.trials, b.successes, b.rejected = 0, 0, 0, 0
}

// Time returns the simulated time.
func (b *BCA) Time() float64 { return b.time }

// Config returns the live configuration.
func (b *BCA) Config() *lattice.Config { return b.cfg }

// Trials returns the number of trials attempted.
func (b *BCA) Trials() uint64 { return b.trials }

// Successes returns the number of executed reactions.
func (b *BCA) Successes() uint64 { return b.successes }

// Rejected returns the number of enabled reactions rejected because
// their pattern crossed a block edge — the bias the shifting origins
// mitigate.
func (b *BCA) Rejected() uint64 { return b.rejected }

// BCA1D runs the deterministic Fig. 3 example: the zero rule applied
// within 1-D blocks of the given size, with the block origin shifting by
// shift every step. It returns the successive states including the
// initial one, after the requested number of steps. The input slice is
// not modified.
func BCA1D(initial []lattice.Species, blockSize, shift, steps int) ([][]lattice.Species, error) {
	n := len(initial)
	if n == 0 || n%blockSize != 0 {
		return nil, fmt.Errorf("ca: %d sites not tileable by blocks of %d", n, blockSize)
	}
	state := append([]lattice.Species(nil), initial...)
	out := [][]lattice.Species{append([]lattice.Species(nil), state...)}
	origin := 0
	for step := 0; step < steps; step++ {
		next := append([]lattice.Species(nil), state...)
		for b := 0; b < n/blockSize; b++ {
			lo := (origin + b*blockSize) % n
			// Apply the zero rule within the block: a site becomes 0
			// if a neighbour *inside the block* is 0.
			for i := 0; i < blockSize; i++ {
				s := (lo + i) % n
				zero := false
				if i > 0 && state[(lo+i-1)%n] == 0 {
					zero = true
				}
				if i < blockSize-1 && state[(lo+i+1)%n] == 0 {
					zero = true
				}
				if zero {
					next[s] = 0
				}
			}
		}
		state = next
		out = append(out, append([]lattice.Species(nil), state...))
		origin = ((origin+shift)%n + n) % n
	}
	return out, nil
}
