package ca

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
)

// Engine-interface methods (registry.Engine) for the CA engines.

// Name returns the registry name.
func (a *NDCA) Name() string { return "ndca" }

// TotalRate returns the constant trial rate N·K of the NDCA clock.
func (a *NDCA) TotalRate() float64 { return float64(a.cm.Lat.N()) * a.cm.K }

// Steps returns the number of completed Step calls (full sweeps).
func (a *NDCA) Steps() uint64 { return a.steps }

// Name returns the registry name.
func (a *SyncNDCA) Name() string { return "syncndca" }

// TotalRate returns the constant trial rate N·K underlying the
// synchronous step clock.
func (a *SyncNDCA) TotalRate() float64 { return float64(a.cm.Lat.N()) * a.cm.K }

// Name returns the registry name.
func (b *BCA) Name() string { return "bca" }

// TotalRate returns the constant trial rate N·K of the BCA clock.
func (b *BCA) TotalRate() float64 { return float64(b.cm.Lat.N()) * b.cm.K }

// Steps returns the number of completed Step calls (tiling sweeps).
func (b *BCA) Steps() uint64 { return b.steps }

// defaultBlock is the BCA block side used when the options leave the
// geometry unset; the half-block shifted origin realises Fig. 3's
// moving boundaries.
const defaultBlock = 4

func init() {
	registry.Register(registry.Spec{
		Name:    "ndca",
		Doc:     "Non-Deterministic Cellular Automaton, site-sequential (§4)",
		Accepts: registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			a := NewNDCA(cm, cfg, src)
			a.DeterministicTime = o.DeterministicTime
			return a, nil
		},
	})
	registry.Register(registry.Spec{
		Name:    "syncndca",
		Doc:     "fully synchronous NDCA with conflict resolution (§4, Fig. 2)",
		Accepts: registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			a := NewSyncNDCA(cm, cfg, src)
			a.DeterministicTime = o.DeterministicTime
			return a, nil
		},
	})
	registry.Register(registry.Spec{
		Name:    "bca",
		Doc:     "Block Cellular Automaton with shifting tilings (§5, Fig. 3)",
		Accepts: registry.OptBlocks | registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			bw, bh := o.BlockW, o.BlockH
			if bw == 0 && bh == 0 {
				bw, bh = defaultBlock, defaultBlock
			}
			if bw == 0 || bh == 0 {
				return nil, fmt.Errorf("ca: bca needs both block dimensions, got %dx%d", bw, bh)
			}
			origins := []lattice.Vec{{DX: 0, DY: 0}, {DX: bw / 2, DY: bh / 2}}
			b, err := NewBCA(cm, cfg, src, bw, bh, origins)
			if err != nil {
				return nil, err
			}
			b.DeterministicTime = o.DeterministicTime
			return b, nil
		},
	})
}
