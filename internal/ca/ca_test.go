package ca

import (
	"math"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

func TestDCAZeroRuleSpreads(t *testing.T) {
	lat := lattice.New(9, 1)
	cfg := lattice.NewConfig(lat)
	cfg.Fill(1)
	cfg.Set(4, 0)
	d := NewDCA(cfg, ZeroRule1D)
	// Unblocked, the zero spreads one site per step in both directions.
	d.Step()
	for _, s := range []int{3, 4, 5} {
		if cfg.Get(s) != 0 {
			t.Fatalf("after 1 step site %d = %d", s, cfg.Get(s))
		}
	}
	if cfg.Get(2) != 1 || cfg.Get(6) != 1 {
		t.Fatal("zero spread too far")
	}
	for i := 0; i < 4; i++ {
		d.Step()
	}
	if cfg.Count(0) != 9 {
		t.Fatalf("after 5 steps %d zeros, want 9", cfg.Count(0))
	}
	if d.Time() != 5 {
		t.Fatalf("DCA time %v", d.Time())
	}
}

func TestDCASynchronous(t *testing.T) {
	// Synchrony: a 01 pair under the zero rule on a 2-ring becomes 00
	// in one step only if updates read the old state; a sequential
	// in-place sweep would give the same here, so use a 4-ring blinker:
	// 0110 -> all sites adjacent to a 0 die simultaneously -> 0000.
	lat := lattice.New(4, 1)
	cfg := lattice.NewConfig(lat)
	cfg.Set(1, 1)
	cfg.Set(2, 1)
	NewDCA(cfg, ZeroRule1D).Step()
	if cfg.Count(0) != 4 {
		t.Fatalf("state after step: %v", cfg.Cells())
	}
}

func TestMajorityRule(t *testing.T) {
	lat := lattice.NewSquare(6)
	cfg := lattice.NewConfig(lat)
	cfg.Fill(1)
	cfg.SetXY(3, 3, 0) // lone dissenter flips back
	NewDCA(cfg, MajorityRule2D).Step()
	if cfg.Count(0) != 0 {
		t.Fatalf("lone zero survived majority rule: %d zeros", cfg.Count(0))
	}
}

func ndcaSetup(t testing.TB, l int, seed uint64) (*model.Compiled, *lattice.Config, *rng.Source) {
	t.Helper()
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(l)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	return cm, lattice.NewConfig(lat), rng.New(seed)
}

func TestNDCAStepVisitsEverySite(t *testing.T) {
	cm, cfg, src := ndcaSetup(t, 8, 1)
	a := NewNDCA(cm, cfg, src)
	a.Step()
	if a.Trials() != uint64(cm.Lat.N()) {
		t.Fatalf("step made %d trials, want %d", a.Trials(), cm.Lat.N())
	}
	if a.Successes() == 0 {
		t.Fatal("nothing fired on an empty lattice")
	}
	if a.Time() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestNDCADeterministicTime(t *testing.T) {
	cm, cfg, src := ndcaSetup(t, 8, 2)
	a := NewNDCA(cm, cfg, src)
	a.DeterministicTime = true
	a.Step()
	if math.Abs(a.Time()-1/cm.K) > 1e-9 {
		t.Fatalf("time %v, want %v", a.Time(), 1/cm.K)
	}
}

func TestNDCARandomOrderDiffersFromRaster(t *testing.T) {
	cm, cfgA, srcA := ndcaSetup(t, 16, 3)
	a := NewNDCA(cm, cfgA, srcA)
	cfgB := lattice.NewConfig(cm.Lat)
	b := NewNDCA(cm, cfgB, rng.New(3))
	b.RandomOrder = true
	for i := 0; i < 5; i++ {
		a.Step()
		b.Step()
	}
	if cfgA.Equal(cfgB) {
		t.Fatal("random sweep order produced identical trajectory to raster order")
	}
}

// The paper: NDCA approximates RSM. On the ZGB model in the reactive
// regime the steady coverages must be close (not identical).
func TestNDCACloseToRSMSteadyState(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(40)
	cm := model.MustCompile(m, lat)

	run := func(stepper interface {
		Step() bool
		Config() *lattice.Config
	}) float64 {
		for i := 0; i < 150; i++ {
			stepper.Step()
		}
		total := 0.0
		for i := 0; i < 50; i++ {
			stepper.Step()
			total += stepper.Config().Coverage(model.ZGBCO)
		}
		return total / 50
	}

	cfgN := lattice.NewConfig(lat)
	ndca := NewNDCA(cm, cfgN, rng.New(7))
	covN := run(ndca)

	cfgR := lattice.NewConfig(lat)
	rsm := newRSMForTest(cm, cfgR, rng.New(8))
	covR := run(rsm)

	if math.Abs(covN-covR) > 0.08 {
		t.Fatalf("NDCA CO coverage %v vs RSM %v", covN, covR)
	}
}

// minimal RSM reimplementation to avoid an import cycle in tests (dmc
// imports nothing from ca, but keep the packages decoupled here too).
type miniRSM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
}

func newRSMForTest(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *miniRSM {
	return &miniRSM{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src}
}

func (r *miniRSM) Step() bool {
	n := r.cm.Lat.N()
	for i := 0; i < n; i++ {
		s := r.src.Intn(n)
		rt := r.cm.PickType(r.src.Float64())
		r.cm.TryExecute(r.cells, rt, s)
	}
	return true
}

func (r *miniRSM) Config() *lattice.Config { return r.cfg }

func TestSyncNDCAConflictsOnDiffusion(t *testing.T) {
	// Fig. 2 scenario: dense diffusing particles must generate
	// conflicts under synchronous update.
	m := model.NewDimerDiffusion(1)
	lat := lattice.NewSquare(20)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	src := rng.New(9)
	cfg.Randomize([]float64{0.5, 0.5}, src.Float64)
	a := NewSyncNDCA(cm, cfg, src)
	particles := cfg.Count(1)
	for i := 0; i < 20; i++ {
		a.Step()
	}
	if a.Conflicts() == 0 {
		t.Fatal("no conflicts detected in dense synchronous diffusion")
	}
	if a.Executed() == 0 {
		t.Fatal("nothing executed")
	}
	// Conservation: diffusion must never create or destroy particles —
	// this is exactly the physical law the conflict resolution protects.
	if got := cfg.Count(1); got != particles {
		t.Fatalf("particle count changed %d -> %d", particles, got)
	}
}

func TestSyncNDCADropAllPolicy(t *testing.T) {
	m := model.NewDimerDiffusion(1)
	lat := lattice.NewSquare(16)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	src := rng.New(10)
	cfg.Randomize([]float64{0.4, 0.6}, src.Float64)
	a := NewSyncNDCA(cm, cfg, src)
	a.Policy = DropAll
	before := cfg.Count(1)
	for i := 0; i < 10; i++ {
		a.Step()
	}
	if cfg.Count(1) != before {
		t.Fatal("DropAll violated particle conservation")
	}
	if a.Proposed() == 0 {
		t.Fatal("no proposals")
	}
}

func TestSyncNDCANoConflictsWhenSparse(t *testing.T) {
	// A single particle can never conflict with itself.
	m := model.NewDimerDiffusion(1)
	lat := lattice.NewSquare(16)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	cfg.Set(0, 1)
	a := NewSyncNDCA(cm, cfg, rng.New(11))
	for i := 0; i < 50; i++ {
		a.Step()
	}
	if a.Conflicts() != 0 {
		t.Fatalf("lone particle produced %d conflicts", a.Conflicts())
	}
	if cfg.Count(1) != 1 {
		t.Fatal("lone particle not conserved")
	}
}

func TestBCAConfinement(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	b, err := NewBCA(cm, cfg, rng.New(12), 4, 4, []lattice.Vec{{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		b.Step()
	}
	if b.Rejected() == 0 {
		t.Fatal("static tiling never rejected an edge-crossing reaction")
	}
	if b.Successes() == 0 {
		t.Fatal("nothing executed")
	}
	if b.Trials() != uint64(30*lat.N()) {
		t.Fatalf("trials %d, want %d", b.Trials(), 30*lat.N())
	}
}

func TestBCAShiftingReducesNothingButMovesEdges(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	b, err := NewBCA(cm, cfg, rng.New(13), 4, 4,
		[]lattice.Vec{{}, {DX: 2, DY: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Step()
	}
	// With shifting origins O2 can eventually adsorb across every bond;
	// verify O appeared despite edge rejections.
	if cfg.Count(model.ZGBO) == 0 {
		t.Fatal("no O adsorbed under shifting tilings")
	}
}

func TestBCAErrors(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	if _, err := NewBCA(cm, cfg, rng.New(1), 5, 5, []lattice.Vec{{}}); err == nil {
		t.Error("accepted non-dividing block size")
	}
	if _, err := NewBCA(cm, cfg, rng.New(1), 4, 4, nil); err == nil {
		t.Error("accepted empty origin list")
	}
	other := lattice.NewConfig(lattice.NewSquare(8))
	if _, err := NewBCA(cm, other, rng.New(1), 4, 4, []lattice.Vec{{}}); err == nil {
		t.Error("accepted mismatched lattice")
	}
}

func TestBCA1DFig3(t *testing.T) {
	// Nine sites, blocks of three, as in Fig. 3. A zero at a block edge
	// cannot cross into the neighbouring block while the origin is
	// fixed.
	initial := []lattice.Species{0, 1, 1, 1, 1, 1, 0, 1, 1}
	states, err := BCA1D(initial, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Block {0,1,2}: zero at 0 kills 1; blocks {3,4,5}: untouched;
	// block {6,7,8}: zero at 6 kills 7.
	want := []lattice.Species{0, 0, 1, 1, 1, 1, 0, 0, 1}
	for i, v := range want {
		if states[1][i] != v {
			t.Fatalf("after 1 static step: %v, want %v", states[1], want)
		}
	}
	// With the boundary static forever, sites 3..5 never die.
	states, _ = BCA1D(initial, 3, 0, 10)
	final := states[len(states)-1]
	if final[4] != 1 {
		t.Fatal("zero crossed a static block boundary")
	}
	// With a shifting origin (the Fig. 3 mechanism) the zeros reach
	// every site.
	states, _ = BCA1D(initial, 3, 1, 12)
	final = states[len(states)-1]
	for i, v := range final {
		if v != 0 {
			t.Fatalf("site %d survived shifting-block dynamics: %v", i, final)
		}
	}
}

func TestBCA1DErrors(t *testing.T) {
	if _, err := BCA1D([]lattice.Species{1, 1}, 3, 0, 1); err == nil {
		t.Error("accepted non-dividing block size")
	}
	if _, err := BCA1D(nil, 3, 0, 1); err == nil {
		t.Error("accepted empty lattice")
	}
}

func BenchmarkNDCAStepZGB(b *testing.B) {
	cm, cfg, src := ndcaSetup(b, 64, 1)
	a := NewNDCA(cm, cfg, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step()
	}
}

func BenchmarkSyncNDCAStepZGB(b *testing.B) {
	cm, cfg, src := ndcaSetup(b, 64, 1)
	a := NewSyncNDCA(cm, cfg, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step()
	}
}
