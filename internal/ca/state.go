// Engine checkpoint payloads (registry.Engine.SaveState/LoadState) for
// the CA engines.

package ca

import (
	"io"

	"parsurf/internal/persist"
)

// SaveState writes the NDCA clock, counters and the sweep order. The
// order is shuffled in place across steps under RandomOrder, so it is
// history-dependent and must survive verbatim.
func (a *NDCA) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(a.time)
	e.U64(a.steps)
	e.U64(a.trials)
	e.U64(a.successes)
	e.U32(uint32(len(a.order)))
	for _, s := range a.order {
		e.U32(uint32(s))
	}
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (a *NDCA) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	simTime := d.F64()
	steps := d.U64()
	trials := d.U64()
	successes := d.U64()
	n := d.U32()
	if d.Err() == nil && int(n) != len(a.order) {
		d.Failf("ca: ndca payload orders %d sites, lattice has %d", n, len(a.order))
	}
	order := make([]int, 0, n)
	for i := 0; i < int(n) && d.Err() == nil; i++ {
		s := d.U32()
		if d.Err() == nil && int(s) >= len(a.order) {
			d.Failf("ca: ndca payload site %d outside lattice", s)
			break
		}
		order = append(order, int(s))
	}
	if err := d.Err(); err != nil {
		return err
	}
	copy(a.order, order)
	a.time = simTime
	a.steps, a.trials, a.successes = steps, trials, successes
	return nil
}

// SaveState writes the synchronous NDCA clock and counters; claim
// tables, proposals and winner buffers are rebuilt from scratch every
// Step.
func (a *SyncNDCA) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(a.time)
	e.U64(a.steps)
	e.U64(a.proposed)
	e.U64(a.conflicts)
	e.U64(a.executed)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (a *SyncNDCA) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	a.time = d.F64()
	a.steps = d.U64()
	a.proposed = d.U64()
	a.conflicts = d.U64()
	a.executed = d.U64()
	return d.Err()
}

// SaveState writes the BCA clock, tiling phase and counters; the
// precomputed shifted tilings are a pure function of geometry and are
// rebuilt by construction.
func (b *BCA) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(b.time)
	e.U64(uint64(b.phase))
	e.U64(b.steps)
	e.U64(b.trials)
	e.U64(b.successes)
	e.U64(b.rejected)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (b *BCA) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	simTime := d.F64()
	phase := d.U64()
	steps := d.U64()
	trials := d.U64()
	successes := d.U64()
	rejected := d.U64()
	if d.Err() == nil && phase >= uint64(len(b.tilings)) {
		d.Failf("ca: bca payload phase %d with %d tilings", phase, len(b.tilings))
	}
	if err := d.Err(); err != nil {
		return err
	}
	b.time = simTime
	b.phase = int(phase)
	b.steps, b.trials, b.successes, b.rejected = steps, trials, successes, rejected
	return nil
}
