// Package ca implements the Cellular Automaton simulation methods of §4
// of the paper: the deterministic synchronous CA, the Non-Deterministic
// CA (NDCA) whose per-site reaction choice is weighted by the rate
// constants, a fully synchronous NDCA that exposes the conflict problem
// of Fig. 2, and the Block Cellular Automaton (BCA) of §5 with shifting
// block boundaries (Fig. 3).
//
// The partitioned algorithms derived from these (PNDCA, L-PNDCA and the
// type-partitioned variant — the paper's contribution) live in
// internal/core.
package ca

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// Rule is a deterministic CA transition: given the read-only previous
// configuration and a site, it returns the site's next state.
type Rule func(prev *lattice.Config, s int) lattice.Species

// DCA is a deterministic synchronous cellular automaton: every step all
// sites are rewritten simultaneously from the previous state.
type DCA struct {
	cfg  *lattice.Config
	next *lattice.Config
	rule Rule
	step int
}

// NewDCA returns a deterministic CA applying rule to cfg in place.
func NewDCA(cfg *lattice.Config, rule Rule) *DCA {
	return &DCA{cfg: cfg, next: cfg.Clone(), rule: rule}
}

// Step applies one synchronous update. It always reports true.
//
//surflint:hotpath
func (d *DCA) Step() bool {
	n := d.cfg.Lattice().N()
	for s := 0; s < n; s++ {
		d.next.Set(s, d.rule(d.cfg, s))
	}
	d.cfg.CopyFrom(d.next)
	d.step++
	return true
}

// Time returns the number of synchronous steps taken.
func (d *DCA) Time() float64 { return float64(d.step) }

// Config returns the live configuration.
func (d *DCA) Config() *lattice.Config { return d.cfg }

// ZeroRule1D is the rule of the paper's Fig. 3 example on a 1-D lattice
// (height 1): a site's state becomes 0 if at least one of its two
// neighbours is 0, otherwise it keeps its state.
func ZeroRule1D(prev *lattice.Config, s int) lattice.Species {
	lat := prev.Lattice()
	if prev.Get(lat.Translate(s, lattice.Vec{DX: 1})) == 0 ||
		prev.Get(lat.Translate(s, lattice.Vec{DX: -1})) == 0 {
		return 0
	}
	return prev.Get(s)
}

// MajorityRule2D flips each site to the majority species (0/1) of its
// von Neumann neighbourhood, including itself; ties keep the state.
func MajorityRule2D(prev *lattice.Config, s int) lattice.Species {
	lat := prev.Lattice()
	ones := 0
	for _, o := range lattice.VonNeumann() {
		if prev.Get(lat.Translate(s, o)) == 1 {
			ones++
		}
	}
	switch {
	case ones >= 3:
		return 1
	case ones <= 2:
		return 0
	}
	return prev.Get(s)
}

// NDCA is the Non-Deterministic Cellular Automaton of §4, in its
// site-sequential reading: each step visits every site once (in raster
// order, or in a fresh random order when RandomOrder is set), selects a
// reaction type with probability k_i/K, executes it if enabled, and
// advances the time exactly like an RSM trial. The difference from RSM
// is the site-selection mechanism — every site exactly once per step —
// which the paper identifies as the source of NDCA's bias.
type NDCA struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	time  float64
	order []int
	// swap is the Shuffle callback over order, built once: a closure
	// literal in Step would escape and allocate every call.
	swap func(i, j int)

	// RandomOrder shuffles the sweep order every step.
	RandomOrder bool
	// DeterministicTime uses 1/(N·K) per trial instead of Exp(N·K).
	DeterministicTime bool

	steps     uint64
	trials    uint64
	successes uint64
}

// NewNDCA returns an NDCA engine over the compiled model.
func NewNDCA(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *NDCA {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("ca: configuration lattice differs from compiled lattice")
	}
	order := make([]int, cm.Lat.N())
	for i := range order {
		order[i] = i
	}
	a := &NDCA{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, order: order}
	a.swap = func(i, j int) { a.order[i], a.order[j] = a.order[j], a.order[i] }
	return a
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The sweep order returns to the raster
// identity a fresh engine starts from (RandomOrder shuffles it in
// place, so a reused engine would otherwise begin mid-permutation).
func (a *NDCA) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(a.cm.Lat) {
		panic("ca: Reset configuration lattice differs from compiled lattice")
	}
	a.cfg, a.cells, a.src = cfg, cfg.Cells(), src
	a.time = 0
	a.steps, a.trials, a.successes = 0, 0, 0
	for i := range a.order {
		a.order[i] = i
	}
}

// Step performs one NDCA step: one trial at every site.
//
//surflint:hotpath
func (a *NDCA) Step() bool {
	n := a.cm.Lat.N()
	nk := float64(n) * a.cm.K
	if a.RandomOrder {
		a.src.Shuffle(n, a.swap)
	}
	for _, s := range a.order {
		rt := a.cm.PickType(a.src.Float64())
		if a.cm.TryExecute(a.cells, rt, s) {
			a.successes++
		}
		a.trials++
		if a.DeterministicTime {
			a.time += 1 / nk
		} else {
			a.time += a.src.Exp(nk)
		}
	}
	a.steps++
	return true
}

// Time returns the simulated time.
func (a *NDCA) Time() float64 { return a.time }

// Config returns the live configuration.
func (a *NDCA) Config() *lattice.Config { return a.cfg }

// Trials returns the number of trials attempted.
func (a *NDCA) Trials() uint64 { return a.trials }

// Successes returns the number of executed reactions.
func (a *NDCA) Successes() uint64 { return a.successes }
