// Package cluster provides spatial analysis of lattice configurations:
// connected-component labelling (union–find) of same-species domains,
// island counting and size distributions. The Pt(100) oscillation
// experiments use it to track the growth and shrinkage of the 1×1
// phase islands that drive the cycle; the ZGB experiments use it to
// inspect poisoning clusters near the first-order transition.
package cluster

import (
	"sort"

	"parsurf/internal/lattice"
)

// unionFind is a weighted quick-union structure with path halving.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// Labeling is the result of connected-component analysis.
type Labeling struct {
	// Label[s] is the component id of site s, or -1 for sites outside
	// the selected species set.
	Label []int32
	// Sizes[id] is the number of sites in component id.
	Sizes []int
}

// NumClusters returns the number of components.
func (lb *Labeling) NumClusters() int { return len(lb.Sizes) }

// LargestCluster returns the size of the biggest component (0 if none).
func (lb *Labeling) LargestCluster() int {
	max := 0
	for _, s := range lb.Sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// SizeHistogram returns cluster sizes in descending order.
func (lb *Labeling) SizeHistogram() []int {
	out := append([]int(nil), lb.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Components labels the 4-connected clusters of sites whose species
// satisfies the predicate (periodic boundaries included).
func Components(c *lattice.Config, include func(lattice.Species) bool) *Labeling {
	lat := c.Lattice()
	n := lat.N()
	uf := newUnionFind(n)
	// Union east and north neighbours only: each undirected bond once.
	east := lattice.Vec{DX: 1}
	north := lattice.Vec{DY: 1}
	for s := 0; s < n; s++ {
		if !include(c.Get(s)) {
			continue
		}
		if e := lat.Translate(s, east); include(c.Get(e)) {
			uf.union(int32(s), int32(e))
		}
		if v := lat.Translate(s, north); include(c.Get(v)) {
			uf.union(int32(s), int32(v))
		}
	}
	lb := &Labeling{Label: make([]int32, n)}
	rootToID := make(map[int32]int32)
	for s := 0; s < n; s++ {
		if !include(c.Get(s)) {
			lb.Label[s] = -1
			continue
		}
		root := uf.find(int32(s))
		id, ok := rootToID[root]
		if !ok {
			id = int32(len(lb.Sizes))
			rootToID[root] = id
			lb.Sizes = append(lb.Sizes, 0)
		}
		lb.Label[s] = id
		lb.Sizes[id]++
	}
	return lb
}

// SpeciesComponents labels clusters of exactly one species.
func SpeciesComponents(c *lattice.Config, sp lattice.Species) *Labeling {
	return Components(c, func(s lattice.Species) bool { return s == sp })
}

// GroupComponents labels clusters of any species in the group.
func GroupComponents(c *lattice.Config, group ...lattice.Species) *Labeling {
	set := make(map[lattice.Species]bool, len(group))
	for _, sp := range group {
		set[sp] = true
	}
	return Components(c, func(s lattice.Species) bool { return set[s] })
}

// Stats summarises a labelling.
type Stats struct {
	Clusters int
	Sites    int
	Largest  int
	MeanSize float64
}

// Summarize computes aggregate statistics of a labelling.
func Summarize(lb *Labeling) Stats {
	st := Stats{Clusters: lb.NumClusters(), Largest: lb.LargestCluster()}
	for _, s := range lb.Sizes {
		st.Sites += s
	}
	if st.Clusters > 0 {
		st.MeanSize = float64(st.Sites) / float64(st.Clusters)
	}
	return st
}
