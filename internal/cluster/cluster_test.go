package cluster

import (
	"testing"
	"testing/quick"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

func TestEmptyLattice(t *testing.T) {
	c := lattice.NewConfig(lattice.NewSquare(8))
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 0 || lb.LargestCluster() != 0 {
		t.Fatalf("clusters on empty lattice: %+v", lb)
	}
	for _, l := range lb.Label {
		if l != -1 {
			t.Fatal("label assigned to excluded site")
		}
	}
}

func TestSingleCluster(t *testing.T) {
	lat := lattice.NewSquare(8)
	c := lattice.NewConfig(lat)
	// An L-shaped pentomino.
	for _, xy := range [][2]int{{2, 2}, {2, 3}, {2, 4}, {3, 4}, {4, 4}} {
		c.SetXY(xy[0], xy[1], 1)
	}
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 1 {
		t.Fatalf("clusters = %d, want 1", lb.NumClusters())
	}
	if lb.Sizes[0] != 5 {
		t.Fatalf("size = %d", lb.Sizes[0])
	}
}

func TestDiagonalNotConnected(t *testing.T) {
	lat := lattice.NewSquare(8)
	c := lattice.NewConfig(lat)
	c.SetXY(1, 1, 1)
	c.SetXY(2, 2, 1)
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 2 {
		t.Fatalf("diagonal sites merged: %d clusters", lb.NumClusters())
	}
}

func TestPeriodicWrap(t *testing.T) {
	lat := lattice.NewSquare(6)
	c := lattice.NewConfig(lat)
	// A row crossing the x boundary.
	c.SetXY(5, 2, 1)
	c.SetXY(0, 2, 1)
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 1 {
		t.Fatalf("wrap-around bond missed: %d clusters", lb.NumClusters())
	}
	// And the y boundary.
	d := lattice.NewConfig(lat)
	d.SetXY(3, 5, 1)
	d.SetXY(3, 0, 1)
	if lb := SpeciesComponents(d, 1); lb.NumClusters() != 1 {
		t.Fatalf("y wrap missed: %d clusters", lb.NumClusters())
	}
}

func TestFullLatticeOneCluster(t *testing.T) {
	lat := lattice.NewSquare(10)
	c := lattice.NewConfig(lat)
	c.Fill(1)
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 1 || lb.Sizes[0] != 100 {
		t.Fatalf("full lattice: %+v", lb.Sizes)
	}
}

func TestCheckerboardAllSingletons(t *testing.T) {
	lat := lattice.NewSquare(8)
	c := lattice.NewConfig(lat)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				c.SetXY(x, y, 1)
			}
		}
	}
	lb := SpeciesComponents(c, 1)
	if lb.NumClusters() != 32 {
		t.Fatalf("checkerboard: %d clusters, want 32", lb.NumClusters())
	}
	if lb.LargestCluster() != 1 {
		t.Fatal("checkerboard sites merged")
	}
}

func TestGroupComponents(t *testing.T) {
	lat := lattice.NewSquare(6)
	c := lattice.NewConfig(lat)
	c.SetXY(1, 1, 1)
	c.SetXY(2, 1, 2) // different species, adjacent
	lb := GroupComponents(c, 1, 2)
	if lb.NumClusters() != 1 || lb.Sizes[0] != 2 {
		t.Fatalf("group clustering failed: %+v", lb.Sizes)
	}
	if SpeciesComponents(c, 1).NumClusters() != 1 {
		t.Fatal("single species clustering changed")
	}
}

func TestSizeHistogramSorted(t *testing.T) {
	lat := lattice.NewSquare(10)
	c := lattice.NewConfig(lat)
	// Three islands of sizes 1, 3, 2 (separated).
	c.SetXY(0, 0, 1)
	c.SetXY(4, 4, 1)
	c.SetXY(5, 4, 1)
	c.SetXY(6, 4, 1)
	c.SetXY(0, 7, 1)
	c.SetXY(1, 7, 1)
	h := SpeciesComponents(c, 1).SizeHistogram()
	want := []int{3, 2, 1}
	if len(h) != 3 {
		t.Fatalf("histogram %v", h)
	}
	for i, v := range want {
		if h[i] != v {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	lat := lattice.NewSquare(6)
	c := lattice.NewConfig(lat)
	c.SetXY(0, 0, 1)
	c.SetXY(3, 3, 1)
	c.SetXY(3, 4, 1)
	st := Summarize(SpeciesComponents(c, 1))
	if st.Clusters != 2 || st.Sites != 3 || st.Largest != 2 || st.MeanSize != 1.5 {
		t.Fatalf("stats %+v", st)
	}
	empty := Summarize(SpeciesComponents(lattice.NewConfig(lat), 1))
	if empty.Clusters != 0 || empty.MeanSize != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}

// Property: total labelled sites equals the species count, and labels
// are consistent (same label ⟺ reachable; checked via size bookkeeping
// and bond-consistency).
func TestQuickLabellingConsistent(t *testing.T) {
	lat := lattice.NewSquare(12)
	f := func(seed uint64) bool {
		c := lattice.NewConfig(lat)
		src := rng.New(seed)
		c.Randomize([]float64{0.5, 0.5}, src.Float64)
		lb := SpeciesComponents(c, 1)
		total := 0
		for _, s := range lb.Sizes {
			if s <= 0 {
				return false
			}
			total += s
		}
		if total != c.Count(1) {
			return false
		}
		// Every bond between included sites joins equal labels.
		for s := 0; s < lat.N(); s++ {
			if c.Get(s) != 1 {
				continue
			}
			for _, d := range []lattice.Vec{{DX: 1}, {DY: 1}} {
				t2 := lat.Translate(s, d)
				if c.Get(t2) == 1 && lb.Label[s] != lb.Label[t2] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkComponents(b *testing.B) {
	lat := lattice.NewSquare(256)
	c := lattice.NewConfig(lat)
	src := rng.New(1)
	c.Randomize([]float64{0.4, 0.6}, src.Float64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpeciesComponents(c, 1)
	}
}
