// Package ensemble orchestrates replicated simulation runs: the shared
// internal/timegrid sampling grid re-exported as TimeGrid (both the
// sampling schedule and the merge step derive their points from it, so
// the two can never disagree on grid size or placement), a worker-pool
// runner with first-error sibling cancellation, and a streaming moment
// accumulator that merges members in index order for
// worker-count-independent results.
//
// The package is deliberately engine-agnostic: jobs are opaque
// functions and samples are plain float64 grids, so the facade owns all
// session wiring while the concurrency and float discipline live here.
package ensemble

import "parsurf/internal/timegrid"

// TimeGrid is the shared index-derived sampling grid (see
// internal/timegrid); the ensemble runner samples replicas and merges
// moments on the same instance.
type TimeGrid = timegrid.Grid

// NewTimeGrid returns the grid the ensemble runner uses for the given
// horizon and sampling interval: points from 0 to `until` spaced
// `every` apart, tail included.
func NewTimeGrid(until, every float64) (TimeGrid, error) {
	return timegrid.New(until, every)
}
