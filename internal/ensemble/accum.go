package ensemble

import (
	"context"
	"fmt"
	"sync"

	"parsurf/internal/stats"
)

// Accumulator merges per-member sample grids (vars × points, e.g.
// species × time grid) into streaming per-cell mean/variance moments.
// Members may be Added from any goroutine in any completion order —
// workers finish when they finish — but the underlying moments commit
// strictly in member-index order, so the accumulated floats are
// bit-identical for every worker count. Out-of-order arrivals wait in
// a reorder buffer bounded by the configured window: an Add running
// more than `window` members ahead of the commit frontier blocks until
// the frontier advances, keeping memory O(vars·points·window) — never
// O(members) — even when one early member runs far longer than its
// siblings.
type Accumulator struct {
	mu      sync.Mutex
	moments *stats.MomentGrid
	next    int
	window  int
	pending map[int][][]float64
	// advanced is closed (and replaced) whenever the commit frontier
	// moves, waking Adds blocked on the window.
	advanced chan struct{}
	// release, when set, receives each member's values right after they
	// commit into the moments; the accumulator never reads them again,
	// so the callback may recycle the buffers.
	release func(values [][]float64)
}

// NewAccumulator returns an accumulator over a vars × points grid with
// the given reorder window (clamped to at least 1; the worker count is
// the natural choice — more can never block).
func NewAccumulator(vars, points, window int) *Accumulator {
	if window < 1 {
		window = 1
	}
	return &Accumulator{
		moments:  stats.NewMomentGrid(vars, points),
		window:   window,
		pending:  make(map[int][][]float64),
		advanced: make(chan struct{}),
	}
}

// SetRelease registers fn to receive each member's values once they
// have committed into the moments. A member's buffers are read between
// its Add and its commit (which can happen during a later member's Add,
// on that member's goroutine), never after fn sees them — fn may
// therefore return them to a pool. The callback runs with the
// accumulator's lock held, so it must be cheap and must not call back
// into the accumulator. Set it before the first Add.
func (a *Accumulator) SetRelease(fn func(values [][]float64)) {
	a.release = fn
}

// Add records member i's samples (vars rows of points values each).
// Each member index must be added exactly once; values are read but
// never written, and are released as soon as the member commits. Add
// blocks while member is at least `window` past the commit frontier;
// ctx aborts the wait (the frontier member itself never blocks, so a
// run where every member eventually Adds or errors cannot deadlock).
func (a *Accumulator) Add(ctx context.Context, member int, values [][]float64) error {
	a.mu.Lock()
	for member >= a.next+a.window {
		ch := a.advanced
		a.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		a.mu.Lock()
	}
	defer a.mu.Unlock()
	if member < a.next {
		panic(fmt.Sprintf("ensemble: member %d added twice (already committed)", member))
	}
	if _, dup := a.pending[member]; dup {
		panic(fmt.Sprintf("ensemble: member %d added twice (still pending)", member))
	}
	a.pending[member] = values
	committed := false
	for {
		v, ok := a.pending[a.next]
		if !ok {
			break
		}
		delete(a.pending, a.next)
		a.moments.AddMember(v)
		if a.release != nil {
			a.release(v)
		}
		a.next++
		committed = true
	}
	if committed {
		close(a.advanced)
		a.advanced = make(chan struct{})
	}
	return nil
}

// Merged returns how many members have committed (the length of the
// gap-free prefix of added member indices).
func (a *Accumulator) Merged() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// Pending returns how many members sit in the reorder buffer (always
// less than the window).
func (a *Accumulator) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// MeanStd returns the per-cell mean and sample standard deviation over
// the committed members. It panics when out-of-order members are still
// waiting on a gap — callers must only read after every member ran.
func (a *Accumulator) MeanStd() (mean, std [][]float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pending) > 0 {
		panic(fmt.Sprintf("ensemble: MeanStd with %d uncommitted members (gap at index %d)", len(a.pending), a.next))
	}
	return a.moments.MeanStd()
}
