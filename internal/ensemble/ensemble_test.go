package ensemble

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsurf/internal/stats"
)

// The first failing job cancels its siblings: the others see their
// context done and abort, and Run reports the original error, not an
// induced context.Canceled.
func TestRunFirstErrorCancelsSiblings(t *testing.T) {
	errBoom := errors.New("boom")
	const jobs, failing = 8, 3
	var cancelled atomic.Int32
	err := Run(context.Background(), jobs, 4, func(ctx context.Context, i int) error {
		if i == failing {
			return fmt.Errorf("job %d: %w", i, errBoom)
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return fmt.Errorf("job %d: sibling cancellation never arrived", i)
		}
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run returned %v, want the root-cause boom error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned an induced cancellation: %v", err)
	}
	if cancelled.Load() == 0 {
		t.Fatal("no sibling observed the cancellation")
	}
}

// After the first failure the producer must stop feeding the queue
// (select on ctx.Done) and drained jobs must not run: a failure on the
// first job of a long queue leaves almost all of it unexecuted.
func TestRunAbortDrainsQueue(t *testing.T) {
	errBoom := errors.New("boom")
	const jobs = 10000
	var executed atomic.Int32
	err := Run(context.Background(), jobs, 2, func(ctx context.Context, i int) error {
		executed.Add(1)
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run returned %v, want boom", err)
	}
	if n := executed.Load(); n > jobs/2 {
		t.Fatalf("%d of %d jobs executed after the first failure", n, jobs)
	}
}

// Caller cancellation surfaces as the caller's ctx error.
func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started
		cancel()
	}()
	err := Run(ctx, 4, 2, func(ctx context.Context, i int) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

func TestRunAllJobsOnce(t *testing.T) {
	const jobs = 100
	ran := make([]atomic.Int32, jobs)
	if err := Run(context.Background(), jobs, 7, func(ctx context.Context, i int) error {
		ran[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func memberValues(member, vars, points int) [][]float64 {
	values := make([][]float64, vars)
	for v := range values {
		values[v] = make([]float64, points)
		for p := range values[v] {
			values[v][p] = float64(member)*1.25 + float64(v)*0.5 + float64(p)*0.125
		}
	}
	return values
}

// Commits happen in member order regardless of Add order, so the
// moments are bit-identical for every arrival interleaving.
func TestAccumulatorOrderIndependent(t *testing.T) {
	const vars, points, members = 2, 5, 7
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
	}
	var wantMean, wantStd [][]float64
	for _, order := range orders {
		acc := NewAccumulator(vars, points, members)
		for _, m := range order {
			mustAdd(t, acc, m, memberValues(m, vars, points))
		}
		if acc.Merged() != members {
			t.Fatalf("order %v: %d members merged, want %d", order, acc.Merged(), members)
		}
		mean, std := acc.MeanStd()
		if wantMean == nil {
			wantMean, wantStd = mean, std
			continue
		}
		for v := 0; v < vars; v++ {
			for p := 0; p < points; p++ {
				if mean[v][p] != wantMean[v][p] || std[v][p] != wantStd[v][p] {
					t.Fatalf("order %v: moments differ at (%d, %d)", order, v, p)
				}
			}
		}
	}
	// Cross-check one cell against a direct Welford pass.
	var w stats.Welford
	for m := 0; m < members; m++ {
		w.Add(memberValues(m, vars, points)[1][3])
	}
	if wantMean[1][3] != w.Mean() || wantStd[1][3] != w.Std() {
		t.Fatalf("cell (1,3) mean/std %v/%v, want %v/%v", wantMean[1][3], wantStd[1][3], w.Mean(), w.Std())
	}
}

func TestAccumulatorRejectsDuplicates(t *testing.T) {
	acc := NewAccumulator(1, 2, 8)
	mustAdd(t, acc, 0, memberValues(0, 1, 2))
	for name, member := range map[string]int{"committed": 0, "pending": 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duplicate %s member accepted", name)
				}
			}()
			mustAdd(t, acc, member, memberValues(member, 1, 2))
			mustAdd(t, acc, member, memberValues(member, 1, 2))
		}()
	}
}

func mustAdd(t *testing.T, acc *Accumulator, member int, values [][]float64) {
	t.Helper()
	if err := acc.Add(context.Background(), member, values); err != nil {
		t.Fatal(err)
	}
}

// The reorder buffer is bounded by the window: an Add running too far
// ahead of the commit frontier blocks until the frontier advances, and
// a cancelled context aborts the wait instead of deadlocking.
func TestAccumulatorWindowBoundsBuffer(t *testing.T) {
	acc := NewAccumulator(1, 2, 2)
	blocked := make(chan error, 1)
	go func() { blocked <- acc.Add(context.Background(), 2, memberValues(2, 1, 2)) }()
	select {
	case err := <-blocked:
		t.Fatalf("Add(2) did not block on a full window (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	mustAdd(t, acc, 0, memberValues(0, 1, 2)) // frontier → 1, window admits 2
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if p := acc.Pending(); p >= 2 {
		t.Fatalf("reorder buffer holds %d members, window is 2", p)
	}
	mustAdd(t, acc, 1, memberValues(1, 1, 2))
	if acc.Merged() != 3 {
		t.Fatalf("%d members merged, want 3", acc.Merged())
	}

	ctx, cancel := context.WithCancel(context.Background())
	acc2 := NewAccumulator(1, 2, 1)
	waiting := make(chan error, 1)
	go func() { waiting <- acc2.Add(ctx, 1, memberValues(1, 1, 2)) }()
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Add returned %v, want context.Canceled", err)
	}
}

// A cancellation landing only after every job already succeeded does
// not discard the completed result.
func TestRunLateCancellationKeepsResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const jobs = 4
	var done atomic.Int32
	err := Run(ctx, jobs, 2, func(ctx context.Context, i int) error {
		if done.Add(1) == jobs {
			cancel() // fires inside the final job, after all work is done
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run returned %v after every job succeeded", err)
	}
}

// The release hook fires exactly once per member, in commit (member)
// order, no matter how out of order the Adds arrive — the contract the
// parsurf sample-buffer pool recycles on.
func TestAccumulatorReleaseFiresOnCommit(t *testing.T) {
	const vars, points, members = 2, 3, 5
	acc := NewAccumulator(vars, points, members)
	buffers := make([][][]float64, members)
	for m := range buffers {
		buffers[m] = memberValues(m, vars, points)
	}
	var released [][][]float64
	acc.SetRelease(func(v [][]float64) { released = append(released, v) })

	for _, m := range []int{2, 0, 4, 3, 1} {
		mustAdd(t, acc, m, buffers[m])
	}
	if len(released) != members {
		t.Fatalf("release fired %d times, want %d", len(released), members)
	}
	for m, v := range released {
		if &v[0][0] != &buffers[m][0][0] {
			t.Errorf("release %d did not hand back member %d's buffer", m, m)
		}
	}
	mean, _ := acc.MeanStd()
	if len(mean) != vars || len(mean[0]) != points {
		t.Fatalf("MeanStd shape %dx%d after releases", len(mean), len(mean[0]))
	}
}

// A panicking job is contained: Run returns a *PanicError carrying the
// panic value and a stack trace, siblings are cancelled (not crashed),
// and the test process — standing in for surfd — survives.
func TestRunPanicContained(t *testing.T) {
	const jobs, panicking = 8, 2
	var cancelled atomic.Int32
	err := Run(context.Background(), jobs, 4, func(ctx context.Context, i int) error {
		if i == panicking {
			panic("engine bug")
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return fmt.Errorf("job %d: sibling cancellation never arrived", i)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v (%T), want *PanicError", err, err)
	}
	if pe.Job != panicking {
		t.Errorf("PanicError.Job = %d, want %d", pe.Job, panicking)
	}
	if pe.Value != "engine bug" {
		t.Errorf("PanicError.Value = %v, want \"engine bug\"", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "ensemble_test.go") {
		t.Errorf("PanicError.Stack does not point at the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "engine bug") {
		t.Errorf("error text %q does not carry the panic value", err.Error())
	}
	if cancelled.Load() == 0 {
		t.Fatal("no sibling observed the cancellation")
	}
}

// A panic carrying a nil-ish error value must still convert: recover()
// returning a typed nil or plain error is containment's worst case.
func TestRunPanicErrorValue(t *testing.T) {
	cause := errors.New("wrapped cause")
	err := Run(context.Background(), 1, 1, func(ctx context.Context, i int) error {
		panic(cause)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v (%T), want *PanicError", err, err)
	}
	if pe.Value != cause {
		t.Errorf("PanicError.Value = %v, want the panicked error", pe.Value)
	}
}
