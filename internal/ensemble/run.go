package ensemble

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from one job's goroutine, converted
// into a first-class error so it flows through the normal first-error
// cancellation instead of crashing the process. Value is the recovered
// panic value; Stack is the goroutine stack captured at recovery time,
// so the failure stays diagnosable after the goroutine is gone. Match
// with errors.As.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("ensemble: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// runSafe invokes run(ctx, i), converting a panic into a *PanicError.
// The conversion is deliberate containment, not suppression: the panic
// becomes the job's error, cancels the siblings, and surfaces from Run
// with its full stack — while the worker pool and the process live on.
func runSafe(ctx context.Context, i int, run func(ctx context.Context, job int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Job: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return run(ctx, i)
}

// Run executes jobs 0..jobs-1 over a pool of `workers` goroutines and
// returns the root-cause error of the first failure, cancelling every
// sibling as soon as one job fails:
//
//   - the run context handed to each job is cancelled on the first
//     recorded failure, so in-flight siblings abort at their next
//     context check (one engine step for the simulation runners);
//   - the job queue stops feeding: enqueueing selects on cancellation,
//     so the producer can never block forever on workers that have
//     stopped making progress, and already-queued jobs are drained
//     without running;
//   - the error returned is the failure itself — the lowest-indexed
//     non-cancellation error — never a sibling's induced
//     context.Canceled.
//
// A nil return means every job ran and returned nil. Cancellation of
// the caller's ctx surfaces as ctx.Err() unless a real job failure is
// the better explanation.
//
// A panic inside run is contained: the worker recovers it into a
// *PanicError carrying the stack, which cancels the siblings and is
// returned like any other failure — one buggy job never takes down the
// pool or the process.
func Run(ctx context.Context, jobs, workers int, run func(ctx context.Context, job int) error) error {
	if jobs <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, jobs)
	var completed atomic.Int64
	queue := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				if err := runCtx.Err(); err != nil {
					errs[i] = err // drained after the abort, never ran
					continue
				}
				if err := runSafe(runCtx, i, run); err != nil {
					errs[i] = err
					cancel() // first failure aborts the siblings
				} else {
					completed.Add(1)
				}
			}
		}()
	}
enqueue:
	for i := 0; i < jobs; i++ {
		select {
		case queue <- i:
		case <-runCtx.Done():
			break enqueue
		}
	}
	close(queue)
	wg.Wait()
	return rootCause(ctx, int(completed.Load()) == jobs, errs)
}

// rootCause picks the error Run reports: the lowest-indexed real
// failure wins; induced cancellations (siblings aborted after the
// first failure) are only reported when nothing explains them — and
// then the caller's own ctx error takes precedence, since that is what
// triggered them. allCompleted distinguishes "every job ran and
// succeeded" (a cancellation landing after that changes nothing — the
// result is complete) from "jobs were skipped or aborted" (a
// pre-cancelled ctx must surface even though no job recorded an
// error).
func rootCause(ctx context.Context, allCompleted bool, errs []error) error {
	var induced error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if induced == nil {
				induced = err
			}
			continue
		}
		return err
	}
	if allCompleted {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return induced
}
