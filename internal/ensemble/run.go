package ensemble

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Run executes jobs 0..jobs-1 over a pool of `workers` goroutines and
// returns the root-cause error of the first failure, cancelling every
// sibling as soon as one job fails:
//
//   - the run context handed to each job is cancelled on the first
//     recorded failure, so in-flight siblings abort at their next
//     context check (one engine step for the simulation runners);
//   - the job queue stops feeding: enqueueing selects on cancellation,
//     so the producer can never block forever on workers that have
//     stopped making progress, and already-queued jobs are drained
//     without running;
//   - the error returned is the failure itself — the lowest-indexed
//     non-cancellation error — never a sibling's induced
//     context.Canceled.
//
// A nil return means every job ran and returned nil. Cancellation of
// the caller's ctx surfaces as ctx.Err() unless a real job failure is
// the better explanation.
func Run(ctx context.Context, jobs, workers int, run func(ctx context.Context, job int) error) error {
	if jobs <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, jobs)
	var completed atomic.Int64
	queue := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				if err := runCtx.Err(); err != nil {
					errs[i] = err // drained after the abort, never ran
					continue
				}
				if err := run(runCtx, i); err != nil {
					errs[i] = err
					cancel() // first failure aborts the siblings
				} else {
					completed.Add(1)
				}
			}
		}()
	}
enqueue:
	for i := 0; i < jobs; i++ {
		select {
		case queue <- i:
		case <-runCtx.Done():
			break enqueue
		}
	}
	close(queue)
	wg.Wait()
	return rootCause(ctx, int(completed.Load()) == jobs, errs)
}

// rootCause picks the error Run reports: the lowest-indexed real
// failure wins; induced cancellations (siblings aborted after the
// first failure) are only reported when nothing explains them — and
// then the caller's own ctx error takes precedence, since that is what
// triggered them. allCompleted distinguishes "every job ran and
// succeeded" (a cancellation landing after that changes nothing — the
// result is complete) from "jobs were skipped or aborted" (a
// pre-cancelled ctx must surface even though no job recorded an
// error).
func rootCause(ctx context.Context, allCompleted bool, errs []error) error {
	var induced error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if induced == nil {
				induced = err
			}
			continue
		}
		return err
	}
	if allCompleted {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return induced
}
