// Package registry is the central name → engine table of the
// repository: every simulation engine package (internal/dmc,
// internal/ca, internal/core, internal/parallel, internal/ziff)
// registers a named factory here from its init function, and the public
// façade resolves engines by string name with per-engine option
// validation.
//
// The registry is what makes the paper's engine comparison a first-class
// operation: `New("rsm", …)` and `New("lpndca", …)` build interchangeable
// Engine values, so commands, examples and the Session/ensemble layers
// need no per-engine dispatch switches.
//
// Import cycle note: engine packages import registry (to register), so
// registry must not import any engine package. The Engine interface
// therefore restates the dmc.Simulator contract (Step/Time/Config)
// rather than embedding it; every dmc.Simulator implementation that adds
// Name/TotalRate/Steps satisfies both interfaces.
package registry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// Engine is the uniform contract of every registered engine. It is a
// superset of dmc.Simulator: the three simulation methods plus identity
// and bookkeeping accessors the comparison layers need.
type Engine interface {
	// Step advances the simulation by one algorithm-specific unit (one
	// MC step of N trials for trial-based engines, one reaction event
	// for event-based engines). It reports false when the system cannot
	// evolve further (absorbing state).
	Step() bool
	// Time returns the current simulated time.
	Time() float64
	// Config returns the live configuration.
	Config() *lattice.Config
	// Name returns the engine's registry name (e.g. "rsm", "lpndca").
	Name() string
	// TotalRate returns the engine's aggregate transition rate: the
	// state-dependent enabled propensity for bookkeeping engines (VSSM,
	// FRM) and the constant trial rate N·K for trial-based engines.
	TotalRate() float64
	// Steps returns the number of completed Step calls.
	Steps() uint64
	// Reset rewinds the engine to time zero over a fresh configuration:
	// the clock and every counter return to their construction values,
	// all incremental state (enabled sets, event queues, rate trees,
	// vacancy bitsets, sweep stream counters) is re-derived from cfg,
	// and all randomness is redirected to src — while every buffer the
	// constructor allocated (fenwick trees, event-queue slots, CSR
	// scratch, bitsets, partition sweep slots) is reused in place. The
	// configured options (partition, workers, block geometry, rates,
	// deterministic clock, …) are preserved. After Reset the engine's
	// trajectory is bit-identical to a freshly constructed engine over
	// the same (cfg, src) — the contract the ensemble replica pool
	// relies on. It panics when cfg's lattice shape differs from the
	// engine's.
	Reset(cfg *lattice.Config, src *rng.Source)
	// SaveState writes the engine-private evolution state that is
	// neither the configuration nor the raw random source: clocks,
	// counters, enabled-set orderings, event-queue layouts, drifted
	// rate trees — everything Reset re-derives differently than N
	// steps of history would have left it. The encoding is opaque to
	// callers and versioned only through the surrounding persist
	// checkpoint.
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState by the same
	// engine kind over the same model/lattice/options. It is called
	// after Reset(cfg, src) has installed the checkpointed
	// configuration and random source, and overwrites the
	// history-dependent remainder so the next Step continues the
	// interrupted trajectory bit-exactly.
	LoadState(r io.Reader) error
}

// OptionSet is a bitmask naming the Options fields an engine accepts;
// New rejects options outside the engine's declared set.
type OptionSet uint32

const (
	// OptL is the trials-per-chunk-selection parameter of L-PNDCA.
	OptL OptionSet = 1 << iota
	// OptStrategy is the L-PNDCA chunk-selection strategy.
	OptStrategy
	// OptPartition is a site partition (PNDCA, L-PNDCA).
	OptPartition
	// OptTypeSplit is the Ω×T reaction-type split (typepart).
	OptTypeSplit
	// OptWorkers is the sweep-goroutine / strip count.
	OptWorkers
	// OptY is the ZGB CO impingement fraction.
	OptY
	// OptBlocks is the BCA block geometry.
	OptBlocks
	// OptDeterministicTime replaces exponential clock increments with
	// their mean.
	OptDeterministicTime
)

var optionNames = []struct {
	bit  OptionSet
	name string
}{
	{OptL, "L"},
	{OptStrategy, "strategy"},
	{OptPartition, "partition"},
	{OptTypeSplit, "typesplit"},
	{OptWorkers, "workers"},
	{OptY, "y"},
	{OptBlocks, "blocks"},
	{OptDeterministicTime, "deterministic-time"},
}

func (s OptionSet) String() string {
	var names []string
	for _, o := range optionNames {
		if s&o.bit != 0 {
			names = append(names, o.name)
		}
	}
	return strings.Join(names, ", ")
}

// Options carries every per-engine construction parameter. The zero
// value means "engine defaults"; each factory consumes the fields its
// engine understands, and New rejects fields set for an engine that does
// not accept them.
type Options struct {
	// L is the L-PNDCA trials per chunk selection (0 = engine default).
	L int
	// Strategy is the L-PNDCA chunk-selection rule by name: "order",
	// "randomorder", "random" or "rates" ("" = engine default).
	Strategy string
	// Partition overrides the default site partition (nil = engine
	// default, the five-chunk von Neumann partition with a modular
	// colouring fallback). Caller-supplied partitions are trusted, so
	// deliberately invalid partitions remain usable in experiments.
	Partition *partition.Partition
	// PartitionSpec names a registered partition builder (e.g.
	// "vonneumann5", "modular:16") to be resolved against the model and
	// lattice at build time. Unlike Partition it is plain data, so it
	// survives spec serialization. Ignored when Partition is set.
	PartitionSpec string
	// TypeSplit overrides the default Ω×T split (nil = Table II split
	// by direction).
	TypeSplit *partition.TypeSplit
	// TypeSplitSpec names a registered type-split builder (e.g.
	// "bydirection"); the serializable counterpart of TypeSplit.
	TypeSplitSpec string
	// Workers is the sweep-goroutine count (PNDCA, typepart) or strip
	// count (DDRSM); 0 = sequential / engine default.
	Workers int
	// Y is the ZGB CO fraction; meaningful only when HasY is set.
	Y float64
	// HasY marks Y as explicitly set (y = 0 is a valid, if degenerate,
	// CO fraction, so presence cannot be inferred from the value).
	HasY bool
	// BlockW, BlockH are the BCA block dimensions (0 = engine default).
	BlockW, BlockH int
	// DeterministicTime replaces exponential clock increments with
	// their mean 1/(N·K).
	DeterministicTime bool
}

// set returns the bitmask of fields that deviate from the zero value.
func (o Options) set() OptionSet {
	var s OptionSet
	if o.L != 0 {
		s |= OptL
	}
	if o.Strategy != "" {
		s |= OptStrategy
	}
	if o.Partition != nil || o.PartitionSpec != "" {
		s |= OptPartition
	}
	if o.TypeSplit != nil || o.TypeSplitSpec != "" {
		s |= OptTypeSplit
	}
	if o.Workers != 0 {
		s |= OptWorkers
	}
	if o.HasY {
		s |= OptY
	}
	if o.BlockW != 0 || o.BlockH != 0 {
		s |= OptBlocks
	}
	if o.DeterministicTime {
		s |= OptDeterministicTime
	}
	return s
}

// Factory builds an engine over a compiled model, a configuration and a
// random source. cm is nil for model-free engines (Spec.ModelFree).
type Factory func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o Options) (Engine, error)

// Spec describes one registered engine.
type Spec struct {
	// Name is the registry key ("rsm", "vssm", …).
	Name string
	// Doc is a one-line description with the paper section.
	Doc string
	// Accepts is the set of options the engine's factory understands.
	Accepts OptionSet
	// ModelFree marks engines that need no compiled model (ziff).
	ModelFree bool
	// New is the factory.
	New Factory
}

var engines = map[string]Spec{}

// Register adds an engine spec; engine packages call it from init.
// Duplicate names and incomplete specs panic: both are programming
// errors caught at process start.
func Register(s Spec) {
	if s.Name == "" || s.New == nil {
		panic("registry: Register with empty name or nil factory")
	}
	if _, dup := engines[s.Name]; dup {
		panic(fmt.Sprintf("registry: engine %q registered twice", s.Name))
	}
	engines[s.Name] = s
}

// Names returns the registered engine names, sorted.
func Names() []string {
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec, sorted by name.
func Specs() []Spec {
	out := make([]Spec, 0, len(engines))
	for _, name := range Names() {
		out = append(out, engines[name])
	}
	return out
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := engines[name]
	return s, ok
}

// CheckOptions validates that every set option is one the named engine
// accepts, without building anything.
func CheckOptions(name string, o Options) error {
	spec, ok := engines[name]
	if !ok {
		return fmt.Errorf("registry: unknown engine %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if extra := o.set() &^ spec.Accepts; extra != 0 {
		return fmt.Errorf("registry: engine %q does not accept option(s) %s (accepts: %s)",
			name, extra, spec.Accepts)
	}
	return nil
}

// New builds the engine registered under name, validating that every
// set option is one the engine accepts. Named partition and type-split
// builder specs are resolved here against the compiled model, so
// factories only ever see the pointer fields.
func New(name string, cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o Options) (Engine, error) {
	spec, ok := engines[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown engine %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if cfg == nil {
		return nil, fmt.Errorf("registry: engine %q needs a configuration", name)
	}
	if src == nil {
		return nil, fmt.Errorf("registry: engine %q needs a random source", name)
	}
	if cm == nil && !spec.ModelFree {
		return nil, fmt.Errorf("registry: engine %q needs a compiled model", name)
	}
	if extra := o.set() &^ spec.Accepts; extra != 0 {
		return nil, fmt.Errorf("registry: engine %q does not accept option(s) %s (accepts: %s)",
			name, extra, spec.Accepts)
	}
	if o.Partition == nil && o.PartitionSpec != "" {
		p, err := BuildPartition(o.PartitionSpec, cm.Model, cm.Lat)
		if err != nil {
			return nil, err
		}
		o.Partition = p
	}
	if o.TypeSplit == nil && o.TypeSplitSpec != "" {
		ts, err := BuildTypeSplit(o.TypeSplitSpec, cm.Model, cm.Lat)
		if err != nil {
			return nil, err
		}
		o.TypeSplit = ts
	}
	return spec.New(cm, cfg, src, o)
}
