package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
)

// Named partition and type-split builders. A builder spec is a name with
// an optional ":<arg>" suffix (e.g. "modular:16"); the names are plain
// data, so a partition choice can live in a serialized session spec and
// be rebuilt deterministically on any machine. Builders receive the
// model and lattice the engine is being built for, which is exactly the
// information the closures they replace (PartitionWith et al.) closed
// over.

// PartitionBuilder describes one named site-partition builder.
type PartitionBuilder struct {
	// Name is the builder key ("vonneumann5", "modular", …).
	Name string
	// Doc is a one-line description, with the argument syntax when the
	// builder takes one.
	Doc string
	// NeedsModel marks builders that consult the reaction model (the
	// modular-colouring search); they are unavailable to model-free
	// engines.
	NeedsModel bool
	// Build constructs the partition. arg is the text after ":" in the
	// builder spec ("" when absent).
	Build func(m *model.Model, lat *lattice.Lattice, arg string) (*partition.Partition, error)
}

// TypeSplitBuilder describes one named Ω×T split builder.
type TypeSplitBuilder struct {
	Name string
	Doc  string
	// Build constructs the split from the model and lattice.
	Build func(m *model.Model, lat *lattice.Lattice, arg string) (*partition.TypeSplit, error)
}

var (
	partitionBuilders = map[string]PartitionBuilder{}
	typeSplitBuilders = map[string]TypeSplitBuilder{}
)

// RegisterPartitionBuilder adds a named partition builder; duplicates
// panic (a programming error caught at process start).
func RegisterPartitionBuilder(b PartitionBuilder) {
	if b.Name == "" || b.Build == nil {
		panic("registry: RegisterPartitionBuilder with empty name or nil builder")
	}
	if strings.Contains(b.Name, ":") {
		panic(fmt.Sprintf("registry: partition builder name %q must not contain ':'", b.Name))
	}
	if _, dup := partitionBuilders[b.Name]; dup {
		panic(fmt.Sprintf("registry: partition builder %q registered twice", b.Name))
	}
	partitionBuilders[b.Name] = b
}

// RegisterTypeSplitBuilder adds a named type-split builder; duplicates
// panic.
func RegisterTypeSplitBuilder(b TypeSplitBuilder) {
	if b.Name == "" || b.Build == nil {
		panic("registry: RegisterTypeSplitBuilder with empty name or nil builder")
	}
	if strings.Contains(b.Name, ":") {
		panic(fmt.Sprintf("registry: type-split builder name %q must not contain ':'", b.Name))
	}
	if _, dup := typeSplitBuilders[b.Name]; dup {
		panic(fmt.Sprintf("registry: type-split builder %q registered twice", b.Name))
	}
	typeSplitBuilders[b.Name] = b
}

// PartitionBuilderNames returns the registered builder names, sorted.
func PartitionBuilderNames() []string {
	names := make([]string, 0, len(partitionBuilders))
	for name := range partitionBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PartitionBuilders returns every registered partition builder, sorted
// by name.
func PartitionBuilders() []PartitionBuilder {
	out := make([]PartitionBuilder, 0, len(partitionBuilders))
	for _, name := range PartitionBuilderNames() {
		out = append(out, partitionBuilders[name])
	}
	return out
}

// TypeSplitBuilderNames returns the registered builder names, sorted.
func TypeSplitBuilderNames() []string {
	names := make([]string, 0, len(typeSplitBuilders))
	for name := range typeSplitBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TypeSplitBuilders returns every registered type-split builder, sorted
// by name.
func TypeSplitBuilders() []TypeSplitBuilder {
	out := make([]TypeSplitBuilder, 0, len(typeSplitBuilders))
	for _, name := range TypeSplitBuilderNames() {
		out = append(out, typeSplitBuilders[name])
	}
	return out
}

// splitBuilderSpec separates "name:arg" into its parts.
func splitBuilderSpec(spec string) (name, arg string) {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return spec, ""
}

// ValidatePartitionSpec checks that a partition builder spec names a
// registered builder with a well-formed argument, without building.
func ValidatePartitionSpec(spec string) error {
	name, arg := splitBuilderSpec(spec)
	b, ok := partitionBuilders[name]
	if !ok {
		return fmt.Errorf("registry: unknown partition builder %q (registered: %s)",
			spec, strings.Join(PartitionBuilderNames(), ", "))
	}
	if arg != "" && name != "modular" {
		return fmt.Errorf("registry: partition builder %q takes no argument (got %q)", b.Name, arg)
	}
	if name == "modular" && arg != "" {
		if k, err := strconv.Atoi(arg); err != nil || k < 1 {
			return fmt.Errorf("registry: partition builder spec %q: argument must be a positive colour bound", spec)
		}
	}
	return nil
}

// BuildPartition resolves a partition builder spec against a model and
// lattice. m may be nil for builders that do not consult the model.
func BuildPartition(spec string, m *model.Model, lat *lattice.Lattice) (*partition.Partition, error) {
	if err := ValidatePartitionSpec(spec); err != nil {
		return nil, err
	}
	name, arg := splitBuilderSpec(spec)
	b := partitionBuilders[name]
	if b.NeedsModel && m == nil {
		return nil, fmt.Errorf("registry: partition builder %q needs a model", spec)
	}
	p, err := b.Build(m, lat, arg)
	if err != nil {
		return nil, fmt.Errorf("registry: partition builder %q: %w", spec, err)
	}
	return p, nil
}

// ValidateTypeSplitSpec checks that a type-split builder spec names a
// registered builder.
func ValidateTypeSplitSpec(spec string) error {
	name, arg := splitBuilderSpec(spec)
	if _, ok := typeSplitBuilders[name]; !ok {
		return fmt.Errorf("registry: unknown type-split builder %q (registered: %s)",
			spec, strings.Join(TypeSplitBuilderNames(), ", "))
	}
	if arg != "" {
		return fmt.Errorf("registry: type-split builder %q takes no argument (got %q)", name, arg)
	}
	return nil
}

// BuildTypeSplit resolves a type-split builder spec against a model and
// lattice.
func BuildTypeSplit(spec string, m *model.Model, lat *lattice.Lattice) (*partition.TypeSplit, error) {
	if err := ValidateTypeSplitSpec(spec); err != nil {
		return nil, err
	}
	name, arg := splitBuilderSpec(spec)
	ts, err := typeSplitBuilders[name].Build(m, lat, arg)
	if err != nil {
		return nil, fmt.Errorf("registry: type-split builder %q: %w", spec, err)
	}
	return ts, nil
}

// defaultModularMaxK bounds the modular-colouring search when the
// "modular" builder is used without an explicit colour bound.
const defaultModularMaxK = 64

func init() {
	RegisterPartitionBuilder(PartitionBuilder{
		Name: "vonneumann5",
		Doc:  "five-chunk von Neumann colouring of Fig. 4 (extents must be multiples of 5)",
		Build: func(_ *model.Model, lat *lattice.Lattice, _ string) (*partition.Partition, error) {
			return partition.VonNeumann5(lat)
		},
	})
	RegisterPartitionBuilder(PartitionBuilder{
		Name: "checkerboard",
		Doc:  "two-chunk checkerboard of Fig. 6 (even extents)",
		Build: func(_ *model.Model, lat *lattice.Lattice, _ string) (*partition.Partition, error) {
			return partition.Checkerboard(lat)
		},
	})
	RegisterPartitionBuilder(PartitionBuilder{
		Name: "singlechunk",
		Doc:  "degenerate m=1 partition (L-PNDCA ≡ RSM)",
		Build: func(_ *model.Model, lat *lattice.Lattice, _ string) (*partition.Partition, error) {
			return partition.SingleChunk(lat), nil
		},
	})
	RegisterPartitionBuilder(PartitionBuilder{
		Name: "singletons",
		Doc:  "degenerate m=N partition (L-PNDCA with L=1 ≡ RSM)",
		Build: func(_ *model.Model, lat *lattice.Lattice, _ string) (*partition.Partition, error) {
			return partition.Singletons(lat), nil
		},
	})
	RegisterPartitionBuilder(PartitionBuilder{
		Name:       "modular",
		Doc:        "smallest valid modular colouring for the model; \"modular:K\" bounds the search at K colours",
		NeedsModel: true,
		Build: func(m *model.Model, lat *lattice.Lattice, arg string) (*partition.Partition, error) {
			maxK := defaultModularMaxK
			if arg != "" {
				maxK, _ = strconv.Atoi(arg) // validated by ValidatePartitionSpec
			}
			return partition.ModularColoring(m, lat, maxK)
		},
	})
	RegisterTypeSplitBuilder(TypeSplitBuilder{
		Name: "bydirection",
		Doc:  "Table II split by reaction direction with checkerboard partitions",
		Build: func(m *model.Model, lat *lattice.Lattice, _ string) (*partition.TypeSplit, error) {
			return partition.SplitByDirection(m, lat)
		},
	})
}
