package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// openBoth runs a subtest against the filesystem store and the
// in-memory one: the interface contract is one suite.
func openBoth(t *testing.T, f func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("fs", func(t *testing.T) {
		s, err := OpenFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f(t, s)
	})
	t.Run("mem", func(t *testing.T) {
		f(t, NewMem())
	})
}

func TestJobRecordRoundTrip(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		rec := &JobRecord{
			ID:        "job-7",
			Seq:       7,
			Hash:      "abc123",
			State:     "queued",
			Submitted: 12345,
			Request:   json.RawMessage(`{"until":5}`),
		}
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetJob("job-7")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
		// Overwrite wins.
		rec.State = "done"
		rec.Cached = true
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
		got, err = s.GetJob("job-7")
		if err != nil {
			t.Fatal(err)
		}
		if got.State != "done" || !got.Cached {
			t.Fatalf("overwrite lost: %+v", got)
		}
	})
}

func TestMissingKeysAreErrNotFound(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		if _, err := s.GetJob("job-404"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing job: %v, want ErrNotFound", err)
		}
		if _, err := s.GetResult("deadbeef"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing result: %v, want ErrNotFound", err)
		}
	})
}

func TestResultRoundTripIsByteStable(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		res := &Result{Variants: []Variant{{
			Species: []string{"*", "CO", "O"},
			T:       []float64{0, 0.1, 0.30000000000000004},
			Mean:    [][]float64{{1, 0.5, 1.0 / 3}, {0, 0.25, 0.3}, {0, 0.25, 0.1}},
			Std:     [][]float64{{0, 0.01, 0.002}, {0, 0, 0}, {0, 0, 0}},
		}}}
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult("cafe01", res); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetResult("cafe01")
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(want) {
			t.Fatalf("stored result not byte-identical:\n got %s\nwant %s", out, want)
		}
	})
}

func TestJobsListsEverything(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		for _, id := range []string{"job-1", "job-2", "job-3"} {
			if err := s.PutJob(&JobRecord{ID: id, State: "queued"}); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := s.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, r := range recs {
			ids = append(ids, r.ID)
		}
		sort.Strings(ids)
		if !reflect.DeepEqual(ids, []string{"job-1", "job-2", "job-3"}) {
			t.Fatalf("listed %v", ids)
		}
	})
}

func TestInvalidKeysRejected(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		for _, id := range []string{"", "../evil", "a/b", ".hidden"} {
			if err := s.PutJob(&JobRecord{ID: id}); err == nil {
				t.Errorf("PutJob accepted key %q", id)
			}
			if _, err := s.GetJob(id); err == nil || errors.Is(err, ErrNotFound) {
				t.Errorf("GetJob(%q): %v, want a key error", id, err)
			}
		}
	})
}

// A store reopened on the same directory serves what was written — the
// durability half of the contract the in-memory store cannot cover.
func TestFSReopenSurvives(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PutJob(&JobRecord{ID: "job-1", State: "done", Hash: "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutResult("h1", &Result{Variants: []Variant{{Species: []string{"*"}}}}); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != "done" || rec.Hash != "h1" {
		t.Fatalf("reopened record %+v", rec)
	}
	if _, err := s2.GetResult("h1"); err != nil {
		t.Fatal(err)
	}
}

// Leftover temp files from a crash mid-write are invisible to listings.
func TestFSIgnoresTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(&JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "jobs", ".tmp-crashed")
	if err := os.WriteFile(debris, []byte("{partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("listing with debris: %+v", recs)
	}
}
