package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// openBoth runs a subtest against the filesystem store and the
// in-memory one: the interface contract is one suite.
func openBoth(t *testing.T, f func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("fs", func(t *testing.T) {
		s, err := OpenFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f(t, s)
	})
	t.Run("mem", func(t *testing.T) {
		f(t, NewMem())
	})
}

func TestJobRecordRoundTrip(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		rec := &JobRecord{
			ID:        "job-7",
			Seq:       7,
			Hash:      "abc123",
			State:     "queued",
			Submitted: 12345,
			Request:   json.RawMessage(`{"until":5}`),
		}
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetJob("job-7")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
		// Overwrite wins.
		rec.State = "done"
		rec.Cached = true
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
		got, err = s.GetJob("job-7")
		if err != nil {
			t.Fatal(err)
		}
		if got.State != "done" || !got.Cached {
			t.Fatalf("overwrite lost: %+v", got)
		}
	})
}

func TestMissingKeysAreErrNotFound(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		if _, err := s.GetJob("job-404"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing job: %v, want ErrNotFound", err)
		}
		if _, err := s.GetResult("deadbeef"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing result: %v, want ErrNotFound", err)
		}
	})
}

func TestResultRoundTripIsByteStable(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		res := &Result{Variants: []Variant{{
			Species: []string{"*", "CO", "O"},
			T:       []float64{0, 0.1, 0.30000000000000004},
			Mean:    [][]float64{{1, 0.5, 1.0 / 3}, {0, 0.25, 0.3}, {0, 0.25, 0.1}},
			Std:     [][]float64{{0, 0.01, 0.002}, {0, 0, 0}, {0, 0, 0}},
		}}}
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult("cafe01", res); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetResult("cafe01")
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(want) {
			t.Fatalf("stored result not byte-identical:\n got %s\nwant %s", out, want)
		}
	})
}

func TestJobsListsEverything(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		for _, id := range []string{"job-1", "job-2", "job-3"} {
			if err := s.PutJob(&JobRecord{ID: id, State: "queued"}); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := s.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, r := range recs {
			ids = append(ids, r.ID)
		}
		sort.Strings(ids)
		if !reflect.DeepEqual(ids, []string{"job-1", "job-2", "job-3"}) {
			t.Fatalf("listed %v", ids)
		}
	})
}

// Listings come back in lexical key order from both backends: the
// filesystem store inherits ReadDir's sorted listing, and the memory
// store must not leak Go's randomized map iteration order. The
// assertions deliberately do NOT sort — the order IS the contract.
// Regression test for a surflint:maporder finding.
func TestListingsAreSorted(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		insert := []string{"job-09", "job-03", "job-17", "job-01", "job-12", "job-05", "job-14", "job-02"}
		for _, id := range insert {
			if err := s.PutJob(&JobRecord{ID: id, State: "queued"}); err != nil {
				t.Fatal(err)
			}
		}
		want := append([]string(nil), insert...)
		sort.Strings(want)
		// Several trials: map iteration order changes run to run, so one
		// lucky ordering must not mask a regression.
		for trial := 0; trial < 8; trial++ {
			recs, err := s.Jobs()
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for _, r := range recs {
				ids = append(ids, r.ID)
			}
			if !reflect.DeepEqual(ids, want) {
				t.Fatalf("trial %d: Jobs() order %v, want sorted %v", trial, ids, want)
			}
		}

		slots := []string{"007", "002", "013", "001", "005", "010", "003", "008"}
		for _, slot := range slots {
			if err := s.PutCheckpoint("hash1", slot, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		wantSlots := append([]string(nil), slots...)
		sort.Strings(wantSlots)
		for trial := 0; trial < 8; trial++ {
			got, err := s.Checkpoints("hash1")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, wantSlots) {
				t.Fatalf("trial %d: Checkpoints() order %v, want sorted %v", trial, got, wantSlots)
			}
		}
	})
}

func TestInvalidKeysRejected(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		for _, id := range []string{"", "../evil", "a/b", ".hidden"} {
			if err := s.PutJob(&JobRecord{ID: id}); err == nil {
				t.Errorf("PutJob accepted key %q", id)
			}
			if _, err := s.GetJob(id); err == nil || errors.Is(err, ErrNotFound) {
				t.Errorf("GetJob(%q): %v, want a key error", id, err)
			}
		}
	})
}

// A store reopened on the same directory serves what was written — the
// durability half of the contract the in-memory store cannot cover.
func TestFSReopenSurvives(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PutJob(&JobRecord{ID: "job-1", State: "done", Hash: "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutResult("h1", &Result{Variants: []Variant{{Species: []string{"*"}}}}); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != "done" || rec.Hash != "h1" {
		t.Fatalf("reopened record %+v", rec)
	}
	if _, err := s2.GetResult("h1"); err != nil {
		t.Fatal(err)
	}
}

// openBothCorruptible is openBoth plus backdoors that corrupt a stored
// job record or result blob in place — overwriting the filesystem file,
// or the in-memory encoded bytes, with torn JSON — for the recovery
// tests that must hold on both implementations.
func openBothCorruptible(t *testing.T, f func(t *testing.T, s Store, corruptJob, corruptResult func(key string))) {
	t.Helper()
	torn := []byte(`{"id":"job-1","state":"que`)
	t.Run("fs", func(t *testing.T) {
		dir := t.TempDir()
		s, err := OpenFS(dir)
		if err != nil {
			t.Fatal(err)
		}
		overwrite := func(sub, name string) {
			if err := os.WriteFile(filepath.Join(dir, sub, name+".json"), torn, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		f(t, s,
			func(id string) { overwrite("jobs", id) },
			func(hash string) { overwrite("results", hash) })
	})
	t.Run("mem", func(t *testing.T) {
		s := NewMem()
		f(t, s,
			func(id string) { s.mu.Lock(); s.jobs[id] = torn; s.mu.Unlock() },
			func(hash string) { s.mu.Lock(); s.results[hash] = torn; s.mu.Unlock() })
	})
}

// A job record torn by a crash that bypassed the atomic-rename path is
// skipped by listings (one bad file must not take down boot recovery)
// while a direct read of it refuses with a clear error — and a torn
// result blob likewise refuses rather than serving garbage. Neither
// path may panic.
func TestTornRecordsSkippedOrRefused(t *testing.T) {
	openBothCorruptible(t, func(t *testing.T, s Store, corruptJob, corruptResult func(string)) {
		for _, id := range []string{"job-1", "job-2", "job-3"} {
			if err := s.PutJob(&JobRecord{ID: id, State: "queued"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.PutResult("cafe01", &Result{Variants: []Variant{{Species: []string{"*"}}}}); err != nil {
			t.Fatal(err)
		}
		corruptJob("job-2")
		corruptResult("cafe01")

		recs, err := s.Jobs()
		if err != nil {
			t.Fatalf("listing with a torn record: %v", err)
		}
		var ids []string
		for _, r := range recs {
			ids = append(ids, r.ID)
		}
		sort.Strings(ids)
		if !reflect.DeepEqual(ids, []string{"job-1", "job-3"}) {
			t.Fatalf("listing with a torn record returned %v, want the two intact ones", ids)
		}
		if _, err := s.GetJob("job-2"); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("reading the torn record: %v, want a decode error", err)
		}
		if _, err := s.GetResult("cafe01"); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("reading the torn result: %v, want a decode error", err)
		}
	})
}

// Checkpoint blobs round-trip bytes exactly, list per hash, overwrite
// per slot, and delete as a group.
func TestCheckpointRoundTrip(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		if err := s.PutCheckpoint("h1", "0", []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := s.PutCheckpoint("h1", "1", []byte{4}); err != nil {
			t.Fatal(err)
		}
		if err := s.PutCheckpoint("h2", "0", []byte{9}); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetCheckpoint("h1", "0")
		if err != nil || !reflect.DeepEqual(got, []byte{1, 2, 3}) {
			t.Fatalf("GetCheckpoint: %v, %v", got, err)
		}
		// Overwrite wins.
		if err := s.PutCheckpoint("h1", "0", []byte{7, 7}); err != nil {
			t.Fatal(err)
		}
		if got, _ = s.GetCheckpoint("h1", "0"); !reflect.DeepEqual(got, []byte{7, 7}) {
			t.Fatalf("overwrite lost: %v", got)
		}
		slots, err := s.Checkpoints("h1")
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(slots)
		if !reflect.DeepEqual(slots, []string{"0", "1"}) {
			t.Fatalf("Checkpoints(h1) = %v", slots)
		}
		if err := s.DeleteCheckpoints("h1"); err != nil {
			t.Fatal(err)
		}
		if slots, err = s.Checkpoints("h1"); err != nil || len(slots) != 0 {
			t.Fatalf("after delete: %v, %v", slots, err)
		}
		if _, err := s.GetCheckpoint("h1", "0"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted checkpoint: %v, want ErrNotFound", err)
		}
		// Other hashes untouched; unknown hashes list empty and delete as
		// a no-op.
		if _, err := s.GetCheckpoint("h2", "0"); err != nil {
			t.Fatal(err)
		}
		if slots, err = s.Checkpoints("nope"); err != nil || len(slots) != 0 {
			t.Fatalf("unknown hash: %v, %v", slots, err)
		}
		if err := s.DeleteCheckpoints("nope"); err != nil {
			t.Fatal(err)
		}
		// Key validation mirrors jobs/results.
		if err := s.PutCheckpoint("../evil", "0", nil); err == nil {
			t.Error("PutCheckpoint accepted a traversal hash")
		}
		if err := s.PutCheckpoint("h1", "../evil", nil); err == nil {
			t.Error("PutCheckpoint accepted a traversal slot")
		}
		if err := s.PutCheckpoint("h1", "", nil); err == nil {
			t.Error("PutCheckpoint accepted an empty slot")
		}
	})
}

// Shard records round-trip, overwrite per id, list sorted per job, and
// delete as a group together with their result blobs.
func TestShardRoundTrip(t *testing.T) {
	openBoth(t, func(t *testing.T, s Store) {
		recs := []*ShardRecord{
			{ID: "v0-8-16", JobID: "job-1", Variant: 0, Lo: 8, Hi: 16, State: "queued"},
			{ID: "v0-0-8", JobID: "job-1", Variant: 0, Lo: 0, Hi: 8, State: "queued"},
			{ID: "v1-0-8", JobID: "job-1", Variant: 1, Lo: 0, Hi: 8, State: "leased", Attempts: 1},
			{ID: "v0-0-8", JobID: "job-2", Variant: 0, Lo: 0, Hi: 8, State: "queued"},
		}
		for _, rec := range recs {
			if err := s.PutShard(rec); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Shards("job-1")
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, r := range got {
			ids = append(ids, r.ID)
		}
		if !reflect.DeepEqual(ids, []string{"v0-0-8", "v0-8-16", "v1-0-8"}) {
			t.Fatalf("Shards(job-1) order %v, want sorted ids", ids)
		}
		if got[2].State != "leased" || got[2].Attempts != 1 {
			t.Fatalf("record content lost: %+v", got[2])
		}
		// Overwrite wins.
		recs[0].State = "done"
		if err := s.PutShard(recs[0]); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Shards("job-1")
		if got[1].State != "done" {
			t.Fatalf("overwrite lost: %+v", got[1])
		}

		// Result blobs round-trip bytes exactly and miss as ErrNotFound.
		if err := s.PutShardResult("job-1", "v0-0-8", []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		blob, err := s.GetShardResult("job-1", "v0-0-8")
		if err != nil || !reflect.DeepEqual(blob, []byte{1, 2, 3}) {
			t.Fatalf("GetShardResult: %v, %v", blob, err)
		}
		if _, err := s.GetShardResult("job-1", "v0-8-16"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing shard result: %v, want ErrNotFound", err)
		}

		// Delete removes records and blobs for the job only.
		if err := s.DeleteShards("job-1"); err != nil {
			t.Fatal(err)
		}
		if got, err = s.Shards("job-1"); err != nil || len(got) != 0 {
			t.Fatalf("after delete: %v, %v", got, err)
		}
		if _, err := s.GetShardResult("job-1", "v0-0-8"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted shard result: %v, want ErrNotFound", err)
		}
		if got, err = s.Shards("job-2"); err != nil || len(got) != 1 {
			t.Fatalf("other job's shards touched: %v, %v", got, err)
		}
		// Unknown jobs list empty and delete as a no-op.
		if got, err = s.Shards("job-404"); err != nil || len(got) != 0 {
			t.Fatalf("unknown job: %v, %v", got, err)
		}
		if err := s.DeleteShards("job-404"); err != nil {
			t.Fatal(err)
		}
		// Key validation mirrors the other families.
		if err := s.PutShard(&ShardRecord{ID: "../evil", JobID: "job-1"}); err == nil {
			t.Error("PutShard accepted a traversal id")
		}
		if err := s.PutShard(&ShardRecord{ID: "s1", JobID: ""}); err == nil {
			t.Error("PutShard accepted an empty job id")
		}
		if err := s.PutShardResult("job-1", "", nil); err == nil {
			t.Error("PutShardResult accepted an empty shard id")
		}
	})
}

// The fault wrapper fails exactly the mutation its hook names, leaves
// reads alone, and counts attempts.
func TestFaultyInjectsOnNthMutation(t *testing.T) {
	f := &Faulty{Inner: NewMem(), Hook: FailNth(2)}
	if err := f.PutJob(&JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := f.PutJob(&JobRecord{ID: "job-2", State: "queued"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("second mutation: %v, want ErrInjected", err)
	}
	// The failed write never reached the inner store.
	if _, err := f.GetJob("job-2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job-2 after injected failure: %v, want ErrNotFound", err)
	}
	if _, err := f.GetJob("job-1"); err != nil {
		t.Fatalf("read through fault wrapper: %v", err)
	}
	if err := f.PutCheckpoint("h1", "0", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if f.Mutations() != 3 {
		t.Fatalf("Mutations() = %d, want 3", f.Mutations())
	}

	byOp := &Faulty{Inner: NewMem(), Hook: FailOps("put-checkpoint", 0)}
	if err := byOp.PutJob(&JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := byOp.PutCheckpoint("h1", "0", []byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("op-targeted injection: %v, want ErrInjected", err)
	}
}

// Leftover temp files from a crash mid-write are invisible to listings.
func TestFSIgnoresTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(&JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "jobs", ".tmp-crashed")
	if err := os.WriteFile(debris, []byte("{partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("listing with debris: %+v", recs)
	}
}
