package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FS is the durable filesystem store. Layout under the data directory:
//
//	<dir>/jobs/<id>.json              one record per job
//	<dir>/results/<hash>.json         one blob per content hash
//	<dir>/checkpoints/<hash>/<slot>   one checkpoint blob per replica slot
//	<dir>/shards/<job>/<id>.json      one record per fleet shard
//	<dir>/shardresults/<job>/<id>     one wire blob per delivered shard
//
// Every write goes through a temp file in the target directory: write,
// fsync, rename over the final name, fsync the directory — so a record
// is either the old version or the new one, never a torn mix, and a
// rename that was acknowledged survives a crash.
type FS struct {
	jobsDir         string
	resultsDir      string
	checkpointsDir  string
	shardsDir       string
	shardResultsDir string
}

// OpenFS opens (creating if needed) a filesystem store rooted at dir.
func OpenFS(dir string) (*FS, error) {
	f := &FS{
		jobsDir:         filepath.Join(dir, "jobs"),
		resultsDir:      filepath.Join(dir, "results"),
		checkpointsDir:  filepath.Join(dir, "checkpoints"),
		shardsDir:       filepath.Join(dir, "shards"),
		shardResultsDir: filepath.Join(dir, "shardresults"),
	}
	for _, d := range []string{dir, f.jobsDir, f.resultsDir, f.checkpointsDir, f.shardsDir, f.shardResultsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return f, nil
}

// PutJob implements Store.
func (f *FS) PutJob(rec *JobRecord) error {
	if err := validKey("job", rec.ID); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding job %s: %w", rec.ID, err)
	}
	return writeAtomic(filepath.Join(f.jobsDir, rec.ID+".json"), data)
}

// GetJob implements Store.
func (f *FS) GetJob(id string) (*JobRecord, error) {
	if err := validKey("job", id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(f.jobsDir, id+".json"))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: job %q: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	rec := new(JobRecord)
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("store: decoding job %s: %w", id, err)
	}
	return rec, nil
}

// Jobs implements Store. A record that no longer reads or decodes —
// e.g. a file torn by a crash that bypassed the atomic-rename path — is
// skipped rather than failing the whole listing, so one bad file cannot
// take down boot recovery; GetJob on the bad id still reports the
// decode error for anyone who asks for it directly.
func (f *FS) Jobs() ([]*JobRecord, error) {
	entries, err := os.ReadDir(f.jobsDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*JobRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		rec, err := f.GetJob(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// PutResult implements Store.
func (f *FS) PutResult(hash string, res *Result) error {
	if err := validKey("result", hash); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result %s: %w", hash, err)
	}
	return writeAtomic(filepath.Join(f.resultsDir, hash+".json"), data)
}

// GetResult implements Store.
func (f *FS) GetResult(hash string) (*Result, error) {
	if err := validKey("result", hash); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(f.resultsDir, hash+".json"))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: result %s: %w", hash, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("store: decoding result %s: %w", hash, err)
	}
	return res, nil
}

// checkpointDir returns the per-hash checkpoint directory, validating
// both keys (the slot is a file name inside the hash directory).
func (f *FS) checkpointDir(hash, slot string) (string, error) {
	if err := validKey("checkpoint hash", hash); err != nil {
		return "", err
	}
	if slot != "" {
		if err := validKey("checkpoint slot", slot); err != nil {
			return "", err
		}
	}
	return filepath.Join(f.checkpointsDir, hash), nil
}

// PutCheckpoint implements Store.
func (f *FS) PutCheckpoint(hash, slot string, data []byte) error {
	dir, err := f.checkpointDir(hash, slot)
	if err != nil {
		return err
	}
	if slot == "" {
		return fmt.Errorf("store: empty checkpoint slot key")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(filepath.Join(dir, slot), data)
}

// GetCheckpoint implements Store.
func (f *FS) GetCheckpoint(hash, slot string) ([]byte, error) {
	dir, err := f.checkpointDir(hash, slot)
	if err != nil {
		return nil, err
	}
	if slot == "" {
		return nil, fmt.Errorf("store: empty checkpoint slot key")
	}
	data, err := os.ReadFile(filepath.Join(dir, slot))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: checkpoint %s/%s: %w", hash, slot, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// Checkpoints implements Store.
func (f *FS) Checkpoints(hash string) ([]string, error) {
	dir, err := f.checkpointDir(hash, "")
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, name)
	}
	return out, nil
}

// DeleteCheckpoints implements Store.
func (f *FS) DeleteCheckpoints(hash string) error {
	dir, err := f.checkpointDir(hash, "")
	if err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// shardKeys validates the job (and, when non-empty, shard) keys used as
// path components under the shard directories.
func shardKeys(jobID, shardID string) error {
	if err := validKey("shard job", jobID); err != nil {
		return err
	}
	if shardID != "" {
		return validKey("shard", shardID)
	}
	return nil
}

// PutShard implements Store.
func (f *FS) PutShard(rec *ShardRecord) error {
	if err := shardKeys(rec.JobID, rec.ID); err != nil {
		return err
	}
	if rec.ID == "" {
		return fmt.Errorf("store: empty shard key")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding shard %s/%s: %w", rec.JobID, rec.ID, err)
	}
	dir := filepath.Join(f.shardsDir, rec.JobID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(filepath.Join(dir, rec.ID+".json"), data)
}

// Shards implements Store. Like Jobs it skips records that no longer
// decode, so one torn file cannot take down a coordinator's recovery.
func (f *FS) Shards(jobID string) ([]*ShardRecord, error) {
	if err := shardKeys(jobID, ""); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(f.shardsDir, jobID))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*ShardRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(f.shardsDir, jobID, name))
		if err != nil {
			continue
		}
		rec := new(ShardRecord)
		if err := json.Unmarshal(data, rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// PutShardResult implements Store.
func (f *FS) PutShardResult(jobID, shardID string, data []byte) error {
	if err := shardKeys(jobID, shardID); err != nil {
		return err
	}
	if shardID == "" {
		return fmt.Errorf("store: empty shard key")
	}
	dir := filepath.Join(f.shardResultsDir, jobID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(filepath.Join(dir, shardID), data)
}

// GetShardResult implements Store.
func (f *FS) GetShardResult(jobID, shardID string) ([]byte, error) {
	if err := shardKeys(jobID, shardID); err != nil {
		return nil, err
	}
	if shardID == "" {
		return nil, fmt.Errorf("store: empty shard key")
	}
	data, err := os.ReadFile(filepath.Join(f.shardResultsDir, jobID, shardID))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: shard result %s/%s: %w", jobID, shardID, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// DeleteShards implements Store.
func (f *FS) DeleteShards(jobID string) error {
	if err := shardKeys(jobID, ""); err != nil {
		return err
	}
	if err := os.RemoveAll(filepath.Join(f.shardsDir, jobID)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.RemoveAll(filepath.Join(f.shardResultsDir, jobID)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// writeAtomic publishes data at path via a same-directory temp file:
// fsync the contents before the rename (so the new bytes are durable
// before the name points at them) and fsync the directory after (so the
// rename itself is durable).
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is advisory on some filesystems; a failure
		// here cannot un-publish the rename, so it is not fatal.
		d.Sync()
		d.Close()
	}
	return nil
}
