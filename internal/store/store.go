// Package store persists surfd jobs and results: a content-addressed
// job/result store behind a small interface, with a durable filesystem
// implementation (atomic rename writes, fsync'd JSON records) and an
// in-memory one for tests.
//
// Job records are keyed by job id and carry the serialized request, so
// a restart can rebuild the manager's job table and re-queue work that
// was interrupted. Result blobs are keyed by the SHA-256 content hash
// of the canonical (spec, run-shape) bytes — the spec's byte-fixed-point
// JSON marshal makes identical workloads hash identically — so the same
// key space doubles as a result cache: a resubmission whose hash matches
// a stored result is served without re-simulating.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrNotFound reports a missing job record or result blob. Match with
// errors.Is.
var ErrNotFound = errors.New("store: not found")

// JobRecord is the persisted form of one submitted job: identity,
// lifecycle state, and the serialized request needed to re-run it.
type JobRecord struct {
	// ID is the manager-assigned job id ("job-7").
	ID string `json:"id"`
	// Seq is the numeric submission sequence; restarts resume ids past
	// the highest stored Seq, and listings order by (Submitted, Seq).
	Seq int `json:"seq"`
	// Hash is the content address of the job's (spec, run-shape) bytes;
	// the result blob of a completed job lives under this key.
	Hash string `json:"hash,omitempty"`
	// State is the persisted lifecycle state. A record left at
	// "queued"/"running" by a crash is re-queued on recovery.
	State string `json:"state"`
	// Error is the terminal error text of a failed/cancelled job.
	Error string `json:"error,omitempty"`
	// Cached marks a job answered from the result cache without running.
	Cached bool `json:"cached,omitempty"`
	// Attempts counts how many times the job's run was interrupted by a
	// crash (a record found at "running" on boot). Recovery uses it to
	// quarantine jobs that keep killing the process.
	Attempts int `json:"attempts,omitempty"`
	// Submitted is the submission wall-clock time in Unix nanoseconds.
	Submitted int64 `json:"submitted"`
	// Deadline is the absolute wall-clock deadline (Unix nanoseconds) a
	// running job's sweep must finish by, set when the job first starts
	// and zero for jobs without a duration budget. Recovery keeps the
	// absolute time, so a crash-restarted job honors only its remaining
	// budget instead of getting a fresh one.
	Deadline int64 `json:"deadline,omitempty"`
	// Request is the serialized request (specs plus run shape), exactly
	// what recovery re-queues.
	Request json.RawMessage `json:"request,omitempty"`
}

// ShardRecord is the persisted form of one fleet shard: a (variant,
// replica-range) slice of a job's ensemble with its lease lifecycle.
// The coordinator writes the record ahead of every state transition —
// the same write-ahead discipline as job records — so a restarted
// coordinator rebuilds the shard table exactly: shards recorded done
// re-commit their stored result blobs instead of re-running, everything
// else re-queues.
type ShardRecord struct {
	// ID is the shard id, unique within its job (e.g. "v0-8-16").
	ID string `json:"id"`
	// JobID is the owning job.
	JobID string `json:"jobId"`
	// Variant is the sweep variant (spec index) the shard belongs to.
	Variant int `json:"variant"`
	// Lo and Hi bound the half-open replica index range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// State is the shard lifecycle state (queued/leased/done/
	// quarantined). Leases are transient: a record found "leased" on
	// recovery re-queues like a "queued" one.
	State string `json:"state"`
	// Worker names the worker holding the shard's lease, while leased.
	Worker string `json:"worker,omitempty"`
	// Attempts counts leases that ended in failure or expiry; a shard
	// past the coordinator's MaxAttempts is quarantined as poison.
	Attempts int `json:"attempts,omitempty"`
	// Requeues counts how many times the shard went back on the queue.
	Requeues int `json:"requeues,omitempty"`
	// Error is the latest failure text reported for the shard.
	Error string `json:"error,omitempty"`
}

// Variant is one variant's merged series in a Result — the same shape
// the HTTP result endpoint serves.
type Variant struct {
	// Species are the column labels, index-aligned with Mean/Std rows.
	Species []string `json:"species"`
	// T is the shared time grid.
	T []float64 `json:"t"`
	// Mean and Std are per-species rows over the grid.
	Mean [][]float64 `json:"mean"`
	Std  [][]float64 `json:"std"`
}

// Result is a completed job's merged output, one entry per sweep
// variant. Values are plain float64 series: JSON round-trips them
// bit-exactly (Go encodes the shortest representation that parses back
// to the same float64), so a result served from disk is byte-identical
// to the one served at completion time.
type Result struct {
	Variants []Variant `json:"variants"`
}

// Store persists job records and result blobs. Implementations must be
// safe for concurrent use. Get methods return ErrNotFound (wrapped) for
// missing keys; Put methods overwrite.
type Store interface {
	// PutJob writes (or overwrites) a job record.
	PutJob(rec *JobRecord) error
	// GetJob reads the record with the given id.
	GetJob(id string) (*JobRecord, error)
	// Jobs lists every stored record, in no particular order.
	Jobs() ([]*JobRecord, error)
	// PutResult writes (or overwrites) the result blob under the hash.
	PutResult(hash string, res *Result) error
	// GetResult reads the result blob under the hash.
	GetResult(hash string) (*Result, error)
	// PutCheckpoint writes (or overwrites) an opaque checkpoint blob for
	// one replica slot of the job with the given content hash.
	PutCheckpoint(hash, slot string, data []byte) error
	// GetCheckpoint reads one checkpoint blob.
	GetCheckpoint(hash, slot string) ([]byte, error)
	// Checkpoints lists the slot keys with a stored checkpoint for the
	// hash, in no particular order. A hash with no checkpoints lists
	// empty without error.
	Checkpoints(hash string) ([]string, error)
	// DeleteCheckpoints removes every checkpoint stored for the hash.
	// Deleting a hash with no checkpoints is a no-op.
	DeleteCheckpoints(hash string) error
	// PutShard writes (or overwrites) a fleet shard record, keyed
	// (JobID, ID).
	PutShard(rec *ShardRecord) error
	// Shards lists the stored shard records of a job, skipping records
	// that no longer decode; a job with no shards lists empty without
	// error. Listings come back in lexical shard-id order from every
	// implementation.
	Shards(jobID string) ([]*ShardRecord, error)
	// PutShardResult writes (or overwrites) the opaque wire-format
	// result blob of one shard.
	PutShardResult(jobID, shardID string, data []byte) error
	// GetShardResult reads one shard result blob.
	GetShardResult(jobID, shardID string) ([]byte, error)
	// DeleteShards removes every shard record and shard result blob
	// stored for the job. Deleting a job with no shards is a no-op.
	DeleteShards(jobID string) error
}

// validKey guards record/blob keys used as file names: a key must be
// non-empty, not start with a dot, and contain only [A-Za-z0-9._-], so
// no key can escape the store directory or collide with temp files.
func validKey(kind, key string) error {
	if key == "" {
		return fmt.Errorf("store: empty %s key", kind)
	}
	if key[0] == '.' {
		return fmt.Errorf("store: %s key %q starts with a dot", kind, key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: %s key %q contains %q", kind, key, c)
		}
	}
	return nil
}
