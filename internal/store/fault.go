package store

import (
	"errors"
	"sync"
)

// ErrInjected is the error a Faulty store's hooks return to simulate a
// failed write. Match with errors.Is.
var ErrInjected = errors.New("store: injected fault")

// Faulty wraps a Store and injects failures into its mutating
// operations, for crash and torn-write tests. Before each mutation it
// calls Hook with the 1-based running mutation count and an operation
// tag ("put-job", "put-result", "put-checkpoint", "delete-checkpoints",
// "put-shard", "put-shard-result", "delete-shards");
// a non-nil return aborts the operation with that error before the
// inner store sees it — modelling a crash between the caller's decision
// to persist and the bytes reaching disk. Reads always pass through.
//
// The zero Hook injects nothing, so a Faulty with only Inner set is a
// transparent proxy whose Mutations count still advances.
type Faulty struct {
	Inner Store
	Hook  func(n int, op string) error

	mu sync.Mutex
	n  int
}

// FailNth returns a hook that fails exactly the nth mutation (1-based)
// with ErrInjected and lets every other one through.
func FailNth(n int) func(int, string) error {
	return func(got int, _ string) error {
		if got == n {
			return ErrInjected
		}
		return nil
	}
}

// FailOps returns a hook that fails every mutation with the given
// operation tag once at least skip earlier mutations have happened.
func FailOps(op string, skip int) func(int, string) error {
	return func(n int, got string) error {
		if got == op && n > skip {
			return ErrInjected
		}
		return nil
	}
}

// Mutations reports how many mutating operations have been attempted.
func (f *Faulty) Mutations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *Faulty) check(op string) error {
	f.mu.Lock()
	f.n++
	n := f.n
	hook := f.Hook
	f.mu.Unlock()
	if hook == nil {
		return nil
	}
	return hook(n, op)
}

// PutJob implements Store.
func (f *Faulty) PutJob(rec *JobRecord) error {
	if err := f.check("put-job"); err != nil {
		return err
	}
	return f.Inner.PutJob(rec)
}

// GetJob implements Store.
func (f *Faulty) GetJob(id string) (*JobRecord, error) { return f.Inner.GetJob(id) }

// Jobs implements Store.
func (f *Faulty) Jobs() ([]*JobRecord, error) { return f.Inner.Jobs() }

// PutResult implements Store.
func (f *Faulty) PutResult(hash string, res *Result) error {
	if err := f.check("put-result"); err != nil {
		return err
	}
	return f.Inner.PutResult(hash, res)
}

// GetResult implements Store.
func (f *Faulty) GetResult(hash string) (*Result, error) { return f.Inner.GetResult(hash) }

// PutCheckpoint implements Store.
func (f *Faulty) PutCheckpoint(hash, slot string, data []byte) error {
	if err := f.check("put-checkpoint"); err != nil {
		return err
	}
	return f.Inner.PutCheckpoint(hash, slot, data)
}

// GetCheckpoint implements Store.
func (f *Faulty) GetCheckpoint(hash, slot string) ([]byte, error) {
	return f.Inner.GetCheckpoint(hash, slot)
}

// Checkpoints implements Store.
func (f *Faulty) Checkpoints(hash string) ([]string, error) { return f.Inner.Checkpoints(hash) }

// DeleteCheckpoints implements Store.
func (f *Faulty) DeleteCheckpoints(hash string) error {
	if err := f.check("delete-checkpoints"); err != nil {
		return err
	}
	return f.Inner.DeleteCheckpoints(hash)
}

// PutShard implements Store.
func (f *Faulty) PutShard(rec *ShardRecord) error {
	if err := f.check("put-shard"); err != nil {
		return err
	}
	return f.Inner.PutShard(rec)
}

// Shards implements Store.
func (f *Faulty) Shards(jobID string) ([]*ShardRecord, error) { return f.Inner.Shards(jobID) }

// PutShardResult implements Store.
func (f *Faulty) PutShardResult(jobID, shardID string, data []byte) error {
	if err := f.check("put-shard-result"); err != nil {
		return err
	}
	return f.Inner.PutShardResult(jobID, shardID, data)
}

// GetShardResult implements Store.
func (f *Faulty) GetShardResult(jobID, shardID string) ([]byte, error) {
	return f.Inner.GetShardResult(jobID, shardID)
}

// DeleteShards implements Store.
func (f *Faulty) DeleteShards(jobID string) error {
	if err := f.check("delete-shards"); err != nil {
		return err
	}
	return f.Inner.DeleteShards(jobID)
}
