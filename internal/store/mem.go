package store

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Mem is the in-memory store for tests. It round-trips every value
// through its JSON encoding — exactly what the filesystem store does —
// so a test that passes against Mem exercises the same serialization
// semantics (value isolation, byte-stable re-reads) as the durable
// path, minus the disk.
type Mem struct {
	mu      sync.Mutex
	jobs    map[string][]byte
	results map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		jobs:    make(map[string][]byte),
		results: make(map[string][]byte),
	}
}

// PutJob implements Store.
func (m *Mem) PutJob(rec *JobRecord) error {
	if err := validKey("job", rec.ID); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding job %s: %w", rec.ID, err)
	}
	m.mu.Lock()
	m.jobs[rec.ID] = data
	m.mu.Unlock()
	return nil
}

// GetJob implements Store.
func (m *Mem) GetJob(id string) (*JobRecord, error) {
	if err := validKey("job", id); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: job %q: %w", id, ErrNotFound)
	}
	rec := new(JobRecord)
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("store: decoding job %s: %w", id, err)
	}
	return rec, nil
}

// Jobs implements Store.
func (m *Mem) Jobs() ([]*JobRecord, error) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	out := make([]*JobRecord, 0, len(ids))
	for _, id := range ids {
		rec, err := m.GetJob(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// PutResult implements Store.
func (m *Mem) PutResult(hash string, res *Result) error {
	if err := validKey("result", hash); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result %s: %w", hash, err)
	}
	m.mu.Lock()
	m.results[hash] = data
	m.mu.Unlock()
	return nil
}

// GetResult implements Store.
func (m *Mem) GetResult(hash string) (*Result, error) {
	if err := validKey("result", hash); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.results[hash]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: result %s: %w", hash, ErrNotFound)
	}
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("store: decoding result %s: %w", hash, err)
	}
	return res, nil
}
