package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory store for tests. It round-trips every value
// through its JSON encoding — exactly what the filesystem store does —
// so a test that passes against Mem exercises the same serialization
// semantics (value isolation, byte-stable re-reads) as the durable
// path, minus the disk.
type Mem struct {
	mu           sync.Mutex
	jobs         map[string][]byte
	results      map[string][]byte
	checkpoints  map[string]map[string][]byte
	shards       map[string]map[string][]byte
	shardResults map[string]map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		jobs:         make(map[string][]byte),
		results:      make(map[string][]byte),
		checkpoints:  make(map[string]map[string][]byte),
		shards:       make(map[string]map[string][]byte),
		shardResults: make(map[string]map[string][]byte),
	}
}

// PutJob implements Store.
func (m *Mem) PutJob(rec *JobRecord) error {
	if err := validKey("job", rec.ID); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding job %s: %w", rec.ID, err)
	}
	m.mu.Lock()
	m.jobs[rec.ID] = data
	m.mu.Unlock()
	return nil
}

// GetJob implements Store.
func (m *Mem) GetJob(id string) (*JobRecord, error) {
	if err := validKey("job", id); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: job %q: %w", id, ErrNotFound)
	}
	rec := new(JobRecord)
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("store: decoding job %s: %w", id, err)
	}
	return rec, nil
}

// Jobs implements Store. Like the filesystem store it skips records
// that no longer decode, so the listing contract (one bad record never
// fails the whole listing) is identical across implementations. The
// listing is sorted by ID for the same reason: the filesystem store
// inherits ReadDir's lexical order, and callers must see the same
// order from either backend.
func (m *Mem) Jobs() ([]*JobRecord, error) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]*JobRecord, 0, len(ids))
	for _, id := range ids {
		rec, err := m.GetJob(id)
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// PutResult implements Store.
func (m *Mem) PutResult(hash string, res *Result) error {
	if err := validKey("result", hash); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result %s: %w", hash, err)
	}
	m.mu.Lock()
	m.results[hash] = data
	m.mu.Unlock()
	return nil
}

// GetResult implements Store.
func (m *Mem) GetResult(hash string) (*Result, error) {
	if err := validKey("result", hash); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.results[hash]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: result %s: %w", hash, ErrNotFound)
	}
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("store: decoding result %s: %w", hash, err)
	}
	return res, nil
}

// checkpointKeys validates the hash (and, when non-empty, slot) keys.
func checkpointKeys(hash, slot string) error {
	if err := validKey("checkpoint hash", hash); err != nil {
		return err
	}
	if slot != "" {
		return validKey("checkpoint slot", slot)
	}
	return nil
}

// PutCheckpoint implements Store.
func (m *Mem) PutCheckpoint(hash, slot string, data []byte) error {
	if err := checkpointKeys(hash, slot); err != nil {
		return err
	}
	if slot == "" {
		return fmt.Errorf("store: empty checkpoint slot key")
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	slots := m.checkpoints[hash]
	if slots == nil {
		slots = make(map[string][]byte)
		m.checkpoints[hash] = slots
	}
	slots[slot] = cp
	m.mu.Unlock()
	return nil
}

// GetCheckpoint implements Store.
func (m *Mem) GetCheckpoint(hash, slot string) ([]byte, error) {
	if err := checkpointKeys(hash, slot); err != nil {
		return nil, err
	}
	if slot == "" {
		return nil, fmt.Errorf("store: empty checkpoint slot key")
	}
	m.mu.Lock()
	data, ok := m.checkpoints[hash][slot]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: checkpoint %s/%s: %w", hash, slot, ErrNotFound)
	}
	return append([]byte(nil), data...), nil
}

// Checkpoints implements Store. Slots are sorted to match the lexical
// order the filesystem store's ReadDir produces.
func (m *Mem) Checkpoints(hash string) ([]string, error) {
	if err := checkpointKeys(hash, ""); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for slot := range m.checkpoints[hash] {
		out = append(out, slot)
	}
	sort.Strings(out)
	return out, nil
}

// PutShard implements Store.
func (m *Mem) PutShard(rec *ShardRecord) error {
	if err := shardKeys(rec.JobID, rec.ID); err != nil {
		return err
	}
	if rec.ID == "" {
		return fmt.Errorf("store: empty shard key")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding shard %s/%s: %w", rec.JobID, rec.ID, err)
	}
	m.mu.Lock()
	recs := m.shards[rec.JobID]
	if recs == nil {
		recs = make(map[string][]byte)
		m.shards[rec.JobID] = recs
	}
	recs[rec.ID] = data
	m.mu.Unlock()
	return nil
}

// Shards implements Store. Records are listed in lexical id order —
// matching the filesystem store's ReadDir order — and undecodable ones
// are skipped, exactly like Jobs.
func (m *Mem) Shards(jobID string) ([]*ShardRecord, error) {
	if err := shardKeys(jobID, ""); err != nil {
		return nil, err
	}
	m.mu.Lock()
	ids := make([]string, 0, len(m.shards[jobID]))
	for id := range m.shards[jobID] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*ShardRecord, 0, len(ids))
	for _, id := range ids {
		rec := new(ShardRecord)
		if err := json.Unmarshal(m.shards[jobID][id], rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	m.mu.Unlock()
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// PutShardResult implements Store.
func (m *Mem) PutShardResult(jobID, shardID string, data []byte) error {
	if err := shardKeys(jobID, shardID); err != nil {
		return err
	}
	if shardID == "" {
		return fmt.Errorf("store: empty shard key")
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	blobs := m.shardResults[jobID]
	if blobs == nil {
		blobs = make(map[string][]byte)
		m.shardResults[jobID] = blobs
	}
	blobs[shardID] = cp
	m.mu.Unlock()
	return nil
}

// GetShardResult implements Store.
func (m *Mem) GetShardResult(jobID, shardID string) ([]byte, error) {
	if err := shardKeys(jobID, shardID); err != nil {
		return nil, err
	}
	if shardID == "" {
		return nil, fmt.Errorf("store: empty shard key")
	}
	m.mu.Lock()
	data, ok := m.shardResults[jobID][shardID]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: shard result %s/%s: %w", jobID, shardID, ErrNotFound)
	}
	return append([]byte(nil), data...), nil
}

// DeleteShards implements Store.
func (m *Mem) DeleteShards(jobID string) error {
	if err := shardKeys(jobID, ""); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.shards, jobID)
	delete(m.shardResults, jobID)
	m.mu.Unlock()
	return nil
}

// DeleteCheckpoints implements Store.
func (m *Mem) DeleteCheckpoints(hash string) error {
	if err := checkpointKeys(hash, ""); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.checkpoints, hash)
	m.mu.Unlock()
	return nil
}
