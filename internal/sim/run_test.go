package sim

import (
	"context"
	"errors"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
	"parsurf/internal/timegrid"
	"parsurf/internal/ziff"
)

func mustGrid(t *testing.T, until, every float64) timegrid.Grid {
	t.Helper()
	g, err := timegrid.New(until, every)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// RunGrid observes every grid index exactly once, in order.
func TestRunGridObservesEveryPoint(t *testing.T) {
	s, _ := zgbSim(t, 16, 11)
	grid := mustGrid(t, 1.0, 0.1)
	var ks []int
	steps, err := RunGrid(context.Background(), s, grid, func(k int, cfg *lattice.Config) {
		ks = append(ks, k)
		if cfg == nil {
			t.Fatal("nil config observed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no steps taken")
	}
	if len(ks) != grid.Len() {
		t.Fatalf("observed %d points, grid has %d", len(ks), grid.Len())
	}
	for i, k := range ks {
		if k != i {
			t.Fatalf("observation %d has grid index %d", i, k)
		}
	}
	if s.Time() < grid.Until() {
		t.Fatalf("clock %v short of the horizon %v", s.Time(), grid.Until())
	}
}

// A replica frozen in an absorbing state still yields a full grid: the
// frozen configuration is observed at every remaining point, so the
// merge never has to interpolate or clamp.
func TestRunGridFillsAbsorbedTail(t *testing.T) {
	// Pure CO impingement poisons the lattice almost immediately.
	z := ziff.New(lattice.NewSquare(8), rng.New(3), 1.0)
	grid := mustGrid(t, 50, 1)
	var covs []float64
	_, err := RunGrid(context.Background(), z, grid, func(k int, cfg *lattice.Config) {
		covs = append(covs, cfg.Coverage(ziff.CO))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(covs) != grid.Len() {
		t.Fatalf("observed %d points, want the full grid of %d", len(covs), grid.Len())
	}
	if !z.Poisoned() {
		t.Fatal("lattice never poisoned at y=1")
	}
	if last := covs[len(covs)-1]; last != 1.0 {
		t.Fatalf("final CO coverage %v, want the frozen 1.0", last)
	}
	// Once frozen, every later observation must repeat the final value.
	frozen := false
	for i := 1; i < len(covs); i++ {
		if covs[i] == 1.0 {
			frozen = true
		}
		if frozen && covs[i] != 1.0 {
			t.Fatalf("coverage changed after the absorbing state at point %d", i)
		}
	}
}

// Cancellation aborts within one engine step and surfaces the context
// error.
func TestRunGridCancellation(t *testing.T) {
	s, _ := zgbSim(t, 16, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	steps, err := RunGrid(ctx, s, mustGrid(t, 1e9, 1), func(int, *lattice.Config) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunGrid returned %v, want context.Canceled", err)
	}
	if steps != 0 {
		t.Fatalf("%d steps taken after cancellation", steps)
	}
}

// RunContext samples on the index-derived grid: dt=0.1 to tEnd=1.0 is
// exactly 11 samples (the accumulated-sum schedule this replaced could
// disagree with the merge about that count).
func TestRunContextGridSampleCount(t *testing.T) {
	s, _ := zgbSim(t, 16, 13)
	steps, samples, err := RunContext(context.Background(), s, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no steps taken")
	}
	if samples != 11 {
		t.Fatalf("%d samples for dt=0.1, tEnd=1.0, want 11", samples)
	}
}

// A degenerate dt that cannot advance the clock's floats is an error,
// not an infinite loop.
func TestRunContextDegenerateDt(t *testing.T) {
	z := ziff.New(lattice.NewSquare(8), rng.New(5), 0.5)
	for z.Time() < 1e3 {
		z.Step()
	}
	if _, _, err := RunContext(context.Background(), z, 1e-16, 2e3); err == nil {
		t.Fatal("degenerate dt accepted")
	}
}
