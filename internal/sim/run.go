package sim

import (
	"context"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/timegrid"
)

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(t float64, cfg *lattice.Config)

// Observe implements Observer.
func (f ObserverFunc) Observe(t float64, cfg *lattice.Config) { f(t, cfg) }

// RunContext advances s until its clock reaches tEnd, observing the
// live configuration at every dt of simulated time (plus a final sample
// at tEnd exactly when tEnd is not on the grid — the same index-derived
// timegrid.Grid schedule as dmc.Sample). dt <= 0 disables sampling.
// The context is checked every engine step, so cancellation latency is
// one Step call; on cancellation the context error is returned with the
// progress so far. An absorbing state records one final sample and
// stops early.
func RunContext(ctx context.Context, s dmc.Simulator, dt, tEnd float64, observers ...Observer) (steps, samples int, err error) {
	// runTo is RunUntil with a per-step context check; an absorbing
	// state leaves the clock short of t, which callers detect.
	runTo := func(t float64) error {
		for s.Time() < t {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !s.Step() {
				return nil
			}
			steps++
		}
		return nil
	}
	if dt <= 0 {
		err = runTo(tEnd)
		return steps, samples, err
	}
	grid, err := timegrid.From(s.Time(), tEnd, dt)
	if err != nil {
		return 0, 0, err
	}
	observe := func() {
		cfg := s.Config()
		t := s.Time()
		for _, obs := range observers {
			obs.Observe(t, cfg)
		}
		samples++
	}
	for k := 0; k < grid.Len(); k++ {
		t := grid.At(k)
		if k == grid.Len()-1 && grid.Tail() && s.Time() >= tEnd {
			// The clock already covered the off-grid horizon; a tail
			// sample would duplicate the previous observation.
			return steps, samples, nil
		}
		if err = runTo(t); err != nil {
			return steps, samples, err
		}
		observe()
		if s.Time() < t {
			// Absorbing state before the sample point: recorded once.
			return steps, samples, nil
		}
	}
	return steps, samples, nil
}

// RunGrid advances s through the sampling grid, invoking
// observe(k, cfg) with the live configuration at every grid index k.
// This is the ensemble replica runner: observations are keyed by grid
// index, so what a replica samples is exactly what the merge
// aggregates — the two can never disagree on grid size or placement.
// The context is checked before every engine step (cancellation
// latency: one Step call). When the engine reaches an absorbing state
// before grid point k, the frozen configuration is observed for k and
// every remaining point: an absorbed system no longer changes, so
// those samples are exact values, not interpolations.
func RunGrid(ctx context.Context, s dmc.Simulator, grid timegrid.Grid, observe func(k int, cfg *lattice.Config)) (steps int, err error) {
	return RunGridFrom(ctx, s, grid, 0, observe)
}

// RunGridFrom is RunGrid starting at grid index k0: points before k0
// are neither run to nor observed. This is the resume path — a replica
// restored from a checkpoint taken after grid point k0-1 continues with
// the remaining points, and the step count covers only the continued
// stretch.
func RunGridFrom(ctx context.Context, s dmc.Simulator, grid timegrid.Grid, k0 int, observe func(k int, cfg *lattice.Config)) (steps int, err error) {
	for k := k0; k < grid.Len(); k++ {
		t := grid.At(k)
		for s.Time() < t {
			if err := ctx.Err(); err != nil {
				return steps, err
			}
			if !s.Step() {
				for ; k < grid.Len(); k++ {
					observe(k, s.Config())
				}
				return steps, nil
			}
			steps++
		}
		observe(k, s.Config())
	}
	return steps, nil
}

// StepContext advances s by n Step calls (or until an absorbing state),
// checking the context between steps.
func StepContext(ctx context.Context, s dmc.Simulator, n int) (steps int, err error) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		if !s.Step() {
			return steps, nil
		}
		steps++
	}
	return steps, nil
}
