package sim

import (
	"context"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
)

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(t float64, cfg *lattice.Config)

// Observe implements Observer.
func (f ObserverFunc) Observe(t float64, cfg *lattice.Config) { f(t, cfg) }

// RunContext advances s until its clock reaches tEnd, observing the
// live configuration at every dt of simulated time (plus a final sample
// at tEnd exactly when tEnd is not on the grid — the same sampling
// schedule as dmc.Sample). dt <= 0 disables sampling. The context is
// checked every engine step, so cancellation latency is one Step call;
// on cancellation the context error is returned with the progress so
// far. An absorbing state records one final sample and stops early.
func RunContext(ctx context.Context, s dmc.Simulator, dt, tEnd float64, observers ...Observer) (steps, samples int, err error) {
	observe := func() {
		cfg := s.Config()
		t := s.Time()
		for _, obs := range observers {
			obs.Observe(t, cfg)
		}
		samples++
	}
	// runTo is RunUntil with a per-step context check.
	runTo := func(t float64) (alive bool, err error) {
		for s.Time() < t {
			if err := ctx.Err(); err != nil {
				return true, err
			}
			if !s.Step() {
				return false, nil
			}
			steps++
		}
		return true, nil
	}

	if dt <= 0 {
		_, err = runTo(tEnd)
		return steps, samples, err
	}
	// The grid schedule (including the tail-sample rule) is shared with
	// dmc.Sample; cancellation surfaces through the runTo return plus
	// the recorded error.
	dmc.SampleFunc(s.Time,
		func(t float64) bool {
			// An absorbed engine is detected by the schedule via the
			// clock; only cancellation stops the schedule from here.
			_, err = runTo(t)
			return err == nil
		},
		dt, tEnd, observe)
	return steps, samples, err
}

// StepContext advances s by n Step calls (or until an absorbing state),
// checking the context between steps.
func StepContext(ctx context.Context, s dmc.Simulator, n int) (steps int, err error) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		if !s.Step() {
			return steps, nil
		}
		steps++
	}
	return steps, nil
}
