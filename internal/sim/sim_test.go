package sim

import (
	"math"
	"testing"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

func zgbSim(t testing.TB, l int, seed uint64) (*dmc.RSM, *lattice.Config) {
	t.Helper()
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(l)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lattice.NewConfig(lat)
	return dmc.NewRSM(cm, cfg, rng.New(seed)), cfg
}

func TestRunnerSamplesAllObservers(t *testing.T) {
	s, _ := zgbSim(t, 16, 1)
	cov := NewCoverageObserver(model.ZGBEmpty, model.ZGBCO, model.ZGBO)
	snap := NewSnapshotObserver(2)
	r := NewRunner(s, 0.5).Attach(cov, snap)
	n := r.Run(10)
	if n < 15 {
		t.Fatalf("only %d samples", n)
	}
	for i, series := range cov.Series {
		if series.Len() != n {
			t.Fatalf("series %d has %d points, want %d", i, series.Len(), n)
		}
	}
	if len(snap.Snapshots) != (n+1)/2 {
		t.Fatalf("%d snapshots for %d samples at every=2", len(snap.Snapshots), n)
	}
}

func TestRunnerPanicsOnBadDt(t *testing.T) {
	s, _ := zgbSim(t, 8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRunner(s, 0)
}

func TestCoverageObserverPartition(t *testing.T) {
	s, _ := zgbSim(t, 16, 3)
	cov := NewCoverageObserver(model.ZGBEmpty, model.ZGBCO, model.ZGBO)
	NewRunner(s, 0.5).Attach(cov).Run(5)
	for i := 0; i < cov.Series[0].Len(); i++ {
		sum := cov.Series[0].X[i] + cov.Series[1].X[i] + cov.Series[2].X[i]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("coverages at sample %d sum to %v", i, sum)
		}
	}
	if _, err := cov.SeriesFor(model.ZGBCO); err != nil {
		t.Fatal(err)
	}
	if _, err := cov.SeriesFor(lattice.Species(9)); err == nil {
		t.Fatal("untracked species found")
	}
}

func TestGroupCoverageObserver(t *testing.T) {
	m := model.NewPtCO(model.DefaultPtCORates())
	lat := lattice.NewSquare(20)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	s := dmc.NewVSSM(cm, cfg, rng.New(4))
	co := NewGroupCoverageObserver(model.PtHexCO, model.PtSqCO)
	NewRunner(s, 0.5).Attach(co).Run(5)
	if co.Series.Len() == 0 {
		t.Fatal("no samples")
	}
	// Spot-check the last sample against PtCoverages.
	wantCO, _, _ := model.PtCoverages(cfg)
	got := co.Series.X[co.Series.Len()-1]
	if math.Abs(got-wantCO) > 1e-12 {
		t.Fatalf("group coverage %v, want %v", got, wantCO)
	}
}

func TestSnapshotObserverDeepCopies(t *testing.T) {
	s, cfg := zgbSim(t, 8, 5)
	snap := NewSnapshotObserver(1)
	NewRunner(s, 0.5).Attach(snap).Run(3)
	if len(snap.Snapshots) < 2 {
		t.Fatal("too few snapshots")
	}
	// Mutating the live config must not touch stored snapshots.
	before := snap.Snapshots[0].Clone()
	cfg.Fill(2)
	if !snap.Snapshots[0].Equal(before) {
		t.Fatal("snapshot aliases the live configuration")
	}
	if len(snap.Times) != len(snap.Snapshots) {
		t.Fatal("times/snapshots length mismatch")
	}
}

func TestRateObserver(t *testing.T) {
	s, _ := zgbSim(t, 16, 6)
	rate := NewRateObserver(s.Successes)
	NewRunner(s, 0.5).Attach(rate).Run(10)
	if rate.Series.Len() == 0 {
		t.Fatal("no rate samples")
	}
	for _, v := range rate.Series.X {
		if v < 0 {
			t.Fatal("negative rate from a cumulative counter")
		}
	}
	// The ZGB steady state keeps reacting: the late-time rate must be
	// positive.
	if rate.Series.X[rate.Series.Len()-1] <= 0 {
		t.Fatal("reaction rate died in the reactive window")
	}
}

func TestSteadyStateDetector(t *testing.T) {
	ss := NewSteadyState(5, 0.01)
	// Ramp: never steady while rising fast.
	for i := 0; i < 10; i++ {
		if ss.Add(float64(i)) {
			t.Fatalf("steady claimed on a ramp at %d", i)
		}
	}
	// Plateau: becomes steady after two windows.
	steadyAt := -1
	for i := 0; i < 12; i++ {
		if ss.Add(9.0) && steadyAt == -1 {
			steadyAt = i
		}
	}
	if steadyAt == -1 {
		t.Fatal("plateau never detected")
	}
}

func TestSteadyStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSteadyState(0, 0.1)
}

func TestSteadyStateWithSimulation(t *testing.T) {
	// The ZGB model reaches its reactive steady state; the detector
	// must fire within a reasonable horizon.
	s, cfg := zgbSim(t, 24, 7)
	ss := NewSteadyState(10, 0.02)
	steady := false
	for i := 0; i < 400 && !steady; i++ {
		s.Step()
		steady = ss.Add(cfg.Coverage(model.ZGBO))
	}
	if !steady {
		t.Fatal("steady state never detected in 400 MC steps")
	}
}

func TestSteadyStateMemoryBounded(t *testing.T) {
	ss := NewSteadyState(10, 0.01)
	for i := 0; i < 100000; i++ {
		ss.Add(float64(i % 7))
	}
	if len(ss.values) > 2*ss.Window {
		t.Fatalf("values grew to %d, want <= %d", len(ss.values), 2*ss.Window)
	}
	// Detection still works on the retained tail: a plateau after the
	// noise equilibrates within two windows.
	steadyAt := -1
	for i := 0; i < 2*ss.Window; i++ {
		if ss.Add(3.0) && steadyAt == -1 {
			steadyAt = i
		}
	}
	if steadyAt == -1 {
		t.Fatal("plateau never detected after long run")
	}
}
