// Package sim provides the observation layer on top of the simulation
// engines: composable observers that sample coverages, reaction rates
// and lattice snapshots at fixed simulated-time intervals, plus a
// steady-state detector. Engines stay minimal (Step/Time/Config); this
// package owns the bookkeeping every experiment needs.
package sim

import (
	"fmt"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/stats"
)

// Observer receives a callback at every sample point.
type Observer interface {
	// Observe is called with the current simulated time and the live
	// configuration. Implementations must not mutate the configuration.
	Observe(t float64, cfg *lattice.Config)
}

// Runner drives a simulator and fans samples out to observers.
type Runner struct {
	Sim dmc.Simulator
	// Dt is the sampling interval in simulated time.
	Dt        float64
	observers []Observer
}

// NewRunner returns a runner sampling every dt time units.
func NewRunner(s dmc.Simulator, dt float64) *Runner {
	if dt <= 0 {
		panic("sim: non-positive sampling interval")
	}
	return &Runner{Sim: s, Dt: dt}
}

// Attach registers an observer and returns the runner for chaining.
func (r *Runner) Attach(obs ...Observer) *Runner {
	r.observers = append(r.observers, obs...)
	return r
}

// Run advances the simulation to tEnd, sampling on the way. It returns
// the number of samples taken.
func (r *Runner) Run(tEnd float64) int {
	samples := 0
	dmc.Sample(r.Sim, r.Dt, tEnd, func(t float64) {
		cfg := r.Sim.Config()
		for _, obs := range r.observers {
			obs.Observe(t, cfg)
		}
		samples++
	})
	return samples
}

// CoverageObserver records one time series per tracked species.
type CoverageObserver struct {
	Species []lattice.Species
	Series  []*stats.Series
}

// NewCoverageObserver tracks the given species.
func NewCoverageObserver(species ...lattice.Species) *CoverageObserver {
	o := &CoverageObserver{Species: species}
	for range species {
		o.Series = append(o.Series, &stats.Series{})
	}
	return o
}

// Observe implements Observer.
func (o *CoverageObserver) Observe(t float64, cfg *lattice.Config) {
	for i, sp := range o.Species {
		o.Series[i].Append(t, cfg.Coverage(sp))
	}
}

// SeriesFor returns the series of one tracked species.
func (o *CoverageObserver) SeriesFor(sp lattice.Species) (*stats.Series, error) {
	for i, s := range o.Species {
		if s == sp {
			return o.Series[i], nil
		}
	}
	return nil, fmt.Errorf("sim: species %d not tracked", sp)
}

// GroupCoverageObserver records a single series summing the coverage of
// a species group (e.g. CO on both surface phases of the Pt(100)
// model).
type GroupCoverageObserver struct {
	Group  []lattice.Species
	Series *stats.Series
}

// NewGroupCoverageObserver sums over the given species.
func NewGroupCoverageObserver(group ...lattice.Species) *GroupCoverageObserver {
	return &GroupCoverageObserver{Group: group, Series: &stats.Series{}}
}

// Observe implements Observer.
func (o *GroupCoverageObserver) Observe(t float64, cfg *lattice.Config) {
	total := 0.0
	for _, sp := range o.Group {
		total += cfg.Coverage(sp)
	}
	o.Series.Append(t, total)
}

// SnapshotObserver stores deep copies of the configuration at every
// k-th sample (k=1 stores all).
type SnapshotObserver struct {
	Every     int
	Times     []float64
	Snapshots []*lattice.Config
	count     int
}

// NewSnapshotObserver stores every k-th sample.
func NewSnapshotObserver(every int) *SnapshotObserver {
	if every < 1 {
		every = 1
	}
	return &SnapshotObserver{Every: every}
}

// Observe implements Observer.
func (o *SnapshotObserver) Observe(t float64, cfg *lattice.Config) {
	if o.count%o.Every == 0 {
		o.Times = append(o.Times, t)
		o.Snapshots = append(o.Snapshots, cfg.Clone())
	}
	o.count++
}

// RateObserver records the net change per unit time of a counter (e.g.
// reactions executed, CO2 produced) between consecutive samples.
type RateObserver struct {
	Counter func() uint64
	Series  *stats.Series

	lastT float64
	lastC uint64
	first bool
}

// NewRateObserver differentiates the given cumulative counter.
func NewRateObserver(counter func() uint64) *RateObserver {
	return &RateObserver{Counter: counter, Series: &stats.Series{}, first: true}
}

// Observe implements Observer.
func (o *RateObserver) Observe(t float64, cfg *lattice.Config) {
	c := o.Counter()
	if !o.first && t > o.lastT {
		rate := float64(c-o.lastC) / (t - o.lastT)
		o.Series.Append(t, rate)
	}
	o.first = false
	o.lastT, o.lastC = t, c
}

// SteadyState watches a coverage series and reports equilibration: the
// mean of the last window differs from the mean of the window before it
// by less than tol.
type SteadyState struct {
	Window int
	Tol    float64
	values []float64
}

// NewSteadyState requires two consecutive windows of the given length
// to agree within tol.
func NewSteadyState(window int, tol float64) *SteadyState {
	if window < 1 {
		panic("sim: non-positive steady-state window")
	}
	return &SteadyState{Window: window, Tol: tol}
}

// Add records a value and reports whether the series has equilibrated.
// Only the last 2·Window values are retained, so memory stays bounded
// on arbitrarily long runs.
func (ss *SteadyState) Add(v float64) bool {
	ss.values = append(ss.values, v)
	if keep := 2 * ss.Window; len(ss.values) > keep {
		copy(ss.values, ss.values[len(ss.values)-keep:])
		ss.values = ss.values[:keep]
	}
	return ss.Reached()
}

// Reached reports whether the last two windows agree within Tol.
func (ss *SteadyState) Reached() bool {
	n := len(ss.values)
	if n < 2*ss.Window {
		return false
	}
	recent := stats.Mean(ss.values[n-ss.Window:])
	prior := stats.Mean(ss.values[n-2*ss.Window : n-ss.Window])
	diff := recent - prior
	if diff < 0 {
		diff = -diff
	}
	return diff <= ss.Tol
}
