// Package goldentrace defines the canonical fixed-seed fingerprint run
// shared by the golden-trace equivalence test (TestGoldenTracesBitIdentical
// in the root package) and cmd/goldengen, so the two can never disagree
// about the trajectory being hashed: same seed, same lattice side, same
// per-engine step counts, same hash.
package goldentrace

import (
	"hash/fnv"
	"math"

	"parsurf/internal/registry"
)

// The canonical run parameters. Changing any of these invalidates every
// recorded golden hash; regenerate them with cmd/goldengen in the same
// change.
const (
	// Seed is the RNG seed of the fingerprint run.
	Seed = 12345
	// Side is the square-lattice side length.
	Side = 20
	// DefaultSteps is the step count for trial-based engines (one MC
	// step of N trials per Step call).
	DefaultSteps = 60
	// EventSteps is the step count for event-based engines (VSSM, FRM
	// advance one executed reaction per Step call).
	EventSteps = 4000
)

// StepsFor returns the canonical step count for an engine name.
func StepsFor(name string) int {
	if name == "vssm" || name == "frm" {
		return EventSteps
	}
	return DefaultSteps
}

// Fingerprint runs the engine for the given number of steps and returns
// the FNV-64a hash of the full configuration and the clock's float64
// bits after every step.
func Fingerprint(eng registry.Engine, steps int) uint64 {
	h := fnv.New64a()
	cells := eng.Config().Cells()
	buf := make([]byte, len(cells))
	var tb [8]byte
	for i := 0; i < steps; i++ {
		if !eng.Step() {
			break
		}
		for j, sp := range cells {
			buf[j] = byte(sp)
		}
		h.Write(buf)
		bits := math.Float64bits(eng.Time())
		for k := 0; k < 8; k++ {
			tb[k] = byte(bits >> (8 * k))
		}
		h.Write(tb[:])
	}
	return h.Sum64()
}
