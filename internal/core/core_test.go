package core

import (
	"math"
	"testing"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

func zgbOn(t testing.TB, l int) (*model.Compiled, *lattice.Lattice) {
	t.Helper()
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(l)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	return cm, lat
}

func vn5(t testing.TB, lat *lattice.Lattice) *partition.Partition {
	t.Helper()
	p, err := partition.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPNDCAStepCountsTrials(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	cfg := lattice.NewConfig(lat)
	p := NewPNDCA(cm, cfg, rng.New(1), vn5(t, lat))
	p.Step()
	if p.Steps() != 1 {
		t.Fatal("step not counted")
	}
	if p.Successes() == 0 {
		t.Fatal("no reactions on empty lattice")
	}
	if p.Time() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestPNDCADeterministicSameSeed(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	run := func() *lattice.Config {
		cfg := lattice.NewConfig(lat)
		p := NewPNDCA(cm, cfg, rng.New(5), vn5(t, lat))
		for i := 0; i < 20; i++ {
			p.Step()
		}
		return cfg
	}
	if !run().Equal(run()) {
		t.Fatal("same seed produced different trajectories")
	}
}

// The central parallelism claim: sweeping a chunk with any worker count
// yields the *identical* configuration, because the non-overlap rule
// makes in-chunk updates commute and every site has its own stream.
func TestPNDCAParallelBitIdentical(t *testing.T) {
	cm, lat := zgbOn(t, 20)
	results := make([]*lattice.Config, 0, 4)
	times := make([]float64, 0, 4)
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := lattice.NewConfig(lat)
		p := NewPNDCA(cm, cfg, rng.New(77), vn5(t, lat))
		p.Workers = workers
		for i := 0; i < 25; i++ {
			p.Step()
		}
		results = append(results, cfg)
		times = append(times, p.Time())
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatalf("worker count changed the trajectory (variant %d)", i)
		}
		if math.Abs(times[0]-times[i]) > 1e-9*times[0] {
			t.Fatalf("worker count changed the clock: %v vs %v", times[0], times[i])
		}
	}
}

func TestPNDCAParallelBitIdenticalPtCO(t *testing.T) {
	m := model.NewPtCO(model.DefaultPtCORates())
	lat := lattice.NewSquare(20)
	cm := model.MustCompile(m, lat)
	p5 := vn5(t, lat)
	run := func(workers int) *lattice.Config {
		cfg := lattice.NewConfig(lat)
		p := NewPNDCA(cm, cfg, rng.New(4), p5)
		p.Workers = workers
		for i := 0; i < 15; i++ {
			p.Step()
		}
		return cfg
	}
	if !run(1).Equal(run(6)) {
		t.Fatal("parallel PtCO sweep diverged from sequential")
	}
}

func TestPNDCARandomOrderDiffers(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	cfgA := lattice.NewConfig(lat)
	a := NewPNDCA(cm, cfgA, rng.New(9), vn5(t, lat))
	cfgB := lattice.NewConfig(lat)
	b := NewPNDCA(cm, cfgB, rng.New(9), vn5(t, lat))
	b.Order = RandomOrder
	for i := 0; i < 10; i++ {
		a.Step()
		b.Step()
	}
	if cfgA.Equal(cfgB) {
		t.Fatal("random chunk order produced the raster trajectory")
	}
}

func TestPNDCAPanicsOnMismatch(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	otherLat := lattice.NewSquare(20)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on partition lattice mismatch")
		}
	}()
	NewPNDCA(cm, lattice.NewConfig(lat), rng.New(1), vn5(t, otherLat))
}

// Paper Fig. 8: L-PNDCA with m=1 (one chunk, any L) is *exactly* RSM —
// same stream, same trajectory.
func TestLPNDCAExactRSMWhenSingleChunk(t *testing.T) {
	cm, lat := zgbOn(t, 12)
	for _, l := range []int{1, 7, 144} {
		cfgL := lattice.NewConfig(lat)
		e := NewLPNDCA(cm, cfgL, rng.New(31), partition.SingleChunk(lat), l)
		cfgR := lattice.NewConfig(lat)
		r := dmc.NewRSM(cm, cfgR, rng.New(31))
		for i := 0; i < 10; i++ {
			e.Step()
			r.Step()
		}
		if !cfgL.Equal(cfgR) {
			t.Fatalf("L=%d: m=1 L-PNDCA diverged from RSM", l)
		}
		if math.Abs(e.Time()-r.Time()) > 1e-12 {
			t.Fatalf("L=%d: clocks differ: %v vs %v", l, e.Time(), r.Time())
		}
	}
}

// Paper Fig. 8: m=N (singletons) with L=1 is exactly RSM.
func TestLPNDCAExactRSMWhenSingletons(t *testing.T) {
	cm, lat := zgbOn(t, 12)
	cfgL := lattice.NewConfig(lat)
	e := NewLPNDCA(cm, cfgL, rng.New(32), partition.Singletons(lat), 1)
	cfgR := lattice.NewConfig(lat)
	r := dmc.NewRSM(cm, cfgR, rng.New(32))
	for i := 0; i < 10; i++ {
		e.Step()
		r.Step()
	}
	if !cfgL.Equal(cfgR) {
		t.Fatal("m=N, L=1 L-PNDCA diverged from RSM")
	}
}

func TestLPNDCAStepIsNTrials(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	for _, strat := range []Strategy{AllInOrder, AllRandomOrder, RandomReplacement, RateWeighted} {
		cfg := lattice.NewConfig(lat)
		e := NewLPNDCA(cm, cfg, rng.New(33), vn5(t, lat), 7)
		e.Strategy = strat
		e.Step()
		if e.Trials() != uint64(lat.N()) {
			t.Errorf("strategy %d: %d trials per step, want %d", strat, e.Trials(), lat.N())
		}
		if e.MCSteps() != 1 {
			t.Errorf("strategy %d: MCSteps %v", strat, e.MCSteps())
		}
	}
}

func TestLPNDCAAllStrategiesProgress(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	for _, strat := range []Strategy{AllInOrder, AllRandomOrder, RandomReplacement, RateWeighted} {
		cfg := lattice.NewConfig(lat)
		e := NewLPNDCA(cm, cfg, rng.New(34), vn5(t, lat), 10)
		e.Strategy = strat
		for i := 0; i < 5; i++ {
			e.Step()
		}
		if e.Successes() == 0 {
			t.Errorf("strategy %d executed nothing", strat)
		}
		sum := cfg.Coverage(0) + cfg.Coverage(1) + cfg.Coverage(2)
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("strategy %d: coverages sum %v", strat, sum)
		}
	}
}

func TestLPNDCARateWeightedTracksEnabledRates(t *testing.T) {
	// On an empty ZGB lattice every chunk has identical enabled rate;
	// after poisoning chunk weights must drop to zero.
	m := model.NewZGB(model.ZGBRates{KCO: 1, KO2: 1, KCO2: 1})
	lat := lattice.NewSquare(10)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	part := vn5(t, lat)
	tr := newRateTracker(cm, cfg.Cells(), part)
	w0 := tr.chunkWeight(0)
	if w0 <= 0 {
		t.Fatal("empty lattice chunk weight not positive")
	}
	for ci := 1; ci < part.NumChunks(); ci++ {
		if math.Abs(tr.chunkWeight(ci)-w0) > 1e-9 {
			t.Fatal("uniform lattice has non-uniform chunk weights")
		}
	}
	// Poison with CO: only CO+O (disabled, no O) and nothing else...
	// CO fills every site: no adsorption possible, no reaction enabled.
	for s := 0; s < lat.N(); s++ {
		cfg.Set(s, model.ZGBCO)
	}
	tr2 := newRateTracker(cm, cfg.Cells(), part)
	if _, ok := tr2.pick(rng.New(1)); ok {
		t.Fatal("tracker picked a chunk with nothing enabled")
	}
}

func TestRateTrackerIncrementalMatchesRebuild(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	cfg := lattice.NewConfig(lat)
	part := vn5(t, lat)
	src := rng.New(35)
	tr := newRateTracker(cm, cfg.Cells(), part)
	// Run random reactions, keeping the tracker updated.
	for i := 0; i < 2000; i++ {
		s := src.Intn(lat.N())
		rt := cm.PickType(src.Float64())
		if cm.TryExecute(cfg.Cells(), rt, s) {
			tr.afterExecute(rt, s)
		}
	}
	fresh := newRateTracker(cm, cfg.Cells(), part)
	for ci := 0; ci < part.NumChunks(); ci++ {
		if math.Abs(tr.chunkWeight(ci)-fresh.chunkWeight(ci)) > 1e-6 {
			t.Fatalf("chunk %d weight drifted: incremental %v, rebuild %v",
				ci, tr.chunkWeight(ci), fresh.chunkWeight(ci))
		}
	}
}

func TestTypePartitionedZGBMassSweepBias(t *testing.T) {
	// The literal §5 algorithm applies ONE selected type at every site
	// of a chunk. On ZGB, the first O2 sweep covers a checkerboard
	// chunk plus its east neighbours — the whole lattice — so the
	// system O-poisons almost immediately. This is the correlation bias
	// the paper's "trade-off" remark refers to; pin it down.
	m := model.NewZGB(model.ZGBRates{KCO: 1, KO2: 1, KCO2: 1})
	lat := lattice.NewSquare(10)
	cm := model.MustCompile(m, lat)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(); err != nil {
		t.Fatal(err)
	}
	cfg := lattice.NewConfig(lat)
	e := NewTypePartitioned(cm, cfg, rng.New(36), ts)
	for i := 0; i < 50; i++ {
		e.Step()
	}
	if e.Successes() == 0 {
		t.Fatal("type-partitioned engine executed nothing")
	}
	if e.Steps() != 50 || e.Visits() == 0 {
		t.Fatal("bookkeeping wrong")
	}
	if cfg.Count(model.ZGBO) != lat.N() {
		t.Fatalf("expected O poisoning under mass sweeps, got O=%d", cfg.Count(model.ZGBO))
	}
}

func TestTypePartitionedConservesDiffusion(t *testing.T) {
	// On a pure diffusion model the engine must conserve particles
	// and actually move them (all four hop directions get swept).
	m := model.NewDimerDiffusion(1)
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(); err != nil {
		t.Fatal(err)
	}
	cfg := lattice.NewConfig(lat)
	src := rng.New(44)
	cfg.Randomize([]float64{0.7, 0.3}, src.Float64)
	before := cfg.Clone()
	particles := cfg.Count(1)
	e := NewTypePartitioned(cm, cfg, src, ts)
	for i := 0; i < 50; i++ {
		e.Step()
	}
	if cfg.Count(1) != particles {
		t.Fatalf("particle count changed %d -> %d", particles, cfg.Count(1))
	}
	if cfg.Equal(before) {
		t.Fatal("no particle moved in 50 steps")
	}
	if e.Successes() == 0 {
		t.Fatal("no hops executed")
	}
}

func TestTypePartitionedParallelBitIdentical(t *testing.T) {
	cm, lat := zgbOn(t, 20)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *lattice.Config {
		cfg := lattice.NewConfig(lat)
		e := NewTypePartitioned(cm, cfg, rng.New(37), ts)
		e.Workers = workers
		for i := 0; i < 30; i++ {
			e.Step()
		}
		return cfg
	}
	if !run(1).Equal(run(4)) {
		t.Fatal("parallel type-partitioned sweep diverged")
	}
}

// Kinetic agreement: on the ZGB model in the reactive window, PNDCA,
// L-PNDCA (L=1) and the type-partitioned engine must produce steady
// coverages close to RSM. This is the paper's accuracy claim for small
// L; the tolerance reflects "approximate, not exact".
func TestPartitionedEnginesTrackRSM(t *testing.T) {
	if testing.Short() {
		t.Skip("kinetics comparison is slow")
	}
	cm, lat := zgbOn(t, 40)
	steady := func(sim dmc.Simulator) float64 {
		for i := 0; i < 200; i++ {
			sim.Step()
		}
		total := 0.0
		for i := 0; i < 100; i++ {
			sim.Step()
			total += sim.Config().Coverage(model.ZGBCO)
		}
		return total / 100
	}
	ref := steady(dmc.NewRSM(cm, lattice.NewConfig(lat), rng.New(40)))

	p := NewPNDCA(cm, lattice.NewConfig(lat), rng.New(41), vn5(t, lat))
	if got := steady(p); math.Abs(got-ref) > 0.08 {
		t.Errorf("PNDCA steady CO %v vs RSM %v", got, ref)
	}

	e := NewLPNDCA(cm, lattice.NewConfig(lat), rng.New(42), vn5(t, lat), 1)
	if got := steady(e); math.Abs(got-ref) > 0.08 {
		t.Errorf("L-PNDCA(L=1) steady CO %v vs RSM %v", got, ref)
	}
	// The type-partitioned variant is excluded: its mass sweeps
	// O-poison ZGB (see TestTypePartitionedZGBMassSweepBias).
}

func BenchmarkPNDCAStepZGB(b *testing.B) {
	cm, lat := zgbOn(b, 60)
	cfg := lattice.NewConfig(lat)
	p := NewPNDCA(cm, cfg, rng.New(1), vn5(b, lat))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkLPNDCAStepZGB(b *testing.B) {
	cm, lat := zgbOn(b, 60)
	cfg := lattice.NewConfig(lat)
	e := NewLPNDCA(cm, cfg, rng.New(1), vn5(b, lat), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkTypePartitionedStepZGB(b *testing.B) {
	cm, lat := zgbOn(b, 60)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		b.Fatal(err)
	}
	cfg := lattice.NewConfig(lat)
	e := NewTypePartitioned(cm, cfg, rng.New(1), ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
