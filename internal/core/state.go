// Engine checkpoint payloads (registry.Engine.SaveState/LoadState) for
// the partitioned engines.

package core

import (
	"io"

	"parsurf/internal/persist"
)

// SaveState writes the PNDCA clock, sweep stream counter and counters;
// the chunk permutation is rewritten at the start of every Step.
func (p *PNDCA) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(p.time)
	e.U64(p.sweep)
	e.U64(p.steps)
	e.U64(p.successes)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (p *PNDCA) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	p.time = d.F64()
	p.sweep = d.U64()
	p.steps = d.U64()
	p.successes = d.U64()
	return d.Err()
}

// SaveState writes the L-PNDCA clock, counters, the chunk cursor and
// permutation (both persist across steps under the AllInOrder and
// AllRandomOrder strategies), and — when the RateWeighted tracker has
// been built — the raw Fenwick chunk weights. The weights accumulate
// floating-point residue from incremental signed adds, so a fresh scan
// would change subsequent weighted draws; the nodes must survive
// verbatim.
func (e *LPNDCA) SaveState(w io.Writer) error {
	enc := persist.NewWriter(w)
	enc.F64(e.time)
	enc.U64(e.steps)
	enc.U64(e.trials)
	enc.U64(e.successes)
	enc.U64(uint64(e.cursor))
	enc.U32(uint32(len(e.perm)))
	for _, ci := range e.perm {
		enc.U32(uint32(ci))
	}
	if e.tracker == nil {
		enc.U32(0)
	} else {
		enc.U32(1)
		nodes, adds := e.tracker.weights.State(nil)
		enc.U64(adds)
		enc.U32(uint32(len(nodes)))
		for _, node := range nodes {
			enc.F64(node)
		}
	}
	return enc.Err()
}

// LoadState restores a payload written by SaveState. When the payload
// carries tracker weights and the engine has no tracker yet (Reset
// leaves a lazily-built tracker nil on a fresh engine), the tracker is
// built first — its enabled bitset is a pure function of the already
// restored cells — and its drifted weights are then overwritten.
func (e *LPNDCA) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	simTime := d.F64()
	steps := d.U64()
	trials := d.U64()
	successes := d.U64()
	cursor := d.U64()
	m := d.U32()
	if d.Err() == nil && int(m) != len(e.perm) {
		d.Failf("core: lpndca payload permutes %d chunks, partition has %d", m, len(e.perm))
	}
	if d.Err() == nil && cursor >= uint64(max(int(m), 1)) {
		d.Failf("core: lpndca payload cursor %d with %d chunks", cursor, m)
	}
	perm := make([]int, 0, m)
	for i := 0; i < int(m) && d.Err() == nil; i++ {
		ci := d.U32()
		if d.Err() == nil && int(ci) >= len(e.perm) {
			d.Failf("core: lpndca payload chunk %d outside partition", ci)
			break
		}
		perm = append(perm, int(ci))
	}
	hasTracker := d.U32()
	var nodes []float64
	var adds uint64
	if d.Err() == nil && hasTracker > 1 {
		d.Failf("core: lpndca payload tracker flag %d", hasTracker)
	}
	if hasTracker == 1 && d.Err() == nil {
		adds = d.U64()
		nn := d.U32()
		nodes = make([]float64, 0, nn)
		for i := 0; i < int(nn) && d.Err() == nil; i++ {
			nodes = append(nodes, d.F64())
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if hasTracker == 1 {
		if e.tracker == nil {
			e.tracker = newRateTracker(e.cm, e.cells, e.part)
		}
		if err := e.tracker.weights.Restore(nodes, adds); err != nil {
			return err
		}
	}
	copy(e.perm, perm)
	e.cursor = int(cursor)
	e.time = simTime
	e.steps, e.trials, e.successes = steps, trials, successes
	return nil
}

// SaveState writes the type-partitioned clock, sweep stream counter and
// counters; the cumulative-rate tables are pure functions of the model.
func (e *TypePartitioned) SaveState(w io.Writer) error {
	enc := persist.NewWriter(w)
	enc.F64(e.time)
	enc.U64(e.sweepID)
	enc.U64(e.steps)
	enc.U64(e.visits)
	enc.U64(e.successes)
	return enc.Err()
}

// LoadState restores a payload written by SaveState.
func (e *TypePartitioned) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	e.time = d.F64()
	e.sweepID = d.U64()
	e.steps = d.U64()
	e.visits = d.U64()
	e.successes = d.U64()
	return d.Err()
}
