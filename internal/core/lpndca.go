package core

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// Strategy selects how L-PNDCA chooses the next chunk (§5 of the paper,
// "chunks can be selected in the following ways").
type Strategy int

const (
	// AllInOrder: all chunks in a predefined order, cycling (way 1).
	AllInOrder Strategy = iota
	// AllRandomOrder: all chunks once per round in a fresh random
	// permutation (way 2).
	AllRandomOrder
	// RandomReplacement: each selection draws a chunk independently
	// with probability proportional to its size, so each *site* is
	// reached with probability 1/N (way 3).
	RandomReplacement
	// RateWeighted: each selection draws a chunk with probability
	// proportional to the summed rate of the reactions currently
	// enabled in it (way 4).
	RateWeighted
)

// LPNDCA is the generalised partitioned NDCA of §5: one step spends
// exactly N trials; chunks are selected by the configured strategy and
// each selection runs up to L trials at random sites (with replacement)
// of the selected chunk.
//
// Limit behaviour (paper §5 and Fig. 8): with m=1 (single chunk) any L,
// or m=N (singleton chunks) and L=1, the algorithm is *exactly* the
// Random Selection Method, reproducing the same trajectory for the same
// random stream.
type LPNDCA struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	part  *partition.Partition

	// L is the number of trials per chunk selection (clamped to the
	// remainder of the step).
	L int
	// Strategy is the chunk-selection rule.
	Strategy Strategy
	// DeterministicTime advances 1/(N·K) per trial.
	DeterministicTime bool

	// sizePrefix[i] is the number of sites in chunks 0..i-1; a uniform
	// index in [0,N) maps bijectively to (chunk, position), giving
	// size-proportional chunk selection and a uniform in-chunk site
	// from a single draw.
	sizePrefix []int
	perm       []int
	cursor     int // AllInOrder position
	tracker    *rateTracker

	time      float64
	steps     uint64
	trials    uint64
	successes uint64
}

// NewLPNDCA builds the engine with the given trials-per-selection L
// (values below 1 are treated as 1).
func NewLPNDCA(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, part *partition.Partition, l int) *LPNDCA {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("core: configuration lattice differs from compiled lattice")
	}
	if !part.Lat.SameShape(cm.Lat) {
		panic("core: partition lattice differs from compiled lattice")
	}
	if l < 1 {
		l = 1
	}
	e := &LPNDCA{
		cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, part: part,
		L:        l,
		Strategy: RandomReplacement,
	}
	e.sizePrefix = make([]int, part.NumChunks()+1)
	for i, chunk := range part.Chunks {
		e.sizePrefix[i+1] = e.sizePrefix[i] + len(chunk)
	}
	e.perm = make([]int, part.NumChunks())
	for i := range e.perm {
		e.perm[i] = i
	}
	return e
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The partition, size prefix sums and L/
// Strategy settings are kept. An existing rate tracker is re-derived
// from the fresh cells in place; a fresh engine would only build it
// lazily at the first RateWeighted selection, but since the tracker
// consumes no randomness and both read the same initial configuration
// the trajectories are identical.
func (e *LPNDCA) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(e.cm.Lat) {
		panic("core: Reset configuration lattice differs from compiled lattice")
	}
	e.cfg, e.cells, e.src = cfg, cfg.Cells(), src
	e.time = 0
	e.steps, e.trials, e.successes = 0, 0, 0
	e.cursor = 0
	for i := range e.perm {
		e.perm[i] = i
	}
	if e.tracker != nil {
		e.tracker.reset(e.cells)
	}
}

// chunkOfIndex maps a uniform site ordinal in [0,N) to its chunk via
// binary search over the size prefix sums.
func (e *LPNDCA) chunkOfIndex(idx int) int {
	lo, hi := 0, len(e.sizePrefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if e.sizePrefix[mid] <= idx {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// trialAt performs one trial at site s.
func (e *LPNDCA) trialAt(s int) {
	rt := e.cm.PickType(e.src.Float64())
	if e.cm.TryExecute(e.cells, rt, s) {
		e.successes++
		if e.tracker != nil {
			e.tracker.afterExecute(rt, s)
		}
	}
	e.trials++
	nk := float64(e.cm.Lat.N()) * e.cm.K
	if e.DeterministicTime {
		e.time += 1 / nk
	} else {
		e.time += e.src.Exp(nk)
	}
}

// runInChunk performs want trials at random sites (with replacement) of
// chunk ci; firstSite, when non-negative, is the pre-drawn site of the
// first trial (from the size-proportional selection draw).
func (e *LPNDCA) runInChunk(ci, want, firstSite int) {
	chunk := e.part.Chunks[ci]
	for i := 0; i < want; i++ {
		var s int
		switch {
		case i == 0 && firstSite >= 0:
			s = firstSite
		case len(chunk) == 1:
			s = int(chunk[0])
		default:
			s = int(chunk[e.src.Intn(len(chunk))])
		}
		e.trialAt(s)
	}
}

// Step performs one L-PNDCA step of exactly N trials.
//
//surflint:hotpath
func (e *LPNDCA) Step() bool {
	n := e.cm.Lat.N()
	remaining := n
	m := e.part.NumChunks()
	for remaining > 0 {
		l := e.L
		if l > remaining {
			l = remaining
		}
		switch e.Strategy {
		case AllInOrder:
			ci := e.perm[e.cursor]
			e.cursor = (e.cursor + 1) % m
			e.runInChunk(ci, l, -1)
		case AllRandomOrder:
			if e.cursor == 0 {
				e.src.Perm(e.perm)
			}
			ci := e.perm[e.cursor]
			e.cursor = (e.cursor + 1) % m
			e.runInChunk(ci, l, -1)
		case RandomReplacement:
			if m == 1 {
				e.runInChunk(0, l, -1)
				break
			}
			idx := e.src.Intn(n)
			ci := e.chunkOfIndex(idx)
			first := int(e.part.Chunks[ci][idx-e.sizePrefix[ci]])
			e.runInChunk(ci, l, first)
		case RateWeighted:
			if e.tracker == nil {
				e.tracker = newRateTracker(e.cm, e.cells, e.part)
			}
			ci, ok := e.tracker.pick(e.src)
			if !ok {
				// Nothing enabled anywhere: the step still costs time.
				e.trials += uint64(remaining)
				nk := float64(n) * e.cm.K
				for i := 0; i < remaining; i++ {
					if e.DeterministicTime {
						e.time += 1 / nk
					} else {
						e.time += e.src.Exp(nk)
					}
				}
				e.steps++
				return true
			}
			e.runInChunk(ci, l, -1)
		}
		remaining -= l
	}
	e.steps++
	return true
}

// Time returns the simulated time.
func (e *LPNDCA) Time() float64 { return e.time }

// Config returns the live configuration.
func (e *LPNDCA) Config() *lattice.Config { return e.cfg }

// Trials returns the trials attempted.
func (e *LPNDCA) Trials() uint64 { return e.trials }

// Successes returns the executed reactions.
func (e *LPNDCA) Successes() uint64 { return e.successes }

// MCSteps returns trials/N.
func (e *LPNDCA) MCSteps() float64 { return float64(e.trials) / float64(e.cm.Lat.N()) }
