package core

import (
	"sync"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// TypePartitioned is the second partitioning approach of §5 (the
// generalisation of Kortlüke's algorithm): the reaction-type set T is
// split into subsets T_j, each with an associated site partition that
// satisfies the *per-type* non-overlap rule. One step performs |T|
// sweeps; each sweep selects a subset with probability K_Tj/K, a single
// reaction type from the subset with probability k_i/K_Tj, and a chunk
// uniformly, then attempts that one type at every site of the chunk.
//
// Because only one reaction type is active per sweep, the site
// partition can be coarser (two checkerboard chunks instead of five for
// the CO-oxidation model), increasing the per-sweep concurrency.
type TypePartitioned struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	split *partition.TypeSplit

	// Workers sweeps each chunk on parallel goroutines, bit-identically
	// to the sequential sweep (per-site derived streams).
	Workers int
	// DeterministicTime advances 1/(N·K) per site visit.
	DeterministicTime bool
	// Accept is the per-site acceptance probability of a sweep
	// (default 1 = the literal §5 algorithm, which executes the
	// selected type at every enabled site of the chunk). Values below
	// one thin the sweep: each enabled site fires only with this
	// probability, and each visit advances the clock by only
	// Accept/(N·K) so the per-site execution rate stays calibrated —
	// the engine then needs proportionally more sweeps per unit of
	// simulated time. Thinning breaks the all-at-once correlation of
	// mass sweeps (the bias that O-poisons adsorption models, see the
	// package tests) at that extra cost.
	Accept float64

	subsetCum []float64
	typeCum   [][]float64

	time      float64
	sweepID   uint64
	steps     uint64
	visits    uint64
	successes uint64
	dtbuf     []float64 // per-site clock increments of one sweep
	// sweepBase/succbuf/wg are reused across sweeps (see PNDCA) so the
	// steady-state sweep allocates nothing.
	sweepBase rng.Source
	accept    float64 // clamped Accept of the sweep in flight
	nk        float64
	sweepRT   int
	succbuf   []uint64
	wg        sync.WaitGroup
}

// NewTypePartitioned builds the engine from a verified type split (call
// split.Verify beforehand; the constructor does not re-verify).
func NewTypePartitioned(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, split *partition.TypeSplit) *TypePartitioned {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("core: configuration lattice differs from compiled lattice")
	}
	e := &TypePartitioned{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, split: split}
	acc := 0.0
	for _, r := range split.SubsetRates {
		acc += r
		e.subsetCum = append(e.subsetCum, acc)
	}
	for _, subset := range split.Subsets {
		cum := make([]float64, len(subset))
		a := 0.0
		for i, rt := range subset {
			a += cm.Types[rt].Rate
			cum[i] = a
		}
		e.typeCum = append(e.typeCum, cum)
	}
	return e
}

func pickCum(cum []float64, u float64) int {
	target := u * cum[len(cum)-1]
	for i, c := range cum {
		if target < c {
			return i
		}
	}
	return len(cum) - 1
}

// Step performs |T| sweeps, visiting roughly N sites in total (for the
// two-subset checkerboard split each sweep covers N/2 sites).
//
//surflint:hotpath
func (e *TypePartitioned) Step() bool {
	for j := 0; j < e.split.NumSubsets(); j++ {
		tj := pickCum(e.subsetCum, e.src.Float64())
		ti := pickCum(e.typeCum[tj], e.src.Float64())
		rt := e.split.Subsets[tj][ti]
		part := e.split.Partitions[tj]
		ci := e.src.Intn(part.NumChunks())
		e.sweepType(rt, part.Chunks[ci])
	}
	e.steps++
	return true
}

// sweepType attempts reaction type rt at every site of the chunk.
func (e *TypePartitioned) sweepType(rt int, chunk []int32) {
	e.sweepID++
	e.src.SplitInto(&e.sweepBase, e.sweepID)
	e.sweepRT = rt
	accept := e.Accept
	if accept <= 0 || accept > 1 {
		accept = 1
	}
	e.accept = accept
	// Thinning slows the clock so the per-site execution rate stays
	// calibrated: visits per unit time scale by 1/accept.
	e.nk = float64(e.cm.Lat.N()) * e.cm.K / accept

	// Per-site clock increments are recorded into slots and summed in
	// chunk order afterwards, so the clock (not just the configuration)
	// is bit-identical for every worker count — the same fix pndca and
	// ddrsm received.
	if cap(e.dtbuf) < len(chunk) {
		e.dtbuf = make([]float64, len(chunk))
	}
	dts := e.dtbuf[:len(chunk)]

	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(chunk) {
		workers = len(chunk)
	}
	if workers == 1 {
		e.successes += e.visit(chunk, dts, 0, len(chunk))
	} else {
		if cap(e.succbuf) < workers {
			e.succbuf = make([]uint64, workers)
		}
		succs := e.succbuf[:workers]
		for w := 0; w < workers; w++ {
			lo := w * len(chunk) / workers
			hi := (w + 1) * len(chunk) / workers
			e.wg.Add(1)
			go e.visitWorker(chunk, dts, lo, hi, &succs[w])
		}
		e.wg.Wait()
		for _, succ := range succs {
			e.successes += succ
		}
	}
	var dt float64
	for _, d := range dts {
		dt += d
	}
	e.time += dt
	e.visits += uint64(len(chunk))
}

// visit attempts the sweep's reaction type at the sites chunk[lo:hi],
// recording clock increments into dts; invocations over disjoint
// ranges are race-free under the per-type non-overlap rule.
func (e *TypePartitioned) visit(chunk []int32, dts []float64, lo, hi int) (succ uint64) {
	var st rng.Source
	for i, s := range chunk[lo:hi] {
		e.sweepBase.SplitInto(&st, uint64(s))
		if e.accept >= 1 || st.Float64() < e.accept {
			if e.cm.TryExecute(e.cells, e.sweepRT, int(s)) {
				succ++
			}
		}
		if e.DeterministicTime {
			dts[lo+i] = 1 / e.nk
		} else {
			dts[lo+i] = st.Exp(e.nk)
		}
	}
	return
}

func (e *TypePartitioned) visitWorker(chunk []int32, dts []float64, lo, hi int, out *uint64) {
	defer e.wg.Done()
	*out = e.visit(chunk, dts, lo, hi)
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The type split and its cumulative-rate
// tables depend only on the model, so they are kept; the sweep stream
// counter rewinds so trajectories reproduce fresh builds exactly.
func (e *TypePartitioned) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(e.cm.Lat) {
		panic("core: Reset configuration lattice differs from compiled lattice")
	}
	e.cfg, e.cells, e.src = cfg, cfg.Cells(), src
	e.time = 0
	e.sweepID, e.steps, e.visits, e.successes = 0, 0, 0, 0
}

// Time returns the simulated time.
func (e *TypePartitioned) Time() float64 { return e.time }

// Config returns the live configuration.
func (e *TypePartitioned) Config() *lattice.Config { return e.cfg }

// Steps returns completed steps.
func (e *TypePartitioned) Steps() uint64 { return e.steps }

// Visits returns the total site visits.
func (e *TypePartitioned) Visits() uint64 { return e.visits }

// Successes returns the executed reactions.
func (e *TypePartitioned) Successes() uint64 { return e.successes }
