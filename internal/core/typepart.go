package core

import (
	"sync"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// TypePartitioned is the second partitioning approach of §5 (the
// generalisation of Kortlüke's algorithm): the reaction-type set T is
// split into subsets T_j, each with an associated site partition that
// satisfies the *per-type* non-overlap rule. One step performs |T|
// sweeps; each sweep selects a subset with probability K_Tj/K, a single
// reaction type from the subset with probability k_i/K_Tj, and a chunk
// uniformly, then attempts that one type at every site of the chunk.
//
// Because only one reaction type is active per sweep, the site
// partition can be coarser (two checkerboard chunks instead of five for
// the CO-oxidation model), increasing the per-sweep concurrency.
type TypePartitioned struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	split *partition.TypeSplit

	// Workers sweeps each chunk on parallel goroutines, bit-identically
	// to the sequential sweep (per-site derived streams).
	Workers int
	// DeterministicTime advances 1/(N·K) per site visit.
	DeterministicTime bool
	// Accept is the per-site acceptance probability of a sweep
	// (default 1 = the literal §5 algorithm, which executes the
	// selected type at every enabled site of the chunk). Values below
	// one thin the sweep: each enabled site fires only with this
	// probability, and each visit advances the clock by only
	// Accept/(N·K) so the per-site execution rate stays calibrated —
	// the engine then needs proportionally more sweeps per unit of
	// simulated time. Thinning breaks the all-at-once correlation of
	// mass sweeps (the bias that O-poisons adsorption models, see the
	// package tests) at that extra cost.
	Accept float64

	subsetCum []float64
	typeCum   [][]float64

	time      float64
	sweepID   uint64
	steps     uint64
	visits    uint64
	successes uint64
	dtbuf     []float64 // per-site clock increments of one sweep
}

// NewTypePartitioned builds the engine from a verified type split (call
// split.Verify beforehand; the constructor does not re-verify).
func NewTypePartitioned(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, split *partition.TypeSplit) *TypePartitioned {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("core: configuration lattice differs from compiled lattice")
	}
	e := &TypePartitioned{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, split: split}
	acc := 0.0
	for _, r := range split.SubsetRates {
		acc += r
		e.subsetCum = append(e.subsetCum, acc)
	}
	for _, subset := range split.Subsets {
		cum := make([]float64, len(subset))
		a := 0.0
		for i, rt := range subset {
			a += cm.Types[rt].Rate
			cum[i] = a
		}
		e.typeCum = append(e.typeCum, cum)
	}
	return e
}

func pickCum(cum []float64, u float64) int {
	target := u * cum[len(cum)-1]
	for i, c := range cum {
		if target < c {
			return i
		}
	}
	return len(cum) - 1
}

// Step performs |T| sweeps, visiting roughly N sites in total (for the
// two-subset checkerboard split each sweep covers N/2 sites).
func (e *TypePartitioned) Step() bool {
	for j := 0; j < e.split.NumSubsets(); j++ {
		tj := pickCum(e.subsetCum, e.src.Float64())
		ti := pickCum(e.typeCum[tj], e.src.Float64())
		rt := e.split.Subsets[tj][ti]
		part := e.split.Partitions[tj]
		ci := e.src.Intn(part.NumChunks())
		e.sweepType(rt, part.Chunks[ci])
	}
	e.steps++
	return true
}

// sweepType attempts reaction type rt at every site of the chunk.
func (e *TypePartitioned) sweepType(rt int, chunk []int32) {
	e.sweepID++
	base := e.src.Split(e.sweepID)
	accept := e.Accept
	if accept <= 0 || accept > 1 {
		accept = 1
	}
	// Thinning slows the clock so the per-site execution rate stays
	// calibrated: visits per unit time scale by 1/accept.
	nk := float64(e.cm.Lat.N()) * e.cm.K / accept

	// Per-site clock increments are recorded into slots and summed in
	// chunk order afterwards, so the clock (not just the configuration)
	// is bit-identical for every worker count — the same fix pndca and
	// ddrsm received.
	if cap(e.dtbuf) < len(chunk) {
		e.dtbuf = make([]float64, len(chunk))
	}
	dts := e.dtbuf[:len(chunk)]

	visit := func(lo, hi int) (succ uint64) {
		for i, s := range chunk[lo:hi] {
			st := base.Split(uint64(s))
			if accept >= 1 || st.Float64() < accept {
				if e.cm.TryExecute(e.cells, rt, int(s)) {
					succ++
				}
			}
			if e.DeterministicTime {
				dts[lo+i] = 1 / nk
			} else {
				dts[lo+i] = st.Exp(nk)
			}
		}
		return
	}

	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(chunk) {
		workers = len(chunk)
	}
	if workers == 1 {
		e.successes += visit(0, len(chunk))
	} else {
		succs := make([]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(chunk) / workers
			hi := (w + 1) * len(chunk) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				succs[w] = visit(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, succ := range succs {
			e.successes += succ
		}
	}
	var dt float64
	for _, d := range dts {
		dt += d
	}
	e.time += dt
	e.visits += uint64(len(chunk))
}

// Time returns the simulated time.
func (e *TypePartitioned) Time() float64 { return e.time }

// Config returns the live configuration.
func (e *TypePartitioned) Config() *lattice.Config { return e.cfg }

// Steps returns completed steps.
func (e *TypePartitioned) Steps() uint64 { return e.steps }

// Visits returns the total site visits.
func (e *TypePartitioned) Visits() uint64 { return e.visits }

// Successes returns the executed reactions.
func (e *TypePartitioned) Successes() uint64 { return e.successes }
