package core

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
)

// Engine-interface methods (registry.Engine) for the partitioned
// engines, the paper's contribution.

// Name returns the registry name.
func (p *PNDCA) Name() string { return "pndca" }

// TotalRate returns the constant trial rate N·K of the PNDCA clock.
func (p *PNDCA) TotalRate() float64 { return float64(p.cm.Lat.N()) * p.cm.K }

// Name returns the registry name.
func (e *LPNDCA) Name() string { return "lpndca" }

// TotalRate returns the constant trial rate N·K of the L-PNDCA clock.
func (e *LPNDCA) TotalRate() float64 { return float64(e.cm.Lat.N()) * e.cm.K }

// Steps returns the number of completed Step calls (MC steps).
func (e *LPNDCA) Steps() uint64 { return e.steps }

// Name returns the registry name.
func (e *TypePartitioned) Name() string { return "typepart" }

// TotalRate returns the constant trial rate N·K underlying the Ω×T
// sweep clock.
func (e *TypePartitioned) TotalRate() float64 { return float64(e.cm.Lat.N()) * e.cm.K }

// String returns the strategy's registry/CLI name.
func (s Strategy) String() string {
	switch s {
	case AllInOrder:
		return "order"
	case AllRandomOrder:
		return "randomorder"
	case RandomReplacement:
		return "random"
	case RateWeighted:
		return "rates"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a chunk-selection strategy by name.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "order":
		return AllInOrder, nil
	case "randomorder":
		return AllRandomOrder, nil
	case "random":
		return RandomReplacement, nil
	case "rates":
		return RateWeighted, nil
	}
	return 0, fmt.Errorf("core: unknown chunk-selection strategy %q (want order, randomorder, random or rates)", name)
}

// defaultPartition resolves the partition for the partitioned engines
// when the options leave it unset: the paper's five-chunk von Neumann
// partition when it tiles the lattice and satisfies the non-overlap rule
// for the model, otherwise the smallest valid modular colouring.
func defaultPartition(cm *model.Compiled) (*partition.Partition, error) {
	if p, err := partition.VonNeumann5(cm.Lat); err == nil {
		if partition.VerifyNonOverlap(p, cm.Model) == nil {
			return p, nil
		}
	}
	p, err := partition.ModularColoring(cm.Model, cm.Lat, 64)
	if err != nil {
		return nil, fmt.Errorf("core: no default partition for this model/lattice (pass one explicitly): %w", err)
	}
	return p, nil
}

func init() {
	registry.Register(registry.Spec{
		Name:    "pndca",
		Doc:     "Partitioned NDCA, chunk sweeps on parallel goroutines (§5)",
		Accepts: registry.OptPartition | registry.OptWorkers | registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			part := o.Partition
			if part == nil {
				var err error
				if part, err = defaultPartition(cm); err != nil {
					return nil, err
				}
			}
			p := NewPNDCA(cm, cfg, src, part)
			p.Workers = o.Workers
			p.DeterministicTime = o.DeterministicTime
			return p, nil
		},
	})
	registry.Register(registry.Spec{
		Name:    "lpndca",
		Doc:     "generalised L-trials partitioned NDCA, four chunk strategies (§5)",
		Accepts: registry.OptPartition | registry.OptL | registry.OptStrategy | registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			part := o.Partition
			if part == nil {
				var err error
				if part, err = defaultPartition(cm); err != nil {
					return nil, err
				}
			}
			l := o.L
			if l == 0 {
				l = 1
			}
			if l < 1 {
				return nil, fmt.Errorf("core: lpndca needs L >= 1, got %d", l)
			}
			e := NewLPNDCA(cm, cfg, src, part, l)
			if o.Strategy != "" {
				s, err := ParseStrategy(o.Strategy)
				if err != nil {
					return nil, err
				}
				e.Strategy = s
			}
			e.DeterministicTime = o.DeterministicTime
			return e, nil
		},
	})
	registry.Register(registry.Spec{
		Name:    "typepart",
		Doc:     "Ω×T type-partitioned algorithm over checkerboards (§5, Table II)",
		Accepts: registry.OptTypeSplit | registry.OptWorkers | registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			split := o.TypeSplit
			if split == nil {
				var err error
				if split, err = partition.SplitByDirection(cm.Model, cm.Lat); err != nil {
					return nil, fmt.Errorf("core: no default type split for this model (pass one explicitly): %w", err)
				}
			}
			e := NewTypePartitioned(cm, cfg, src, split)
			e.Workers = o.Workers
			e.DeterministicTime = o.DeterministicTime
			return e, nil
		},
	})
}
