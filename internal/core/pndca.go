// Package core implements the paper's contribution (§5): Cellular
// Automaton simulation with partitions.
//
//   - PNDCA: per step, every chunk of the partition is swept and every
//     site of the chunk performs one rate-weighted trial. Because the
//     partition satisfies the non-overlap rule, all sites of one chunk
//     update independently — the package executes them on parallel
//     goroutines with bit-identical results to the sequential sweep.
//   - L-PNDCA: the generalised algorithm where chunks are selected
//     repeatedly (four selection strategies) and L random trials are
//     spent inside the selected chunk, until N trials complete a step.
//     For m=1 or m=N it reduces exactly to the Random Selection Method.
//   - TypePartitioned: the Ω×T partitioning (the generalisation of
//     Kortlüke's algorithm), where the reaction-type set is split into
//     subsets and a coarser two-chunk partition is swept one reaction
//     type at a time.
package core

import (
	"sync"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// ChunkOrder selects the order in which PNDCA visits the chunks of the
// partition within one step.
type ChunkOrder int

const (
	// InOrder visits chunks in index order every step (§5 selection
	// strategy 1).
	InOrder ChunkOrder = iota
	// RandomOrder visits all chunks once per step in a fresh random
	// permutation (§5 selection strategy 2).
	RandomOrder
)

// PNDCA is the Partitioned Non-Deterministic Cellular Automaton: per
// step every chunk is swept once, and within a chunk every site performs
// exactly one trial (reaction type chosen with probability k_i/K,
// executed if enabled).
type PNDCA struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	part  *partition.Partition
	parts []*partition.Partition // optional per-step cycle (UsePartitions)

	// Workers is the number of goroutines sweeping each chunk. The
	// non-overlap rule makes in-chunk updates commute, and per-site
	// random streams make the result bit-identical for every worker
	// count. Zero or one means sequential.
	Workers int
	// Order is the chunk visiting order within a step.
	Order ChunkOrder
	// DeterministicTime advances 1/(N·K) per trial instead of Exp(N·K).
	DeterministicTime bool

	time      float64
	sweep     uint64 // per-chunk-sweep stream counter
	steps     uint64
	successes uint64
	perm      []int
	dtbuf     []float64 // per-site clock increments of one chunk sweep
	// sweepBase is the per-sweep base stream, held on the struct so the
	// parallel workers can share its (read-only) state without forcing
	// a heap escape per sweep; succbuf and wg are likewise reused.
	sweepBase rng.Source
	succbuf   []uint64
	wg        sync.WaitGroup
}

// NewPNDCA builds the engine. The partition must satisfy the all-types
// non-overlap rule for the model (verify with partition.VerifyNonOverlap;
// the constructor does not re-verify, allowing deliberately invalid
// partitions in experiments).
func NewPNDCA(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, part *partition.Partition) *PNDCA {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("core: configuration lattice differs from compiled lattice")
	}
	if !part.Lat.SameShape(cm.Lat) {
		panic("core: partition lattice differs from compiled lattice")
	}
	p := &PNDCA{
		cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, part: part,
		perm: make([]int, part.NumChunks()),
	}
	for i := range p.perm {
		p.perm[i] = i
	}
	return p
}

// UsePartitions installs a cycle of partitions: step k sweeps
// partitions[k mod len]. This realises the "choose a partition P" of
// the §5 algorithm (as the BCA of Fig. 3 alternates tilings). All
// partitions must live on the compiled lattice shape and each must
// satisfy the non-overlap rule.
func (p *PNDCA) UsePartitions(parts []*partition.Partition) {
	if len(parts) == 0 {
		panic("core: UsePartitions with no partitions")
	}
	maxChunks := len(p.perm)
	for _, part := range parts {
		if !part.Lat.SameShape(p.cm.Lat) {
			panic("core: partition lattice differs from compiled lattice")
		}
		if n := part.NumChunks(); n > maxChunks {
			maxChunks = n
		}
	}
	// Size perm for the largest partition of the cycle now, so Step
	// re-slices without ever allocating mid-run.
	if cap(p.perm) < maxChunks {
		p.perm = make([]int, maxChunks)
	}
	p.parts = parts
}

// currentPartition returns the partition for this step.
func (p *PNDCA) currentPartition() *partition.Partition {
	if len(p.parts) == 0 {
		return p.part
	}
	return p.parts[int(p.steps)%len(p.parts)]
}

// Step performs one PNDCA step: every chunk swept once, every site of
// the lattice trialled once (N trials = one MC step).
//
//surflint:hotpath
func (p *PNDCA) Step() bool {
	part := p.currentPartition()
	p.perm = p.perm[:part.NumChunks()]
	if p.Order == RandomOrder {
		p.src.Perm(p.perm)
	} else {
		for i := range p.perm {
			p.perm[i] = i
		}
	}
	for _, ci := range p.perm {
		p.sweepChunk(part.Chunks[ci])
	}
	p.steps++
	return true
}

// sweepChunk trials every site of the chunk once, possibly on parallel
// goroutines. Every site draws from its own derived random stream and
// records its clock increment into a per-site slot; the increments are
// then summed in chunk order regardless of how the sites were
// segmented across workers. Configurations AND the clock are therefore
// bit-identical for every worker count — the same float additions run
// in the same order as the sequential sweep. The per-site streams are
// derived in place with SplitInto into stack values, so the
// steady-state sweep allocates nothing.
func (p *PNDCA) sweepChunk(chunk []int32) {
	p.sweep++
	p.src.SplitInto(&p.sweepBase, p.sweep)
	nk := float64(p.cm.Lat.N()) * p.cm.K
	if cap(p.dtbuf) < len(chunk) {
		p.dtbuf = make([]float64, len(chunk))
	}
	dts := p.dtbuf[:len(chunk)]

	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(chunk) {
		workers = len(chunk)
	}
	if workers == 1 {
		p.successes += p.visit(chunk, dts, nk, 0, len(chunk))
	} else {
		// Fixed segmentation: worker w handles [w·len/W, (w+1)·len/W).
		if cap(p.succbuf) < workers {
			p.succbuf = make([]uint64, workers)
		}
		succs := p.succbuf[:workers]
		for w := 0; w < workers; w++ {
			lo := w * len(chunk) / workers
			hi := (w + 1) * len(chunk) / workers
			p.wg.Add(1)
			go p.visitWorker(chunk, dts, nk, lo, hi, &succs[w])
		}
		p.wg.Wait()
		for _, succ := range succs {
			p.successes += succ
		}
	}
	// One chunk-ordered reduction for every worker count.
	var dt float64
	for _, d := range dts {
		dt += d
	}
	p.time += dt
}

// visit trials the sites chunk[lo:hi], writing each site's clock
// increment into its dts slot and returning the executed-reaction
// count. The non-overlap rule makes concurrent invocations over
// disjoint ranges race-free.
func (p *PNDCA) visit(chunk []int32, dts []float64, nk float64, lo, hi int) (succ uint64) {
	var st rng.Source
	for i, s := range chunk[lo:hi] {
		p.sweepBase.SplitInto(&st, uint64(s))
		rt := p.cm.PickType(st.Float64())
		if p.cm.TryExecute(p.cells, rt, int(s)) {
			succ++
		}
		if p.DeterministicTime {
			dts[lo+i] = 1 / nk
		} else {
			dts[lo+i] = st.Exp(nk)
		}
	}
	return
}

func (p *PNDCA) visitWorker(chunk []int32, dts []float64, nk float64, lo, hi int, out *uint64) {
	defer p.wg.Done()
	*out = p.visit(chunk, dts, nk, lo, hi)
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The partition (and any UsePartitions cycle)
// is kept; the chunk permutation returns to the identity a fresh
// engine starts from, and the sweep stream counter rewinds so replica
// trajectories reproduce fresh builds exactly.
func (p *PNDCA) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(p.cm.Lat) {
		panic("core: Reset configuration lattice differs from compiled lattice")
	}
	p.cfg, p.cells, p.src = cfg, cfg.Cells(), src
	p.time = 0
	p.sweep, p.steps, p.successes = 0, 0, 0
	if len(p.perm) != p.part.NumChunks() {
		p.perm = make([]int, p.part.NumChunks())
	}
	for i := range p.perm {
		p.perm[i] = i
	}
}

// Time returns the simulated time.
func (p *PNDCA) Time() float64 { return p.time }

// Config returns the live configuration.
func (p *PNDCA) Config() *lattice.Config { return p.cfg }

// Steps returns the number of completed steps.
func (p *PNDCA) Steps() uint64 { return p.steps }

// Successes returns the number of executed reactions.
func (p *PNDCA) Successes() uint64 { return p.successes }

// Partition returns the partition the engine sweeps.
func (p *PNDCA) Partition() *partition.Partition { return p.part }
