package core

import (
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

func TestPNDCAUsePartitionsCycles(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	cfg := lattice.NewConfig(lat)
	p := NewPNDCA(cm, cfg, rng.New(50), vn5(t, lat))
	p.UsePartitions([]*partition.Partition{vn5(t, lat), partition.Singletons(lat)})
	for i := 0; i < 4; i++ {
		p.Step()
	}
	if p.Steps() != 4 || p.Successes() == 0 {
		t.Fatal("cycled partitions did not run")
	}
}

func TestPNDCAUsePartitionsChangesTrajectory(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	run := func(cycle bool) *lattice.Config {
		cfg := lattice.NewConfig(lat)
		p := NewPNDCA(cm, cfg, rng.New(51), vn5(t, lat))
		if cycle {
			p.UsePartitions([]*partition.Partition{vn5(t, lat), partition.Singletons(lat)})
		}
		for i := 0; i < 6; i++ {
			p.Step()
		}
		return cfg
	}
	if run(false).Equal(run(true)) {
		t.Fatal("partition cycling had no effect")
	}
}

func TestPNDCAUsePartitionsValidates(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	p := NewPNDCA(cm, lattice.NewConfig(lat), rng.New(52), vn5(t, lat))
	for _, bad := range [][]*partition.Partition{
		nil,
		{partition.Singletons(lattice.NewSquare(15))},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid partition set accepted")
				}
			}()
			p.UsePartitions(bad)
		}()
	}
}

func TestPNDCAParallelBitIdenticalWithCycling(t *testing.T) {
	cm, lat := zgbOn(t, 20)
	run := func(workers int) *lattice.Config {
		cfg := lattice.NewConfig(lat)
		p := NewPNDCA(cm, cfg, rng.New(53), vn5(t, lat))
		p.UsePartitions([]*partition.Partition{vn5(t, lat), partition.SingleChunk(lat)})
		// Note: SingleChunk violates non-overlap for ZGB; with workers
		// it would race. Only the von Neumann partition is swept in
		// parallel here, so restrict cycling to valid partitions.
		p.UsePartitions([]*partition.Partition{vn5(t, lat), partition.Singletons(lat)})
		p.Workers = workers
		for i := 0; i < 6; i++ {
			p.Step()
		}
		return cfg
	}
	if !run(1).Equal(run(4)) {
		t.Fatal("cycling broke parallel bit-identity")
	}
}

// Thinning the type-partitioned sweep (Accept < 1) breaks the
// all-at-once correlation: the first O2 sweep no longer covers the
// whole lattice.
func TestTypePartitionedThinning(t *testing.T) {
	m := model.NewZGB(model.ZGBRates{KCO: 1, KO2: 1, KCO2: 1})
	lat := lattice.NewSquare(10)
	cm := model.MustCompile(m, lat)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}

	// Literal algorithm: O-poisoned almost immediately (seed 36 is the
	// trajectory pinned in TestTypePartitionedZGBMassSweepBias).
	cfgFull := lattice.NewConfig(lat)
	full := NewTypePartitioned(cm, cfgFull, rng.New(36), ts)
	for i := 0; i < 50; i++ {
		full.Step()
	}
	if cfgFull.Count(model.ZGBO) != lat.N() {
		t.Fatal("precondition: literal sweeps should O-poison")
	}

	// Thinned: both species coexist for an extended run.
	cfgThin := lattice.NewConfig(lat)
	thin := NewTypePartitioned(cm, cfgThin, rng.New(36), ts)
	thin.Accept = 0.1
	sawCO := false
	for i := 0; i < 300; i++ {
		thin.Step()
		if cfgThin.Count(model.ZGBCO) > 0 {
			sawCO = true
		}
	}
	if !sawCO {
		t.Fatal("thinned sweeps never adsorbed CO")
	}
}

// Thinning must advance the clock by Accept/(N·K) per visit so the
// per-site execution rate stays calibrated: at Accept=0.5 the same
// number of sweeps covers half the simulated time.
func TestTypePartitionedThinningClock(t *testing.T) {
	m := model.NewDimerDiffusion(1)
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}
	run := func(accept float64) float64 {
		cfg := lattice.NewConfig(lat)
		e := NewTypePartitioned(cm, cfg, rng.New(55), ts)
		e.Accept = accept
		e.DeterministicTime = true
		for i := 0; i < 10; i++ {
			e.Step()
		}
		return e.Time()
	}
	t1 := run(1)
	tHalf := run(0.5)
	if tHalf <= t1*0.45 || tHalf >= t1*0.55 {
		t.Fatalf("Accept=0.5 clock %v, want ~0.5x of %v", tHalf, t1)
	}
}

func TestTypePartitionedAcceptIgnoresInvalid(t *testing.T) {
	cm, lat := zgbOn(t, 10)
	ts, err := partition.SplitByDirection(cm.Model, lat)
	if err != nil {
		t.Fatal(err)
	}
	e := NewTypePartitioned(cm, lattice.NewConfig(lat), rng.New(56), ts)
	e.Accept = -3 // treated as 1
	e.Step()
	if e.Visits() == 0 {
		t.Fatal("invalid Accept stalled the engine")
	}
}
