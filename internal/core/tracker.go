package core

import (
	"parsurf/internal/fenwick"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// rateTracker maintains, per chunk, the summed rate of the reactions
// currently enabled at the chunk's sites — the weights of §5 selection
// way 4 ("a weighted selection according to the rates of enabled
// reactions in each chunk"). Enabledness is tracked per (type, site)
// in a packed bitset (one bit per pair instead of one byte, so the
// whole table for a 128² ZGB system is ~27 KB and stays cache-resident)
// and updated incrementally through the model's CSR dependency tables
// after every executed reaction, VSSM-style.
type rateTracker struct {
	cm      *model.Compiled
	cells   []lattice.Species
	part    *partition.Partition
	enabled []uint64 // bitset over rt*N + s
	n       int
	weights *fenwick.Tree
	scratch []int
}

func newRateTracker(cm *model.Compiled, cells []lattice.Species, part *partition.Partition) *rateTracker {
	n := cm.Lat.N()
	t := &rateTracker{
		cm:      cm,
		cells:   cells,
		part:    part,
		enabled: make([]uint64, (cm.NumTypes()*n+63)/64),
		n:       n,
		weights: fenwick.New(part.NumChunks()),
	}
	t.scan()
	return t
}

// scan populates the bitset and chunk weights from a full lattice scan.
// The caller guarantees both are zeroed; the Add order (types
// ascending, sites ascending) matches construction, so a reset tracker
// reproduces a fresh one's float state exactly.
func (t *rateTracker) scan() {
	for rt := 0; rt < t.cm.NumTypes(); rt++ {
		for s := 0; s < t.n; s++ {
			if t.cm.Enabled(t.cells, rt, s) {
				w, m := t.bit(rt, s)
				t.enabled[w] |= m
				t.weights.Add(t.part.ChunkOf(s), t.cm.Types[rt].Rate)
			}
		}
	}
}

// reset re-derives the tracker from a fresh cell slice, reusing the
// bitset and the weight tree allocations.
func (t *rateTracker) reset(cells []lattice.Species) {
	t.cells = cells
	clear(t.enabled)
	t.weights.Reset()
	t.scan()
}

// bit locates the enabledness bit of (rt, s) in the packed bitset.
func (t *rateTracker) bit(rt, s int) (word int, mask uint64) {
	i := uint(rt*t.n + s)
	return int(i >> 6), 1 << (i & 63)
}

// refresh re-evaluates (rt, s) and adjusts the owning chunk's weight.
func (t *rateTracker) refresh(rt, s int) {
	now := t.cm.Enabled(t.cells, rt, s)
	w, m := t.bit(rt, s)
	was := t.enabled[w]&m != 0
	if now == was {
		return
	}
	t.enabled[w] ^= m
	delta := t.cm.Types[rt].Rate
	if !now {
		delta = -delta
	}
	t.weights.Add(t.part.ChunkOf(s), delta)
}

// afterExecute updates the weights after reaction rt fired at site s.
// It must be called after the configuration change.
func (t *rateTracker) afterExecute(rt, s int) {
	t.scratch = t.cm.ChangedSites(t.scratch[:0], rt, s)
	for _, z := range t.scratch {
		// Closure-free dependency scan over the compiled CSR tables.
		rts, sites := t.cm.DepPairs(z)
		for j, r := range rts {
			t.refresh(int(r), int(sites[j]))
		}
	}
	if t.weights.NeedsRebuild() {
		t.rebuild()
	}
}

// rebuild recomputes every chunk weight from the enabled bitset and the
// true rates, clearing the floating-point drift the incremental signed
// Adds accumulate over long runs. Triggered by the Fenwick tree's Add
// counter; O(T·N/64 + set bits), so amortised cost is negligible.
func (t *rateTracker) rebuild() {
	sums := make([]float64, t.part.NumChunks())
	for rt := 0; rt < t.cm.NumTypes(); rt++ {
		rate := t.cm.Types[rt].Rate
		base := rt * t.n
		for s := 0; s < t.n; s++ {
			i := uint(base + s)
			w := t.enabled[i>>6]
			if w == 0 {
				// Skip the rest of an all-clear word.
				s += 63 - int(i&63)
				continue
			}
			if w&(1<<(i&63)) != 0 {
				sums[t.part.ChunkOf(s)] += rate
			}
		}
	}
	t.weights.Rebuild(func(ci int) float64 { return sums[ci] })
}

// pick draws a chunk with probability proportional to its enabled rate.
// ok is false when nothing is enabled anywhere.
func (t *rateTracker) pick(src *rng.Source) (chunk int, ok bool) {
	total := t.weights.Total()
	if total <= 0 {
		return 0, false
	}
	return t.weights.Search(src.Float64() * total), true
}

// chunkWeight exposes a chunk's current enabled rate (for tests).
func (t *rateTracker) chunkWeight(ci int) float64 { return t.weights.Get(ci) }
