package core

import (
	"parsurf/internal/fenwick"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
)

// rateTracker maintains, per chunk, the summed rate of the reactions
// currently enabled at the chunk's sites — the weights of §5 selection
// way 4 ("a weighted selection according to the rates of enabled
// reactions in each chunk"). Enabledness is tracked per (type, site)
// and updated incrementally through the model's dependency offsets after
// every executed reaction, VSSM-style.
type rateTracker struct {
	cm      *model.Compiled
	cells   []lattice.Species
	part    *partition.Partition
	enabled [][]bool // [type][site]
	weights *fenwick.Tree
	scratch []int
}

func newRateTracker(cm *model.Compiled, cells []lattice.Species, part *partition.Partition) *rateTracker {
	t := &rateTracker{
		cm:      cm,
		cells:   cells,
		part:    part,
		enabled: make([][]bool, cm.NumTypes()),
		weights: fenwick.New(part.NumChunks()),
	}
	n := cm.Lat.N()
	for rt := range t.enabled {
		t.enabled[rt] = make([]bool, n)
		for s := 0; s < n; s++ {
			if cm.Enabled(cells, rt, s) {
				t.enabled[rt][s] = true
				t.weights.Add(part.ChunkOf(s), cm.Types[rt].Rate)
			}
		}
	}
	return t
}

// refresh re-evaluates (rt, s) and adjusts the owning chunk's weight.
func (t *rateTracker) refresh(rt, s int) {
	now := t.cm.Enabled(t.cells, rt, s)
	if now == t.enabled[rt][s] {
		return
	}
	t.enabled[rt][s] = now
	delta := t.cm.Types[rt].Rate
	if !now {
		delta = -delta
	}
	t.weights.Add(t.part.ChunkOf(s), delta)
}

// afterExecute updates the weights after reaction rt fired at site s.
// It must be called after the configuration change.
func (t *rateTracker) afterExecute(rt, s int) {
	t.scratch = t.cm.ChangedSites(t.scratch[:0], rt, s)
	for _, z := range t.scratch {
		t.cm.Dependencies(z, t.refresh)
	}
}

// pick draws a chunk with probability proportional to its enabled rate.
// ok is false when nothing is enabled anywhere.
func (t *rateTracker) pick(src *rng.Source) (chunk int, ok bool) {
	total := t.weights.Total()
	if total <= 0 {
		return 0, false
	}
	return t.weights.Search(src.Float64() * total), true
}

// chunkWeight exposes a chunk's current enabled rate (for tests).
func (t *rateTracker) chunkWeight(ci int) float64 { return t.weights.Get(ci) }
