package persist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer is an error-latching little-endian encoder: after the first
// write error every further call is a no-op and Err returns the error.
// Engine SaveState implementations stream their private payload through
// one Writer and check Err once at the end.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer encoding onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error encountered, if any.
func (e *Writer) Err() error { return e.err }

func (e *Writer) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

// U32 encodes a uint32.
func (e *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

// U64 encodes a uint64.
func (e *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

// I64 encodes an int64 as its two's-complement bits.
func (e *Writer) I64(v int64) { e.U64(uint64(v)) }

// F64 encodes a float64 bit-exactly.
func (e *Writer) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes writes p verbatim, with no length prefix.
func (e *Writer) Bytes(p []byte) { e.write(p) }

// Block writes a uint32 length prefix followed by p.
func (e *Writer) Block(p []byte) {
	e.U32(uint32(len(p)))
	e.write(p)
}

// Reader is the error-latching decoder matching Writer: after the first
// error every further call returns the zero value and Err reports the
// error. Callers may also latch their own validation failures with Fail.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first error encountered, if any.
func (d *Reader) Err() error { return d.err }

// Fail latches err (the first latched error wins), letting LoadState
// implementations report validation failures through the same channel
// as read errors.
func (d *Reader) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Failf latches a formatted error.
func (d *Reader) Failf(format string, args ...any) {
	d.Fail(fmt.Errorf(format, args...))
}

func (d *Reader) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = err
	}
}

// U32 decodes a uint32.
func (d *Reader) U32() uint32 {
	d.read(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

// U64 decodes a uint64.
func (d *Reader) U64() uint64 {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

// I64 decodes an int64.
func (d *Reader) I64() int64 { return int64(d.U64()) }

// F64 decodes a float64.
func (d *Reader) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes fills p with the next len(p) bytes.
func (d *Reader) Bytes(p []byte) { d.read(p) }

// blockChunk bounds the per-iteration allocation of Block and
// ReadChunked: the length prefix is untrusted input, so memory must
// grow with bytes actually read, never with the claim.
const blockChunk = 1 << 16

// Block reads a uint32 length prefix and the prefixed bytes, refusing
// lengths above maxLen. The buffer grows chunk by chunk, so a
// truncated stream with an inflated claim costs one chunk, not maxLen.
func (d *Reader) Block(maxLen int) []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(maxLen) {
		d.Failf("persist: block of %d bytes exceeds limit %d", n, maxLen)
		return nil
	}
	return d.ReadChunked(int(n))
}

// ReadChunked reads exactly n bytes as Bytes would, but caps each
// allocation step at blockChunk so untrusted length claims cannot
// force large allocations ahead of the data backing them. Returns nil
// after any error.
func (d *Reader) ReadChunked(n int) []byte {
	if d.err != nil {
		return nil
	}
	p := make([]byte, 0, min(n, blockChunk))
	for len(p) < n {
		c := min(n-len(p), blockChunk)
		p = append(p, make([]byte, c)...)
		d.read(p[len(p)-c:])
		if d.err != nil {
			return nil
		}
	}
	return p
}
