package persist

import (
	"bytes"
	"runtime"
	"testing"
)

// allocDelta runs f and returns the bytes allocated by it.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// A hollow claim: the prefix promises maxPayload bytes, the stream
// holds five. The chunked reader must fail on the missing data having
// allocated no more than a chunk, not the 64 MiB claim.
func TestBlockHollowClaimAllocatesOneChunk(t *testing.T) {
	var in bytes.Buffer
	e := NewWriter(&in)
	e.U32(maxPayload)
	in.WriteString("short")

	var p []byte
	var d *Reader
	delta := allocDelta(func() {
		d = NewReader(bytes.NewReader(in.Bytes()))
		p = d.Block(maxPayload)
	})
	if p != nil || d.Err() == nil {
		t.Fatalf("hollow claim accepted: p=%v err=%v", p, d.Err())
	}
	if delta > 1<<20 {
		t.Fatalf("Block allocated %d bytes against a hollow %d-byte claim", delta, maxPayload)
	}
}

// The same property for Load's cell block: extents claiming 2^31 sites
// on a stream that ends after the header must error cheaply.
func TestLoadHollowCellClaimAllocatesOneChunk(t *testing.T) {
	var in bytes.Buffer
	in.WriteString(magic)
	e := NewWriter(&in)
	e.U32(version)
	e.Block(nil)   // engine name
	e.Block(nil)   // spec hash
	e.U32(3)       // species
	e.U32(1 << 16) // l0
	e.U32(1 << 15) // l1: 2^31 cells claimed
	e.U64(0)       // steps
	e.F64(0)       // time
	for i := 0; i < 4; i++ {
		e.U64(1) // rng state
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	// No cell bytes follow the header.
	delta := allocDelta(func() {
		if _, err := Load(bytes.NewReader(in.Bytes())); err == nil {
			t.Error("Load accepted a header with no cells behind it")
		}
	})
	if delta > 1<<20 {
		t.Fatalf("Load allocated %d bytes against a hollow 2^31-cell claim", delta)
	}
}

// Block still round-trips data above one chunk correctly.
func TestBlockMultiChunkRoundTrip(t *testing.T) {
	payload := make([]byte, blockChunk*3+17)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	e := NewWriter(&buf)
	e.Block(payload)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	d := NewReader(bytes.NewReader(buf.Bytes()))
	got := d.Block(len(payload))
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk block did not round-trip")
	}
}
