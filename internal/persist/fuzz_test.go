package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

// validCheckpointBytes serializes a small real checkpoint as a fuzz
// seed, so the fuzzer starts from the valid format and mutates inward.
func validCheckpointBytes(t testing.TB) []byte {
	lat := lattice.New(4, 4)
	cfg := lattice.NewConfig(lat)
	cells := cfg.Cells()
	for i := range cells {
		cells[i] = lattice.Species(i % 3)
	}
	c := &Checkpoint{
		Engine:     "rsm",
		SpecHash:   "cafe",
		NumSpecies: 3,
		Steps:      7,
		Time:       1.5,
		Config:     cfg,
		RNG:        rng.New(42),
		Payload:    []byte{9, 8, 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPersistLoad: Load must never panic or allocate proportionally to
// untrusted claims, whatever the bytes; and whenever it accepts an
// input, re-serializing the result must reproduce the input exactly
// (the format is canonical and self-delimiting).
func FuzzPersistLoad(f *testing.F) {
	valid := validCheckpointBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-stream
	f.Add([]byte("PSRF"))       // magic only
	f.Add([]byte("NOPE"))       // wrong magic
	f.Add([]byte{})
	// A header claiming a huge payload block it never delivers: the
	// chunked reader must fail on the missing bytes, not allocate the
	// claim up front.
	inflated := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(inflated[len(inflated)-7:], 1<<26)
	f.Add(inflated[:len(inflated)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			if c != nil {
				t.Fatal("Load returned a checkpoint alongside an error")
			}
			return
		}
		if c.NumSpecies < 1 || c.NumSpecies > maxSpecies {
			t.Fatalf("accepted species count %d outside [1,%d]", c.NumSpecies, maxSpecies)
		}
		if c.Config == nil || c.RNG == nil {
			t.Fatal("accepted checkpoint with nil Config or RNG")
		}
		var out bytes.Buffer
		if err := Write(&out, c); err != nil {
			t.Fatalf("re-serializing an accepted checkpoint: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("round trip not byte-identical:\n in  %x\n out %x", data, out.Bytes())
		}
	})
}
