package persist

import (
	"bytes"
	"io"
	"testing"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	lat := lattice.New(7, 5)
	cfg := lattice.NewConfig(lat)
	src := rng.New(42)
	cfg.Randomize([]float64{1, 1, 1}, src.Float64)
	for i := 0; i < 13; i++ {
		src.Uint64()
	}

	var buf bytes.Buffer
	if err := Save(&buf, cfg, src, 12.5); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Time != 12.5 {
		t.Fatalf("time %v", cp.Time)
	}
	if cp.Config.Lattice().L0 != 7 || cp.Config.Lattice().L1 != 5 {
		t.Fatal("lattice dims lost")
	}
	if !cp.Config.Equal(cfg) {
		t.Fatal("configuration lost")
	}
	// The restored RNG continues the exact sequence.
	for i := 0; i < 100; i++ {
		if cp.RNG.Uint64() != src.Uint64() {
			t.Fatalf("rng sequence diverged at %d", i)
		}
	}
}

// A checkpointed RSM run resumes to the exact same trajectory as an
// uninterrupted one.
func TestResumeExactTrajectory(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)

	// Uninterrupted reference: 40 steps.
	refCfg := lattice.NewConfig(lat)
	ref := dmc.NewRSM(cm, refCfg, rng.New(9))
	for i := 0; i < 40; i++ {
		ref.Step()
	}

	// Interrupted: 25 steps, checkpoint, restore, 15 more.
	cfg := lattice.NewConfig(lat)
	src := rng.New(9)
	r1 := dmc.NewRSM(cm, cfg, src)
	for i := 0; i < 25; i++ {
		r1.Step()
	}
	var buf bytes.Buffer
	if err := Save(&buf, cfg, src, r1.Time()); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := dmc.NewRSM(cm, cp.Config, cp.RNG)
	for i := 0; i < 15; i++ {
		r2.Step()
	}
	if !cp.Config.Equal(refCfg) {
		t.Fatal("resumed trajectory diverged from the uninterrupted run")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	lat := lattice.New(4, 4)
	cfg := lattice.NewConfig(lat)
	src := rng.New(1)
	var buf bytes.Buffer
	if err := Save(&buf, cfg, src, 1); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated header", good[:10]},
		{"truncated cells", good[:len(good)-5]},
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// Bad version.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}

	// Implausible dimensions.
	bad = append([]byte(nil), good...)
	bad[8], bad[9], bad[10], bad[11] = 0, 0, 0, 0 // l0 = 0
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("zero extent accepted")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	lat := lattice.New(4, 4)
	cfg := lattice.NewConfig(lat)
	src := rng.New(1)
	for _, after := range []int{0, 3, 8, 30} {
		if err := Save(&failWriter{after: after}, cfg, src, 1); err == nil {
			t.Errorf("write failure after %d bytes not propagated", after)
		}
	}
}
