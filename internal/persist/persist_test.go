package persist_test

import (
	"bytes"
	"io"
	"testing"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/persist"
	"parsurf/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	lat := lattice.New(7, 5)
	cfg := lattice.NewConfig(lat)
	src := rng.New(42)
	cfg.Randomize([]float64{1, 1, 1}, src.Float64)
	for i := 0; i < 13; i++ {
		src.Uint64()
	}

	var buf bytes.Buffer
	if err := persist.Save(&buf, cfg, src, 12.5); err != nil {
		t.Fatal(err)
	}
	cp, err := persist.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Time != 12.5 {
		t.Fatalf("time %v", cp.Time)
	}
	if cp.Config.Lattice().L0 != 7 || cp.Config.Lattice().L1 != 5 {
		t.Fatal("lattice dims lost")
	}
	if !cp.Config.Equal(cfg) {
		t.Fatal("configuration lost")
	}
	// The restored RNG continues the exact sequence.
	for i := 0; i < 100; i++ {
		if cp.RNG.Uint64() != src.Uint64() {
			t.Fatalf("rng sequence diverged at %d", i)
		}
	}
}

func TestWriteRoundTripsMetadata(t *testing.T) {
	lat := lattice.New(6, 4)
	cfg := lattice.NewConfig(lat)
	src := rng.New(3)
	cfg.Randomize([]float64{1, 1, 1}, src.Float64)
	in := &persist.Checkpoint{
		Engine:     "vssm",
		SpecHash:   "00ff00ff",
		NumSpecies: 3,
		Steps:      1234,
		Time:       9.75,
		Config:     cfg,
		RNG:        src,
		Payload:    []byte{1, 2, 3, 4, 5},
	}
	var buf bytes.Buffer
	if err := persist.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	cp, err := persist.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Engine != in.Engine || cp.SpecHash != in.SpecHash {
		t.Fatalf("metadata lost: %q %q", cp.Engine, cp.SpecHash)
	}
	if cp.NumSpecies != 3 || cp.Steps != 1234 || cp.Time != 9.75 {
		t.Fatalf("extents lost: %+v", cp)
	}
	if !bytes.Equal(cp.Payload, in.Payload) {
		t.Fatalf("payload lost: %v", cp.Payload)
	}
	if !cp.Config.Equal(cfg) {
		t.Fatal("configuration lost")
	}
}

// A checkpointed RSM run resumes to the exact same trajectory as an
// uninterrupted one.
func TestResumeExactTrajectory(t *testing.T) {
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(12)
	cm := model.MustCompile(m, lat)

	// Uninterrupted reference: 40 steps.
	refCfg := lattice.NewConfig(lat)
	ref := dmc.NewRSM(cm, refCfg, rng.New(9))
	for i := 0; i < 40; i++ {
		ref.Step()
	}

	// Interrupted: 25 steps, checkpoint, restore, 15 more.
	cfg := lattice.NewConfig(lat)
	src := rng.New(9)
	r1 := dmc.NewRSM(cm, cfg, src)
	for i := 0; i < 25; i++ {
		r1.Step()
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, cfg, src, r1.Time()); err != nil {
		t.Fatal(err)
	}
	cp, err := persist.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := dmc.NewRSM(cm, cp.Config, cp.RNG)
	for i := 0; i < 15; i++ {
		r2.Step()
	}
	if !cp.Config.Equal(refCfg) {
		t.Fatal("resumed trajectory diverged from the uninterrupted run")
	}
}

// Fixed offsets into a checkpoint written by Save (empty engine name
// and spec hash, so the variable-length blocks are zero bytes):
//
//	0  magic, 4 version, 8 engine len, 12 hash len, 16 species,
//	20 l0, 24 l1, 28 steps, 36 time, 44 rng, 76 cells.
const (
	offVersion = 4
	offSpecies = 16
	offL0      = 20
	offCells   = 76
)

func TestLoadRejectsCorruption(t *testing.T) {
	lat := lattice.New(4, 4)
	cfg := lattice.NewConfig(lat)
	src := rng.New(1)
	cfg.Randomize([]float64{1, 1}, src.Float64)
	var buf bytes.Buffer
	if err := persist.Save(&buf, cfg, src, 1); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(off int, vals ...byte) []byte {
		bad := append([]byte(nil), good...)
		copy(bad[off:], vals)
		return bad
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated header", good[:10]},
		{"truncated cells", good[:offCells+5]},
		{"truncated payload length", good[:len(good)-2]},
		{"bad version", corrupt(offVersion, 99)},
		{"zero extent", corrupt(offL0, 0, 0, 0, 0)},
		{"zero species", corrupt(offSpecies, 0, 0, 0, 0)},
		{"implausible species", corrupt(offSpecies, 1, 1, 0, 0)},
		{"species out of range", corrupt(offCells, 0xee)},
		{"trailing garbage", append(append([]byte(nil), good...), 0xab)},
	}
	for _, c := range cases {
		if _, err := persist.Load(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	if _, err := persist.Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("uncorrupted checkpoint rejected: %v", err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	lat := lattice.New(4, 4)
	cfg := lattice.NewConfig(lat)
	src := rng.New(1)
	for _, after := range []int{0, 3, 8, 30, 77} {
		if err := persist.Save(&failWriter{after: after}, cfg, src, 1); err == nil {
			t.Errorf("write failure after %d bytes not propagated", after)
		}
	}
}
