// Package persist provides compact binary checkpointing of simulation
// state: the lattice dimensions, the full configuration, the random
// source, and the simulated clock. Long oscillation runs (hours of
// 100×100 DMC) can be stopped and resumed exactly.
//
// Format (little-endian):
//
//	magic   "PSRF"            4 bytes
//	version uint32            currently 1
//	l0, l1  uint32, uint32    lattice extents
//	time    float64           simulated time
//	rng     4 × uint64        xoshiro256** state
//	cells   l0·l1 bytes       species values
package persist

import (
	"encoding/binary"
	"fmt"
	"io"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

const (
	magic   = "PSRF"
	version = 1
)

// Checkpoint is a saved simulation state.
type Checkpoint struct {
	Config *lattice.Config
	RNG    *rng.Source
	Time   float64
}

// Save writes a checkpoint of the given state.
func Save(w io.Writer, cfg *lattice.Config, src *rng.Source, time float64) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	lat := cfg.Lattice()
	header := []interface{}{
		uint32(version),
		uint32(lat.L0),
		uint32(lat.L1),
		time,
	}
	for _, v := range header {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	state := src.State()
	for _, word := range state {
		if err := binary.Write(w, binary.LittleEndian, word); err != nil {
			return err
		}
	}
	cells := cfg.Cells()
	buf := make([]byte, len(cells))
	for i, sp := range cells {
		buf[i] = byte(sp)
	}
	_, err := w.Write(buf)
	return err
}

// Load reads a checkpoint written by Save.
func Load(r io.Reader) (*Checkpoint, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("persist: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("persist: bad magic %q", head)
	}
	var ver, l0, l1 uint32
	var simTime float64
	for _, dst := range []interface{}{&ver, &l0, &l1, &simTime} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("persist: reading header: %w", err)
		}
	}
	if ver != version {
		return nil, fmt.Errorf("persist: unsupported version %d", ver)
	}
	if l0 == 0 || l1 == 0 || uint64(l0)*uint64(l1) > 1<<31 {
		return nil, fmt.Errorf("persist: implausible lattice %dx%d", l0, l1)
	}
	var state [4]uint64
	for i := range state {
		if err := binary.Read(r, binary.LittleEndian, &state[i]); err != nil {
			return nil, fmt.Errorf("persist: reading rng state: %w", err)
		}
	}
	lat := lattice.New(int(l0), int(l1))
	cfg := lattice.NewConfig(lat)
	buf := make([]byte, lat.N())
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("persist: reading cells: %w", err)
	}
	cells := cfg.Cells()
	for i, b := range buf {
		cells[i] = lattice.Species(b)
	}
	src := rng.New(0)
	src.Restore(state)
	return &Checkpoint{Config: cfg, RNG: src, Time: simTime}, nil
}
