// Package persist provides compact binary checkpointing of simulation
// state: which engine produced it, the spec it came from, the lattice
// dimensions, the full configuration, the random source, the step
// count, the simulated clock, and an opaque engine-private payload.
// Long oscillation runs (hours of 100×100 DMC) can be stopped and
// resumed exactly.
//
// Format v2 (little-endian):
//
//	magic    "PSRF"            4 bytes
//	version  uint32            currently 2
//	engine   uint32 + bytes    registry engine name (may be empty)
//	spec     uint32 + bytes    hex SHA-256 of the session spec (may be empty)
//	species  uint32            species count bounding the cell block
//	l0, l1   uint32, uint32    lattice extents
//	steps    uint64            completed engine steps
//	time     float64           simulated time
//	rng      4 × uint64        xoshiro256** state
//	cells    l0·l1 bytes       species values, each < species
//	payload  uint32 + bytes    engine-private state (Engine.SaveState)
//
// Load validates every cell byte against the species count, refuses
// implausible extents and oversized variable blocks, and rejects any
// trailing bytes after the payload block — a truncated or padded file
// is an error, never a silently wrong configuration.
package persist

import (
	"fmt"
	"io"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

const (
	magic   = "PSRF"
	version = 2

	maxNameLen = 64
	maxHashLen = 128
	maxSpecies = 256
	maxPayload = 1 << 26
)

// Checkpoint is a saved simulation state.
type Checkpoint struct {
	// Engine is the registry name of the engine that produced the
	// checkpoint; empty for engine-agnostic snapshots.
	Engine string
	// SpecHash fingerprints the session spec the run was built from
	// (hex SHA-256 of its canonical JSON); empty when unknown.
	SpecHash string
	// NumSpecies bounds the species values in the configuration.
	NumSpecies int
	// Steps is the engine's completed step count.
	Steps uint64
	// Time is the simulated time.
	Time float64
	// Config is the full lattice configuration.
	Config *lattice.Config
	// RNG is the random source; Load returns a restored copy that
	// continues the saved sequence exactly.
	RNG *rng.Source
	// Payload is the engine-private state written by SaveState.
	Payload []byte
}

// Write serializes the checkpoint in the v2 format.
func Write(w io.Writer, c *Checkpoint) error {
	if len(c.Engine) > maxNameLen {
		return fmt.Errorf("persist: engine name %d bytes exceeds %d", len(c.Engine), maxNameLen)
	}
	if len(c.SpecHash) > maxHashLen {
		return fmt.Errorf("persist: spec hash %d bytes exceeds %d", len(c.SpecHash), maxHashLen)
	}
	if c.NumSpecies < 1 || c.NumSpecies > maxSpecies {
		return fmt.Errorf("persist: species count %d outside [1,%d]", c.NumSpecies, maxSpecies)
	}
	if len(c.Payload) > maxPayload {
		return fmt.Errorf("persist: payload %d bytes exceeds %d", len(c.Payload), maxPayload)
	}
	e := NewWriter(w)
	e.Bytes([]byte(magic))
	e.U32(version)
	e.Block([]byte(c.Engine))
	e.Block([]byte(c.SpecHash))
	e.U32(uint32(c.NumSpecies))
	lat := c.Config.Lattice()
	e.U32(uint32(lat.L0))
	e.U32(uint32(lat.L1))
	e.U64(c.Steps)
	e.F64(c.Time)
	state := c.RNG.State()
	for _, word := range state {
		e.U64(word)
	}
	cells := c.Config.Cells()
	buf := make([]byte, len(cells))
	for i, sp := range cells {
		if int(sp) >= c.NumSpecies {
			return fmt.Errorf("persist: cell %d holds species %d, model has %d", i, sp, c.NumSpecies)
		}
		buf[i] = byte(sp)
	}
	e.Bytes(buf)
	e.Block(c.Payload)
	return e.Err()
}

// Save writes an engine-agnostic checkpoint of the given state, the
// v1-era convenience API. The species bound is taken from the largest
// species present in the configuration.
func Save(w io.Writer, cfg *lattice.Config, src *rng.Source, time float64) error {
	n := 1
	for _, sp := range cfg.Cells() {
		if int(sp)+1 > n {
			n = int(sp) + 1
		}
	}
	return Write(w, &Checkpoint{NumSpecies: n, Time: time, Config: cfg, RNG: src})
}

// Load reads a checkpoint written by Write or Save. The stream must
// end exactly after the payload block; trailing bytes are rejected.
func Load(r io.Reader) (*Checkpoint, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("persist: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("persist: bad magic %q", head)
	}
	d := NewReader(r)
	ver := d.U32()
	if d.Err() == nil && ver != version {
		return nil, fmt.Errorf("persist: unsupported version %d", ver)
	}
	name := d.Block(maxNameLen)
	hash := d.Block(maxHashLen)
	nspecies := d.U32()
	if d.Err() == nil && (nspecies < 1 || nspecies > maxSpecies) {
		return nil, fmt.Errorf("persist: implausible species count %d", nspecies)
	}
	l0, l1 := d.U32(), d.U32()
	if d.Err() == nil && (l0 == 0 || l1 == 0 || uint64(l0)*uint64(l1) > 1<<31) {
		return nil, fmt.Errorf("persist: implausible lattice %dx%d", l0, l1)
	}
	steps := d.U64()
	simTime := d.F64()
	var state [4]uint64
	for i := range state {
		state[i] = d.U64()
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("persist: reading header: %w", err)
	}
	// The cell block is read and validated before the lattice and
	// configuration are allocated: the claimed extents (up to 2^31
	// sites) are untrusted until the stream actually delivers that many
	// bytes, so allocation must track data read, not the claim.
	buf := d.ReadChunked(int(l0) * int(l1))
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("persist: reading cells: %w", err)
	}
	for i, b := range buf {
		if uint32(b) >= nspecies {
			return nil, fmt.Errorf("persist: cell %d holds species %d, model has %d", i, b, nspecies)
		}
	}
	lat := lattice.New(int(l0), int(l1))
	cfg := lattice.NewConfig(lat)
	cells := cfg.Cells()
	for i, b := range buf {
		cells[i] = lattice.Species(b)
	}
	payload := d.Block(maxPayload)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("persist: reading payload: %w", err)
	}
	// The format is self-delimiting; anything after the payload block
	// means the file was corrupted or concatenated.
	var trailer [1]byte
	if _, err := io.ReadFull(r, trailer[:]); err == nil {
		return nil, fmt.Errorf("persist: trailing bytes after payload")
	} else if err != io.EOF {
		return nil, fmt.Errorf("persist: checking for trailing bytes: %w", err)
	}
	src := rng.New(0)
	src.Restore(state)
	return &Checkpoint{
		Engine:     string(name),
		SpecHash:   string(hash),
		NumSpecies: int(nspecies),
		Steps:      steps,
		Time:       simTime,
		Config:     cfg,
		RNG:        src,
		Payload:    payload,
	}, nil
}
