// Shard result wire format: the binary payload a worker posts back for
// one completed (variant, replica-range) shard. The payload carries the
// raw per-replica sample rows — never pre-merged moments — so the
// coordinator commits each replica through the same index-ordered
// accumulator a single-node run uses and the merged Mean/Std come out
// bit-identical regardless of how the replica space was sharded. Floats
// travel as their exact bit patterns through the error-latching persist
// codec; lengths in the header are untrusted and bounded before any
// allocation grows to meet them.

package fleet

import (
	"bytes"
	"fmt"
	"io"

	"parsurf/internal/persist"
)

const (
	// wireMagic / wireVersion stamp every shard result blob.
	wireMagic   = 0x50534c46 // "PSLF"
	wireVersion = 1
	// maxWireSpecies / maxWirePoints / maxWireReplicas bound the header
	// claims of an untrusted blob.
	maxWireSpecies  = 256
	maxWirePoints   = 1 << 24
	maxWireReplicas = 1 << 20
)

// ShardResult is a decoded shard payload: the identity of the slice it
// covers, each replica's sample rows (indexed replica-Lo, each species ×
// grid points), and each replica's final engine counters (steps taken,
// simulated time reached) for progress accounting.
type ShardResult struct {
	Variant int
	Lo, Hi  int
	// Rows[k] is replica Lo+k's species × points sample matrix.
	Rows [][][]float64
	// Steps[k] and Times[k] are replica Lo+k's final engine step count
	// and simulated time.
	Steps []uint64
	Times []float64
}

// encodeShardResult serializes a shard payload.
func encodeShardResult(res *ShardResult) ([]byte, error) {
	n := res.Hi - res.Lo
	if n <= 0 || len(res.Rows) != n || len(res.Steps) != n || len(res.Times) != n {
		return nil, fmt.Errorf("fleet: shard [%d, %d) with %d rows, %d steps, %d times",
			res.Lo, res.Hi, len(res.Rows), len(res.Steps), len(res.Times))
	}
	species, points := 0, 0
	if len(res.Rows[0]) > 0 {
		species, points = len(res.Rows[0]), len(res.Rows[0][0])
	}
	var buf bytes.Buffer
	e := persist.NewWriter(&buf)
	e.U32(wireMagic)
	e.U32(wireVersion)
	e.U32(uint32(res.Variant))
	e.U32(uint32(res.Lo))
	e.U32(uint32(res.Hi))
	e.U32(uint32(species))
	e.U32(uint32(points))
	for k := 0; k < n; k++ {
		if len(res.Rows[k]) != species {
			return nil, fmt.Errorf("fleet: replica %d has %d species rows, want %d", res.Lo+k, len(res.Rows[k]), species)
		}
		e.U64(res.Steps[k])
		e.F64(res.Times[k])
		for _, row := range res.Rows[k] {
			if len(row) != points {
				return nil, fmt.Errorf("fleet: replica %d row of %d points, want %d", res.Lo+k, len(row), points)
			}
			for _, x := range row {
				e.F64(x)
			}
		}
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeShardResult parses an untrusted shard payload, validating every
// header claim before allocating to meet it and refusing trailing
// bytes.
func decodeShardResult(data []byte) (*ShardResult, error) {
	r := bytes.NewReader(data)
	d := persist.NewReader(r)
	if m := d.U32(); d.Err() == nil && m != wireMagic {
		d.Failf("fleet: shard result magic %#x, want %#x", m, wireMagic)
	}
	if v := d.U32(); d.Err() == nil && v != wireVersion {
		d.Failf("fleet: shard result version %d, want %d", v, wireVersion)
	}
	variant := d.U32()
	lo := d.U32()
	hi := d.U32()
	species := d.U32()
	points := d.U32()
	if d.Err() == nil {
		switch {
		case hi <= lo || hi-lo > maxWireReplicas:
			d.Failf("fleet: shard result covers replicas [%d, %d)", lo, hi)
		case species < 1 || species > maxWireSpecies:
			d.Failf("fleet: shard result carries %d species", species)
		case points < 1 || points > maxWirePoints:
			d.Failf("fleet: shard result carries %d grid points", points)
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	// The header is coherent; the remaining length is now fully
	// determined, so a short or padded body is caught without trusting
	// any further claims.
	n := int(hi - lo)
	res := &ShardResult{
		Variant: int(variant),
		Lo:      int(lo),
		Hi:      int(hi),
		Rows:    make([][][]float64, n),
		Steps:   make([]uint64, n),
		Times:   make([]float64, n),
	}
	for k := 0; k < n && d.Err() == nil; k++ {
		res.Steps[k] = d.U64()
		res.Times[k] = d.F64()
		rows := make([][]float64, species)
		for sp := range rows {
			rows[sp] = make([]float64, points)
			for i := range rows[sp] {
				rows[sp][i] = d.F64()
			}
		}
		res.Rows[k] = rows
	}
	if d.Err() == nil && r.Len() > 0 {
		d.Failf("fleet: shard result has %d trailing bytes", r.Len())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// readAllLimit reads r to EOF, refusing bodies over limit bytes — the
// HTTP result upload guard.
func readAllLimit(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("fleet: payload exceeds %d bytes", limit)
	}
	return data, nil
}
