package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxResultBody bounds a shard result upload (a 1024-replica shard of
// 256 species × 16M points would not fit anyway; real shards are far
// smaller).
const maxResultBody = 1 << 30

// maxControlBody bounds the small JSON control bodies (lease,
// heartbeat, fail). A heartbeat's replica-progress list is tens of
// bytes per replica, so 1 MiB covers shards four orders of magnitude
// larger than the default while refusing to buffer junk.
const maxControlBody = 1 << 20

// decodeControl decodes a bounded JSON control body into v, writing
// the error response (413 for an oversized body, 400 otherwise) and
// reporting false when the request cannot proceed.
func decodeControl(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxControlBody)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		jsonError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	jsonError(w, http.StatusBadRequest, err)
	return false
}

// Handler is the coordinator's HTTP face, mounted under /fleet/ beside
// the job API:
//
//	POST /fleet/lease              lease one shard ({"worker": id};
//	                               200 Grant, or 204 when idle)
//	POST /fleet/shards/{id}/heartbeat  renew + report progress
//	POST /fleet/shards/{id}/result     upload the shard's wire payload
//	POST /fleet/shards/{id}/fail       report a shard failure
//	GET  /fleet/status             lease/requeue counters + shard states
//
// {id} is a GlobalShardID from a Grant. Heartbeat, result and fail
// answer 410 Gone when the lease (or its job) no longer exists — the
// worker's signal to abandon the shard.
type Handler struct {
	c   *Coordinator
	mux *http.ServeMux
}

// NewHandler wraps a coordinator in the HTTP API.
func NewHandler(c *Coordinator) *Handler {
	h := &Handler{c: c, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /fleet/lease", h.handleLease)
	h.mux.HandleFunc("POST /fleet/shards/{id}/heartbeat", h.handleHeartbeat)
	h.mux.HandleFunc("POST /fleet/shards/{id}/result", h.handleResult)
	h.mux.HandleFunc("POST /fleet/shards/{id}/fail", h.handleFail)
	h.mux.HandleFunc("GET /fleet/status", h.handleStatus)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func jsonError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func jsonOK(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// leaseRequest is the POST /fleet/lease body.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// heartbeatRequest is the POST /fleet/shards/{id}/heartbeat body.
type heartbeatRequest struct {
	Worker   string            `json:"worker"`
	Replicas []ReplicaProgress `json:"replicas,omitempty"`
}

// failRequest is the POST /fleet/shards/{id}/fail body.
type failRequest struct {
	Worker string `json:"worker"`
	Error  string `json:"error"`
}

// statusResponse is the GET /fleet/status body.
type statusResponse struct {
	Jobs     int          `json:"jobs"`
	Shards   ShardSummary `json:"shards"`
	Counters Counters     `json:"counters"`
}

func (h *Handler) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeControl(w, r, &req) {
		return
	}
	if req.Worker == "" {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("lease request names no worker"))
		return
	}
	grant, ok := h.c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	jsonOK(w, http.StatusOK, grant)
}

// shardFromPath resolves the {id} path segment.
func shardFromPath(w http.ResponseWriter, r *http.Request) (jobID, shardID string, ok bool) {
	jobID, shardID, err := SplitShardID(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return "", "", false
	}
	return jobID, shardID, true
}

// reportLeaseErr maps coordinator errors onto status codes: ErrGone is
// the lease-protocol 410, anything else a 400 (the payload or request
// was wrong, retrying the same bytes cannot help).
func reportLeaseErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrGone) {
		jsonError(w, http.StatusGone, err)
		return
	}
	jsonError(w, http.StatusBadRequest, err)
}

func (h *Handler) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	jobID, shardID, ok := shardFromPath(w, r)
	if !ok {
		return
	}
	var req heartbeatRequest
	if !decodeControl(w, r, &req) {
		return
	}
	if err := h.c.Heartbeat(jobID, shardID, req.Worker, req.Replicas); err != nil {
		reportLeaseErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleResult(w http.ResponseWriter, r *http.Request) {
	jobID, shardID, ok := shardFromPath(w, r)
	if !ok {
		return
	}
	data, err := readAllLimit(r.Body, maxResultBody)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.c.Result(jobID, shardID, r.URL.Query().Get("worker"), data); err != nil {
		reportLeaseErr(w, err)
		return
	}
	jsonOK(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) handleFail(w http.ResponseWriter, r *http.Request) {
	jobID, shardID, ok := shardFromPath(w, r)
	if !ok {
		return
	}
	var req failRequest
	if !decodeControl(w, r, &req) {
		return
	}
	if err := h.c.Fail(jobID, shardID, req.Worker, req.Error); err != nil {
		reportLeaseErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) {
	jobs, shards := h.c.Summary()
	jsonOK(w, http.StatusOK, statusResponse{Jobs: jobs, Shards: shards, Counters: h.c.Counters()})
}
