package fleet

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parsurf"
	"parsurf/internal/job"
	"parsurf/internal/store"
)

// ziffSpec builds a small deterministic ZGB workload. y=0.51 sits in
// the reactive window, so replicas take real KMC steps.
func ziffSpec(t *testing.T, y float64, seed uint64) *parsurf.SessionSpec {
	t.Helper()
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(24, 24),
		parsurf.WithEngine("ziff", parsurf.COFraction(y)),
		parsurf.WithSeed(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// sweepReq is the canonical two-variant test sweep. Fresh specs per
// call so every manager owns its own.
func sweepReq(t *testing.T, replicas int) job.Request {
	t.Helper()
	return job.Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 42), ziffSpec(t, 0.53, 42)},
		Replicas: replicas,
		Workers:  2,
		Until:    5,
		Every:    1,
	}
}

// controlJSON runs the request on a plain single-node durable manager
// and returns the result's canonical JSON — the bytes every fleet
// layout must reproduce exactly.
func controlJSON(t *testing.T, req job.Request) string {
	t.Helper()
	m, err := job.NewManagerWithStore(2, 0, store.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 60*time.Second); st.State != job.StateDone {
		t.Fatalf("control run: %s (%s)", st.State, st.Error)
	}
	res, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func waitTerminal(t *testing.T, j *job.Job, d time.Duration) job.Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %s still %s after %v", j.ID(), j.Status().State, d)
	}
	return j.Status()
}

// fleetManager wires a coordinator-executing durable manager over st.
func fleetManager(t *testing.T, st store.Store, c *Coordinator, runners int) *job.Manager {
	t.Helper()
	m, err := job.NewManagerWithStore(runners, 0, st, job.WithExecutor(c))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitLease polls the coordinator until a shard is granted.
func waitLease(t *testing.T, c *Coordinator, worker string, d time.Duration) *Grant {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if g, ok := c.Lease(worker); ok {
			return g
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no lease for %s within %v", worker, d)
	return nil
}

// runGrant executes a grant's replica range in-process and returns the
// encoded wire payload — a worker without the HTTP plumbing.
func runGrant(t *testing.T, g *Grant) []byte {
	t.Helper()
	spec, err := parsurf.ParseSpec(g.Spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := parsurf.RunReplicaRange(context.Background(), spec, g.Variant, g.Lo, g.Hi,
		2, g.Until, g.Every)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Hi - g.Lo
	data, err := encodeShardResult(&ShardResult{
		Variant: g.Variant, Lo: g.Lo, Hi: g.Hi,
		Rows: rows, Steps: make([]uint64, n), Times: make([]float64, n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A sweep distributed over two HTTP workers merges byte-identically to
// the single-node run, and the shard table is cleaned up after the
// terminal state.
func TestFleetEndToEnd(t *testing.T) {
	req := sweepReq(t, 5)
	want := controlJSON(t, sweepReq(t, 5))

	st := store.NewMem()
	coord, err := New(st, ShardSize(2), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	m := fleetManager(t, st, coord, 2)
	defer m.Close()
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{}, 2)
	for i, w := range []*Worker{
		// One worker checkpoints aggressively to exercise the snapshot
		// hooks; the other runs bare.
		{ID: "w1", Coordinator: srv.URL, Workers: 2, Poll: 5 * time.Millisecond,
			Store: store.NewMem(), CheckpointEvery: time.Millisecond},
		{ID: "w2", Coordinator: srv.URL, Workers: 2, Poll: 5 * time.Millisecond},
	} {
		go func(i int, w *Worker) {
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			workerDone <- struct{}{}
		}(i, w)
	}

	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// While the fleet works, the job's status carries its shard table.
	sawShards := false
	for !sawShards {
		select {
		case <-j.Done():
			sawShards = true // job may finish before we catch a snapshot
		default:
			if len(j.Status().Shards) > 0 {
				sawShards = true
			} else {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	if st := waitTerminal(t, j, 60*time.Second); st.State != job.StateDone {
		t.Fatalf("fleet job: %s (%s)", st.State, st.Error)
	}
	res, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("fleet result differs from the single-node run")
	}

	// 2 variants × ceil(5/2) shards, every one delivered.
	counters := coord.Counters()
	if counters.ShardsDone != 6 {
		t.Errorf("ShardsDone %d, want 6", counters.ShardsDone)
	}
	if counters.Leases < 6 {
		t.Errorf("Leases %d, want >= 6", counters.Leases)
	}
	// Terminal jobs drop their shard state from the store.
	recs, err := st.Shards(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("%d shard records survived the terminal state", len(recs))
	}
	cancel()
	<-workerDone
	<-workerDone
}

// Satellite: the content hash ignores workers and shard layout, so a
// fleet-completed job answers a later local (non-fleet) resubmission
// straight from the cache.
func TestFleetResultFeedsLocalCache(t *testing.T) {
	st := store.NewMem()
	coord, err := New(st, ShardSize(2))
	if err != nil {
		t.Fatal(err)
	}
	m := fleetManager(t, st, coord, 1)
	srv := httptest.NewServer(NewHandler(coord))
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{ID: "w1", Coordinator: srv.URL, Workers: 2, Poll: 5 * time.Millisecond}
	wDone := make(chan struct{})
	go func() { w.Run(ctx); close(wDone) }()

	j, err := m.Submit(sweepReq(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 60*time.Second); st.State != job.StateDone {
		t.Fatalf("fleet job: %s (%s)", st.State, st.Error)
	}
	want, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	cancel()
	<-wDone
	srv.Close()
	m.Close()
	coord.Close()

	// A plain local manager over the same store: the resubmission is
	// answered from the cache without running anything.
	local, err := job.NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	hit, err := local.Submit(sweepReq(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	hst := hit.Status()
	if hst.State != job.StateDone || !hst.Cached {
		t.Fatalf("local resubmission %+v, want immediate cached done", hst)
	}
	if hit.Hash() != j.Hash() {
		t.Fatalf("fleet hash %s, local hash %s", j.Hash(), hit.Hash())
	}
	if n := local.RunsStarted(); n != 0 {
		t.Fatalf("local manager ran %d jobs answering a fleet-cached result", n)
	}
	got, err := hit.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON, _ := json.Marshal(got); string(gotJSON) != string(wantJSON) {
		t.Fatal("cached result differs from the fleet result")
	}
}

// Satellite: a worker that takes a lease and dies never blocks the job
// — the expiry sweeper re-queues the shard, a healthy worker finishes
// it, and the merged result is byte-identical to an uninterrupted run.
func TestLeaseExpiryRequeuesShard(t *testing.T) {
	req := sweepReq(t, 4)
	want := controlJSON(t, sweepReq(t, 4))

	st := store.NewMem()
	coord, err := New(st, ShardSize(2), LeaseTTL(60*time.Millisecond), MaxShardAttempts(10))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	m := fleetManager(t, st, coord, 1)
	defer m.Close()

	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// The doomed worker leases a shard and is never heard from again.
	dead := waitLease(t, coord, "w-dead", 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for coord.Counters().Expiries == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lease on %s never expired", dead.Shard)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A healthy worker mops up everything, including the orphaned shard.
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{ID: "w-live", Coordinator: srv.URL, Workers: 2, Poll: 5 * time.Millisecond}
	wDone := make(chan struct{})
	go func() { w.Run(ctx); close(wDone) }()
	defer func() { cancel(); <-wDone }()

	if st := waitTerminal(t, j, 60*time.Second); st.State != job.StateDone {
		t.Fatalf("fleet job: %s (%s)", st.State, st.Error)
	}
	res, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("result after a lease expiry differs from the uninterrupted run")
	}
	c := coord.Counters()
	if c.Expiries < 1 || c.Requeues < 1 {
		t.Errorf("counters %+v, want at least one expiry and one requeue", c)
	}
}

// A shard that fails MaxAttempts workers is quarantined and the job
// fails, dropping its shard state.
func TestShardQuarantineFailsJob(t *testing.T) {
	st := store.NewMem()
	coord, err := New(st, ShardSize(4), MaxShardAttempts(2), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	m := fleetManager(t, st, coord, 1)
	defer m.Close()

	j, err := m.Submit(job.Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 7)},
		Replicas: 4,
		Workers:  1,
		Until:    5,
		Every:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		g := waitLease(t, coord, "w-poisoned", 10*time.Second)
		jobID, shardID, err := SplitShardID(g.Shard)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Fail(jobID, shardID, "w-poisoned", "segfault in kernel"); err != nil {
			t.Fatalf("fail #%d: %v", attempt+1, err)
		}
	}
	stt := waitTerminal(t, j, 30*time.Second)
	if stt.State != job.StateFailed {
		t.Fatalf("job state %s, want failed", stt.State)
	}
	if !strings.Contains(stt.Error, "quarantined") {
		t.Fatalf("job error %q does not mention quarantine", stt.Error)
	}
	recs, err := st.Shards(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("%d shard records survived the failed job", len(recs))
	}
}

// Results are accepted from any worker (the payload is a pure function
// of the spec), duplicate uploads are idempotent, and a late failure
// report for a done shard is a no-op.
func TestResultFromAnyWorkerAndIdempotence(t *testing.T) {
	st := store.NewMem()
	coord, err := New(st, ShardSize(4), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	m := fleetManager(t, st, coord, 1)
	defer m.Close()

	j, err := m.Submit(job.Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 9)},
		Replicas: 4,
		Workers:  2,
		Until:    5,
		Every:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := waitLease(t, coord, "w-original", 10*time.Second)
	jobID, shardID, err := SplitShardID(g.Shard)
	if err != nil {
		t.Fatal(err)
	}
	data := runGrant(t, g)
	// A different worker delivers the result (the original's lease
	// expired from its point of view, say) — accepted.
	if err := coord.Result(jobID, shardID, "w-late", data); err != nil {
		t.Fatalf("result from a non-leaseholder: %v", err)
	}
	// The original uploads the same bytes — idempotent success.
	if err := coord.Result(jobID, shardID, "w-original", data); err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	// A failure report racing in after the result loses quietly.
	if err := coord.Fail(jobID, shardID, "w-original", "too late"); err != nil {
		t.Fatalf("fail after done: %v", err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st.State != job.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
}

// A mismatched payload (wrong shard geometry) is rejected without
// touching the accumulator.
func TestResultRejectsMismatchedPayload(t *testing.T) {
	st := store.NewMem()
	coord, err := New(st, ShardSize(2), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	m := fleetManager(t, st, coord, 1)
	defer m.Close()

	j, err := m.Submit(sweepReq(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	g := waitLease(t, coord, "w1", 10*time.Second)
	jobID, shardID, err := SplitShardID(g.Shard)
	if err != nil {
		t.Fatal(err)
	}
	data := runGrant(t, g)
	// Post the payload under a different shard of the same job.
	otherID := shardID
	for _, sid := range []string{"v0-0-2", "v0-2-4", "v1-0-2", "v1-2-4"} {
		if sid != shardID {
			otherID = sid
			break
		}
	}
	err = coord.Result(jobID, otherID, "w1", data)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched payload: %v, want a mismatch error", err)
	}
	j.Cancel()
	waitTerminal(t, j, 30*time.Second)
}

// A restarted coordinator+manager pair rebuilds the shard table from
// the store: shards recorded done replay their stored payloads instead
// of re-running, and only the unfinished remainder is leased out again.
// The final result is byte-identical to the single-node run.
func TestCoordinatorRecoveryReplaysDoneShards(t *testing.T) {
	mkReq := func() job.Request {
		return job.Request{
			Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 11)},
			Replicas: 4,
			Workers:  2,
			Until:    5,
			Every:    1,
		}
	}
	want := controlJSON(t, mkReq())

	st := store.NewMem()
	coordA, err := New(st, ShardSize(2), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	mA := fleetManager(t, st, coordA, 1)
	j, err := mA.Submit(mkReq())
	if err != nil {
		t.Fatal(err)
	}
	jobID := j.ID()
	// Finish exactly one of the two shards, then crash the node
	// (shutdown keeps the shard table: the job re-queues).
	g := waitLease(t, coordA, "w1", 10*time.Second)
	_, shardID, err := SplitShardID(g.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := coordA.Result(jobID, shardID, "w1", runGrant(t, g)); err != nil {
		t.Fatal(err)
	}
	mA.Close()
	coordA.Close()
	recs, err := st.Shards(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d shard records survived shutdown, want 2", len(recs))
	}

	// Restart: recovery re-queues the job, the done shard replays from
	// its stored blob, and only the other shard is ever leased again.
	coordB, err := New(st, ShardSize(2), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coordB.Close()
	mB := fleetManager(t, st, coordB, 1)
	defer mB.Close()
	j2, ok := mB.Get(jobID)
	if !ok {
		t.Fatalf("job %s not recovered", jobID)
	}
	g2 := waitLease(t, coordB, "w2", 10*time.Second)
	if g2.Shard == g.Shard {
		t.Fatalf("recovery re-leased the done shard %s", g.Shard)
	}
	_, shardID2, err := SplitShardID(g2.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := coordB.Result(jobID, shardID2, "w2", runGrant(t, g2)); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2, 60*time.Second); st.State != job.StateDone {
		t.Fatalf("recovered job: %s (%s)", st.State, st.Error)
	}
	if n := coordB.Counters().Leases; n != 1 {
		t.Errorf("restarted coordinator granted %d leases, want 1", n)
	}
	res, err := j2.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("recovered fleet result differs from the single-node run")
	}
}
