package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parsurf"
	"parsurf/internal/backoff"
	"parsurf/internal/job"
	"parsurf/internal/store"
)

// defaultClient is the worker's fallback HTTP client. Unlike
// http.DefaultClient it carries a timeout, so a wedged coordinator (or
// a black-holed connection) surfaces as a retryable error instead of
// parking the lease loop forever. Generous on purpose: the slowest
// call is a shard-result upload, which may move real data.
var defaultClient = &http.Client{Timeout: 2 * time.Minute}

// Worker is a fleet worker node: a lease → run → upload loop against a
// coordinator. Each leased shard runs through the same pooled
// zero-rebuild replica path a local surfd uses (parsurf.RunReplicaRange
// with absolute replica indices), so the rows it uploads are the exact
// rows a single-node run computes. A worker given a local store
// snapshots its running replicas mid-shard and resumes them after a
// restart, exactly like the single-node checkpoint machinery.
type Worker struct {
	// ID names the worker in leases and heartbeats.
	ID string
	// Coordinator is the coordinator's base URL ("http://host:8080").
	Coordinator string
	// Workers is the replica-goroutine count per shard (min 1).
	Workers int
	// Poll is the idle wait between lease attempts when the queue is
	// empty or the coordinator unreachable (default 500ms).
	Poll time.Duration
	// Store, when set, holds mid-shard replica checkpoints keyed by
	// (job hash, shard), written at most every CheckpointEvery.
	Store store.Store
	// CheckpointEvery rate-limits mid-shard snapshots (0 disables).
	CheckpointEvery time.Duration
	// Client is the HTTP client (default: a shared client with a
	// 2-minute timeout — never the timeout-less http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

// retryPolicy is the worker's shared jittered-backoff schedule,
// growing from its poll interval to max: decorrelated, so a fleet
// retrying against one restarting coordinator trickles back instead of
// arriving as a synchronized thundering herd.
func (w *Worker) retryPolicy(max time.Duration) backoff.Policy {
	return backoff.Policy{Base: w.poll(), Max: max, Jitter: true}
}

// Run leases and executes shards until ctx is cancelled. Errors inside
// a shard are reported to the coordinator and the loop continues; only
// cancellation ends it. An unreachable coordinator degrades the loop
// to jittered exponential-backoff polling (reset by the next
// successful lease call), so workers ride out coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" || w.Coordinator == "" {
		return fmt.Errorf("fleet: worker needs an ID and a coordinator URL")
	}
	if w.Workers < 1 {
		w.Workers = 1
	}
	retry := w.retryPolicy(30 * time.Second)
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		grant, ok, err := w.lease(ctx)
		switch {
		case err != nil:
			w.logf("worker %s: lease: %v", w.ID, err)
			if !retry.Sleep(fails, ctx.Done()) {
				return nil
			}
			fails++
		case !ok:
			// Reached but idle: steady polling, no backoff.
			fails = 0
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.poll()):
			}
		default:
			fails = 0
			w.runShard(ctx, grant)
		}
	}
}

// lease asks the coordinator for one shard.
func (w *Worker) lease(ctx context.Context) (*Grant, bool, error) {
	body, _ := json.Marshal(leaseRequest{Worker: w.ID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+"/fleet/lease", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, false, nil
	case http.StatusOK:
		grant := new(Grant)
		if err := json.NewDecoder(resp.Body).Decode(grant); err != nil {
			return nil, false, err
		}
		return grant, true, nil
	default:
		return nil, false, fmt.Errorf("fleet: lease: coordinator answered %s", resp.Status)
	}
}

// post sends a JSON body and discards the response body, returning the
// status code.
func (w *Worker) post(ctx context.Context, path string, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// ckptKey derives the worker-local checkpoint key of a shard: job hash
// prefix plus the global shard id, so resumable state is scoped to
// exactly one (job, shard) and DeleteCheckpoints after upload removes
// exactly that.
func ckptKey(grant *Grant) string {
	if grant.Hash == "" || grant.Shard == "" {
		return ""
	}
	h := grant.Hash
	if len(h) > 12 {
		h = h[:12]
	}
	// The global id's dot is a valid store key character, so the key
	// needs no escaping.
	return h + "-" + grant.Shard
}

// runShard executes one leased shard: heartbeats inside the TTL while
// the replicas run, uploads the wire payload on success, reports the
// failure otherwise. A 410 from any call abandons the shard (the
// coordinator moved on); worker-local checkpoints survive an abandon —
// a future lease of the same shard resumes from them.
func (w *Worker) runShard(ctx context.Context, grant *Grant) {
	spec, err := parsurf.ParseSpec(grant.Spec)
	if err != nil {
		w.fail(ctx, grant, fmt.Sprintf("parsing spec: %v", err))
		return
	}
	n := grant.Hi - grant.Lo
	if n <= 0 {
		w.fail(ctx, grant, fmt.Sprintf("empty replica range [%d, %d)", grant.Lo, grant.Hi))
		return
	}
	grid, err := parsurf.NewTimeGrid(grant.Until, grant.Every)
	if err != nil {
		w.fail(ctx, grant, fmt.Sprintf("grid: %v", err))
		return
	}

	// Per-replica progress slots, written by the replica goroutines at
	// grid points and drained by the heartbeat loop.
	steps := make([]atomic.Uint64, n)
	times := make([]atomic.Uint64, n) // Float64bits
	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()

	hbDone := make(chan struct{})
	go w.heartbeats(shardCtx, cancelShard, grant, steps, times, hbDone)

	opts := []parsurf.EnsembleOption{
		parsurf.ObserveReplicas(func(variant, replica int, t float64, sess *parsurf.Session) {
			k := replica - grant.Lo
			eng := sess.Engine()
			steps[k].Store(eng.Steps())
			times[k].Store(math.Float64bits(eng.Time()))
		}),
	}
	key := ckptKey(grant)
	if w.Store != nil && w.CheckpointEvery > 0 && key != "" {
		opts = append(opts, parsurf.CheckpointReplicas(w.checkpointHook(key, grant)))
		if rp := w.resumeProvider(key, grant, spec, grid.Len(), steps, times); rp != nil {
			opts = append(opts, parsurf.ResumeReplicas(rp))
		}
	}

	w.logf("worker %s: running %s (variant %d replicas [%d, %d))",
		w.ID, grant.Shard, grant.Variant, grant.Lo, grant.Hi)
	rows, err := parsurf.RunReplicaRange(shardCtx, spec, grant.Variant, grant.Lo, grant.Hi,
		w.Workers, grant.Until, grant.Every, opts...)
	cancelShard()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil || shardCtx.Err() != nil {
			// Shutdown or lost lease: abandon quietly, keeping local
			// checkpoints for a future lease of this shard.
			w.logf("worker %s: abandoning %s: %v", w.ID, grant.Shard, err)
			return
		}
		w.fail(ctx, grant, err.Error())
		return
	}

	res := &ShardResult{
		Variant: grant.Variant,
		Lo:      grant.Lo,
		Hi:      grant.Hi,
		Rows:    rows,
		Steps:   make([]uint64, n),
		Times:   make([]float64, n),
	}
	for k := 0; k < n; k++ {
		res.Steps[k] = steps[k].Load()
		res.Times[k] = math.Float64frombits(times[k].Load())
	}
	data, err := encodeShardResult(res)
	if err != nil {
		w.fail(ctx, grant, fmt.Sprintf("encoding result: %v", err))
		return
	}
	if w.upload(ctx, grant, data) && w.Store != nil && key != "" {
		_ = w.Store.DeleteCheckpoints(key)
	}
}

// heartbeats renews the lease every third of its TTL, carrying the
// replicas' progress counters. A 410 cancels the shard run — the
// coordinator gave the shard to someone else (or finished the job).
func (w *Worker) heartbeats(ctx context.Context, cancel context.CancelFunc, grant *Grant,
	steps, times []atomic.Uint64, done chan<- struct{}) {
	defer close(done)
	interval := time.Duration(grant.LeaseMillis) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hb := heartbeatRequest{Worker: w.ID, Replicas: make([]ReplicaProgress, len(steps))}
		for k := range steps {
			hb.Replicas[k] = ReplicaProgress{
				Replica: grant.Lo + k,
				Steps:   steps[k].Load(),
				Time:    math.Float64frombits(times[k].Load()),
			}
		}
		// A transient send failure gets a couple of quick jittered
		// retries inside this tick — a blip should not cost a whole
		// renewal interval of lease budget. Still unreachable after
		// that: keep running — the lease may expire, in which case a
		// later heartbeat gets the 410.
		hbRetry := w.retryPolicy(interval / 2)
		var code int
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if code, err = w.post(ctx, "/fleet/shards/"+grant.Shard+"/heartbeat", hb); err == nil {
				break
			}
			if !hbRetry.Sleep(attempt, ctx.Done()) {
				return
			}
		}
		if err != nil {
			continue
		}
		if code == http.StatusGone {
			w.logf("worker %s: lease on %s gone", w.ID, grant.Shard)
			cancel()
			return
		}
	}
}

// upload posts the shard payload, retrying transient failures a few
// times under the shared jittered backoff. True means the coordinator
// accepted (or already had) the result.
func (w *Worker) upload(ctx context.Context, grant *Grant, data []byte) bool {
	url := w.Coordinator + "/fleet/shards/" + grant.Shard + "/result?worker=" + w.ID
	retry := w.retryPolicy(5 * time.Second)
	for attempt := 0; attempt < 3; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := w.client().Do(req)
		if err != nil {
			if !retry.Sleep(attempt, ctx.Done()) {
				return false
			}
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			w.logf("worker %s: delivered %s", w.ID, grant.Shard)
			return true
		case http.StatusGone:
			w.logf("worker %s: result for %s refused: job gone", w.ID, grant.Shard)
			return false
		default:
			w.logf("worker %s: result for %s rejected: %s %s", w.ID, grant.Shard, resp.Status, body)
			return false
		}
	}
	return false
}

// fail reports a shard failure to the coordinator (best-effort).
func (w *Worker) fail(ctx context.Context, grant *Grant, reason string) {
	w.logf("worker %s: shard %s failed: %s", w.ID, grant.Shard, reason)
	_, _ = w.post(ctx, "/fleet/shards/"+grant.Shard+"/fail", failRequest{Worker: w.ID, Error: reason})
}

// checkpointHook is the worker-side parsurf.ReplicaCheckpoint: the
// same rate-limited snapshot discipline as the single-node manager,
// keyed in the worker's local store. Each replica's lastSnap entry is
// touched only by its own goroutine.
func (w *Worker) checkpointHook(key string, grant *Grant) parsurf.ReplicaCheckpoint {
	last := make([]time.Time, grant.Hi-grant.Lo)
	now := time.Now()
	for i := range last {
		last[i] = now
	}
	return func(variant, replica, k int, sess *parsurf.Session, values [][]float64) {
		slot := replica - grant.Lo
		if slot < 0 || slot >= len(last) || time.Since(last[slot]) < w.CheckpointEvery {
			return
		}
		last[slot] = time.Now()
		blob, err := job.EncodeReplicaCheckpoint(variant, replica, k+1, sess, values)
		if err != nil {
			return
		}
		_ = w.Store.PutCheckpoint(key, strconv.Itoa(replica), blob)
	}
}

// resumeProvider loads whatever mid-shard snapshots the local store
// holds under the shard's key, validating each lazily like the
// single-node resume path: anything stale or corrupt is skipped and
// the replica re-runs from zero.
func (w *Worker) resumeProvider(key string, grant *Grant, spec *parsurf.SessionSpec,
	gridLen int, steps, times []atomic.Uint64) parsurf.ReplicaResume {
	slots, err := w.Store.Checkpoints(key)
	if err != nil || len(slots) == 0 {
		return nil
	}
	blobs := make(map[int][]byte, len(slots))
	for _, s := range slots {
		i, err := strconv.Atoi(s)
		if err != nil || i < grant.Lo || i >= grant.Hi {
			continue
		}
		if data, err := w.Store.GetCheckpoint(key, s); err == nil {
			blobs[i] = data
		}
	}
	if len(blobs) == 0 {
		return nil
	}
	return func(variant, replica int) (*parsurf.Session, int, [][]float64, bool) {
		data, ok := blobs[replica]
		if !ok {
			return nil, 0, nil, false
		}
		v, r, nextK, rows, cpBytes, err := job.DecodeReplicaCheckpoint(data)
		if err != nil || v != grant.Variant || r != replica || nextK > gridLen ||
			len(rows) != spec.NumSpecies() {
			return nil, 0, nil, false
		}
		sess, err := parsurf.ResumeSession(spec, bytes.NewReader(cpBytes))
		if err != nil {
			return nil, 0, nil, false
		}
		k := replica - grant.Lo
		steps[k].Store(sess.Engine().Steps())
		times[k].Store(math.Float64bits(sess.Engine().Time()))
		w.logf("worker %s: resuming replica %d of %s at grid point %d", w.ID, replica, grant.Shard, nextK)
		return sess, nextK, rows, true
	}
}
