package fleet

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"parsurf"
	"parsurf/internal/job"
	"parsurf/internal/store"
)

// Oversized control bodies (lease, heartbeat, fail) are refused with
// 413 instead of being buffered.
func TestControlBodyTooLarge(t *testing.T) {
	coord, err := New(store.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	big := `{"worker": "` + strings.Repeat("x", maxControlBody+1) + `"}`
	for _, path := range []string{
		"/fleet/lease",
		"/fleet/shards/job-1.v0-0-2/heartbeat",
		"/fleet/shards/job-1.v0-0-2/fail",
	} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
		if !strings.Contains(out["error"], "exceeds") {
			t.Errorf("%s: error %q does not explain the limit", path, out["error"])
		}
	}
}

// A worker without an explicit client gets one with a timeout, never
// the deadline-free http.DefaultClient.
func TestWorkerDefaultClientHasTimeout(t *testing.T) {
	w := &Worker{}
	c := w.client()
	if c == http.DefaultClient {
		t.Fatal("worker defaults to http.DefaultClient")
	}
	if c.Timeout <= 0 {
		t.Fatalf("default client timeout %v, want > 0", c.Timeout)
	}
	// An explicit client still wins.
	own := &http.Client{}
	if (&Worker{Client: own}).client() != own {
		t.Fatal("explicit client ignored")
	}
}

// Killing the coordinator process mid-sweep and restarting it on the
// same address must not lose the job or corrupt the result: workers
// ride out the outage on their retry loops, recovery replays done
// shards, and the merged result is byte-identical to a single-node
// run. Also a goroutine-leak check: everything started here winds
// down.
func TestCoordinatorKillRestartMidSweep(t *testing.T) {
	baseline := runtime.NumGoroutine()
	req := func() job.Request {
		return job.Request{
			Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 42), ziffSpec(t, 0.53, 42)},
			Replicas: 8,
			Workers:  2,
			Until:    10,
			Every:    1,
		}
	}
	want := controlJSON(t, req())

	st := store.NewMem()
	coordA, err := New(st, ShardSize(1), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	mA := fleetManager(t, st, coordA, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srvA := &http.Server{Handler: NewHandler(coordA)}
	go srvA.Serve(ln)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{}, 2)
	for _, id := range []string{"w1", "w2"} {
		w := &Worker{ID: id, Coordinator: "http://" + addr, Workers: 2,
			Poll: 5 * time.Millisecond}
		go func() {
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
			workerDone <- struct{}{}
		}()
	}

	j, err := mA.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	jobID := j.ID()
	// Let the fleet finish some — but with 16 one-replica shards, not
	// all — of the sweep, then kill the node mid-flight.
	deadline := time.Now().Add(60 * time.Second)
	for coordA.Counters().ShardsDone < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no shards completed (counters %+v)", coordA.Counters())
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("killing node with job %s (%d shards done)",
		j.Status().State, coordA.Counters().ShardsDone)
	srvA.Close()
	mA.Close()
	coordA.Close()

	// Restart on the same address: recovery re-queues the job, workers
	// reconnect through their backoff loops, and the sweep completes.
	coordB, err := New(st, ShardSize(1), LeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	mB := fleetManager(t, st, coordB, 1)
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
	}
	srvB := &http.Server{Handler: NewHandler(coordB)}
	go srvB.Serve(ln2)

	j2, ok := mB.Get(jobID)
	if !ok {
		t.Fatalf("job %s not recovered", jobID)
	}
	if fin := waitTerminal(t, j2, 120*time.Second); fin.State != job.StateDone {
		t.Fatalf("recovered job: %s (%s)", fin.State, fin.Error)
	}
	res, err := j2.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("result after kill/restart differs from the single-node run")
	}

	// Wind everything down and verify nothing leaked.
	cancel()
	<-workerDone
	<-workerDone
	srvB.Close()
	mB.Close()
	coordB.Close()
	for deadline := time.Now().Add(15 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, baseline %d: leak after kill/restart", n, baseline)
		}
	}
}
