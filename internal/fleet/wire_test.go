package fleet

import (
	"reflect"
	"strings"
	"testing"
)

func sampleResult() *ShardResult {
	return &ShardResult{
		Variant: 1,
		Lo:      4,
		Hi:      6,
		Rows: [][][]float64{
			{{0.5, 0.25, 0.125}, {1e-300, 0, 3.14}},
			{{-1.5, 2.5, 4.5}, {0.1, 0.2, 0.3}},
		},
		Steps: []uint64{123456789, 42},
		Times: []float64{9.75, 10.0},
	}
}

// The wire codec round-trips payloads bit-exactly.
func TestWireRoundTrip(t *testing.T) {
	in := sampleResult()
	data, err := encodeShardResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeShardResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

// Malformed payloads decode to errors, never to silently-wrong data.
func TestWireRejectsMalformed(t *testing.T) {
	good, err := encodeShardResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": good[:len(good)-5],
		"header":    good[:12],
	}
	// Trailing garbage.
	cases["trailing"] = append(append([]byte(nil), good...), 0xFF)
	// Flipped magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	cases["magic"] = bad
	// Wrong version.
	bad = append([]byte(nil), good...)
	bad[4] ^= 0x01
	cases["version"] = bad
	// Absurd species claim (offset 20: after magic, version, variant,
	// lo, hi).
	bad = append([]byte(nil), good...)
	bad[20], bad[21] = 0xFF, 0xFF
	cases["species"] = bad
	// Inverted replica range.
	bad = append([]byte(nil), good...)
	bad[12], bad[16] = bad[16], bad[12] // swap lo and hi low bytes
	cases["range"] = bad

	for name, data := range cases {
		if _, err := decodeShardResult(data); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}

// The encoder refuses incoherent in-memory payloads.
func TestWireEncodeValidation(t *testing.T) {
	res := sampleResult()
	res.Steps = res.Steps[:1]
	if _, err := encodeShardResult(res); err == nil {
		t.Error("encoded a payload with missing steps")
	}
	res = sampleResult()
	res.Rows[1] = res.Rows[1][:1]
	if _, err := encodeShardResult(res); err == nil {
		t.Error("encoded a payload with ragged species rows")
	}
	res = sampleResult()
	res.Rows[1][0] = res.Rows[1][0][:2]
	if _, err := encodeShardResult(res); err == nil {
		t.Error("encoded a payload with ragged point rows")
	}
}

// Global shard ids split back into their parts and reject malformed
// tokens.
func TestGlobalShardID(t *testing.T) {
	g := GlobalShardID("job-3", "v0-0-8")
	if g != "job-3.v0-0-8" {
		t.Fatalf("global id %q", g)
	}
	jobID, shardID, err := SplitShardID(g)
	if err != nil || jobID != "job-3" || shardID != "v0-0-8" {
		t.Fatalf("split: %q %q %v", jobID, shardID, err)
	}
	for _, bad := range []string{"", "nodot", ".leading", "trailing."} {
		if _, _, err := SplitShardID(bad); err == nil || !strings.Contains(err.Error(), "malformed") {
			t.Errorf("SplitShardID(%q): %v, want malformed error", bad, err)
		}
	}
}
