// Package fleet shards surfd sweep jobs across worker nodes: a
// coordinator embedded in the durable server splits each job's
// (variant × replica) space into replica-range shards, hands them to
// workers under expiring leases, and merges the returned per-replica
// rows through the same index-ordered accumulator a single-node run
// uses — so the merged Mean/Std are bit-identical to a local run for
// every fleet size, shard layout, worker death, and delivery order.
//
// The shard table persists through the job store with the write-ahead
// discipline of the rest of surfd: every shard state transition writes
// its record before the transition is acknowledged, and result blobs
// land before the records that mark them done, so a restarted
// coordinator rebuilds the table exactly — done shards replay their
// stored payloads instead of re-running, leased shards re-queue
// (leases are transient by construction), and a shard that keeps
// failing workers is quarantined like a poison job.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsurf"
	"parsurf/internal/ensemble"
	"parsurf/internal/job"
	"parsurf/internal/store"
)

// Shard lifecycle states, persisted in store.ShardRecord.State.
const (
	shardQueued      = "queued"
	shardLeased      = "leased"
	shardDone        = "done"
	shardQuarantined = "quarantined"
)

// ErrGone reports a lease that no longer exists: the shard finished,
// was re-queued to another worker, or its job is over. Workers abandon
// the shard on ErrGone. Match with errors.Is.
var ErrGone = errors.New("fleet: lease gone")

const (
	// DefaultShardSize is the replica count per shard when the
	// coordinator is not told otherwise.
	DefaultShardSize = 8
	// DefaultLeaseTTL is how long a worker's lease on a shard lasts
	// without a heartbeat before the shard re-queues.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultMaxAttempts is how many failed or expired leases a shard
	// gets before it is quarantined and its job fails.
	DefaultMaxAttempts = 3
)

// Counters are the coordinator's monotonic event counts, served by
// GET /fleet/status.
type Counters struct {
	// Leases counts shard leases handed out.
	Leases uint64 `json:"leases"`
	// Requeues counts shards put back on the queue after a failed or
	// expired lease.
	Requeues uint64 `json:"requeues"`
	// Expiries counts leases reclaimed by the expiry sweeper (a subset
	// of the events behind Requeues).
	Expiries uint64 `json:"expiries"`
	// ShardsDone counts shard results accepted and merged.
	ShardsDone uint64 `json:"shardsDone"`
}

// Grant is a lease response: everything a worker needs to run one
// shard and nothing more — the variant's spec document travels with the
// grant, so workers hold no job state between shards.
type Grant struct {
	// Shard is the global shard id ("job-3.v0-0-8"), the token every
	// follow-up call names.
	Shard string `json:"shard"`
	// Job and Hash identify the owning job; Hash keys the worker's
	// local mid-shard checkpoints.
	Job  string `json:"job"`
	Hash string `json:"hash,omitempty"`
	// Variant, Lo, Hi locate the shard in the job's replica space.
	Variant int `json:"variant"`
	Lo      int `json:"lo"`
	Hi      int `json:"hi"`
	// Spec is the variant's session spec document.
	Spec json.RawMessage `json:"spec"`
	// Until and Every are the job's run shape.
	Until float64 `json:"until"`
	Every float64 `json:"every"`
	// LeaseMillis is the lease TTL; workers heartbeat well inside it.
	LeaseMillis int64 `json:"leaseMillis"`
}

// ReplicaProgress is one replica's engine counters inside a heartbeat.
type ReplicaProgress struct {
	Replica int     `json:"replica"`
	Steps   uint64  `json:"steps"`
	Time    float64 `json:"time"`
}

// shard is the in-memory state of one persisted shard record plus its
// transient lease.
type shard struct {
	rec     store.ShardRecord
	expires time.Time
}

// fleetJob is one job currently executing through the coordinator.
type fleetJob struct {
	id    string
	j     *job.Job
	specs []*parsurf.SessionSpec
	raw   []json.RawMessage // canonical spec documents for grants
	req   job.Request
	grid  parsurf.TimeGrid
	accs  []*ensemble.Accumulator

	shards map[string]*shard
	// order is the deterministic shard ordering (variant asc, lo asc):
	// lease handout, status listings and recovery all walk it.
	order     []string
	remaining int

	// err and finished end Execute: err set (under the coordinator
	// lock) before finished closes.
	err      error
	finished chan struct{}
}

// Coordinator owns the fleet shard queue. It implements job.Executor
// (jobs route through Execute), job.ShardLister (statuses carry
// shards), and job.JobDropper (terminal jobs drop their shard state).
// All methods are safe for concurrent use.
type Coordinator struct {
	st          store.Store
	shardSize   int
	ttl         time.Duration
	maxAttempts int

	leases     atomic.Uint64
	requeues   atomic.Uint64
	expiries   atomic.Uint64
	shardsDone atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*fleetJob
	order []string // job handout order (FIFO)

	stop chan struct{}
	done chan struct{}
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// ShardSize sets the replica count per shard (default DefaultShardSize;
// values below 1 are ignored).
func ShardSize(n int) Option {
	return func(c *Coordinator) {
		if n >= 1 {
			c.shardSize = n
		}
	}
}

// LeaseTTL sets the heartbeat-renewed lease duration (default
// DefaultLeaseTTL; non-positive values are ignored).
func LeaseTTL(d time.Duration) Option {
	return func(c *Coordinator) {
		if d > 0 {
			c.ttl = d
		}
	}
}

// MaxShardAttempts sets how many failed or expired leases a shard gets
// before quarantine (default DefaultMaxAttempts; values below 1 are
// ignored).
func MaxShardAttempts(n int) Option {
	return func(c *Coordinator) {
		if n >= 1 {
			c.maxAttempts = n
		}
	}
}

// New starts a coordinator persisting its shard table through st
// (required — fleet mode is inherently durable).
func New(st store.Store, opts ...Option) (*Coordinator, error) {
	if st == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a store")
	}
	c := &Coordinator{
		st:          st,
		shardSize:   DefaultShardSize,
		ttl:         DefaultLeaseTTL,
		maxAttempts: DefaultMaxAttempts,
		jobs:        make(map[string]*fleetJob),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	go c.sweep()
	return c, nil
}

// Close stops the expiry sweeper. In-flight Execute calls are ended by
// their own contexts (the manager cancels them on shutdown), not by
// Close.
func (c *Coordinator) Close() {
	close(c.stop)
	<-c.done
}

// Counters returns the monotonic event counts.
func (c *Coordinator) Counters() Counters {
	return Counters{
		Leases:     c.leases.Load(),
		Requeues:   c.requeues.Load(),
		Expiries:   c.expiries.Load(),
		ShardsDone: c.shardsDone.Load(),
	}
}

// sweep reclaims expired leases. The period tracks the TTL so a short
// test TTL is enforced promptly without busy-polling production ones.
func (c *Coordinator) sweep() {
	defer close(c.done)
	period := c.ttl / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.reclaimExpired(now)
		}
	}
}

// reclaimExpired requeues (or quarantines) every leased shard whose
// lease expired before now.
func (c *Coordinator) reclaimExpired(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		fj := c.jobs[id]
		if fj == nil || fj.err != nil {
			continue
		}
		for _, sid := range fj.order {
			sh := fj.shards[sid]
			if sh.rec.State == shardLeased && now.After(sh.expires) {
				c.expiries.Add(1)
				c.endLeaseLocked(fj, sh, fmt.Sprintf("lease on %s expired (worker %s silent past %v)",
					sid, sh.rec.Worker, c.ttl))
			}
		}
	}
}

// endLeaseLocked charges a failed/expired lease against the shard and
// either re-queues or quarantines it. Quarantine fails the whole job:
// a shard that poisons MaxAttempts workers will poison the rest of the
// fleet too. Caller holds c.mu.
func (c *Coordinator) endLeaseLocked(fj *fleetJob, sh *shard, reason string) {
	sh.rec.Attempts++
	sh.rec.Worker = ""
	sh.rec.Error = reason
	if sh.rec.Attempts >= c.maxAttempts {
		sh.rec.State = shardQuarantined
		_ = c.st.PutShard(&sh.rec)
		c.failJobLocked(fj, fmt.Errorf("fleet: shard %s quarantined after %d failed leases: %s",
			sh.rec.ID, sh.rec.Attempts, reason))
		return
	}
	sh.rec.State = shardQueued
	sh.rec.Requeues++
	c.requeues.Add(1)
	_ = c.st.PutShard(&sh.rec)
}

// failJobLocked ends a job's Execute with err. Caller holds c.mu.
func (c *Coordinator) failJobLocked(fj *fleetJob, err error) {
	if fj.err != nil {
		return
	}
	fj.err = err
	close(fj.finished)
}

// shardID names a shard within its job.
func shardID(variant, lo, hi int) string {
	return fmt.Sprintf("v%d-%d-%d", variant, lo, hi)
}

// GlobalShardID is the wire token naming a shard across jobs — the
// {id} segment of the /fleet/shards/ routes. Job ids and shard ids
// never contain a dot, so the first dot splits unambiguously.
func GlobalShardID(jobID, shardID string) string {
	return jobID + "." + shardID
}

// SplitShardID parses a GlobalShardID.
func SplitShardID(global string) (jobID, shardID string, err error) {
	for i := 0; i < len(global); i++ {
		if global[i] == '.' {
			if i == 0 || i == len(global)-1 {
				break
			}
			return global[:i], global[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("fleet: malformed shard id %q", global)
}

// Execute implements job.Executor: it shards the job, opens it for
// leasing, and blocks until every shard's rows have merged (returning
// the result), a shard is quarantined (returning its error), or ctx is
// cancelled (leaving the persisted shard table in place so the next
// Execute of the same job resumes it: done shards replay their stored
// payloads instead of re-running).
func (c *Coordinator) Execute(ctx context.Context, j *job.Job) (*store.Result, error) {
	fj, err := c.openJob(j)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		c.detach(fj.id)
		return nil, ctx.Err()
	case <-fj.finished:
	}
	c.mu.Lock()
	err = fj.err
	c.mu.Unlock()
	c.detach(fj.id)
	if err != nil {
		return nil, err
	}
	// Every replica committed gap-free, so the accumulators read out the
	// exact floats a single-node run computes: members merge in replica-
	// index order whichever shard carried them.
	res := &store.Result{Variants: make([]store.Variant, len(fj.specs))}
	times := fj.grid.Times()
	for v := range fj.specs {
		mean, std := fj.accs[v].MeanStd()
		res.Variants[v] = store.Variant{
			Species: fj.specs[v].SpeciesNames(),
			T:       times,
			Mean:    mean,
			Std:     std,
		}
	}
	return res, nil
}

// openJob builds (or recovers) the job's shard table and registers it
// for leasing.
func (c *Coordinator) openJob(j *job.Job) (*fleetJob, error) {
	req := j.Request()
	grid, err := parsurf.NewTimeGrid(req.Until, req.Every)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	fj := &fleetJob{
		id:       j.ID(),
		j:        j,
		specs:    req.Specs,
		raw:      make([]json.RawMessage, len(req.Specs)),
		req:      req,
		grid:     grid,
		accs:     make([]*ensemble.Accumulator, len(req.Specs)),
		shards:   make(map[string]*shard),
		finished: make(chan struct{}),
	}
	for v, sp := range req.Specs {
		raw, err := json.Marshal(sp)
		if err != nil {
			return nil, fmt.Errorf("fleet: spec %d is not serializable: %w", v, err)
		}
		fj.raw[v] = raw
		// Window = replica count: shard commits arrive in arbitrary
		// order and must never block on the reorder buffer.
		fj.accs[v] = ensemble.NewAccumulator(sp.NumSpecies(), grid.Len(), req.Replicas)
	}
	// The deterministic split, variant-major then lo-ascending.
	for v := range req.Specs {
		for lo := 0; lo < req.Replicas; lo += c.shardSize {
			hi := lo + c.shardSize
			if hi > req.Replicas {
				hi = req.Replicas
			}
			id := shardID(v, lo, hi)
			fj.order = append(fj.order, id)
			fj.shards[id] = &shard{rec: store.ShardRecord{
				ID: id, JobID: fj.id, Variant: v, Lo: lo, Hi: hi, State: shardQueued,
			}}
		}
	}
	fj.remaining = len(fj.order)
	if err := c.recoverShards(fj); err != nil {
		return nil, err
	}
	// Write-ahead: every shard record is durable before the shard is
	// leasable, so a crash after this point recovers the exact table.
	for _, id := range fj.order {
		if err := c.st.PutShard(&fj.shards[id].rec); err != nil {
			return nil, fmt.Errorf("fleet: persisting shard table of %s: %w", fj.id, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.jobs[fj.id]; dup {
		return nil, fmt.Errorf("fleet: job %s is already executing", fj.id)
	}
	c.jobs[fj.id] = fj
	c.order = append(c.order, fj.id)
	if fj.remaining == 0 {
		// Every shard replayed from storage: the job is already whole.
		close(fj.finished)
	}
	return fj, nil
}

// recoverShards folds the job's stored shard records into the freshly
// split table: a stored record matching a split shard carries its
// attempts/requeues forward, and one stored as done replays its stored
// payload through the accumulator instead of re-running. Stored leases
// are transient and re-queue. Records that no longer match the split
// (the shard size changed across restarts) are ignored — the shards
// just re-run, which is always safe.
func (c *Coordinator) recoverShards(fj *fleetJob) error {
	recs, err := c.st.Shards(fj.id)
	if err != nil {
		return fmt.Errorf("fleet: listing shards of %s: %w", fj.id, err)
	}
	for _, rec := range recs {
		sh, ok := fj.shards[rec.ID]
		if !ok || rec.Variant != sh.rec.Variant || rec.Lo != sh.rec.Lo || rec.Hi != sh.rec.Hi {
			continue
		}
		sh.rec.Attempts = rec.Attempts
		sh.rec.Requeues = rec.Requeues
		sh.rec.Error = rec.Error
		switch rec.State {
		case shardDone:
			data, err := c.st.GetShardResult(fj.id, rec.ID)
			if err != nil {
				continue // blob lost: re-run the shard
			}
			res, err := decodeShardResult(data)
			if err != nil || !fj.payloadMatches(res, &sh.rec) {
				continue // blob corrupt or stale: re-run the shard
			}
			if err := fj.commit(res); err != nil {
				return err
			}
			sh.rec.State = shardDone
			fj.remaining--
		case shardQuarantined:
			// A quarantined shard survived the restart: the job is still
			// poisoned. Leave the record; openJob re-persists it and the
			// first Execute wait sees the error.
			sh.rec.State = shardQuarantined
			fj.err = fmt.Errorf("fleet: shard %s quarantined after %d failed leases: %s",
				rec.ID, rec.Attempts, rec.Error)
		}
	}
	if fj.err != nil {
		// Close here (not under c.mu — the job is not yet registered) so
		// Execute observes the quarantine immediately.
		close(fj.finished)
	}
	return nil
}

// payloadMatches validates a decoded shard payload against its record
// and the job's shape.
func (fj *fleetJob) payloadMatches(res *ShardResult, rec *store.ShardRecord) bool {
	return res.Variant == rec.Variant && res.Lo == rec.Lo && res.Hi == rec.Hi &&
		res.Variant < len(fj.specs) &&
		len(res.Rows) > 0 &&
		len(res.Rows[0]) == fj.specs[res.Variant].NumSpecies() &&
		len(res.Rows[0][0]) == fj.grid.Len()
}

// commit merges one shard payload: every replica's rows enter the
// variant's accumulator under its absolute index (the window admits
// all of them immediately; ordering happens inside), and the job's
// progress slots take the replicas' final counters. This is the
// coordinator's merge hot path — per replica, per shard, for every
// job in the fleet — and stays allocation-free.
//
//surflint:hotpath
func (fj *fleetJob) commit(res *ShardResult) error {
	acc := fj.accs[res.Variant]
	for k, i := 0, res.Lo; i < res.Hi; k, i = k+1, i+1 {
		if err := acc.Add(context.Background(), i, res.Rows[k]); err != nil {
			return err
		}
		fj.j.SetReplicaProgress(res.Variant, i, res.Steps[k], res.Times[k])
	}
	fj.j.AddMerged(int64(res.Hi-res.Lo) * int64(fj.grid.Len()))
	return nil
}

// detach unregisters a job from the lease queue, leaving its persisted
// shard table alone (DropJob removes that, and only for jobs that will
// never resume).
func (c *Coordinator) detach(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[id]; !ok {
		return
	}
	delete(c.jobs, id)
	keep := c.order[:0]
	for _, jid := range c.order {
		if jid != id {
			keep = append(keep, jid)
		}
	}
	c.order = keep
}

// Lease hands the first queued shard (job FIFO, then variant-major
// shard order) to the named worker, or reports ok=false when nothing
// is queued. The leased record is durable before the grant leaves.
func (c *Coordinator) Lease(worker string) (*Grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		fj := c.jobs[id]
		if fj == nil || fj.err != nil {
			continue
		}
		for _, sid := range fj.order {
			sh := fj.shards[sid]
			if sh.rec.State != shardQueued {
				continue
			}
			sh.rec.State = shardLeased
			sh.rec.Worker = worker
			if err := c.st.PutShard(&sh.rec); err != nil {
				// The lease is not durable: take it back and stop handing
				// out work until the store recovers.
				sh.rec.State = shardQueued
				sh.rec.Worker = ""
				return nil, false
			}
			sh.expires = time.Now().Add(c.ttl)
			c.leases.Add(1)
			return &Grant{
				Shard:       GlobalShardID(fj.id, sid),
				Job:         fj.id,
				Hash:        fj.j.Hash(),
				Variant:     sh.rec.Variant,
				Lo:          sh.rec.Lo,
				Hi:          sh.rec.Hi,
				Spec:        fj.raw[sh.rec.Variant],
				Until:       fj.req.Until,
				Every:       fj.req.Every,
				LeaseMillis: c.ttl.Milliseconds(),
			}, true
		}
	}
	return nil, false
}

// Heartbeat renews a worker's lease and folds the reported replica
// counters into the job's progress slots. ErrGone tells the worker its
// lease no longer exists — abandon the shard.
func (c *Coordinator) Heartbeat(jobID, shardID, worker string, progress []ReplicaProgress) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fj := c.jobs[jobID]
	if fj == nil || fj.err != nil {
		return ErrGone
	}
	sh := fj.shards[shardID]
	if sh == nil || sh.rec.State != shardLeased || sh.rec.Worker != worker {
		return ErrGone
	}
	sh.expires = time.Now().Add(c.ttl)
	for _, rp := range progress {
		if rp.Replica >= sh.rec.Lo && rp.Replica < sh.rec.Hi {
			fj.j.SetReplicaProgress(sh.rec.Variant, rp.Replica, rp.Steps, rp.Time)
		}
	}
	return nil
}

// Result accepts one shard's wire payload. The rows commit in
// replica-index order through the job's accumulator; the blob persists
// before the record flips to done (so a recovered "done" always finds
// its payload). Results are accepted from any worker — the payload is
// a pure function of the spec, so a late upload from a worker whose
// lease already expired is still exact — and re-uploads of a done
// shard are idempotent successes.
func (c *Coordinator) Result(jobID, shardID, worker string, data []byte) error {
	res, err := decodeShardResult(data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fj := c.jobs[jobID]
	if fj == nil || fj.err != nil {
		return ErrGone
	}
	sh := fj.shards[shardID]
	if sh == nil {
		return ErrGone
	}
	if sh.rec.State == shardDone {
		return nil
	}
	if !fj.payloadMatches(res, &sh.rec) {
		return fmt.Errorf("fleet: payload does not match shard %s (variant %d replicas [%d, %d))",
			shardID, sh.rec.Variant, sh.rec.Lo, sh.rec.Hi)
	}
	if err := c.st.PutShardResult(jobID, shardID, data); err != nil {
		return fmt.Errorf("fleet: persisting shard result: %w", err)
	}
	if err := fj.commit(res); err != nil {
		return err
	}
	sh.rec.State = shardDone
	sh.rec.Worker = ""
	sh.rec.Error = ""
	_ = c.st.PutShard(&sh.rec)
	c.shardsDone.Add(1)
	fj.remaining--
	if fj.remaining == 0 {
		close(fj.finished)
	}
	return nil
}

// Fail records a worker-reported shard failure, re-queueing the shard
// (or quarantining it past the attempt budget, which fails the job).
// Failing a shard that is already done is a no-op: its result arrived
// first and wins.
func (c *Coordinator) Fail(jobID, shardID, worker, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fj := c.jobs[jobID]
	if fj == nil || fj.err != nil {
		return ErrGone
	}
	sh := fj.shards[shardID]
	if sh == nil {
		return ErrGone
	}
	if sh.rec.State == shardDone {
		return nil
	}
	if sh.rec.State != shardLeased || sh.rec.Worker != worker {
		return ErrGone
	}
	c.endLeaseLocked(fj, sh, fmt.Sprintf("worker %s: %s", worker, reason))
	return nil
}

// JobShards implements job.ShardLister: the job's shard statuses in
// deterministic (variant-major) order, or nil for jobs the coordinator
// is not executing.
func (c *Coordinator) JobShards(jobID string) []job.ShardStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	fj := c.jobs[jobID]
	if fj == nil {
		return nil
	}
	out := make([]job.ShardStatus, 0, len(fj.order))
	for _, sid := range fj.order {
		rec := fj.shards[sid].rec
		out = append(out, job.ShardStatus{
			ID:       rec.ID,
			Variant:  rec.Variant,
			Lo:       rec.Lo,
			Hi:       rec.Hi,
			State:    rec.State,
			Worker:   rec.Worker,
			Attempts: rec.Attempts,
			Requeues: rec.Requeues,
			Error:    rec.Error,
		})
	}
	return out
}

// DropJob implements job.JobDropper: a terminally finished job's shard
// records and payload blobs leave the store (best-effort — leftovers
// are dead weight, not corruption).
func (c *Coordinator) DropJob(jobID string) {
	c.detach(jobID)
	_ = c.st.DeleteShards(jobID)
}

// ShardSummary counts a coordinator's shards by state across active
// jobs, for GET /fleet/status.
type ShardSummary struct {
	Queued      int `json:"queued"`
	Leased      int `json:"leased"`
	Done        int `json:"done"`
	Quarantined int `json:"quarantined"`
}

// Summary snapshots the active job count and shard-state totals.
func (c *Coordinator) Summary() (jobs int, shards ShardSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		fj := c.jobs[id]
		if fj == nil {
			continue
		}
		jobs++
		for _, sid := range fj.order {
			switch fj.shards[sid].rec.State {
			case shardQueued:
				shards.Queued++
			case shardLeased:
				shards.Leased++
			case shardDone:
				shards.Done++
			case shardQuarantined:
				shards.Quarantined++
			}
		}
	}
	return jobs, shards
}
