package backoff

import (
	"testing"
	"time"
)

func TestDeterministicDelay(t *testing.T) {
	p := Policy{Base: time.Second, Max: 30 * time.Second}
	want := []time.Duration{
		1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for n, w := range want {
		if got := p.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	p := New(100*time.Millisecond, time.Second)
	for n := 0; n < 8; n++ {
		cap := 100 * time.Millisecond << n
		if cap > time.Second {
			cap = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.Delay(n)
			if d <= 0 || d > cap {
				t.Fatalf("Delay(%d) = %v outside (0, %v]", n, d, cap)
			}
		}
	}
}

func TestZeroBase(t *testing.T) {
	var p Policy
	if d := p.Delay(5); d != 0 {
		t.Fatalf("zero policy Delay = %v, want 0", d)
	}
	if !p.Sleep(3, nil) {
		t.Fatal("zero-delay Sleep reported interrupted")
	}
}

func TestSleepInterrupted(t *testing.T) {
	p := Policy{Base: time.Minute, Max: time.Minute}
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if p.Sleep(0, done) {
		t.Fatal("Sleep with closed done reported completed")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("interrupted Sleep took %v", elapsed)
	}
}

// Overflow guard: huge attempt counts must clamp at Max, not wrap.
func TestLargeAttemptClamps(t *testing.T) {
	p := Policy{Base: time.Second, Max: 30 * time.Second}
	for _, n := range []int{40, 63, 64, 100, 1 << 20} {
		if got := p.Delay(n); got != 30*time.Second {
			t.Errorf("Delay(%d) = %v, want 30s", n, got)
		}
	}
}
