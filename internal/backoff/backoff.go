// Package backoff is the repo's single retry-delay policy: truncated
// exponential growth with full jitter. Every retry loop that talks to
// something unreliable — the job manager re-queueing a crash-recovered
// job, fleet workers re-leasing from a restarting coordinator,
// heartbeat and upload retries — draws its sleep from here, so the
// shape of "back off" is defined once and tuned once.
//
// This package is service plumbing, not engine code: the jitter draws
// from math/rand/v2 (not parsurf/internal/rng) because retry timing is
// deliberately *not* part of any deterministic trajectory.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Policy describes one truncated-exponential-with-jitter schedule.
// The zero value is not useful; use New or fill every field.
type Policy struct {
	// Base is the cap for the first attempt's delay.
	Base time.Duration
	// Max truncates the exponential growth.
	Max time.Duration
	// Jitter selects the delay distribution: with jitter, attempt n
	// draws uniformly from (0, min(Max, Base<<n)] so a fleet of workers
	// hammering a restarted coordinator decorrelates; without it the
	// delay is exactly min(Max, Base<<n) — deterministic, which the job
	// manager's crash-recovery tests pin.
	Jitter bool
}

// New returns a jittered policy growing from base to max.
func New(base, max time.Duration) Policy {
	return Policy{Base: base, Max: max, Jitter: true}
}

// Delay returns the sleep before retry attempt n (0-based: n=0 is the
// delay after the first failure). Non-positive Base yields zero.
func (p Policy) Delay(n int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 0; i < n; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if !p.Jitter {
		return d
	}
	// Full jitter: uniform over (0, d]. Never zero, so a retry loop
	// always yields the scheduler even at Base.
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// Sleep blocks for Delay(n) or until done is closed/cancelled,
// reporting false when it was cut short. A nil done never interrupts.
func (p Policy) Sleep(n int, done <-chan struct{}) bool {
	d := p.Delay(n)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
