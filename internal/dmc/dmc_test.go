package dmc

import (
	"math"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

func zgbSetup(t testing.TB, l int, seed uint64) (*model.Compiled, *lattice.Config, *rng.Source) {
	t.Helper()
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(l)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	return cm, lattice.NewConfig(lat), rng.New(seed)
}

func TestRSMBasics(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 16, 1)
	r := NewRSM(cm, cfg, src)
	if r.Time() != 0 {
		t.Fatal("fresh engine has nonzero time")
	}
	r.Step()
	if r.Trials() != uint64(cm.Lat.N()) {
		t.Fatalf("Step made %d trials, want %d", r.Trials(), cm.Lat.N())
	}
	if r.MCSteps() != 1 {
		t.Fatalf("MCSteps = %v", r.MCSteps())
	}
	if r.Time() <= 0 {
		t.Fatal("time did not advance")
	}
	if r.Successes() == 0 {
		t.Fatal("no reaction fired on an empty lattice in a full MC step")
	}
	// Coverages remain a partition of the lattice.
	sum := cfg.Coverage(model.ZGBEmpty) + cfg.Coverage(model.ZGBCO) + cfg.Coverage(model.ZGBO)
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("coverages sum to %v", sum)
	}
}

func TestRSMDeterministicTime(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 2)
	r := NewRSM(cm, cfg, src)
	r.DeterministicTime = true
	r.Step()
	want := 1.0 / cm.K // N trials of 1/(N·K) each
	if math.Abs(r.Time()-want) > 1e-9 {
		t.Fatalf("deterministic time %v, want %v", r.Time(), want)
	}
}

func TestRSMTimeMeanMatchesDeterministic(t *testing.T) {
	// Averaged over many trials the exponential clock advances at the
	// same speed as the deterministic one.
	cm, cfg, src := zgbSetup(t, 32, 3)
	r := NewRSM(cm, cfg, src)
	for i := 0; i < 50; i++ {
		r.Step()
	}
	want := 50.0 / cm.K
	if math.Abs(r.Time()-want)/want > 0.05 {
		t.Fatalf("stochastic clock %v, deterministic expectation %v", r.Time(), want)
	}
}

func TestNewEnginesPanicOnLatticeMismatch(t *testing.T) {
	cm, _, src := zgbSetup(t, 8, 4)
	other := lattice.NewConfig(lattice.NewSquare(9))
	for name, f := range map[string]func(){
		"rsm":  func() { NewRSM(cm, other, src) },
		"vssm": func() { NewVSSM(cm, other, src) },
		"frm":  func() { NewFRM(cm, other, src) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted mismatched lattice", name)
				}
			}()
			f()
		}()
	}
}

func TestVSSMInitialEnabledSets(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 5)
	v := NewVSSM(cm, cfg, src)
	// Empty lattice: CO adsorption enabled everywhere, O2 both
	// orientations everywhere, CO+O nowhere.
	n := cm.Lat.N()
	if got := v.EnabledCount(0); got != n {
		t.Fatalf("RtCO enabled at %d sites, want %d", got, n)
	}
	if got := v.EnabledCount(1); got != n {
		t.Fatalf("RtO2(0) enabled at %d sites, want %d", got, n)
	}
	for rt := 3; rt < 7; rt++ {
		if got := v.EnabledCount(rt); got != 0 {
			t.Fatalf("RtCO+O enabled at %d sites on empty lattice", got)
		}
	}
	wantRate := float64(n)*cm.Types[0].Rate + 2*float64(n)*cm.Types[1].Rate
	if math.Abs(v.TotalRate()-wantRate) > 1e-6 {
		t.Fatalf("TotalRate %v, want %v", v.TotalRate(), wantRate)
	}
}

func TestVSSMConsistencyAfterRun(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 12, 6)
	v := NewVSSM(cm, cfg, src)
	for i := 0; i < 5000; i++ {
		if !v.Step() {
			break
		}
	}
	if rt, s, ok := v.CheckConsistency(); !ok {
		t.Fatalf("enabled sets inconsistent at rt=%d s=%d", rt, s)
	}
	if v.Events() == 0 {
		t.Fatal("no events executed")
	}
}

func TestVSSMConsistencyPtCO(t *testing.T) {
	m := model.NewPtCO(model.DefaultPtCORates())
	lat := lattice.NewSquare(10)
	cm := model.MustCompile(m, lat)
	cfg := lattice.NewConfig(lat)
	v := NewVSSM(cm, cfg, rng.New(7))
	for i := 0; i < 3000; i++ {
		if !v.Step() {
			break
		}
	}
	if rt, s, ok := v.CheckConsistency(); !ok {
		t.Fatalf("PtCO enabled sets inconsistent at rt=%d s=%d", rt, s)
	}
}

func TestFRMConsistencyAfterRun(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 12, 8)
	f := NewFRM(cm, cfg, src)
	for i := 0; i < 5000; i++ {
		if !f.Step() {
			break
		}
	}
	if rt, s, ok := f.CheckConsistency(); !ok {
		t.Fatalf("event queue inconsistent at rt=%d s=%d", rt, s)
	}
}

func TestFRMTimeMonotone(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 9)
	f := NewFRM(cm, cfg, src)
	prev := 0.0
	for i := 0; i < 2000; i++ {
		if !f.Step() {
			break
		}
		if f.Time() < prev {
			t.Fatalf("time went backwards: %v < %v", f.Time(), prev)
		}
		prev = f.Time()
	}
}

// Absorbing state: pure adsorption fills the lattice and stops.
func adsorptionOnly() *model.Model {
	return &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "ads", Rate: 1,
			Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}},
		}},
	}
}

func TestVSSMAbsorbing(t *testing.T) {
	lat := lattice.NewSquare(6)
	cm := model.MustCompile(adsorptionOnly(), lat)
	cfg := lattice.NewConfig(lat)
	v := NewVSSM(cm, cfg, rng.New(10))
	steps := 0
	for v.Step() {
		steps++
		if steps > lat.N()+1 {
			t.Fatal("more events than sites for pure adsorption")
		}
	}
	if steps != lat.N() {
		t.Fatalf("absorbed after %d events, want %d", steps, lat.N())
	}
	if cfg.Count(1) != lat.N() {
		t.Fatal("lattice not full at absorption")
	}
	tAbs := v.Time()
	if v.Step() {
		t.Fatal("Step returned true in absorbing state")
	}
	if v.Time() != tAbs {
		t.Fatal("absorbing Step advanced time")
	}
}

func TestFRMAbsorbing(t *testing.T) {
	lat := lattice.NewSquare(6)
	cm := model.MustCompile(adsorptionOnly(), lat)
	cfg := lattice.NewConfig(lat)
	f := NewFRM(cm, cfg, rng.New(11))
	steps := 0
	for f.Step() {
		steps++
	}
	if steps != lat.N() {
		t.Fatalf("absorbed after %d events, want %d", steps, lat.N())
	}
	if f.Pending() != 0 {
		t.Fatal("events pending in absorbing state")
	}
}

// Segers correctness criterion 1: the waiting time of a reaction with
// rate k is Exp(k). A 1×1 lattice with a single adsorption type makes
// the first RSM success time exactly the reaction's waiting time.
func TestSegersCriterionWaitingTime(t *testing.T) {
	lat := lattice.New(1, 1)
	m := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "ads", Rate: 2.5,
			Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}},
		}},
	}
	cm := model.MustCompile(m, lat)
	src := rng.New(12)
	const reps = 20000
	var sum, sumSq float64
	for i := 0; i < reps; i++ {
		cfg := lattice.NewConfig(lat)
		r := NewRSM(cm, cfg, src)
		for !r.Trial() {
		}
		w := r.Time()
		sum += w
		sumSq += w * w
	}
	mean := sum / reps
	variance := sumSq/reps - mean*mean
	wantMean := 1 / 2.5
	// Exponential: variance = mean².
	if math.Abs(mean-wantMean)/wantMean > 0.03 {
		t.Fatalf("waiting-time mean %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantMean*wantMean)/(wantMean*wantMean) > 0.06 {
		t.Fatalf("waiting-time variance %v, want %v (exponential)", variance, wantMean*wantMean)
	}
}

// Segers correctness criterion 2: among competing enabled reactions the
// next executed type follows the ratio of the rate constants.
func TestSegersCriterionRateRatio(t *testing.T) {
	lat := lattice.New(1, 1)
	m := &model.Model{
		Species: []string{"*", "A", "B"},
		Types: []model.ReactionType{
			{Name: "adsA", Rate: 1, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}}},
			{Name: "adsB", Rate: 3, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 2}}},
		},
	}
	cm := model.MustCompile(m, lat)
	for name, makeSim := range map[string]func(*lattice.Config, *rng.Source) Simulator{
		"rsm":  func(c *lattice.Config, s *rng.Source) Simulator { return NewRSM(cm, c, s) },
		"vssm": func(c *lattice.Config, s *rng.Source) Simulator { return NewVSSM(cm, c, s) },
		"frm":  func(c *lattice.Config, s *rng.Source) Simulator { return NewFRM(cm, c, s) },
	} {
		src := rng.New(13)
		const reps = 20000
		countB := 0
		for i := 0; i < reps; i++ {
			cfg := lattice.NewConfig(lat)
			sim := makeSim(cfg, src)
			for cfg.Get(0) == 0 {
				if !sim.Step() {
					break
				}
			}
			if cfg.Get(0) == 2 {
				countB++
			}
		}
		p := float64(countB) / reps
		if math.Abs(p-0.75) > 0.015 {
			t.Errorf("%s: B fraction %v, want 0.75 (= kB/(kA+kB))", name, p)
		}
	}
}

// The three exact methods must agree on steady-state coverages. The
// model is an equilibrium lattice gas (monomer and dimer
// adsorption/desorption) whose steady state is unique, so the comparison
// is seed-independent; interacting models like A+B annihilation coarsen
// into seed-dependent domains and are unsuitable here.
func TestEnginesAgreeOnSteadyState(t *testing.T) {
	m := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{
			{Name: "ads", Rate: 1, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}}},
			{Name: "des", Rate: 0.7, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 1, Tgt: 0}}},
			{Name: "ads2", Rate: 0.4, Triples: []model.Triple{
				{Off: lattice.Vec{}, Src: 0, Tgt: 1}, {Off: lattice.Vec{DX: 1}, Src: 0, Tgt: 1}}},
			{Name: "des2", Rate: 0.4, Triples: []model.Triple{
				{Off: lattice.Vec{}, Src: 1, Tgt: 0}, {Off: lattice.Vec{DX: 1}, Src: 1, Tgt: 0}}},
		},
	}
	lat := lattice.NewSquare(24)
	cm := model.MustCompile(m, lat)

	steady := func(sim Simulator, cfg *lattice.Config) float64 {
		RunUntil(sim, 30)
		// Average A coverage over a window.
		total, samples := 0.0, 0
		for t := 30.0; t <= 60; t += 1 {
			RunUntil(sim, t)
			total += cfg.Coverage(1)
			samples++
		}
		return total / float64(samples)
	}

	cfg1 := lattice.NewConfig(lat)
	a1 := steady(NewRSM(cm, cfg1, rng.New(21)), cfg1)
	cfg2 := lattice.NewConfig(lat)
	a2 := steady(NewVSSM(cm, cfg2, rng.New(22)), cfg2)
	cfg3 := lattice.NewConfig(lat)
	a3 := steady(NewFRM(cm, cfg3, rng.New(23)), cfg3)

	if math.Abs(a1-a2) > 0.04 || math.Abs(a1-a3) > 0.04 {
		t.Fatalf("steady-state disagreement: RSM %v, VSSM %v, FRM %v", a1, a2, a3)
	}
}

func TestRunUntil(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 30)
	r := NewRSM(cm, cfg, src)
	RunUntil(r, 2.0)
	if r.Time() < 2.0 {
		t.Fatalf("RunUntil stopped at %v", r.Time())
	}
}

func TestSample(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 31)
	r := NewRSM(cm, cfg, src)
	var times []float64
	Sample(r, 0.5, 5, func(tm float64) { times = append(times, tm) })
	if len(times) < 10 {
		t.Fatalf("Sample recorded %d points", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("sample times not monotone")
		}
	}
}

func BenchmarkRSMTrialZGB(b *testing.B) {
	cm, cfg, src := zgbSetup(b, 128, 1)
	r := NewRSM(cm, cfg, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Trial()
	}
}

func BenchmarkVSSMEventZGB(b *testing.B) {
	cm, cfg, src := zgbSetup(b, 128, 1)
	v := NewVSSM(cm, cfg, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !v.Step() {
			b.Fatal("absorbed")
		}
	}
}

func BenchmarkFRMEventZGB(b *testing.B) {
	cm, cfg, src := zgbSetup(b, 128, 1)
	f := NewFRM(cm, cfg, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Step() {
			b.Fatal("absorbed")
		}
	}
}

// A degenerate sampling schedule must panic loudly, not silently
// produce an empty series (Sample has no error return).
func TestSamplePanicsOnDegenerateDt(t *testing.T) {
	cm, cfg, src := zgbSetup(t, 8, 3)
	r := NewRSM(cm, cfg, src)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a dt beyond the grid-point cap")
		}
	}()
	Sample(r, 1e-300, 1e3, func(float64) {})
}
