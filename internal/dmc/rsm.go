package dmc

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// RSM is the Random Selection Method of §3 of the paper:
//
//	repeat
//	  1. select a site s randomly with probability 1/N;
//	  2. select a reaction type i with probability k_i/K;
//	  3. check if the reaction type is enabled at s;
//	  4. if it is, execute it;
//	  5. advance the time by drawing from 1−exp(−NKt);
//	until simulation time has elapsed
//
// One Monte Carlo step (MCS) is N trials.
type RSM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	// batch prefetches raw generator outputs from the source in blocks;
	// the trial loop draws site, type and waiting time from it — all
	// randomness flows through the batch (drawing from the source
	// directly would break its synchronization invariant). Consumption
	// order, and therefore the trajectory for a fixed seed, is
	// identical to direct Source calls — see rng.Batch.
	batch *rng.Batch

	time      float64
	steps     uint64
	trials    uint64
	successes uint64

	// DeterministicTime replaces the Exp(N·K) increment of step 5 with
	// its mean 1/(N·K), the time-discretised reading of RSM the paper
	// mentions. Default false (exponential increments).
	DeterministicTime bool
}

// NewRSM returns an RSM engine over the compiled model, operating on cfg
// in place, drawing randomness from src.
func NewRSM(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *RSM {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("dmc: configuration lattice differs from compiled lattice")
	}
	return &RSM{cm: cm, cfg: cfg, cells: cfg.Cells(), batch: rng.NewBatch(src)}
}

// Reset rewinds the engine to a fresh start over cfg, drawing from src
// (see registry.Engine.Reset): clock and counters return to zero and
// the batch reader is rewound in place, so a reset RSM reproduces a
// freshly constructed one bit for bit without reallocating.
func (r *RSM) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(r.cm.Lat) {
		panic("dmc: Reset configuration lattice differs from compiled lattice")
	}
	r.cfg, r.cells = cfg, cfg.Cells()
	r.batch.Reset(src)
	r.time = 0
	r.steps, r.trials, r.successes = 0, 0, 0
}

// minDrawsPerTrial is the guaranteed lower bound on raw RNG draws one
// trial consumes (site + type, plus the waiting time unless the clock is
// deterministic); the site draw may take more under Lemire rejection.
func (r *RSM) minDrawsPerTrial() int {
	if r.DeterministicTime {
		return 2
	}
	return 3
}

// Trial performs one RSM trial (steps 1–5) and reports whether a
// reaction fired.
func (r *RSM) Trial() bool {
	r.batch.Reserve(r.minDrawsPerTrial())
	return r.trial()
}

func (r *RSM) trial() bool {
	n := r.cm.Lat.N()
	s := r.batch.Intn(n)
	rt := r.cm.PickType(r.batch.Float64())
	fired := r.cm.TryExecute(r.cells, rt, s)
	r.advance(n)
	r.trials++
	if fired {
		r.successes++
	}
	return fired
}

func (r *RSM) advance(n int) {
	nk := float64(n) * r.cm.K
	if r.DeterministicTime {
		r.time += 1 / nk
	} else {
		r.time += r.batch.Exp(nk)
	}
}

// Step performs one MC step (N trials). It always reports true: RSM has
// no absorbing detection — a poisoned lattice simply stops producing
// successful trials.
//
//surflint:hotpath
func (r *RSM) Step() bool {
	n := r.cm.Lat.N()
	// One bulk reservation covers the whole step's guaranteed draws, so
	// the batch prefetches full blocks instead of per-trial dribbles.
	r.batch.Reserve(r.minDrawsPerTrial() * n)
	for i := 0; i < n; i++ {
		r.trial()
	}
	r.steps++
	return true
}

// Time returns the simulated time.
func (r *RSM) Time() float64 { return r.time }

// Config returns the live configuration.
func (r *RSM) Config() *lattice.Config { return r.cfg }

// Trials returns the number of trials attempted so far.
func (r *RSM) Trials() uint64 { return r.trials }

// Successes returns the number of trials that executed a reaction.
func (r *RSM) Successes() uint64 { return r.successes }

// MCSteps returns the elapsed Monte Carlo steps (trials / N).
func (r *RSM) MCSteps() float64 {
	return float64(r.trials) / float64(r.cm.Lat.N())
}
