package dmc

import (
	"parsurf/internal/fenwick"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// VSSM is the Variable Step Size Method (Gillespie's direct method) with
// incremental bookkeeping of the enabled-reaction lists: every Step
// executes exactly one reaction, chosen with probability proportional to
// its rate among all *enabled* reactions, and advances the time by an
// exponential with the total enabled rate. Unlike RSM it never wastes
// trials on disabled reactions, at the cost of maintaining the enabled
// sets after every execution.
type VSSM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	time  float64

	// typeRates is a Fenwick tree over reaction types; slot i holds
	// k_i · |enabled_i| so Search implements the two-level selection
	// (type by aggregate rate, then a uniform enabled site).
	typeRates *fenwick.Tree
	// enabled[rt] lists the sites where rt is enabled; pos[rt][s] is
	// index+1 of s in enabled[rt] (0 = absent).
	enabled [][]int32
	pos     [][]int32

	changedScratch []int
	events         uint64
}

// NewVSSM builds the engine and initialises the enabled sets with a full
// lattice scan (O(N · Σ|pattern|)).
func NewVSSM(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *VSSM {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("dmc: configuration lattice differs from compiled lattice")
	}
	v := &VSSM{
		cm:        cm,
		cfg:       cfg,
		cells:     cfg.Cells(),
		src:       src,
		typeRates: fenwick.New(cm.NumTypes()),
		enabled:   make([][]int32, cm.NumTypes()),
		pos:       make([][]int32, cm.NumTypes()),
	}
	n := cm.Lat.N()
	for rt := range v.enabled {
		v.pos[rt] = make([]int32, n)
	}
	v.scanEnabled()
	return v
}

// scanEnabled populates the enabled sets and the type-rate tree from a
// full lattice scan. The caller guarantees the sets and the tree are
// empty; the insert order (types ascending, sites ascending) performs
// the same Fenwick additions as construction, so Reset reproduces the
// constructor's float state exactly.
func (v *VSSM) scanEnabled() {
	n := v.cm.Lat.N()
	for rt := 0; rt < v.cm.NumTypes(); rt++ {
		for s := 0; s < n; s++ {
			if v.cm.Enabled(v.cells, rt, s) {
				v.insert(rt, s)
			}
		}
	}
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset): enabled lists are truncated in place, the
// position index and rate tree are zeroed, and the initial scan re-runs
// — no per-type slice or tree is reallocated.
func (v *VSSM) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(v.cm.Lat) {
		panic("dmc: Reset configuration lattice differs from compiled lattice")
	}
	v.cfg, v.cells, v.src = cfg, cfg.Cells(), src
	v.time = 0
	v.events = 0
	v.typeRates.Reset()
	for rt := range v.enabled {
		v.enabled[rt] = v.enabled[rt][:0]
		clear(v.pos[rt])
	}
	v.scanEnabled()
}

// insert appends site s to rt's enabled list and adds its rate. The
// caller guarantees (rt, s) is currently absent.
func (v *VSSM) insert(rt, s int) {
	v.enabled[rt] = append(v.enabled[rt], int32(s))
	v.pos[rt][s] = int32(len(v.enabled[rt]))
	v.typeRates.Add(rt, v.cm.Types[rt].Rate)
}

// refresh re-evaluates enabledness of (rt, s) and fixes the sets. It is
// the body of the post-execution dependency scan: one position lookup
// decides both directions, and the common no-change case returns
// without touching the enabled lists or the rate tree.
func (v *VSSM) refresh(rt, s int) {
	now := v.cm.Enabled(v.cells, rt, s)
	p := v.pos[rt][s]
	if now == (p != 0) {
		return
	}
	if now {
		v.insert(rt, s)
		return
	}
	list := v.enabled[rt]
	last := len(list) - 1
	moved := list[last]
	list[p-1] = moved
	v.pos[rt][moved] = p
	v.enabled[rt] = list[:last]
	v.pos[rt][s] = 0
	v.typeRates.Add(rt, -v.cm.Types[rt].Rate)
}

// TotalRate returns Σ k_i·|enabled_i|, the aggregate propensity.
func (v *VSSM) TotalRate() float64 { return v.typeRates.Total() }

// EnabledCount returns the number of sites where rt is enabled.
func (v *VSSM) EnabledCount(rt int) int { return len(v.enabled[rt]) }

// resync rebuilds the type-rate tree from the exact enabled counts.
// Long runs accumulate floating-point residue in the Fenwick nodes
// (adds and removes of the same rate interleave with other types);
// resync clears it. It runs both reactively (Search landed on an empty
// type) and proactively (the tree's Add counter trips NeedsRebuild).
func (v *VSSM) resync() {
	v.typeRates.Rebuild(func(rt int) float64 {
		return v.cm.Types[rt].Rate * float64(len(v.enabled[rt]))
	})
}

// Step executes one reaction event. It reports false from an absorbing
// state (no enabled reactions), leaving time unchanged.
//
//surflint:hotpath
func (v *VSSM) Step() bool {
	total := v.typeRates.Total()
	if total <= 0 {
		return false
	}
	rt := v.typeRates.Search(v.src.Float64() * total)
	if len(v.enabled[rt]) == 0 {
		// Floating-point residue let Search land on an empty type.
		// Rebuild the tree and redraw.
		v.resync()
		total = v.typeRates.Total()
		if total <= 0 {
			return false
		}
		rt = v.typeRates.Search(v.src.Float64() * total)
	}
	v.time += v.src.Exp(total)
	list := v.enabled[rt]
	s := int(list[v.src.Intn(len(list))])

	v.changedScratch = v.cm.ChangedSites(v.changedScratch[:0], rt, s)
	v.cm.Execute(v.cells, rt, s)
	for _, z := range v.changedScratch {
		// Closure-free dependency scan over the compiled CSR tables.
		rts, sites := v.cm.DepPairs(z)
		for j, r := range rts {
			v.refresh(int(r), int(sites[j]))
		}
	}
	if v.typeRates.NeedsRebuild() {
		v.resync()
	}
	v.events++
	return true
}

// Time returns the simulated time.
func (v *VSSM) Time() float64 { return v.time }

// Config returns the live configuration.
func (v *VSSM) Config() *lattice.Config { return v.cfg }

// Events returns the number of executed reactions.
func (v *VSSM) Events() uint64 { return v.events }

// CheckConsistency verifies the incremental enabled sets against a full
// rescan; used by tests and available for debugging long runs. It
// returns the first discrepancy found, or ok.
func (v *VSSM) CheckConsistency() (rt, s int, ok bool) {
	n := v.cm.Lat.N()
	for r := 0; r < v.cm.NumTypes(); r++ {
		for site := 0; site < n; site++ {
			want := v.cm.Enabled(v.cells, r, site)
			got := v.pos[r][site] != 0
			if want != got {
				return r, site, false
			}
		}
	}
	return 0, 0, true
}
