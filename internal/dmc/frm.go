package dmc

import (
	"parsurf/internal/eventq"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// FRM is the First Reaction Method: every enabled reaction instance
// (type, site) carries a tentative occurrence time drawn from its
// exponential waiting-time distribution; the earliest event executes.
// State changes reschedule exactly the affected instances; instances
// that stay enabled keep their times, which is correct because the
// exponential distribution is memoryless.
type FRM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source
	time  float64

	queue          *eventq.Queue
	n              int // cached lattice size (key arithmetic)
	changedScratch []int
	events         uint64
	// scheduled[rt] counts the queued instances of each reaction type.
	// Integer counts are exact, so TotalRate (Σ scheduled[rt]·k_rt,
	// O(types)) carries no floating-point drift no matter how long the
	// run — unlike a float accumulator of interleaved signed adds.
	scheduled []int64

	// expBuf and siteBuf are the batching scratch of scheduleAll.
	expBuf  []float64
	siteBuf []int32
}

// NewFRM builds the engine and schedules all initially enabled
// reactions.
func NewFRM(cm *model.Compiled, cfg *lattice.Config, src *rng.Source) *FRM {
	if !cfg.Lattice().SameShape(cm.Lat) {
		panic("dmc: configuration lattice differs from compiled lattice")
	}
	n := cm.Lat.N()
	f := &FRM{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src,
		queue:     eventq.New(cm.NumTypes() * n),
		n:         n,
		scheduled: make([]int64, cm.NumTypes())}
	f.scheduleAll()
	return f
}

// scheduleAll scans the lattice and schedules every enabled instance.
// Per reaction type the enabled sites are collected first (the scan
// consumes no randomness), then their waiting times come from one
// FillExp batch — the same draw sequence, bit for bit, as one Exp call
// per enabled site in (type ascending, site ascending) order, at a
// fraction of the per-call cost. This is the dominant share of FRM's
// per-replica setup, paid by NewFRM and again by every Reset.
func (f *FRM) scheduleAll() {
	n := f.n
	for rt := 0; rt < f.cm.NumTypes(); rt++ {
		f.siteBuf = f.siteBuf[:0]
		for s := 0; s < n; s++ {
			if f.cm.Enabled(f.cells, rt, s) {
				f.siteBuf = append(f.siteBuf, int32(s))
			}
		}
		k := len(f.siteBuf)
		if k == 0 {
			continue
		}
		if cap(f.expBuf) < k {
			f.expBuf = make([]float64, k)
		}
		waits := f.expBuf[:k]
		f.src.FillExp(waits, f.cm.Types[rt].Rate)
		for i, s := range f.siteBuf {
			f.queue.Schedule(f.key(rt, int(s)), f.time+waits[i])
		}
		f.scheduled[rt] += int64(k)
	}
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset): the event queue is emptied in place (keeping
// its O(types·N) position index), the per-type instance counts are
// zeroed, and the initial schedule re-runs against cfg drawing from
// src.
func (f *FRM) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(f.cm.Lat) {
		panic("dmc: Reset configuration lattice differs from compiled lattice")
	}
	f.cfg, f.cells, f.src = cfg, cfg.Cells(), src
	f.time = 0
	f.events = 0
	f.queue.Reset()
	clear(f.scheduled)
	f.scheduleAll()
}

func (f *FRM) key(rt, s int) int64 {
	return int64(rt)*int64(f.n) + int64(s)
}

func (f *FRM) unkey(k int64) (rt, s int) {
	n := int64(f.n)
	return int(k / n), int(k % n)
}

// refresh synchronises the queue entry for (rt, s) with the current
// state: schedule newly enabled instances, cancel disabled ones, keep
// still-enabled ones untouched (memorylessness). The post-execution
// bursts are a handful of instances, too small for batched draws to
// beat the per-call Exp (measured; the full-lattice scheduleAll is
// where batching pays), so the hot path keeps the single draws.
func (f *FRM) refresh(rt, s int) {
	k := f.key(rt, s)
	if f.cm.Enabled(f.cells, rt, s) {
		if !f.queue.Contains(k) {
			f.queue.Schedule(k, f.time+f.src.Exp(f.cm.Types[rt].Rate))
			f.scheduled[rt]++
		}
	} else if f.queue.Remove(k) {
		f.scheduled[rt]--
	}
}

// Step executes the earliest scheduled reaction. It reports false from
// an absorbing state (empty queue).
//
//surflint:hotpath
func (f *FRM) Step() bool {
	ev, ok := f.queue.Pop()
	if !ok {
		return false
	}
	f.time = ev.Time
	rt, s := f.unkey(ev.Key)
	f.scheduled[rt]--

	f.changedScratch = f.cm.ChangedSites(f.changedScratch[:0], rt, s)
	f.cm.Execute(f.cells, rt, s)
	for _, z := range f.changedScratch {
		// Closure-free dependency scan over the compiled CSR tables.
		rts, sites := f.cm.DepPairs(z)
		for j, r := range rts {
			f.refresh(int(r), int(sites[j]))
		}
	}
	// If the executed instance is enabled again (e.g. a desorption that
	// re-enables an adsorption elsewhere covered above; the instance
	// itself is re-examined through Dependencies since reactions change
	// their own sites), nothing more to do here.
	f.events++
	return true
}

// Time returns the simulated time.
func (f *FRM) Time() float64 { return f.time }

// Config returns the live configuration.
func (f *FRM) Config() *lattice.Config { return f.cfg }

// Events returns the number of executed reactions.
func (f *FRM) Events() uint64 { return f.events }

// Pending returns the number of scheduled events.
func (f *FRM) Pending() int { return f.queue.Len() }

// CheckConsistency verifies the queue against a full enabledness rescan.
func (f *FRM) CheckConsistency() (rt, s int, ok bool) {
	n := f.cm.Lat.N()
	for r := 0; r < f.cm.NumTypes(); r++ {
		for site := 0; site < n; site++ {
			want := f.cm.Enabled(f.cells, r, site)
			got := f.queue.Contains(f.key(r, site))
			if want != got {
				return r, site, false
			}
		}
	}
	return 0, 0, true
}
