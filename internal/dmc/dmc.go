// Package dmc implements Dynamic Monte Carlo simulation of the Master
// Equation (§3 of the paper): algorithms whose trajectories are exact
// samples of the stochastic process defined by the reaction rates.
//
// Three algorithms from the Segers taxonomy the paper cites are
// provided:
//
//   - RSM, the Random Selection Method — the paper's reference algorithm
//     and the one its CA methods are compared against;
//   - VSSM, the Variable Step Size Method (Gillespie's direct method)
//     with incremental enabled-reaction bookkeeping;
//   - FRM, the First Reaction Method, with an event queue.
//
// All three sample the same process; VSSM and FRM never waste trials on
// disabled reactions and serve as fast exact baselines and cross-checks.
package dmc

import (
	"parsurf/internal/lattice"
	"parsurf/internal/timegrid"
)

// Simulator is the common interface of all engines in this repository
// (DMC and CA families alike): advance the state and report the current
// simulated time.
type Simulator interface {
	// Step advances the simulation by one algorithm-specific unit
	// (one MC step of N trials for trial-based engines, one reaction
	// event for event-based engines). It reports false when the system
	// cannot evolve further (absorbing state).
	Step() bool
	// Time returns the current simulated time.
	Time() float64
	// Config returns the live configuration.
	Config() *lattice.Config
}

// RunUntil advances sim until its clock reaches t or it reports an
// absorbing state. It returns the number of Step calls made.
func RunUntil(sim Simulator, t float64) int {
	steps := 0
	for sim.Time() < t {
		if !sim.Step() {
			break
		}
		steps++
	}
	return steps
}

// Sample runs sim and records observe(time) at every multiple of dt up
// to tEnd, starting at the current time, plus a final sample at tEnd
// exactly when tEnd is not on the dt grid (so the tail of the run is
// never dropped). The observation function reads the live configuration
// through the closure.
//
// The sample points come from timegrid.From — index-derived, never
// accumulated — so every consumer of the same (origin, tEnd, dt)
// schedule (this function, the context-aware runners in internal/sim,
// and the ensemble merge) lands on exactly the same float64 grid.
// A degenerate schedule (dt too small to advance the clock's floats,
// or fine enough to exceed the grid-point cap) panics — Sample has no
// error channel, and silently taking zero samples would hand callers
// an empty series; the context-aware sim.RunContext returns the same
// condition as an error.
func Sample(sim Simulator, dt, tEnd float64, observe func(t float64)) {
	grid, err := timegrid.From(sim.Time(), tEnd, dt)
	if err != nil {
		panic("dmc: " + err.Error())
	}
	for k := 0; k < grid.Len(); k++ {
		t := grid.At(k)
		if k == grid.Len()-1 && grid.Tail() && sim.Time() >= tEnd {
			// The clock already covered the off-grid horizon while
			// running to the last on-step point; a tail sample here
			// would duplicate the previous observation.
			return
		}
		RunUntil(sim, t)
		observe(sim.Time())
		if sim.Time() < t {
			// Absorbing state before the sample point: recorded once,
			// stop.
			return
		}
	}
}
