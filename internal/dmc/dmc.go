// Package dmc implements Dynamic Monte Carlo simulation of the Master
// Equation (§3 of the paper): algorithms whose trajectories are exact
// samples of the stochastic process defined by the reaction rates.
//
// Three algorithms from the Segers taxonomy the paper cites are
// provided:
//
//   - RSM, the Random Selection Method — the paper's reference algorithm
//     and the one its CA methods are compared against;
//   - VSSM, the Variable Step Size Method (Gillespie's direct method)
//     with incremental enabled-reaction bookkeeping;
//   - FRM, the First Reaction Method, with an event queue.
//
// All three sample the same process; VSSM and FRM never waste trials on
// disabled reactions and serve as fast exact baselines and cross-checks.
package dmc

import "parsurf/internal/lattice"

// Simulator is the common interface of all engines in this repository
// (DMC and CA families alike): advance the state and report the current
// simulated time.
type Simulator interface {
	// Step advances the simulation by one algorithm-specific unit
	// (one MC step of N trials for trial-based engines, one reaction
	// event for event-based engines). It reports false when the system
	// cannot evolve further (absorbing state).
	Step() bool
	// Time returns the current simulated time.
	Time() float64
	// Config returns the live configuration.
	Config() *lattice.Config
}

// RunUntil advances sim until its clock reaches t or it reports an
// absorbing state. It returns the number of Step calls made.
func RunUntil(sim Simulator, t float64) int {
	steps := 0
	for sim.Time() < t {
		if !sim.Step() {
			break
		}
		steps++
	}
	return steps
}

// Sample runs sim and records observe(time) at every multiple of dt up
// to tEnd, starting at the current time, plus a final sample at tEnd
// exactly when tEnd is not on the dt grid (so the tail of the run is
// never dropped). The observation function reads the live configuration
// through the closure.
func Sample(sim Simulator, dt, tEnd float64, observe func(t float64)) {
	SampleFunc(sim.Time,
		func(t float64) bool { RunUntil(sim, t); return true },
		dt, tEnd,
		func() { observe(sim.Time()) })
}

// SampleFunc drives the dt sampling schedule shared by Sample and the
// context-aware runners: observe fires at every grid point
// t0, t0+dt, …, plus once at tEnd exactly when the grid misses it.
// runTo must advance the simulation until its clock reaches t (or it
// can advance no further) and report whether to continue; returning
// false stops the schedule immediately *without* observing (external
// cancellation). An absorbing state — the clock still short of the
// requested grid point after runTo — records one final sample and
// stops.
func SampleFunc(timeOf func() float64, runTo func(t float64) bool, dt, tEnd float64, observe func()) {
	next := timeOf()
	if next > tEnd {
		return
	}
	last := next
	for next <= tEnd {
		if !runTo(next) {
			return
		}
		observe()
		if timeOf() < next {
			// Absorbing state before the sample point: recorded once,
			// stop.
			return
		}
		last = next
		next += dt
	}
	// Tail sample at tEnd, unless the grid covered it — either exactly
	// (last == tEnd) or by floating-point drift leaving the clock
	// already past tEnd, where a second observe would duplicate the
	// final sample.
	if last < tEnd && timeOf() < tEnd {
		if !runTo(tEnd) {
			return
		}
		observe()
	}
}
