// Engine checkpoint payloads (registry.Engine.SaveState/LoadState) for
// the exact DMC engines. Every field that Reset re-derives differently
// than N steps of history would have left it is saved verbatim; state
// that is a pure function of the configuration is rebuilt by Reset and
// only corrected here where the evolution order matters (swap-remove
// list orderings, heap layouts, drifted Fenwick nodes).

package dmc

import (
	"io"

	"parsurf/internal/eventq"
	"parsurf/internal/persist"
)

// SaveState writes the RSM clock and counters. The batch reader's
// reservation bound leaves its buffer empty at every step boundary, so
// the raw source state (saved by the surrounding checkpoint) is exact
// and the batch needs nothing of its own.
func (r *RSM) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(r.time)
	e.U64(r.steps)
	e.U64(r.trials)
	e.U64(r.successes)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (r *RSM) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	r.time = d.F64()
	r.steps = d.U64()
	r.trials = d.U64()
	r.successes = d.U64()
	return d.Err()
}

// SaveState writes the VSSM clock, counters, enabled-list orderings and
// the raw Fenwick nodes. The list order is history-dependent (refresh
// removes by swap-with-last), and the tree nodes carry the exact
// floating-point residue of the interleaved signed adds — both must
// survive verbatim for the resumed site draws to replay bit-exactly.
func (v *VSSM) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(v.time)
	e.U64(v.events)
	e.U32(uint32(len(v.enabled)))
	for _, list := range v.enabled {
		e.U32(uint32(len(list)))
		for _, s := range list {
			e.U32(uint32(s))
		}
	}
	nodes, adds := v.typeRates.State(nil)
	e.U64(adds)
	e.U32(uint32(len(nodes)))
	for _, node := range nodes {
		e.F64(node)
	}
	return e.Err()
}

// LoadState restores a payload written by SaveState. Reset has already
// rebuilt the enabled sets from the configuration; the saved ordering
// and tree nodes overwrite them.
func (v *VSSM) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	simTime := d.F64()
	events := d.U64()
	numTypes := d.U32()
	if d.Err() == nil && int(numTypes) != len(v.enabled) {
		d.Failf("dmc: vssm payload has %d reaction types, engine has %d", numTypes, len(v.enabled))
	}
	n := v.cm.Lat.N()
	for rt := 0; rt < int(numTypes) && d.Err() == nil; rt++ {
		k := d.U32()
		if d.Err() == nil && int(k) > n {
			d.Failf("dmc: vssm payload lists %d enabled sites of %d", k, n)
			break
		}
		list := v.enabled[rt][:0]
		clear(v.pos[rt])
		for i := 0; i < int(k); i++ {
			s := d.U32()
			if d.Err() != nil {
				break
			}
			if int(s) >= n || v.pos[rt][s] != 0 {
				d.Failf("dmc: vssm payload site %d invalid or duplicate", s)
				break
			}
			list = append(list, int32(s))
			v.pos[rt][s] = int32(len(list))
		}
		v.enabled[rt] = list
	}
	adds := d.U64()
	nn := d.U32()
	nodes := make([]float64, 0, nn)
	for i := 0; i < int(nn) && d.Err() == nil; i++ {
		nodes = append(nodes, d.F64())
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := v.typeRates.Restore(nodes, adds); err != nil {
		return err
	}
	v.time = simTime
	v.events = events
	return nil
}

// SaveState writes the FRM clock, counters, the event heap verbatim
// (array order, not just contents: tie-break sift sequences depend on
// it) and the per-type instance counts.
func (f *FRM) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(f.time)
	e.U64(f.events)
	snap := f.queue.Snapshot(nil)
	e.U32(uint32(len(snap)))
	for _, ev := range snap {
		e.F64(ev.Time)
		e.I64(ev.Key)
	}
	e.U32(uint32(len(f.scheduled)))
	for _, n := range f.scheduled {
		e.I64(n)
	}
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (f *FRM) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	simTime := d.F64()
	events := d.U64()
	k := d.U32()
	if d.Err() == nil && int(k) > f.queue.KeySpace() {
		d.Failf("dmc: frm payload schedules %d events in a key space of %d", k, f.queue.KeySpace())
	}
	snap := make([]eventq.Event, 0, k)
	for i := 0; i < int(k) && d.Err() == nil; i++ {
		t := d.F64()
		key := d.I64()
		snap = append(snap, eventq.Event{Time: t, Key: key})
	}
	nt := d.U32()
	if d.Err() == nil && int(nt) != len(f.scheduled) {
		d.Failf("dmc: frm payload has %d reaction types, engine has %d", nt, len(f.scheduled))
	}
	counts := make([]int64, 0, nt)
	for i := 0; i < int(nt) && d.Err() == nil; i++ {
		counts = append(counts, d.I64())
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := f.queue.Restore(snap); err != nil {
		return err
	}
	copy(f.scheduled, counts)
	f.time = simTime
	f.events = events
	return nil
}
