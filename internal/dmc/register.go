package dmc

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
)

// Engine-interface methods (registry.Engine = Simulator + Name +
// TotalRate + Steps) for the three exact DMC engines.

// Name returns the registry name.
func (r *RSM) Name() string { return "rsm" }

// TotalRate returns the constant trial rate N·K of the RSM clock.
func (r *RSM) TotalRate() float64 { return float64(r.cm.Lat.N()) * r.cm.K }

// Steps returns the number of completed Step calls (MC steps).
func (r *RSM) Steps() uint64 { return r.steps }

// Name returns the registry name.
func (v *VSSM) Name() string { return "vssm" }

// Steps returns the number of completed Step calls (= executed events).
func (v *VSSM) Steps() uint64 { return v.events }

// Name returns the registry name.
func (f *FRM) Name() string { return "frm" }

// TotalRate returns Σ k_i over all scheduled reaction instances, the
// aggregate propensity of the current state, computed exactly from the
// per-type instance counts (O(types), no accumulated float drift).
func (f *FRM) TotalRate() float64 {
	total := 0.0
	for rt, n := range f.scheduled {
		total += float64(n) * f.cm.Types[rt].Rate
	}
	return total
}

// Steps returns the number of completed Step calls (= executed events).
func (f *FRM) Steps() uint64 { return f.events }

func init() {
	registry.Register(registry.Spec{
		Name:    "rsm",
		Doc:     "Random Selection Method, the paper's reference DMC (§3)",
		Accepts: registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			r := NewRSM(cm, cfg, src)
			r.DeterministicTime = o.DeterministicTime
			return r, nil
		},
	})
	registry.Register(registry.Spec{
		Name: "vssm",
		Doc:  "Variable Step Size Method (Gillespie direct), exact DMC baseline (§3)",
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			return NewVSSM(cm, cfg, src), nil
		},
	})
	registry.Register(registry.Spec{
		Name: "frm",
		Doc:  "First Reaction Method with an event queue, exact DMC baseline (§3)",
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			return NewFRM(cm, cfg, src), nil
		},
	})
}
