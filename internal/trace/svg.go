package trace

import (
	"fmt"
	"io"
	"strings"

	"parsurf/internal/stats"
)

// SVGOptions configure WriteSVG.
type SVGOptions struct {
	Width, Height int      // pixel dimensions (default 640×360)
	Title         string   // optional chart title
	Labels        []string // one legend label per series
}

// svgColours cycles through distinguishable stroke colours.
var svgColours = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

// WriteSVG renders the series as a standalone SVG line chart spanning
// the union of the series' time ranges. It is the publication-grade
// counterpart of ASCIIPlot for the experiment harness.
func WriteSVG(w io.Writer, opt SVGOptions, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series")
	}
	for i, s := range series {
		if s.Len() < 2 {
			return fmt.Errorf("trace: series %d has fewer than 2 points", i)
		}
	}
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 360
	}
	const margin = 45

	tmin, tmax := series[0].T[0], series[0].T[series[0].Len()-1]
	ymin, ymax := stats.MinMax(series[0].X)
	for _, s := range series[1:] {
		if s.T[0] < tmin {
			tmin = s.T[0]
		}
		if s.T[s.Len()-1] > tmax {
			tmax = s.T[s.Len()-1]
		}
		lo, hi := stats.MinMax(s.X)
		if lo < ymin {
			ymin = lo
		}
		if hi > ymax {
			ymax = hi
		}
	}
	if tmax == tmin {
		tmax = tmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	px := func(t float64) float64 { return float64(margin) + (t-tmin)/(tmax-tmin)*plotW }
	py := func(y float64) float64 { return float64(height-margin) - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
			width/2, escapeXML(opt.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%.3g</text>`+"\n",
		margin-40, height-margin+4, ymin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%.3g</text>`+"\n",
		margin-40, margin+4, ymax)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%.3g</text>`+"\n",
		margin, height-margin+16, tmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">%.3g</text>`+"\n",
		width-margin, height-margin+16, tmax)

	for si, s := range series {
		colour := svgColours[si%len(svgColours)]
		var path strings.Builder
		for i := 0; i < s.Len(); i++ {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, px(s.T[i]), py(s.X[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(path.String()), colour)
		if si < len(opt.Labels) {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
				width-margin-120, margin+15*(si+1), colour, escapeXML(opt.Labels[si]))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
