package trace

import (
	"bytes"
	"strings"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/stats"
)

func mkSeries(points ...float64) *stats.Series {
	s := &stats.Series{}
	for i := 0; i+1 < len(points); i += 2 {
		s.Append(points[i], points[i+1])
	}
	return s
}

func TestWriteCSV(t *testing.T) {
	a := mkSeries(0, 1, 1, 2, 2, 3)
	b := mkSeries(0, 10, 2, 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"t", "a", "b"}, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "t,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[2] != "1,2,20" { // b interpolated at t=1
		t.Fatalf("row %q", lines[2])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"t"}); err == nil {
		t.Fatal("no series accepted")
	}
	if err := WriteCSV(&buf, []string{"t"}, mkSeries(0, 1)); err == nil {
		t.Fatal("wrong name count accepted")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := mkSeries(0, 0, 5, 1, 10, 0)
	out := ASCIIPlot(10, 40, "*", s)
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no marks plotted")
	}
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.000") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// Degenerate inputs return empty rather than panicking.
	if ASCIIPlot(1, 40, "*", s) != "" || ASCIIPlot(10, 1, "*", s) != "" || ASCIIPlot(10, 10, "*") != "" {
		t.Fatal("degenerate plot not empty")
	}
}

func TestASCIIPlotOverlay(t *testing.T) {
	a := mkSeries(0, 0, 10, 1)
	b := mkSeries(0, 1, 10, 0)
	out := ASCIIPlot(8, 30, "ox", a, b)
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("overlay marks missing:\n%s", out)
	}
}

func TestASCIIPlotConstantSeries(t *testing.T) {
	s := mkSeries(0, 0.5, 10, 0.5)
	if out := ASCIIPlot(5, 20, "*", s); out == "" {
		t.Fatal("constant series plot empty")
	}
}

func TestWritePGM(t *testing.T) {
	lat := lattice.New(4, 3)
	c := lattice.NewConfig(lat)
	c.Set(0, 1)
	c.Set(5, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, c, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 3\n255\n")) {
		t.Fatalf("header: %q", out[:12])
	}
	pixels := out[len("P5\n4 3\n255\n"):]
	if len(pixels) != 12 {
		t.Fatalf("%d pixels", len(pixels))
	}
	if pixels[0] != 127 { // species 1 of 3 -> mid grey
		t.Fatalf("pixel 0 = %d", pixels[0])
	}
	if pixels[5] != 255 { // species 2 of 3 -> white
		t.Fatalf("pixel 5 = %d", pixels[5])
	}
	if pixels[1] != 0 {
		t.Fatalf("vacant pixel = %d", pixels[1])
	}
}

func TestWritePGMClampsSpecies(t *testing.T) {
	lat := lattice.New(2, 1)
	c := lattice.NewConfig(lat)
	c.Set(0, 9)
	var buf bytes.Buffer
	if err := WritePGM(&buf, c, 3); err != nil {
		t.Fatal(err)
	}
	pixels := buf.Bytes()[len("P5\n2 1\n255\n"):]
	if pixels[0] != 255 {
		t.Fatalf("out-of-range species pixel = %d", pixels[0])
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Fatalf("separator %q", lines[1])
	}
}
