package trace

import (
	"bytes"
	"strings"
	"testing"

	"parsurf/internal/stats"
)

func TestWriteSVGBasics(t *testing.T) {
	a := mkSeries(0, 0, 5, 1, 10, 0.5)
	b := mkSeries(0, 1, 10, 0)
	var buf bytes.Buffer
	err := WriteSVG(&buf, SVGOptions{Title: "CO <coverage>", Labels: []string{"rsm", "pndca"}}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"CO &lt;coverage&gt;", // escaped title
		"rsm", "pndca",
		"#1f77b4", "#d62728", // two series colours
		`d="M`, // at least one path
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(out, "<path"); n != 2 {
		t.Errorf("%d paths, want 2", n)
	}
}

func TestWriteSVGDefaultsAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, SVGOptions{}); err == nil {
		t.Fatal("no series accepted")
	}
	short := &stats.Series{}
	short.Append(0, 1)
	if err := WriteSVG(&buf, SVGOptions{}, short); err == nil {
		t.Fatal("single-point series accepted")
	}
	buf.Reset()
	if err := WriteSVG(&buf, SVGOptions{}, mkSeries(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="640"`) {
		t.Fatal("default width not applied")
	}
}

func TestWriteSVGConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, SVGOptions{}, mkSeries(0, 0.5, 10, 0.5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// No NaN coordinates from the degenerate y-range.
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN coordinates in SVG")
	}
}
