// Package trace renders simulation output: CSV/TSV time-series writers
// for the experiment harness, quick ASCII line plots for terminal use,
// and PGM snapshots of lattice configurations.
package trace

import (
	"fmt"
	"io"
	"strings"

	"parsurf/internal/lattice"
	"parsurf/internal/stats"
)

// WriteCSV writes one or more series sharing the first series' time
// base as a CSV table with the given column names (the first name is
// the time column). Series with different sample times are interpolated
// onto the first series' times.
func WriteCSV(w io.Writer, names []string, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series")
	}
	if len(names) != len(series)+1 {
		return fmt.Errorf("trace: %d names for %d columns", len(names), len(series)+1)
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	base := series[0]
	for i, t := range base.T {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%g", t))
		row = append(row, fmt.Sprintf("%g", base.X[i]))
		for _, s := range series[1:] {
			row = append(row, fmt.Sprintf("%g", s.At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders the series as a rows×cols character plot spanning
// the series' full time range, with one mark per column and a labeled
// value axis. Multiple series are overlaid with distinct marks.
func ASCIIPlot(rows, cols int, marks string, series ...*stats.Series) string {
	if rows < 2 || cols < 2 || len(series) == 0 {
		return ""
	}
	lo, hi := series[0].T[0], series[0].T[series[0].Len()-1]
	ymin, ymax := stats.MinMax(series[0].X)
	for _, s := range series[1:] {
		l, h := stats.MinMax(s.X)
		if l < ymin {
			ymin = l
		}
		if h > ymax {
			ymax = h
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		mark := byte('*')
		if si < len(marks) {
			mark = marks[si]
		}
		for c := 0; c < cols; c++ {
			t := lo + (hi-lo)*float64(c)/float64(cols-1)
			v := s.At(t)
			r := int((ymax - v) / (ymax - ymin) * float64(rows-1))
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			grid[r][c] = mark
		}
	}
	var b strings.Builder
	for r := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3f ", ymax)
		} else if r == rows-1 {
			label = fmt.Sprintf("%7.3f ", ymin)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(fmt.Sprintf("        +%s\n", strings.Repeat("-", cols)))
	b.WriteString(fmt.Sprintf("         t=%.3g%st=%.3g\n", lo, strings.Repeat(" ", max(1, cols-14)), hi))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WritePGM writes the configuration as a binary PGM (P5) image, mapping
// species values to evenly spaced grey levels over numSpecies.
func WritePGM(w io.Writer, c *lattice.Config, numSpecies int) error {
	if numSpecies < 2 {
		numSpecies = 2
	}
	lat := c.Lattice()
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", lat.L0, lat.L1); err != nil {
		return err
	}
	row := make([]byte, lat.L0)
	for y := 0; y < lat.L1; y++ {
		for x := 0; x < lat.L0; x++ {
			v := int(c.GetXY(x, y))
			if v >= numSpecies {
				v = numSpecies - 1
			}
			row[x] = byte(v * 255 / (numSpecies - 1))
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows of cells as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
