package stats

import "math"

// Periodogram computes the discrete-Fourier power spectrum of the
// (mean-removed) samples at frequencies k/(n·dt), k = 1..n/2. It
// returns the power values and the corresponding frequencies. The
// direct O(n²) evaluation is fine at the series lengths the
// experiments use (≤ a few thousand samples) and keeps the package
// stdlib-only.
func Periodogram(xs []float64, dt float64) (power, freq []float64) {
	n := len(xs)
	if n < 4 || dt <= 0 {
		return nil, nil
	}
	mean := Mean(xs)
	half := n / 2
	power = make([]float64, half)
	freq = make([]float64, half)
	for k := 1; k <= half; k++ {
		var re, im float64
		w := 2 * math.Pi * float64(k) / float64(n)
		for j, x := range xs {
			angle := w * float64(j)
			re += (x - mean) * math.Cos(angle)
			im += (x - mean) * math.Sin(angle)
		}
		power[k-1] = (re*re + im*im) / float64(n)
		freq[k-1] = float64(k) / (float64(n) * dt)
	}
	return power, freq
}

// DominantPeriod returns the period of the strongest periodogram peak
// of the series (resampled to n points) and that peak's share of the
// total spectral power. ok is false for series too short to analyse.
func DominantPeriod(s *Series, n int) (period, share float64, ok bool) {
	if s.Len() < 8 {
		return 0, 0, false
	}
	lo, hi := s.T[0], s.T[s.Len()-1]
	if hi <= lo {
		return 0, 0, false
	}
	dt := (hi - lo) / float64(n-1)
	xs := s.Resample(lo, hi, n)
	power, freq := Periodogram(xs, dt)
	if len(power) == 0 {
		return 0, 0, false
	}
	total, best, bestIdx := 0.0, 0.0, -1
	for i, p := range power {
		total += p
		if p > best {
			best, bestIdx = p, i
		}
	}
	if total == 0 || bestIdx < 0 {
		return 0, 0, false
	}
	return 1 / freq[bestIdx], best / total, true
}

// BlockingError estimates the standard error of the mean of correlated
// samples by Flyvbjerg–Petersen blocking: the series is repeatedly
// halved by averaging neighbour pairs; the error estimate at each level
// is reported and the maximum (the plateau value) returned. Returns 0
// for fewer than 8 samples.
func BlockingError(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return 0
	}
	data := append([]float64(nil), xs...)
	best := 0.0
	for len(data) >= 4 {
		m := len(data)
		mean := Mean(data)
		varSum := 0.0
		for _, x := range data {
			varSum += (x - mean) * (x - mean)
		}
		// Error of the mean at this blocking level.
		se := math.Sqrt(varSum / float64(m) / float64(m-1))
		if se > best {
			best = se
		}
		half := m / 2
		next := make([]float64, half)
		for i := 0; i < half; i++ {
			next[i] = (data[2*i] + data[2*i+1]) / 2
		}
		data = next
	}
	return best
}

// EffectiveSampleSize estimates the number of independent samples in a
// correlated series via the integrated autocorrelation time
// (τ = 1 + 2·Σ acf, summed until the first non-positive value).
func EffectiveSampleSize(xs []float64) float64 {
	n := len(xs)
	if n < 4 {
		return float64(n)
	}
	acf := Autocorrelation(xs, n/2)
	tau := 1.0
	for _, a := range acf[1:] {
		if a <= 0 {
			break
		}
		tau += 2 * a
	}
	return float64(n) / tau
}
