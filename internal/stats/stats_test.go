package stats

import (
	"math"
	"testing"
	"testing/quick"

	"parsurf/internal/rng"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 || math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", w.Mean())
	}
	// Unbiased variance of the data set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var %v", w.Var())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %v", w.Std())
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if v := Variance([]float64{1, 2, 3}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("Variance = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestSeriesAtInterpolates(t *testing.T) {
	s := &Series{}
	s.Append(0, 0)
	s.Append(2, 4)
	s.Append(4, 0)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {1, 2}, {2, 4}, {3, 2}, {4, 0}, {9, 0},
	}
	for _, c := range cases {
		if got := s.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesAppendPanicsOnBackwardsTime(t *testing.T) {
	s := &Series{}
	s.Append(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Append(0.5, 0)
}

func TestSeriesWindow(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	w := s.Window(2.5, 6.5)
	if w.Len() != 4 || w.T[0] != 3 || w.T[3] != 6 {
		t.Fatalf("Window = %+v", w)
	}
}

func TestResample(t *testing.T) {
	s := &Series{}
	s.Append(0, 0)
	s.Append(10, 10)
	xs := s.Resample(0, 10, 11)
	for i, x := range xs {
		if math.Abs(x-float64(i)) > 1e-12 {
			t.Fatalf("Resample[%d] = %v", i, x)
		}
	}
}

func TestRMSD(t *testing.T) {
	a := &Series{}
	b := &Series{}
	for i := 0; i <= 100; i++ {
		tt := float64(i) / 10
		a.Append(tt, math.Sin(tt))
		b.Append(tt, math.Sin(tt)+0.5)
	}
	if d := RMSD(a, a, 0, 10, 200); d > 1e-12 {
		t.Fatalf("self-RMSD = %v", d)
	}
	if d := RMSD(a, b, 0, 10, 200); math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("offset RMSD = %v, want 0.5", d)
	}
}

func TestAutocorrelationSine(t *testing.T) {
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	acf := Autocorrelation(xs, 100)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("acf[0] = %v", acf[0])
	}
	// The period-40 signal must correlate strongly at lag 40 and
	// anti-correlate at lag 20.
	if acf[40] < 0.8 {
		t.Fatalf("acf[40] = %v", acf[40])
	}
	if acf[20] > -0.8 {
		t.Fatalf("acf[20] = %v", acf[20])
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	acf := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	if acf[0] != 1 || acf[1] != 0 {
		t.Fatalf("constant acf = %v", acf)
	}
}

func TestDetectOscillationSine(t *testing.T) {
	s := &Series{}
	for i := 0; i <= 2000; i++ {
		tt := float64(i) * 0.1
		s.Append(tt, 0.4+0.3*math.Sin(2*math.Pi*tt/25))
	}
	osc, ok := DetectOscillation(s, 1000, 0.2)
	if !ok {
		t.Fatal("sine not detected")
	}
	if math.Abs(osc.Period-25)/25 > 0.1 {
		t.Fatalf("period %v, want ~25", osc.Period)
	}
	if osc.Strength < 0.8 {
		t.Fatalf("strength %v", osc.Strength)
	}
	if math.Abs(osc.Amplitude-0.3) > 0.02 {
		t.Fatalf("amplitude %v, want ~0.3", osc.Amplitude)
	}
}

func TestDetectOscillationNoise(t *testing.T) {
	src := rng.New(5)
	s := &Series{}
	for i := 0; i <= 2000; i++ {
		s.Append(float64(i)*0.1, src.Float64())
	}
	if osc, ok := DetectOscillation(s, 1000, 0.3); ok {
		t.Fatalf("oscillation %v detected in white noise", osc)
	}
}

func TestDetectOscillationDampedVsSustained(t *testing.T) {
	sustained := &Series{}
	damped := &Series{}
	for i := 0; i <= 3000; i++ {
		tt := float64(i) * 0.1
		sustained.Append(tt, math.Sin(2*math.Pi*tt/30))
		damped.Append(tt, math.Exp(-tt/20)*math.Sin(2*math.Pi*tt/30))
	}
	s1, ok1 := DetectOscillation(sustained, 1500, 0.2)
	_, ok2 := DetectOscillation(damped, 1500, 0.2)
	if !ok1 {
		t.Fatal("sustained oscillation missed")
	}
	// The damped signal either fails detection or scores much weaker.
	if ok2 {
		d2, _ := DetectOscillation(damped, 1500, 0.0)
		if d2.Strength > s1.Strength {
			t.Fatalf("damped strength %v >= sustained %v", d2.Strength, s1.Strength)
		}
	}
}

func TestKSExponentialAcceptsExponential(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Exp(2)
	}
	_, p := KSExponential(xs, 2)
	if p < 0.01 {
		t.Fatalf("true exponential rejected: p = %v", p)
	}
}

func TestKSExponentialRejectsUniform(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	_, p := KSExponential(xs, 2)
	if p > 0.001 {
		t.Fatalf("uniform sample accepted as exponential: p = %v", p)
	}
}

func TestKSExponentialRejectsWrongRate(t *testing.T) {
	src := rng.New(8)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Exp(1)
	}
	_, p := KSExponential(xs, 3)
	if p > 0.001 {
		t.Fatalf("rate-1 sample accepted as rate-3: p = %v", p)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, p := KSExponential(nil, 1); p != 1 {
		t.Fatal("empty sample should be trivially accepted")
	}
}

func TestChiSquareUniform(t *testing.T) {
	chi2, dof := ChiSquareUniform([]int{100, 100, 100, 100})
	if chi2 != 0 || dof != 3 {
		t.Fatalf("perfect uniform: chi2=%v dof=%d", chi2, dof)
	}
	chi2, _ = ChiSquareUniform([]int{200, 0, 0, 0})
	if chi2 < 100 {
		t.Fatalf("extreme skew chi2=%v", chi2)
	}
}

func TestChiSquareAgainstProbs(t *testing.T) {
	chi2, dof, err := ChiSquare([]int{25, 75}, []float64{0.25, 0.75})
	if err != nil || dof != 1 || chi2 > 1e-12 {
		t.Fatalf("chi2=%v dof=%d err=%v", chi2, dof, err)
	}
	if _, _, err := ChiSquare([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := ChiSquare([]int{1, 1}, []float64{0, 1}); err == nil {
		t.Fatal("observation in zero-probability bucket accepted")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, icpt := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(icpt-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, icpt)
	}
}

// Property: Welford matches the two-pass formulas.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%100) + 2
		src := rng.New(seed)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = src.Float64()*20 - 10
			w.Add(xs[i])
		}
		if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
			return false
		}
		return math.Abs(w.Var()-Variance(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: At is exact at the sample points.
func TestQuickSeriesAtSamples(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 2
		src := rng.New(seed)
		s := &Series{}
		tt := 0.0
		for i := 0; i < n; i++ {
			tt += src.Float64() + 0.01
			s.Append(tt, src.Float64())
		}
		for i := 0; i < n; i++ {
			if math.Abs(s.At(s.T[i])-s.X[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// MomentGrid streams members through per-cell Welford moments: the
// result matches a direct per-cell Welford pass bit for bit, and shape
// mismatches panic instead of merging silently.
func TestMomentGrid(t *testing.T) {
	const vars, points, members = 3, 4, 6
	g := NewMomentGrid(vars, points)
	direct := make([]Welford, vars*points)
	for m := 0; m < members; m++ {
		values := make([][]float64, vars)
		for v := range values {
			values[v] = make([]float64, points)
			for p := range values[v] {
				x := math.Sin(float64(m*31+v*7+p)) + float64(m)*0.25
				values[v][p] = x
				direct[v*points+p].Add(x)
			}
		}
		g.AddMember(values)
	}
	if g.Members() != members {
		t.Fatalf("Members() = %d, want %d", g.Members(), members)
	}
	mean, std := g.MeanStd()
	for v := 0; v < vars; v++ {
		for p := 0; p < points; p++ {
			w := direct[v*points+p]
			if mean[v][p] != w.Mean() || std[v][p] != w.Std() {
				t.Fatalf("cell (%d,%d): mean/std %v/%v, want %v/%v",
					v, p, mean[v][p], std[v][p], w.Mean(), w.Std())
			}
		}
	}
	for _, bad := range [][][]float64{
		make([][]float64, vars-1),
		{make([]float64, points), make([]float64, points-1), make([]float64, points)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("shape mismatch accepted")
				}
			}()
			g.AddMember(bad)
		}()
	}
}
