// Package stats provides the statistical machinery the experiments and
// tests need: online moments, time series with resampling, autocorrelation
// and oscillation (period/amplitude) estimation for the Figs. 8–10
// comparisons, RMS deviation between series, and the Kolmogorov–Smirnov
// and chi-square tests used to check the Segers correctness criteria.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance online (Welford's algorithm).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for no data).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Var()
}

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

// Series is a sampled time series (t_i, x_i) with strictly increasing
// times.
type Series struct {
	T []float64
	X []float64
}

// Append adds a point; times must be non-decreasing.
func (s *Series) Append(t, x float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic(fmt.Sprintf("stats: series time went backwards: %v after %v", t, s.T[n-1]))
	}
	s.T = append(s.T, t)
	s.X = append(s.X, x)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// At linearly interpolates the series at time t, clamping outside the
// sampled range. It panics on an empty series.
func (s *Series) At(t float64) float64 {
	n := len(s.T)
	if n == 0 {
		panic("stats: At on empty series")
	}
	if t <= s.T[0] {
		return s.X[0]
	}
	if t >= s.T[n-1] {
		return s.X[n-1]
	}
	i := sort.SearchFloat64s(s.T, t)
	// s.T[i-1] < t <= s.T[i]
	t0, t1 := s.T[i-1], s.T[i]
	if t1 == t0 {
		return s.X[i]
	}
	frac := (t - t0) / (t1 - t0)
	return s.X[i-1] + frac*(s.X[i]-s.X[i-1])
}

// Window returns the sub-series with t in [lo, hi].
func (s *Series) Window(lo, hi float64) *Series {
	out := &Series{}
	for i, t := range s.T {
		if t >= lo && t <= hi {
			out.Append(t, s.X[i])
		}
	}
	return out
}

// Resample returns the series evaluated at n evenly spaced times across
// [lo, hi].
func (s *Series) Resample(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Resample needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		t := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = s.At(t)
	}
	return out
}

// RMSD returns the root-mean-square deviation between two series over
// [lo, hi], comparing n evenly spaced interpolated samples. It is the
// accuracy metric used to quantify how far a partitioned CA trajectory
// deviates from the RSM reference.
func RMSD(a, b *Series, lo, hi float64, n int) float64 {
	xa := a.Resample(lo, hi, n)
	xb := b.Resample(lo, hi, n)
	sum := 0.0
	for i := range xa {
		d := xa[i] - xb[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Autocorrelation returns the normalised autocorrelation function of xs
// for lags 0..maxLag (inclusive). A constant series yields acf[0]=1 and
// zeros elsewhere.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		denom += (x - mean) * (x - mean)
	}
	acf := make([]float64, maxLag+1)
	if denom == 0 {
		acf[0] = 1
		return acf
	}
	for lag := 0; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		acf[lag] = num / denom
	}
	return acf
}

// Oscillation describes a detected oscillation in a series.
type Oscillation struct {
	// Period is the dominant period in the series' time units.
	Period float64
	// Strength is the autocorrelation value at the detected period
	// (1 = perfectly periodic, ~0 = no oscillation).
	Strength float64
	// Amplitude is half the peak-to-peak spread of the series.
	Amplitude float64
}

// DetectOscillation estimates the dominant oscillation of a uniformly
// resampled series via the first prominent autocorrelation peak. The
// series is resampled at n points over its full span. ok is false when
// no positive-lag autocorrelation peak exceeds minStrength.
func DetectOscillation(s *Series, n int, minStrength float64) (Oscillation, bool) {
	if s.Len() < 4 {
		return Oscillation{}, false
	}
	lo, hi := s.T[0], s.T[s.Len()-1]
	xs := s.Resample(lo, hi, n)
	acf := Autocorrelation(xs, n/2)
	// Find the first local maximum after the initial decay below zero
	// or below 1/2, whichever comes first.
	start := 1
	for start < len(acf) && acf[start] > 0.5 {
		start++
	}
	bestLag, bestVal := 0, minStrength
	for lag := start + 1; lag < len(acf)-1; lag++ {
		if acf[lag] >= acf[lag-1] && acf[lag] >= acf[lag+1] && acf[lag] > bestVal {
			bestLag, bestVal = lag, acf[lag]
			break // first prominent peak is the fundamental period
		}
	}
	if bestLag == 0 {
		return Oscillation{}, false
	}
	dt := (hi - lo) / float64(n-1)
	loX, hiX := MinMax(xs)
	return Oscillation{
		Period:    float64(bestLag) * dt,
		Strength:  bestVal,
		Amplitude: (hiX - loX) / 2,
	}, true
}

// MomentGrid accumulates online mean/variance per cell of a fixed
// vars × points sample grid (e.g. species × time grid) — the streaming
// core of the ensemble merge. Adding a member costs O(vars·points) and
// total memory stays O(vars·points) no matter how many members stream
// through; nothing is retained but the Welford moments.
type MomentGrid struct {
	vars, points int
	members      int
	cells        []Welford
}

// NewMomentGrid returns an empty moment grid; both dimensions must be
// positive.
func NewMomentGrid(vars, points int) *MomentGrid {
	if vars < 1 || points < 1 {
		panic(fmt.Sprintf("stats: MomentGrid needs positive dimensions, got %d×%d", vars, points))
	}
	return &MomentGrid{vars: vars, points: points, cells: make([]Welford, vars*points)}
}

// AddMember accumulates one member's samples, a vars-row grid of
// points values each. It panics on a shape mismatch — a member that
// sampled a different grid must never merge silently.
func (g *MomentGrid) AddMember(values [][]float64) {
	if len(values) != g.vars {
		panic(fmt.Sprintf("stats: member has %d rows, grid has %d", len(values), g.vars))
	}
	for v, row := range values {
		if len(row) != g.points {
			panic(fmt.Sprintf("stats: member row %d has %d points, grid has %d", v, len(row), g.points))
		}
		cells := g.cells[v*g.points : (v+1)*g.points]
		for p, x := range row {
			cells[p].Add(x)
		}
	}
	g.members++
}

// Members returns the number of members accumulated.
func (g *MomentGrid) Members() int { return g.members }

// MeanStd returns the per-cell mean and sample standard deviation as
// vars rows of points values.
func (g *MomentGrid) MeanStd() (mean, std [][]float64) {
	mean = make([][]float64, g.vars)
	std = make([][]float64, g.vars)
	for v := 0; v < g.vars; v++ {
		mean[v] = make([]float64, g.points)
		std[v] = make([]float64, g.points)
		cells := g.cells[v*g.points : (v+1)*g.points]
		for p := range cells {
			mean[v][p] = cells[p].Mean()
			std[v][p] = cells[p].Std()
		}
	}
	return mean, std
}

// Aggregate merges replica series into pointwise mean and sample
// standard deviation series: every input is resampled (with linear
// interpolation and clamping) onto n evenly spaced times across
// [lo, hi] and the moments are taken across replicas at each grid
// point. It panics on an empty input set, n < 2, or an empty member
// series.
//
// The ensemble runner no longer uses it: replicas now sample directly
// on a shared ensemble.TimeGrid and merge through MomentGrid with no
// interpolation. Aggregate remains for series whose sample times
// genuinely differ.
func Aggregate(series []*Series, lo, hi float64, n int) (mean, std *Series) {
	if len(series) == 0 {
		panic("stats: Aggregate of no series")
	}
	resampled := make([][]float64, len(series))
	for i, s := range series {
		resampled[i] = s.Resample(lo, hi, n)
	}
	mean, std = &Series{}, &Series{}
	for j := 0; j < n; j++ {
		t := lo + (hi-lo)*float64(j)/float64(n-1)
		var w Welford
		for i := range resampled {
			w.Add(resampled[i][j])
		}
		mean.Append(t, w.Mean())
		std.Append(t, w.Std())
	}
	return mean, std
}

// KSExponential runs a one-sample Kolmogorov–Smirnov test of xs against
// the exponential distribution with the given rate. It returns the KS
// statistic D and the asymptotic p-value. Used for Segers criterion 1
// (exponential waiting times).
func KSExponential(xs []float64, rate float64) (d, p float64) {
	n := len(xs)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		cdf := 1 - math.Exp(-rate*x)
		upper := float64(i+1)/float64(n) - cdf
		lower := cdf - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d, ksPValue(d, n)
}

// ksPValue returns the asymptotic Kolmogorov distribution tail
// probability for statistic d with sample size n.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	lambda := (math.Sqrt(float64(n)) + 0.12 + 0.11/math.Sqrt(float64(n))) * d
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * lambda * lambda * float64(k) * float64(k))
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ChiSquareUniform tests observed counts against uniform expectation and
// returns the chi-square statistic and its degrees of freedom. Compare
// against a critical value for the desired significance.
func ChiSquareUniform(counts []int) (chi2 float64, dof int) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) < 2 || total == 0 {
		return 0, 0
	}
	want := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	return chi2, len(counts) - 1
}

// ChiSquare tests observed counts against the given expected
// probabilities (normalised internally).
func ChiSquare(counts []int, probs []float64) (chi2 float64, dof int, err error) {
	if len(counts) != len(probs) {
		return 0, 0, fmt.Errorf("stats: %d counts vs %d probabilities", len(counts), len(probs))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	psum := 0.0
	for _, p := range probs {
		psum += p
	}
	if total == 0 || psum <= 0 {
		return 0, 0, fmt.Errorf("stats: empty data")
	}
	for i, c := range counts {
		want := float64(total) * probs[i] / psum
		if want == 0 {
			if c != 0 {
				return 0, 0, fmt.Errorf("stats: observations in zero-probability bucket %d", i)
			}
			continue
		}
		d := float64(c) - want
		chi2 += d * d / want
	}
	return chi2, len(counts) - 1, nil
}

// LinearFit returns the least-squares slope and intercept of y against
// x. It panics when fewer than two points are given.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of >= 2 points")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = num / den
	intercept = my - slope*mx
	return
}
