package stats

import (
	"math"
	"testing"

	"parsurf/internal/rng"
)

func TestPeriodogramFindsSine(t *testing.T) {
	const n = 512
	dt := 0.5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) * dt / 16) // period 16
	}
	power, freq := Periodogram(xs, dt)
	best, bestIdx := 0.0, -1
	for i, p := range power {
		if p > best {
			best, bestIdx = p, i
		}
	}
	got := 1 / freq[bestIdx]
	if math.Abs(got-16)/16 > 0.05 {
		t.Fatalf("dominant period %v, want 16", got)
	}
}

func TestPeriodogramDegenerate(t *testing.T) {
	if p, f := Periodogram([]float64{1, 2}, 1); p != nil || f != nil {
		t.Fatal("short input not rejected")
	}
	if p, _ := Periodogram(make([]float64, 16), 0); p != nil {
		t.Fatal("zero dt not rejected")
	}
}

func TestDominantPeriod(t *testing.T) {
	s := &Series{}
	for i := 0; i <= 2000; i++ {
		tt := float64(i) * 0.1
		s.Append(tt, 0.5+0.2*math.Sin(2*math.Pi*tt/14))
	}
	period, share, ok := DominantPeriod(s, 1024)
	if !ok {
		t.Fatal("not detected")
	}
	if math.Abs(period-14)/14 > 0.06 {
		t.Fatalf("period %v, want 14", period)
	}
	// A non-integer number of cycles leaks power into neighbouring
	// bins; the dominant bin still carries well over half.
	if share < 0.5 {
		t.Fatalf("pure sine share %v", share)
	}
}

func TestDominantPeriodWhiteNoiseLowShare(t *testing.T) {
	src := rng.New(4)
	s := &Series{}
	for i := 0; i <= 2000; i++ {
		s.Append(float64(i)*0.1, src.Float64())
	}
	_, share, ok := DominantPeriod(s, 1024)
	if ok && share > 0.2 {
		t.Fatalf("white noise claims dominant share %v", share)
	}
}

func TestDominantPeriodShortSeries(t *testing.T) {
	s := &Series{}
	s.Append(0, 1)
	s.Append(1, 2)
	if _, _, ok := DominantPeriod(s, 64); ok {
		t.Fatal("short series accepted")
	}
}

func TestBlockingErrorIID(t *testing.T) {
	// For i.i.d. samples blocking reproduces the naive standard error.
	src := rng.New(5)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Float64()
	}
	naive := math.Sqrt(Variance(xs) / float64(len(xs)))
	blocked := BlockingError(xs)
	if blocked < naive*0.8 || blocked > naive*2.0 {
		t.Fatalf("iid blocking error %v vs naive %v", blocked, naive)
	}
}

func TestBlockingErrorCorrelated(t *testing.T) {
	// Strongly correlated samples: the naive error underestimates;
	// blocking must report a larger value.
	src := rng.New(6)
	xs := make([]float64, 4096)
	x := 0.0
	for i := range xs {
		x = 0.95*x + src.Float64() - 0.5
		xs[i] = x
	}
	naive := math.Sqrt(Variance(xs) / float64(len(xs)))
	blocked := BlockingError(xs)
	if blocked < 2*naive {
		t.Fatalf("correlated blocking error %v not above naive %v", blocked, naive)
	}
}

func TestBlockingErrorShort(t *testing.T) {
	if BlockingError([]float64{1, 2, 3}) != 0 {
		t.Fatal("short input should yield 0")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	src := rng.New(7)
	iid := make([]float64, 2048)
	for i := range iid {
		iid[i] = src.Float64()
	}
	essIID := EffectiveSampleSize(iid)
	if essIID < 1000 {
		t.Fatalf("iid ESS %v of 2048", essIID)
	}
	corr := make([]float64, 2048)
	x := 0.0
	for i := range corr {
		x = 0.9*x + src.Float64() - 0.5
		corr[i] = x
	}
	essCorr := EffectiveSampleSize(corr)
	if essCorr >= essIID/3 {
		t.Fatalf("correlated ESS %v not well below iid %v", essCorr, essIID)
	}
}
