package specfile

import (
	"strings"
	"testing"

	// The engine packages self-register their factories; the registry
	// is empty without them (production callers get them through the
	// parsurf facade).
	_ "parsurf/internal/ca"
	_ "parsurf/internal/core"
	_ "parsurf/internal/dmc"
	_ "parsurf/internal/parallel"
	_ "parsurf/internal/ziff"
)

func TestParseMinimalSpec(t *testing.T) {
	doc := `{
	  "model":   {"name": "zgb"},
	  "lattice": {"l0": 40, "l1": 40},
	  "engine":  {"name": "lpndca", "L": 10, "strategy": "rates", "partition": "vonneumann5"},
	  "seed":    42,
	  "init":    {"preset": "empty"}
	}`
	s, err := ParseBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine.Name != "lpndca" || s.Engine.L != 10 || s.Engine.Partition != "vonneumann5" {
		t.Errorf("engine decoded as %+v", s.Engine)
	}
	o := s.Engine.Options()
	if o.L != 10 || o.Strategy != "rates" || o.PartitionSpec != "vonneumann5" {
		t.Errorf("options %+v", o)
	}
	m, err := s.Model.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSpecies() != 3 {
		t.Errorf("zgb has %d species", m.NumSpecies())
	}
	// Marshal re-validates and renders stable JSON.
	if _, err := s.Marshal(); err != nil {
		t.Fatal(err)
	}
}

func TestModelPresetParams(t *testing.T) {
	defaults, ok := ModelParams("zgb")
	if !ok || defaults["kCO"] != 0.55 {
		t.Fatalf("zgb defaults %v", defaults)
	}
	m, err := BuildNamedModel("zgb", map[string]float64{"kCO": 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// The override lands in the CO-adsorption rate constant.
	found := false
	for i := range m.Types {
		if m.Types[i].Rate == 0.7 {
			found = true
		}
	}
	if !found {
		t.Error("kCO override not reflected in any reaction rate")
	}
	if _, err := BuildNamedModel("zgb", map[string]float64{"nope": 1}); err == nil ||
		!strings.Contains(err.Error(), "accepts:") {
		t.Errorf("unknown param error %v", err)
	}
	if _, err := BuildNamedModel("wrong", nil); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown preset error %v", err)
	}
	names := ModelNames()
	if len(names) != 4 {
		t.Errorf("model presets %v", names)
	}
}

func TestInlineModelTextRoundTrip(t *testing.T) {
	m, err := BuildNamedModel("ptco", nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := ModelText(m)
	if err != nil {
		t.Fatal(err)
	}
	ref := &ModelRef{Text: text}
	back, err := ref.Build()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSpecies() != m.NumSpecies() || len(back.Types) != len(m.Types) {
		t.Fatalf("text round trip: %d species / %d types, want %d / %d",
			back.NumSpecies(), len(back.Types), m.NumSpecies(), len(m.Types))
	}
	for i := range m.Types {
		if back.Types[i].Rate != m.Types[i].Rate {
			t.Errorf("type %d rate %v != %v after text round trip", i, back.Types[i].Rate, m.Types[i].Rate)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name, doc, substr string
	}{
		{"engine missing", `{}`, "unknown engine"},
		{"both model forms", `{"model": {"name": "zgb", "text": "species *"}, "engine": {"name": "rsm"}}`, "pick one"},
		{"params with text", `{"model": {"text": "species * A\nreaction hop 1 (0,0): A -> *", "params": {"x": 1}}, "engine": {"name": "rsm"}}`, "named model presets"},
		{"bad lattice", `{"model": {"name": "zgb"}, "lattice": {"l0": 0, "l1": 5}, "engine": {"name": "rsm"}}`, "positive"},
		{"typesplit arg", `{"model": {"name": "zgb"}, "engine": {"name": "typepart", "typesplit": "bydirection:3"}}`, "takes no argument"},
		{"modular arg", `{"model": {"name": "zgb"}, "engine": {"name": "pndca", "partition": "modular:x"}}`, "colour bound"},
	}
	for _, tc := range cases {
		_, err := ParseBytes([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}
