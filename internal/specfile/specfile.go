// Package specfile defines the serialized form of a session spec: a
// plain JSON document describing (model, lattice, engine, parameters,
// seed, initial condition) with no Go values in it, so a workload that
// ran yesterday is a file that reruns bit-identically today — locally
// through `surfsim -spec`, or over HTTP through cmd/surfd.
//
// Every reference in a spec is a registry name: engines come from
// internal/registry, partitions and type-splits from the named builders
// registered alongside them, initial conditions from
// internal/initpreset, and models either from the named presets of this
// package or inline in the internal/modelfile text format. Validation
// is registry-aware: an unknown name is reported together with the
// registered alternatives.
//
// A minimal spec:
//
//	{
//	  "model":   {"name": "zgb"},
//	  "lattice": {"l0": 100, "l1": 100},
//	  "engine":  {"name": "lpndca", "L": 100, "strategy": "rates", "partition": "vonneumann5"},
//	  "seed":    42,
//	  "init":    {"preset": "empty"}
//	}
package specfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"parsurf/internal/initpreset"
	"parsurf/internal/model"
	"parsurf/internal/modelfile"
	"parsurf/internal/registry"
)

// Spec is the serialized session description. The zero value of every
// optional field means "default" (100×100 lattice, seed 1, all-vacant
// initial configuration, engine-default options).
type Spec struct {
	// Model describes the reaction model. Required for every engine
	// except the model-free ones (ziff), and rejected for those.
	Model *ModelRef `json:"model,omitempty"`
	// Lattice is the periodic lattice extent (default 100×100).
	Lattice *Extents `json:"lattice,omitempty"`
	// Engine selects the engine by registry name, with its options.
	Engine EngineRef `json:"engine"`
	// Seed is the deterministic base seed (default 1).
	Seed *uint64 `json:"seed,omitempty"`
	// Init names the initial-configuration preset (default: all sites
	// vacant).
	Init *InitRef `json:"init,omitempty"`
}

// ModelRef references a reaction model: either a named preset with
// parameters, or an inline definition in the modelfile text format.
// Exactly one of Name and Text must be set.
type ModelRef struct {
	// Name is a model preset ("zgb", "ptco", "diffusion", "ising").
	Name string `json:"name,omitempty"`
	// Params override the preset's default parameters, keyed by the
	// parameter names ModelParams lists. Only valid with Name.
	Params map[string]float64 `json:"params,omitempty"`
	// Text is an inline model definition in the internal/modelfile
	// format (the same text `surfsim -modelfile` reads).
	Text string `json:"text,omitempty"`
}

// Extents is a lattice size.
type Extents struct {
	L0 int `json:"l0"`
	L1 int `json:"l1"`
}

// EngineRef selects an engine and carries its options as plain data —
// the serialized mirror of registry.Options.
type EngineRef struct {
	// Name is the engine's registry name ("rsm", "lpndca", …).
	Name string `json:"name"`
	// L is the L-PNDCA trials per chunk selection (0 = engine default).
	L int `json:"L,omitempty"`
	// Strategy is the L-PNDCA chunk-selection rule by CLI name.
	Strategy string `json:"strategy,omitempty"`
	// Partition names a partition builder ("vonneumann5", "modular:16").
	Partition string `json:"partition,omitempty"`
	// TypeSplit names a type-split builder ("bydirection").
	TypeSplit string `json:"typesplit,omitempty"`
	// Workers is the sweep-goroutine / strip count.
	Workers int `json:"workers,omitempty"`
	// Y is the ZGB CO impingement fraction (nil = engine default; a
	// pointer because y = 0 is a valid, if degenerate, fraction).
	Y *float64 `json:"y,omitempty"`
	// BlockW, BlockH are the BCA block dimensions.
	BlockW int `json:"blockW,omitempty"`
	BlockH int `json:"blockH,omitempty"`
	// DeterministicTime replaces exponential clock increments with
	// their mean.
	DeterministicTime bool `json:"deterministicTime,omitempty"`
}

// InitRef names an initial-configuration preset with its parameters.
type InitRef struct {
	// Preset is the initpreset registry name ("empty", "random", …).
	Preset string `json:"preset"`
	// Fractions are the per-species weights of "random".
	Fractions []float64 `json:"fractions,omitempty"`
	// Species are the explicit species values of "fill"/"checkerboard".
	Species []int `json:"species,omitempty"`
}

// Params converts the reference to initpreset parameters.
func (in *InitRef) Params() initpreset.Params {
	return initpreset.Params{Fractions: in.Fractions, Species: in.Species}
}

// Options converts the engine reference to registry options.
func (e *EngineRef) Options() registry.Options {
	o := registry.Options{
		L:                 e.L,
		Strategy:          e.Strategy,
		PartitionSpec:     e.Partition,
		TypeSplitSpec:     e.TypeSplit,
		Workers:           e.Workers,
		BlockW:            e.BlockW,
		BlockH:            e.BlockH,
		DeterministicTime: e.DeterministicTime,
	}
	if e.Y != nil {
		o.Y, o.HasY = *e.Y, true
	}
	return o
}

// Parse reads and validates a spec document. Unknown JSON fields are
// rejected, so a typo'd option never yields a plausible-looking run.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("specfile: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseBytes is Parse over a byte slice.
func ParseBytes(data []byte) (*Spec, error) {
	return Parse(bytes.NewReader(data))
}

// Marshal renders the spec as indented JSON after validating it.
func (s *Spec) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks every name in the spec against its registry and every
// parameter against what the named thing accepts.
func (s *Spec) Validate() error {
	eng, ok := registry.Lookup(s.Engine.Name)
	if !ok {
		return fmt.Errorf("specfile: unknown engine %q (registered: %s)",
			s.Engine.Name, strings.Join(registry.Names(), ", "))
	}
	if err := registry.CheckOptions(eng.Name, s.Engine.Options()); err != nil {
		return fmt.Errorf("specfile: %w", err)
	}
	if s.Engine.Partition != "" {
		if err := registry.ValidatePartitionSpec(s.Engine.Partition); err != nil {
			return fmt.Errorf("specfile: %w", err)
		}
	}
	if s.Engine.TypeSplit != "" {
		if err := registry.ValidateTypeSplitSpec(s.Engine.TypeSplit); err != nil {
			return fmt.Errorf("specfile: %w", err)
		}
	}
	if s.Lattice != nil && (s.Lattice.L0 < 1 || s.Lattice.L1 < 1) {
		return fmt.Errorf("specfile: lattice extents must be positive, got %dx%d", s.Lattice.L0, s.Lattice.L1)
	}
	switch {
	case eng.ModelFree && s.Model != nil:
		return fmt.Errorf("specfile: engine %q is model-free; remove the model section", eng.Name)
	case !eng.ModelFree && s.Model == nil:
		return fmt.Errorf("specfile: engine %q needs a model (presets: %s; or inline text)",
			eng.Name, strings.Join(ModelNames(), ", "))
	}
	if s.Model != nil {
		if err := s.Model.check(); err != nil {
			return err
		}
	}
	if s.Init != nil {
		if _, err := initpreset.Build(s.Init.Preset, s.Init.Params()); err != nil {
			return fmt.Errorf("specfile: %w", err)
		}
	}
	return nil
}

// check validates the reference's structure — exactly one of
// name/text, known preset, known parameter keys — without constructing
// the model. Inline text is only parsed by Build, so callers that
// validate then build (the session decode path) parse it once.
func (m *ModelRef) check() error {
	switch {
	case m.Name != "" && m.Text != "":
		return fmt.Errorf("specfile: model has both a preset name and inline text; pick one")
	case m.Name != "":
		preset, ok := modelPresets[m.Name]
		if !ok {
			return fmt.Errorf("specfile: unknown model preset %q (registered: %s)",
				m.Name, strings.Join(ModelNames(), ", "))
		}
		for k := range m.Params {
			if _, known := preset.defaults[k]; !known {
				return fmt.Errorf("specfile: model preset %q has no parameter %q (accepts: %s)",
					m.Name, k, strings.Join(presetParamNames(preset), ", "))
			}
		}
		return nil
	case m.Text != "":
		if len(m.Params) > 0 {
			return fmt.Errorf("specfile: params only apply to named model presets; bake rates into the inline text")
		}
		return nil
	default:
		return fmt.Errorf("specfile: model needs a preset name (%s) or inline text",
			strings.Join(ModelNames(), ", "))
	}
}

// Build constructs the referenced model.
func (m *ModelRef) Build() (*model.Model, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if m.Text != "" {
		mdl, err := modelfile.Parse(strings.NewReader(m.Text))
		if err != nil {
			return nil, fmt.Errorf("specfile: inline model: %w", err)
		}
		return mdl, nil
	}
	return BuildNamedModel(m.Name, m.Params)
}

// modelPreset is one named model family: defaults plus a builder over a
// resolved parameter map.
type modelPreset struct {
	doc      string
	defaults map[string]float64
	build    func(p map[string]float64) *model.Model
}

// modelPresets maps preset names to their parameterised builders. The
// parameter keys are the exported rate-struct fields in lowerCamelCase.
var modelPresets = map[string]modelPreset{
	"zgb": {
		doc: "Ziff–Gulari–Barshad CO oxidation, Table I",
		defaults: func() map[string]float64 {
			r := model.DefaultZGBRates()
			return map[string]float64{"kCO": r.KCO, "kO2": r.KO2, "kCO2": r.KCO2}
		}(),
		build: func(p map[string]float64) *model.Model {
			return model.NewZGB(model.ZGBRates{KCO: p["kCO"], KO2: p["kO2"], KCO2: p["kCO2"]})
		},
	},
	"ptco": {
		doc: "Pt(100) CO oxidation with surface reconstruction (§6)",
		defaults: func() map[string]float64 {
			r := model.DefaultPtCORates()
			return map[string]float64{
				"yCO": r.YCO, "yO2": r.YO2, "kDes": r.KDes, "kDiff": r.KDiff, "kRx": r.KRx,
				"vLift": r.VLift, "vRelax": r.VRelax, "vNucLift": r.VNucLift, "vNucRelax": r.VNucRelax,
			}
		}(),
		build: func(p map[string]float64) *model.Model {
			return model.NewPtCO(model.PtCORates{
				YCO: p["yCO"], YO2: p["yO2"], KDes: p["kDes"], KDiff: p["kDiff"], KRx: p["kRx"],
				VLift: p["vLift"], VRelax: p["vRelax"], VNucLift: p["vNucLift"], VNucRelax: p["vNucRelax"],
			})
		},
	},
	"diffusion": {
		doc:      "single-species hop model of Fig. 2",
		defaults: map[string]float64{"hop": 1},
		build: func(p map[string]float64) *model.Model {
			return model.NewDimerDiffusion(p["hop"])
		},
	},
	"ising": {
		doc:      "Metropolis spin-flip Ising model",
		defaults: map[string]float64{"betaJ": 0.4},
		build: func(p map[string]float64) *model.Model {
			return model.NewIsing(p["betaJ"])
		},
	},
}

// ModelNames returns the model preset names, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(modelPresets))
	for name := range modelPresets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelParams returns the parameter names and default values of a
// preset, for listings and error messages.
func ModelParams(name string) (map[string]float64, bool) {
	p, ok := modelPresets[name]
	if !ok {
		return nil, false
	}
	out := make(map[string]float64, len(p.defaults))
	for k, v := range p.defaults {
		out[k] = v
	}
	return out, true
}

// BuildNamedModel constructs a model preset with the given parameter
// overrides. Unknown parameter keys are rejected with the accepted set.
func BuildNamedModel(name string, params map[string]float64) (*model.Model, error) {
	preset, ok := modelPresets[name]
	if !ok {
		return nil, fmt.Errorf("specfile: unknown model preset %q (registered: %s)",
			name, strings.Join(ModelNames(), ", "))
	}
	resolved := make(map[string]float64, len(preset.defaults))
	for k, v := range preset.defaults {
		resolved[k] = v
	}
	for k, v := range params {
		if _, known := preset.defaults[k]; !known {
			return nil, fmt.Errorf("specfile: model preset %q has no parameter %q (accepts: %s)",
				name, k, strings.Join(presetParamNames(preset), ", "))
		}
		resolved[k] = v
	}
	return preset.build(resolved), nil
}

// presetParamNames lists a preset's parameter keys, sorted.
func presetParamNames(p modelPreset) []string {
	keys := make([]string, 0, len(p.defaults))
	for k := range p.defaults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ModelText renders a model in the inline text form ModelRef accepts —
// the canonical serialization for models built programmatically rather
// than from a preset.
func ModelText(m *model.Model) (string, error) {
	var buf bytes.Buffer
	if err := modelfile.Format(&buf, m); err != nil {
		return "", err
	}
	return buf.String(), nil
}
