package specfile

import (
	"bytes"
	"testing"
)

// FuzzParseSpec: Parse must never panic on arbitrary bytes, and every
// spec it accepts must survive the Marshal → Parse round trip with a
// stable canonical form (the job layer hashes that form for the result
// cache, so instability would split cache entries).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{
		  "model":   {"name": "zgb"},
		  "lattice": {"l0": 40, "l1": 40},
		  "engine":  {"name": "lpndca", "L": 10, "strategy": "rates", "partition": "vonneumann5"},
		  "seed":    42,
		  "init":    {"preset": "empty"}
		}`,
		`{"model": {"name": "zgb"}, "engine": {"name": "rsm"}}`,
		`{"model": {"text": "species * A\nreaction ads 1 (0,0): * -> A"}, "engine": {"name": "vssm"}}`,
		`{"engine": {"name": "nope"}}`,
		`{}`,
		`not json`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseBytes(data)
		if err != nil {
			if s != nil {
				t.Fatal("ParseBytes returned a spec alongside an error")
			}
			return
		}
		canon, err := s.Marshal()
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		s2, err := ParseBytes(canon)
		if err != nil {
			t.Fatalf("canonical form fails to re-parse: %v\n%s", err, canon)
		}
		canon2, err := s2.Marshal()
		if err != nil {
			t.Fatalf("re-parsed spec fails to marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form unstable:\n first  %s\n second %s", canon, canon2)
		}
	})
}
