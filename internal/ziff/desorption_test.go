package ziff

import (
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

func TestDesorptionValidates(t *testing.T) {
	lat := lattice.NewSquare(8)
	defer func() {
		if recover() == nil {
			t.Fatal("pdes > 1 accepted")
		}
	}()
	NewWithDesorption(lat, rng.New(1), 0.5, 1.5)
}

func TestDesorptionRemovesCOPoisoning(t *testing.T) {
	// Plain ZGB at y=0.7 CO-poisons; with desorption vacancies keep
	// appearing and CO2 keeps being produced.
	lat := lattice.NewSquare(16)
	plain := New(lat, rng.New(2), 0.7)
	for i := 0; i < 400; i++ {
		plain.Step()
	}
	if !plain.Poisoned() {
		t.Fatal("plain ZGB did not poison at y=0.7 (precondition)")
	}

	lat2 := lattice.NewSquare(16)
	des := NewWithDesorption(lat2, rng.New(2), 0.7, 0.05)
	for i := 0; i < 400; i++ {
		des.Step()
	}
	if des.Poisoned() {
		t.Fatal("desorbing system reached full coverage permanently")
	}
	before := des.CO2Count()
	for i := 0; i < 50; i++ {
		des.Step()
	}
	if des.CO2Count() == before {
		t.Fatal("no CO2 production with desorption at y=0.7")
	}
}

func TestDesorptionZeroMatchesPlain(t *testing.T) {
	// pdes=0 must reproduce the plain dynamics draw for draw.
	latA := lattice.NewSquare(12)
	a := New(latA, rng.New(3), 0.5)
	latB := lattice.NewSquare(12)
	b := NewWithDesorption(latB, rng.New(3), 0.5, 0)
	for i := 0; i < 20; i++ {
		a.Step()
		b.Step()
	}
	if !a.Config().Equal(b.Config()) {
		t.Fatal("pdes=0 diverged from plain ZGB")
	}
}

func TestHysteresisScan(t *testing.T) {
	if testing.Short() {
		t.Skip("hysteresis scan is slow")
	}
	ys := []float64{0.48, 0.51, 0.54, 0.57}
	up, down := HysteresisScan(24, ys, 0.01, 150, 50, 4)
	if len(up) != len(ys) || len(down) != len(ys) {
		t.Fatalf("branch lengths %d/%d", len(up), len(down))
	}
	// The down branch is in reversed y order.
	if down[0].Y != ys[len(ys)-1] || down[len(down)-1].Y != ys[0] {
		t.Fatalf("down branch order: %v", down)
	}
	// The up branch starts reactive and ends CO-rich.
	if up[0].CoCO > 0.5 {
		t.Fatalf("up branch CO at y=%.2f is %v", up[0].Y, up[0].CoCO)
	}
	if up[len(up)-1].CoCO < 0.5 {
		t.Fatalf("up branch not CO-rich at y=%.2f: %v", ys[len(ys)-1], up[len(up)-1].CoCO)
	}
	// First-order hysteresis: with weak desorption the down branch stays
	// in the metastable CO-rich state at intermediate y, so its CO
	// coverage dominates the up branch's there.
	hysteretic := false
	for i, p := range down {
		upAtY := up[len(up)-1-i]
		if p.Y != upAtY.Y {
			t.Fatalf("branch y mismatch: %v vs %v", p.Y, upAtY.Y)
		}
		if p.CoCO > upAtY.CoCO+0.2 {
			hysteretic = true
		}
		if p.CoCO < upAtY.CoCO-0.2 {
			t.Fatalf("down branch below up branch at y=%.2f: %v vs %v", p.Y, p.CoCO, upAtY.CoCO)
		}
	}
	if !hysteretic {
		t.Fatal("no hysteresis gap between the branches")
	}
}

func TestStrongDesorptionClosesHysteresis(t *testing.T) {
	if testing.Short() {
		t.Skip("hysteresis scan is slow")
	}
	// With strong desorption the CO-rich state is not metastable: the
	// branches coincide within noise.
	ys := []float64{0.48, 0.52, 0.56}
	up, down := HysteresisScan(24, ys, 0.1, 200, 60, 5)
	for i, p := range down {
		upAtY := up[len(up)-1-i]
		diff := p.CoCO - upAtY.CoCO
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.25 {
			t.Fatalf("strong desorption left a hysteresis gap at y=%.2f: %v vs %v",
				p.Y, p.CoCO, upAtY.CoCO)
		}
	}
}

// Only CO desorbs, so an O-poisoned surface is absorbing even with
// desorption enabled, while a CO-covered one is not; with PDes = 0 any
// covered surface is absorbing (the classic rule).
func TestDesorptionAbsorbingStates(t *testing.T) {
	mk := func(pdes float64, sp lattice.Species) *WithDesorption {
		z := NewWithDesorption(lattice.NewSquare(8), rng.New(3), 0.5, pdes)
		z.Config().Fill(sp)
		z.ResyncVacancies()
		return z
	}
	if mk(0.05, O).Step() {
		t.Fatal("O-poisoned surface stepped despite nothing being able to desorb")
	}
	if !mk(0.05, CO).Step() {
		t.Fatal("CO-covered surface with desorption reported absorbing")
	}
	if mk(0, CO).Step() {
		t.Fatal("covered surface with PDes=0 is absorbing but Step reported true")
	}
}
