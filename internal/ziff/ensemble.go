package ziff

import "parsurf/internal/stats"

// ReplicaLedger is one ensemble replica's CO2 bookkeeping: the
// cumulative count at the equilibration boundary and at the horizon,
// plus whether the replica froze in a poisoned state. Callers fill one
// ledger per replica from a per-grid-point observer (each slot written
// only by its own replica's goroutine).
type ReplicaLedger struct {
	CO2Equil, CO2End uint64
	Poisoned         bool
}

// Record samples the ledger from a live simulation at grid time t: the
// CO2 count keeps updating CO2Equil while t is still inside the
// equilibration window, and the latest count and poisoning flag always
// land in CO2End/Poisoned. Both ensemble sweep binaries call this from
// their per-replica observers, so the window-boundary rule lives in
// exactly one place.
func (led *ReplicaLedger) Record(z *ZGB, t float64, equil int) {
	if t <= float64(equil) {
		led.CO2Equil = z.CO2Count()
	}
	led.CO2End = z.CO2Count()
	led.Poisoned = z.Poisoned()
}

// WindowMean time-averages a grid series over the measurement window
// (equil, horizon] — the same window Record's equilibration boundary
// defines. Zero for a series with no samples past the boundary.
func WindowMean(s *stats.Series, equil int) float64 {
	sum, n := 0.0, 0
	for k, t := range s.T {
		if t <= float64(equil) {
			continue
		}
		sum += s.X[k]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EnsemblePoint reduces one ensemble's merged mean coverage series
// (indexed by the package species constants, on a shared time grid)
// and its per-replica CO2 ledgers to a phase-diagram point: coverages
// are time-averaged over the measurement window (equil, horizon], the
// CO2 rate is the window production per site per MCS averaged across
// replicas, and the point counts as poisoned when at least half the
// replicas froze. Shared by cmd/experiments and the phase-diagram
// example so the window and rate conventions cannot drift apart.
func EnsemblePoint(y float64, mean []*stats.Series, equil, measure int, sites float64, ledgers []ReplicaLedger) PhasePoint {
	pt := PhasePoint{
		Y:       y,
		CoEmpty: WindowMean(mean[Empty], equil),
		CoCO:    WindowMean(mean[CO], equil),
		CoO:     WindowMean(mean[O], equil),
	}
	produced, poisoned := 0.0, 0
	for _, led := range ledgers {
		produced += float64(led.CO2End - led.CO2Equil)
		if led.Poisoned {
			poisoned++
		}
	}
	if n := len(ledgers); n > 0 {
		pt.Rate = produced / float64(n) / float64(measure) / sites
		pt.Poisoned = 2*poisoned >= n
	}
	return pt
}
