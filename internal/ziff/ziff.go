// Package ziff implements the original Ziff–Gulari–Barshad surface
// reaction model (Phys. Rev. Lett. 56, 2553, cited as the paper's
// example system) in its classic adsorption-limited form: CO and O2
// impinge with probabilities y and 1−y, adsorb on vacant sites, and
// adsorbed CO and O on adjacent sites react *instantaneously* to CO2.
//
// This is the infinite-reaction-rate limit of the finite-rate model in
// internal/model; it is the standard formulation whose kinetic phase
// diagram has an O-poisoned phase below y1 ≈ 0.39, a reactive window,
// and a CO-poisoned phase above y2 ≈ 0.525 (first-order transition).
// The package provides the sweep the paper's introduction refers to
// ("experimental data for the simulation of Ziff model").
package ziff

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

// Species on the ZGB lattice.
const (
	Empty lattice.Species = 0
	CO    lattice.Species = 1
	O     lattice.Species = 2
)

// ZGB is the classic adsorption-limited simulation.
type ZGB struct {
	lat   *lattice.Lattice
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source

	// Y is the CO fraction of the impinging gas.
	Y float64

	// vac is a bitset of vacant sites and nEmpty its population count,
	// maintained incrementally by every site write so Poisoned is O(1)
	// instead of a full lattice scan per MC step. nCO counts adsorbed
	// CO the same way (the desorption extension's absorbing check).
	vac    []uint64
	nEmpty int
	nCO    int

	steps  uint64
	trials uint64
	co2    uint64
	nbOff  []lattice.Vec
}

// New returns a ZGB simulation with CO fraction y on an empty lattice.
func New(lat *lattice.Lattice, src *rng.Source, y float64) *ZGB {
	return NewOn(lattice.NewConfig(lat), src, y)
}

// NewOn returns a ZGB simulation with CO fraction y operating on cfg in
// place (the classic dynamics start from an empty surface; a pre-seeded
// cfg is accepted as-is).
func NewOn(cfg *lattice.Config, src *rng.Source, y float64) *ZGB {
	if y < 0 || y > 1 {
		panic(fmt.Sprintf("ziff: CO fraction %v outside [0,1]", y))
	}
	z := &ZGB{
		lat:   cfg.Lattice(),
		cfg:   cfg,
		cells: cfg.Cells(),
		src:   src,
		Y:     y,
		nbOff: lattice.Axes4(),
	}
	z.ResyncVacancies()
	return z
}

// Reset rewinds the simulation over a fresh configuration (see
// registry.Engine.Reset): counters return to zero, the vacancy bitset
// and occupancy counts are re-derived from cfg in place, and all
// randomness redirects to src. The CO fraction Y (and, for the
// desorption extension, PDes) is preserved. It panics when cfg's
// lattice shape differs from the engine's.
func (z *ZGB) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(z.lat) {
		panic("ziff: Reset configuration lattice differs from engine lattice")
	}
	z.lat = cfg.Lattice()
	z.cfg, z.cells, z.src = cfg, cfg.Cells(), src
	z.steps, z.trials, z.co2 = 0, 0, 0
	z.ResyncVacancies()
}

// ResyncVacancies rebuilds the vacancy bitset and count from the
// configuration. The constructor calls it once; callers that mutate the
// configuration directly (through Config().Set rather than the
// simulation's own dynamics) must call it again before using Poisoned,
// VacantCount or Step.
func (z *ZGB) ResyncVacancies() {
	n := z.lat.N()
	if z.vac == nil {
		z.vac = make([]uint64, (n+63)/64)
	} else {
		for i := range z.vac {
			z.vac[i] = 0
		}
	}
	z.nEmpty, z.nCO = 0, 0
	for s, sp := range z.cells {
		switch sp {
		case Empty:
			z.vac[uint(s)>>6] |= 1 << (uint(s) & 63)
			z.nEmpty++
		case CO:
			z.nCO++
		}
	}
}

// set writes species sp at site s, keeping the vacancy bitset and count
// in sync. All simulation writes go through here.
func (z *ZGB) set(s int, sp lattice.Species) {
	old := z.cells[s]
	if (old == Empty) != (sp == Empty) {
		z.vac[uint(s)>>6] ^= 1 << (uint(s) & 63)
		if sp == Empty {
			z.nEmpty++
		} else {
			z.nEmpty--
		}
	}
	if (old == CO) != (sp == CO) {
		if sp == CO {
			z.nCO++
		} else {
			z.nCO--
		}
	}
	z.cells[s] = sp
}

// Config returns the live configuration.
func (z *ZGB) Config() *lattice.Config { return z.cfg }

// Time returns the elapsed Monte Carlo steps (trials/N).
func (z *ZGB) Time() float64 { return float64(z.trials) / float64(z.lat.N()) }

// CO2Count returns the number of CO2 molecules produced.
func (z *ZGB) CO2Count() uint64 { return z.co2 }

// reactWithNeighbour looks for partner species around site s; if any
// neighbour holds it, one is chosen uniformly and both sites are
// vacated. Reports whether a reaction fired.
func (z *ZGB) reactWithNeighbour(s int, partner lattice.Species) bool {
	var candidates [4]int
	n := 0
	for _, d := range z.nbOff {
		t := z.lat.Translate(s, d)
		if z.cells[t] == partner {
			candidates[n] = t
			n++
		}
	}
	if n == 0 {
		return false
	}
	t := candidates[z.src.Intn(n)]
	z.set(s, Empty)
	z.set(t, Empty)
	z.co2++
	return true
}

// Trial performs one ZGB trial.
func (z *ZGB) Trial() {
	z.trials++
	s := z.src.Intn(z.lat.N())
	if z.src.Float64() < z.Y {
		// CO impingement.
		if z.cells[s] != Empty {
			return
		}
		z.set(s, CO)
		z.reactWithNeighbour(s, O)
		return
	}
	// O2 impingement onto s and a random neighbour.
	t := z.lat.Translate(s, z.nbOff[z.src.Intn(4)])
	if z.cells[s] != Empty || z.cells[t] != Empty {
		return
	}
	z.set(s, O)
	z.set(t, O)
	// Each nascent O scans for CO; order randomised to avoid bias.
	first, second := s, t
	if z.src.Bernoulli(0.5) {
		first, second = t, s
	}
	z.reactWithNeighbour(first, CO)
	if z.cells[second] == O {
		z.reactWithNeighbour(second, CO)
	}
}

// Step performs one MC step (N trials). It reports false from the
// poisoned absorbing state (no vacancies: nothing can adsorb, so the
// classic dynamics cannot evolve further), leaving the state and the
// random stream untouched, per the Simulator/Engine contract.
//
//surflint:hotpath
func (z *ZGB) Step() bool {
	if z.nEmpty == 0 {
		return false
	}
	for i := 0; i < z.lat.N(); i++ {
		z.Trial()
	}
	z.steps++
	return true
}

// Poisoned reports whether the lattice is fully covered and inert:
// no vacancies and no adjacent CO/O pair (with instantaneous reaction,
// full coverage by a single species). O(1): the vacancy count is
// maintained incrementally by every site write.
func (z *ZGB) Poisoned() bool {
	return z.nEmpty == 0
}

// VacantCount returns the number of vacant sites, O(1).
func (z *ZGB) VacantCount() int { return z.nEmpty }

// PhasePoint is one measured point of the phase diagram.
type PhasePoint struct {
	Y        float64
	CoCO     float64 // CO coverage
	CoO      float64 // O coverage
	CoEmpty  float64 // vacancy fraction
	Rate     float64 // CO2 production per site per MCS over the window
	Poisoned bool
}

// Measure runs a fresh simulation at CO fraction y: equil MC steps of
// relaxation, then measure MC steps of averaging. It stops early when
// the lattice poisons.
func Measure(l int, y float64, equil, measure int, seed uint64) PhasePoint {
	lat := lattice.NewSquare(l)
	z := New(lat, rng.New(seed), y)
	for i := 0; i < equil && !z.Poisoned(); i++ {
		z.Step()
	}
	var sumCO, sumO, sumE float64
	co2Before := z.CO2Count()
	steps := 0
	for i := 0; i < measure; i++ {
		z.Step()
		steps++
		sumCO += z.cfg.Coverage(CO)
		sumO += z.cfg.Coverage(O)
		sumE += z.cfg.Coverage(Empty)
		if z.Poisoned() {
			break
		}
	}
	pt := PhasePoint{Y: y, Poisoned: z.Poisoned()}
	if steps > 0 {
		pt.CoCO = sumCO / float64(steps)
		pt.CoO = sumO / float64(steps)
		pt.CoEmpty = sumE / float64(steps)
		pt.Rate = float64(z.CO2Count()-co2Before) / float64(steps) / float64(lat.N())
	} else {
		pt.CoCO = z.cfg.Coverage(CO)
		pt.CoO = z.cfg.Coverage(O)
		pt.CoEmpty = z.cfg.Coverage(Empty)
	}
	return pt
}

// Sweep measures the phase diagram at each CO fraction in ys, one
// sequential single-replica run per point. It is the minimal reference
// implementation (and the cross-check its tests pin down); production
// sweeps run ensembles through parsurf.RunSweep and reduce them with
// EnsemblePoint.
func Sweep(l int, ys []float64, equil, measure int, seed uint64) []PhasePoint {
	out := make([]PhasePoint, len(ys))
	for i, y := range ys {
		out[i] = Measure(l, y, equil, measure, seed+uint64(i))
	}
	return out
}

// Transitions estimates the kinetic phase transition points from a
// sweep ordered by increasing y: y1 is the midpoint between the last
// O-poisoned point (O coverage > 0.99) and the first reactive point;
// y2 the midpoint between the last reactive point and the first
// CO-poisoned one (CO coverage > 0.99). Returns NaN-free values only
// when both phases appear in the sweep; ok reports that.
func Transitions(points []PhasePoint) (y1, y2 float64, ok bool) {
	lastO, firstReactive := -1, -1
	lastReactive, firstCO := -1, -1
	for i, p := range points {
		switch {
		case p.CoO > 0.99:
			lastO = i
		case p.CoCO > 0.99:
			if firstCO == -1 {
				firstCO = i
			}
		default:
			if firstReactive == -1 {
				firstReactive = i
			}
			lastReactive = i
		}
	}
	if lastO == -1 || firstReactive == -1 || lastReactive == -1 || firstCO == -1 {
		return 0, 0, false
	}
	y1 = (points[lastO].Y + points[firstReactive].Y) / 2
	y2 = (points[lastReactive].Y + points[firstCO].Y) / 2
	return y1, y2, true
}
