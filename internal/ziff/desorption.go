package ziff

import (
	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

// WithDesorption extends the classic ZGB dynamics with CO desorption:
// each trial is, with probability pdes, a desorption attempt at the
// selected site (an adsorbed CO leaves) instead of an impingement. A
// non-zero desorption rate removes the CO-poisoned absorbing state and
// turns the first-order transition at y2 into a smooth crossover — the
// standard ZGB-with-desorption extension, implemented here for the
// hysteresis study.
type WithDesorption struct {
	*ZGB
	PDes float64
}

// NewWithDesorption returns the extended simulation.
func NewWithDesorption(lat *lattice.Lattice, src *rng.Source, y, pdes float64) *WithDesorption {
	if pdes < 0 || pdes > 1 {
		panic("ziff: desorption probability outside [0,1]")
	}
	return &WithDesorption{ZGB: New(lat, src, y), PDes: pdes}
}

// Trial performs one trial of the extended dynamics.
func (z *WithDesorption) Trial() {
	if z.PDes > 0 && z.src.Float64() < z.PDes {
		z.trials++
		s := z.src.Intn(z.lat.N())
		if z.cells[s] == CO {
			z.set(s, Empty)
		}
		return
	}
	z.ZGB.Trial()
}

// Step performs one MC step (N trials). The absorbing condition is
// narrower than the classic model's: a covered lattice can still evolve
// as long as some CO can desorb, so Step reports false only with no
// vacancies AND no desorbable CO (an O-poisoned surface, or any covered
// surface when PDes is zero).
//
//surflint:hotpath
func (z *WithDesorption) Step() bool {
	if z.nEmpty == 0 && (z.PDes == 0 || z.nCO == 0) {
		return false
	}
	for i := 0; i < z.lat.N(); i++ {
		z.Trial()
	}
	z.steps++
	return true
}

// HysteresisScan ramps the CO fraction up through ys and back down,
// carrying the lattice state across points (no re-initialisation), with
// a fixed number of MC steps of relaxation and measurement per point.
// Near a first-order transition the up and down branches separate; with
// sufficient desorption they coincide. Returns the two branches in scan
// order (down is reversed ys).
func HysteresisScan(l int, ys []float64, pdes float64, relax, measure int, seed uint64) (up, down []PhasePoint) {
	lat := lattice.NewSquare(l)
	z := NewWithDesorption(lat, rng.New(seed), ys[0], pdes)

	scan := func(sequence []float64) []PhasePoint {
		out := make([]PhasePoint, 0, len(sequence))
		for _, y := range sequence {
			z.Y = y
			for i := 0; i < relax; i++ {
				z.Step()
			}
			var sumCO, sumO, sumE float64
			before := z.CO2Count()
			for i := 0; i < measure; i++ {
				z.Step()
				sumCO += z.cfg.Coverage(CO)
				sumO += z.cfg.Coverage(O)
				sumE += z.cfg.Coverage(Empty)
			}
			out = append(out, PhasePoint{
				Y:        y,
				CoCO:     sumCO / float64(measure),
				CoO:      sumO / float64(measure),
				CoEmpty:  sumE / float64(measure),
				Rate:     float64(z.CO2Count()-before) / float64(measure) / float64(lat.N()),
				Poisoned: z.Poisoned(),
			})
		}
		return out
	}

	up = scan(ys)
	rev := make([]float64, len(ys))
	for i, y := range ys {
		rev[len(ys)-1-i] = y
	}
	down = scan(rev)
	return up, down
}
