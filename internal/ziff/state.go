// Engine checkpoint payload (registry.Engine.SaveState/LoadState) for
// the classic ZGB model. The desorption extension embeds *ZGB and
// inherits both methods; its only extra field (PDes) is configuration,
// not evolution state.

package ziff

import (
	"io"

	"parsurf/internal/persist"
)

// SaveState writes the ZGB counters. The clock is trials/N, and the
// vacancy bitset and occupancy counts are pure functions of the cells,
// re-derived by Reset before LoadState runs.
func (z *ZGB) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.U64(z.steps)
	e.U64(z.trials)
	e.U64(z.co2)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (z *ZGB) LoadState(rd io.Reader) error {
	d := persist.NewReader(rd)
	z.steps = d.U64()
	z.trials = d.U64()
	z.co2 = d.U64()
	return d.Err()
}
