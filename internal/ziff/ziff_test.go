package ziff

import (
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
	"parsurf/internal/stats"
)

func TestNewValidatesY(t *testing.T) {
	lat := lattice.NewSquare(8)
	for _, y := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("y=%v accepted", y)
				}
			}()
			New(lat, rng.New(1), y)
		}()
	}
}

func TestInstantaneousReaction(t *testing.T) {
	// Adjacent CO and O can never coexist after a trial completes.
	lat := lattice.NewSquare(16)
	z := New(lat, rng.New(2), 0.5)
	for step := 0; step < 50; step++ {
		z.Step()
		cfg := z.Config()
		for s := 0; s < lat.N(); s++ {
			if cfg.Get(s) != CO {
				continue
			}
			for _, d := range lattice.Axes4() {
				if cfg.Get(lat.Translate(s, d)) == O {
					t.Fatalf("adjacent CO/O pair survived at step %d", step)
				}
			}
		}
	}
}

func TestOPoisoningAtLowY(t *testing.T) {
	pt := Measure(16, 0.2, 300, 50, 3)
	if !pt.Poisoned || pt.CoO < 0.99 {
		t.Fatalf("y=0.2 should O-poison: %+v", pt)
	}
}

func TestCOPoisoningAtHighY(t *testing.T) {
	pt := Measure(16, 0.7, 300, 50, 4)
	if !pt.Poisoned || pt.CoCO < 0.99 {
		t.Fatalf("y=0.7 should CO-poison: %+v", pt)
	}
}

func TestReactiveWindow(t *testing.T) {
	pt := Measure(32, 0.46, 200, 100, 5)
	if pt.Poisoned {
		t.Fatalf("y=0.46 poisoned: %+v", pt)
	}
	if pt.Rate <= 0 {
		t.Fatalf("no CO2 production in the reactive window: %+v", pt)
	}
	if pt.CoEmpty <= 0 {
		t.Fatalf("no vacancies in the reactive window: %+v", pt)
	}
}

func TestCO2Production(t *testing.T) {
	lat := lattice.NewSquare(16)
	z := New(lat, rng.New(6), 0.5)
	for i := 0; i < 20; i++ {
		z.Step()
	}
	if z.CO2Count() == 0 {
		t.Fatal("no CO2 produced at y=0.5")
	}
	if z.Time() != 20 {
		t.Fatalf("Time = %v", z.Time())
	}
}

func TestSweepAndTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("phase sweep is slow")
	}
	ys := []float64{0.30, 0.36, 0.45, 0.50, 0.56, 0.62}
	points := Sweep(24, ys, 250, 60, 7)
	y1, y2, ok := Transitions(points)
	if !ok {
		t.Fatalf("transitions not found: %+v", points)
	}
	// Paper values: y1 ≈ 0.39, y2 ≈ 0.525. The coarse grid and small
	// lattice give wide brackets; require the right ordering and rough
	// location.
	if y1 < 0.30 || y1 > 0.47 {
		t.Fatalf("y1 = %v, want ~0.39", y1)
	}
	if y2 < 0.47 || y2 > 0.62 {
		t.Fatalf("y2 = %v, want ~0.525", y2)
	}
	if y1 >= y2 {
		t.Fatalf("y1 %v >= y2 %v", y1, y2)
	}
}

func TestTransitionsIncompleteSweep(t *testing.T) {
	points := []PhasePoint{{Y: 0.45, CoCO: 0.2, CoO: 0.3}}
	if _, _, ok := Transitions(points); ok {
		t.Fatal("transitions claimed from a reactive-only sweep")
	}
}

func TestDeterministicSeed(t *testing.T) {
	a := Measure(12, 0.45, 50, 20, 9)
	b := Measure(12, 0.45, 50, 20, 9)
	if a != b {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
}

func BenchmarkZGBTrial(b *testing.B) {
	lat := lattice.NewSquare(128)
	z := New(lat, rng.New(1), 0.45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Trial()
	}
}

// A poisoned lattice is absorbing: Step must report false (Engine
// contract), leaving state and random stream untouched, while the
// desorption extension keeps stepping (CO can always leave).
func TestStepReportsFalseWhenPoisoned(t *testing.T) {
	z := New(lattice.NewSquare(8), rng.New(5), 1.0) // pure CO: poisons fast
	steps := 0
	for z.Step() {
		steps++
		if steps > 10000 {
			t.Fatal("y=1 lattice did not poison")
		}
	}
	if !z.Poisoned() || z.VacantCount() != 0 {
		t.Fatalf("Step returned false but Poisoned=%v vacant=%d", z.Poisoned(), z.VacantCount())
	}
	if z.cfg.Coverage(CO) != 1 {
		t.Fatalf("CO coverage %v after CO poisoning, want 1", z.cfg.Coverage(CO))
	}
	before := z.src.State()
	if z.Step() {
		t.Fatal("Step on a poisoned lattice reported true")
	}
	if z.src.State() != before {
		t.Fatal("Step on a poisoned lattice consumed randomness")
	}

	d := NewWithDesorption(lattice.NewSquare(8), rng.New(5), 1.0, 0.05)
	for i := 0; i < 200; i++ {
		if !d.Step() {
			t.Fatal("desorption Step reported false; poisoning is not absorbing with pdes > 0")
		}
	}
}

// The vacancy bookkeeping must track the configuration exactly through
// the simulation's own dynamics, and ResyncVacancies must repair it
// after external configuration writes.
func TestVacancyCountTracksConfig(t *testing.T) {
	z := New(lattice.NewSquare(16), rng.New(9), 0.5)
	for i := 0; i < 20; i++ {
		z.Step()
		if z.VacantCount() != z.cfg.Count(Empty) {
			t.Fatalf("step %d: VacantCount %d != Count(Empty) %d",
				i, z.VacantCount(), z.cfg.Count(Empty))
		}
	}
	z.cfg.Fill(CO) // external write, bypasses the bookkeeping
	z.ResyncVacancies()
	if z.VacantCount() != 0 || !z.Poisoned() {
		t.Fatalf("after Fill+Resync: vacant %d poisoned %v", z.VacantCount(), z.Poisoned())
	}
}

// EnsemblePoint windows the mean series at t > equil, averages CO2
// production across replica ledgers, and applies the majority rule for
// poisoning.
func TestEnsemblePoint(t *testing.T) {
	mean := make([]*stats.Series, 3)
	for sp := range mean {
		mean[sp] = &stats.Series{}
	}
	// Grid 0..4; equil boundary at 2 leaves the window {3, 4}.
	for k := 0; k <= 4; k++ {
		mean[Empty].Append(float64(k), 0.1)
		mean[CO].Append(float64(k), float64(k)) // window mean (3+4)/2 = 3.5
		mean[O].Append(float64(k), 0.2)
	}
	ledgers := []ReplicaLedger{
		{CO2Equil: 10, CO2End: 30, Poisoned: true}, // 20 produced
		{CO2Equil: 0, CO2End: 10, Poisoned: false}, // 10 produced
	}
	const sites, equil, measure = 100.0, 2, 2
	pt := EnsemblePoint(0.5, mean, equil, measure, sites, ledgers)
	if pt.Y != 0.5 {
		t.Errorf("Y = %v", pt.Y)
	}
	if pt.CoCO != 3.5 || pt.CoEmpty != 0.1 || pt.CoO != 0.2 {
		t.Errorf("window coverages %v/%v/%v, want 3.5/0.1/0.2", pt.CoCO, pt.CoEmpty, pt.CoO)
	}
	// (20+10)/2 replicas / 2 MCS / 100 sites.
	if want := 15.0 / 2 / 100; pt.Rate != want {
		t.Errorf("Rate = %v, want %v", pt.Rate, want)
	}
	if !pt.Poisoned {
		t.Error("1 of 2 replicas poisoned must count as poisoned (majority rule ties up)")
	}
}
