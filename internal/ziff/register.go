package ziff

import (
	"fmt"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
)

// Engine-interface methods (registry.Engine). The ZGB clock counts MC
// steps (one trial per site at unit rate), so the aggregate trial rate
// is N.

// Name returns the registry name.
func (z *ZGB) Name() string { return "ziff" }

// TotalRate returns the trial rate N of the adsorption-limited clock.
func (z *ZGB) TotalRate() float64 { return float64(z.lat.N()) }

// Steps returns the number of completed Step calls (MC steps).
func (z *ZGB) Steps() uint64 { return z.steps }

// defaultY is the CO fraction used when the options leave it unset:
// the middle of the reactive window of the phase diagram.
const defaultY = 0.5

func init() {
	registry.Register(registry.Spec{
		Name:      "ziff",
		Doc:       "classic adsorption-limited Ziff–Gulari–Barshad model (§1)",
		Accepts:   registry.OptY,
		ModelFree: true,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			y := defaultY
			if o.HasY {
				y = o.Y
			}
			if y < 0 || y > 1 {
				return nil, fmt.Errorf("ziff: CO fraction %v outside [0,1]", y)
			}
			return NewOn(cfg, src, y), nil
		},
	})
}
