package job

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"parsurf"
	"parsurf/internal/store"
)

// slowReq is a workload that cannot finish within a test's patience: a
// huge horizon keeps its replicas running until cancelled, killed by a
// deadline, or the test gives up.
func slowReq(t *testing.T, seed uint64) Request {
	t.Helper()
	return Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, seed)},
		Until: 1e9, Every: 1e6,
	}
}

// waitState polls until the job reaches the state or the deadline
// passes.
func waitState(t *testing.T, j *Job, want State, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for j.Status().State != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s, want %s", j.ID(), j.Status().State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The panic-containment guarantee end to end: with ChaosPanicSeed
// armed, a job whose spec matches panics inside a replica. The panic
// must fail only that job — with the stack in its error and its stored
// record — while a sibling job on the same manager completes with
// bytes identical to a clean control run, and a restart over the same
// store keeps the panic job terminal instead of crash-loop re-queueing
// it.
func TestPanicContainment(t *testing.T) {
	const panicSeed = 666
	// Control: the sibling workload on a pristine manager.
	ctrlStore := store.NewMem()
	ctrl := newStoreManager(t, ctrlStore)
	cj, err := ctrl.Submit(shortReq(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, cj, 60*time.Second); st.State != StateDone {
		t.Fatalf("control job ended %s: %s", st.State, st.Error)
	}
	control := resultBytes(t, cj)
	ctrl.Close()

	st := store.NewMem()
	m, err := NewManagerWithStore(2, 0, st, ChaosPanicSeed(panicSeed))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(shortReq(t, panicSeed))
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := m.Submit(shortReq(t, 21))
	if err != nil {
		t.Fatal(err)
	}

	vst := waitTerminal(t, victim, 60*time.Second)
	if vst.State != StateFailed {
		t.Fatalf("panic job ended %s, want failed", vst.State)
	}
	for _, marker := range []string{"injected replica panic", "panicked", "goroutine"} {
		if !strings.Contains(vst.Error, marker) {
			t.Errorf("panic job error lacks %q:\n%s", marker, vst.Error)
		}
	}
	rec, err := st.GetJob(victim.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateFailed) {
		t.Fatalf("stored panic record is %q, want failed", rec.State)
	}
	if !strings.Contains(rec.Error, "goroutine") {
		t.Errorf("stored record carries no stack trace:\n%s", rec.Error)
	}

	// The sibling is untouched by the panic: done, byte-identical to
	// the clean control.
	if sst := waitTerminal(t, sibling, 60*time.Second); sst.State != StateDone {
		t.Fatalf("sibling ended %s: %s", sst.State, sst.Error)
	}
	if got := resultBytes(t, sibling); !bytes.Equal(got, control) {
		t.Fatal("sibling result differs from the uninterrupted control")
	}
	m.Close()

	// Restart over the same store: the panic failure is terminal. The
	// job must come back failed — never re-queued into a crash loop.
	m2, err := NewManagerWithStore(2, 0, st, ChaosPanicSeed(panicSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rj, ok := m2.Get(victim.ID())
	if !ok {
		t.Fatalf("restart lost job %s", victim.ID())
	}
	if got := rj.Status().State; got != StateFailed {
		t.Fatalf("recovered panic job is %s, want failed", got)
	}
	if n := m2.RunsStarted(); n != 0 {
		t.Fatalf("recovery started %d runs; the failed panic job must not re-run", n)
	}
}

// A job past its manager-level duration budget lands in the distinct
// deadline_exceeded terminal state, with the deadline persisted.
func TestJobDeadlineExceeded(t *testing.T) {
	st := store.NewMem()
	m, err := NewManagerWithStore(1, 0, st, MaxJobDuration(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(slowReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	jst := waitTerminal(t, j, 30*time.Second)
	if jst.State != StateDeadlineExceeded {
		t.Fatalf("job ended %s (%s), want deadline_exceeded", jst.State, jst.Error)
	}
	if !strings.Contains(jst.Error, "deadline") {
		t.Fatalf("terminal error %q does not mention the deadline", jst.Error)
	}
	if jst.Deadline == 0 {
		t.Fatal("status carries no deadline")
	}
	rec, err := st.GetJob(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateDeadlineExceeded) {
		t.Fatalf("stored record is %q, want deadline_exceeded", rec.State)
	}
	if rec.Deadline == 0 {
		t.Fatal("stored record carries no deadline")
	}
}

// A request-level MaxDuration works without any server default, and a
// tighter server default wins over a looser request.
func TestRequestMaxDuration(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	req := slowReq(t, 2)
	req.MaxDuration = 50 * time.Millisecond
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if jst := waitTerminal(t, j, 30*time.Second); jst.State != StateDeadlineExceeded {
		t.Fatalf("job ended %s, want deadline_exceeded", jst.State)
	}

	capped := NewManager(1, 0, MaxJobDuration(50*time.Millisecond))
	defer capped.Close()
	req2 := slowReq(t, 3)
	req2.MaxDuration = time.Hour // looser than the server cap: ignored
	j2, err := capped.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if jst := waitTerminal(t, j2, 30*time.Second); jst.State != StateDeadlineExceeded {
		t.Fatalf("capped job ended %s, want deadline_exceeded within the server cap", jst.State)
	}

	if _, err := m.Submit(Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, 4)},
		Until: 5, Every: 1, MaxDuration: -time.Second,
	}); err == nil {
		t.Fatal("negative MaxDuration accepted")
	}
}

// The stored deadline is absolute: a crash-recovered job whose budget
// already ran out fails as deadline_exceeded on restart instead of
// being granted a fresh allowance.
func TestRecoveredJobHonorsRemainingBudget(t *testing.T) {
	st := store.NewMem()
	req := slowReq(t, 5)
	req.Replicas, req.Workers = 1, 1 // Submit's normalization, done by hand
	rawReq, hash, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	// A record the previous process left mid-run with a deadline
	// already in the past — as if the crash ate the whole budget.
	if err := st.PutJob(&store.JobRecord{
		ID: "job-1", Seq: 1, Hash: hash, State: string(StateRunning),
		Submitted: time.Now().Add(-time.Minute).UnixNano(),
		Deadline:  time.Now().Add(-time.Second).UnixNano(),
		Request:   rawReq,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, ok := m.Get("job-1")
	if !ok {
		t.Fatal("recovery lost job-1")
	}
	jst := waitTerminal(t, j, 30*time.Second)
	if jst.State != StateDeadlineExceeded {
		t.Fatalf("recovered job ended %s (%s), want deadline_exceeded", jst.State, jst.Error)
	}
	// A terminal deadline_exceeded record then stays terminal across
	// the next boot.
	m.Close()
	m2, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, ok := m2.Get("job-1")
	if !ok {
		t.Fatal("second recovery lost job-1")
	}
	if got := j2.Status().State; got != StateDeadlineExceeded {
		t.Fatalf("re-recovered job is %s, want deadline_exceeded", got)
	}
	if n := m2.RunsStarted(); n != 0 {
		t.Fatalf("second boot started %d runs for a terminal job", n)
	}
}

// Per-job admission caps are permanent validation errors — rejected at
// Submit, never classified as transient overload.
func TestAdmissionCaps(t *testing.T) {
	m := NewManager(1, 0, MaxCells(100), MaxReplicas(4))
	defer m.Close()

	_, err := m.Submit(shortReq(t, 1)) // 24×24 = 576 cells > 100
	if err == nil {
		t.Fatal("over-cells submission accepted")
	}
	if !strings.Contains(err.Error(), "cells") {
		t.Fatalf("over-cells rejection says %q", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("cap rejection %q claims to be transient overload", err)
	}

	big := NewManager(1, 0, MaxReplicas(4))
	defer big.Close()
	req := shortReq(t, 2)
	req.Replicas = 8
	if _, err := big.Submit(req); err == nil {
		t.Fatal("over-replicas submission accepted")
	} else if !strings.Contains(err.Error(), "replicas") {
		t.Fatalf("over-replicas rejection says %q", err)
	}
	req.Replicas = 4
	j, err := big.Submit(req)
	if err != nil {
		t.Fatalf("at-cap submission rejected: %v", err)
	}
	waitTerminal(t, j, 60*time.Second)
}

// The aggregate cost budget sheds with ErrOverloaded while committed,
// and frees exactly the admitted job's share when it goes terminal.
func TestAggregateCostSheds(t *testing.T) {
	one := estimateCost(slowReq(t, 1), 1001) // slowReq grid: 1e9/1e6 + 1
	m := NewManager(1, 4, MaxActiveCost(one))
	defer m.Close()

	j, err := m.Submit(slowReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ActiveCost(); got != one {
		t.Fatalf("ActiveCost = %d after admission, want %d", got, one)
	}
	_, err = m.Submit(slowReq(t, 2))
	if err == nil {
		t.Fatal("over-budget submission accepted")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget rejection %q does not wrap ErrOverloaded", err)
	}

	j.Cancel()
	waitTerminal(t, j, 30*time.Second)
	if got := m.ActiveCost(); got != 0 {
		t.Fatalf("ActiveCost = %d after the job went terminal, want 0", got)
	}
	j2, err := m.Submit(slowReq(t, 2))
	if err != nil {
		t.Fatalf("submission after budget release rejected: %v", err)
	}
	j2.Cancel()
	waitTerminal(t, j2, 30*time.Second)
}

// Re-queued recovered jobs re-join the aggregate budget.
func TestRecoveryChargesActiveCost(t *testing.T) {
	st := store.NewMem()
	m := newStoreManager(t, st)
	j, err := m.Submit(slowReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 30*time.Second)
	m.Close() // leaves a resumable queued record

	m2, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	want := estimateCost(slowReq(t, 1), j.GridLen())
	if got := m2.ActiveCost(); got != want {
		t.Fatalf("recovered ActiveCost = %d, want %d", got, want)
	}
	rj, _ := m2.Get(j.ID())
	rj.Cancel()
	waitTerminal(t, rj, 30*time.Second)
	if got := m2.ActiveCost(); got != 0 {
		t.Fatalf("ActiveCost = %d after cancelling the recovered job, want 0", got)
	}
}
