package job

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"parsurf"
	"parsurf/internal/trace"
)

// Server is the HTTP face of a Manager: submit a spec as JSON, poll
// status, fetch results, cancel. It implements http.Handler.
//
//	POST   /jobs             submit (see SubmitRequest)
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result series (JSON; ?format=csv&variant=v for CSV)
//	POST   /jobs/{id}/cancel cancel
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// SubmitRequest is the POST /jobs body: one spec (or several sweep
// variants) in the specfile JSON schema, plus the run shape. Exactly
// one of "spec" and "specs" must be present.
type SubmitRequest struct {
	Spec     *parsurf.SessionSpec   `json:"spec,omitempty"`
	Specs    []*parsurf.SessionSpec `json:"specs,omitempty"`
	Replicas int                    `json:"replicas,omitempty"`
	Workers  int                    `json:"workers,omitempty"`
	Until    float64                `json:"until"`
	Every    float64                `json:"every"`
}

// VariantResult is one variant's merged series in a ResultResponse.
type VariantResult struct {
	// Species are the column labels, index-aligned with Mean/Std rows.
	Species []string `json:"species"`
	// T is the shared time grid.
	T []float64 `json:"t"`
	// Mean and Std are per-species rows over the grid.
	Mean [][]float64 `json:"mean"`
	Std  [][]float64 `json:"std"`
}

// ResultResponse is the GET /jobs/{id}/result body.
type ResultResponse struct {
	ID       string          `json:"id"`
	Variants []VariantResult `json:"variants"`
}

// NewServer wraps a manager in the HTTP API.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes a JSON success body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var specs []*parsurf.SessionSpec
	switch {
	case req.Spec != nil && len(req.Specs) > 0:
		httpError(w, http.StatusBadRequest, fmt.Errorf(`body has both "spec" and "specs"; pick one`))
		return
	case req.Spec != nil:
		specs = []*parsurf.SessionSpec{req.Spec}
	case len(req.Specs) > 0:
		specs = req.Specs
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "spec" (or "specs") section`))
		return
	}
	j, err := s.mgr.Submit(Request{
		Specs:    specs,
		Replicas: req.Replicas,
		Workers:  req.Workers,
		Until:    req.Until,
		Every:    req.Every,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves the {id} path value.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	ensembles, err := j.Result()
	if err != nil {
		code := http.StatusConflict // not finished / cancelled / failed
		httpError(w, code, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		s.writeCSV(w, r, j, ensembles)
		return
	}
	resp := ResultResponse{ID: j.ID()}
	for v, ens := range ensembles {
		vr := VariantResult{
			Species: j.req.Specs[v].SpeciesNames(),
			T:       ens.Grid.Times(),
			Mean:    make([][]float64, len(ens.Mean)),
			Std:     make([][]float64, len(ens.Std)),
		}
		for sp := range ens.Mean {
			vr.Mean[sp] = ens.Mean[sp].X
			vr.Std[sp] = ens.Std[sp].X
		}
		resp.Variants = append(resp.Variants, vr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeCSV renders one variant's mean series in the same CSV shape
// surfsim prints (t column plus one column per species).
func (s *Server) writeCSV(w http.ResponseWriter, r *http.Request, j *Job, ensembles []*parsurf.Ensemble) {
	variant := 0
	if v := r.URL.Query().Get("variant"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n >= len(ensembles) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("variant %q outside [0, %d)", v, len(ensembles)))
			return
		}
		variant = n
	}
	w.Header().Set("Content-Type", "text/csv")
	header := append([]string{"t"}, j.req.Specs[variant].SpeciesNames()...)
	// A mid-stream failure (client hung up) cannot be reported to the
	// client anymore — the 200 status and partial CSV are already on
	// the wire — so it is deliberately dropped rather than appended as
	// a JSON fragment to a corrupt payload.
	_ = trace.WriteCSV(w, header, ensembles[variant].Mean...)
}
