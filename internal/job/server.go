package job

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parsurf"
	"parsurf/internal/store"
)

// maxSubmitBody bounds the POST /jobs body. Submissions are spec JSON
// — kilobytes, not megabytes — so 4 MiB is generous headroom while
// still refusing to buffer an adversarial body into memory.
const maxSubmitBody = 4 << 20

// Server is the HTTP face of a Manager: submit a spec as JSON, poll
// status, stream progress, fetch results, cancel. It implements
// http.Handler.
//
//	POST   /jobs             submit (see SubmitRequest)
//	GET    /jobs             list job statuses (submission order;
//	                         ?state=, ?limit=, ?after= filter and page)
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/events SSE progress frames until terminal
//	GET    /jobs/{id}/result series (JSON; ?format=csv&variant=v for CSV)
//	POST   /jobs/{id}/cancel cancel
//	GET    /healthz          readiness probe
//	GET    /version          build/version stamp
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	version string
	// eventInterval paces SSE progress frames between state changes.
	eventInterval time.Duration
	// heartbeatInterval paces SSE comment frames that keep idle
	// connections alive through proxies and surface dead peers.
	heartbeatInterval time.Duration
	// writeTimeout bounds each SSE write; a peer that stops draining
	// the stream is disconnected instead of blocking the handler
	// goroutine forever.
	writeTimeout time.Duration
}

// SubmitRequest is the POST /jobs body: one spec (or several sweep
// variants) in the specfile JSON schema, plus the run shape. Exactly
// one of "spec" and "specs" must be present. On a durable server,
// "nocache": true forces a run even when the result cache holds a
// matching completed result.
type SubmitRequest struct {
	Spec     *parsurf.SessionSpec   `json:"spec,omitempty"`
	Specs    []*parsurf.SessionSpec `json:"specs,omitempty"`
	Replicas int                    `json:"replicas,omitempty"`
	Workers  int                    `json:"workers,omitempty"`
	Until    float64                `json:"until"`
	Every    float64                `json:"every"`
	NoCache  bool                   `json:"nocache,omitempty"`
	// MaxDuration is the job's wall-clock run budget in Go duration
	// syntax ("90s", "15m"); past it the job ends in the
	// deadline_exceeded state. Empty defers to the server's
	// -max-job-duration default; a server default also caps any value
	// given here.
	MaxDuration string `json:"max_duration,omitempty"`
}

// VariantResult is one variant's merged series in a ResultResponse —
// the store's serialized result form, served verbatim.
type VariantResult = store.Variant

// ResultResponse is the GET /jobs/{id}/result body.
type ResultResponse struct {
	ID string `json:"id"`
	// Cached marks a result served from the content-addressed cache
	// instead of a run in this process.
	Cached   bool            `json:"cached,omitempty"`
	Variants []VariantResult `json:"variants"`
}

// EventFrame is one SSE frame of GET /jobs/{id}/events: the job status
// plus each replica's simulated-time frontier from the atomic progress
// slots.
type EventFrame struct {
	Status
	// ReplicaTimes is each replica's latest simulated time, indexed
	// (variant × replicas + replica). Zero for replicas not yet
	// observed at any grid point.
	ReplicaTimes []float64 `json:"replicaTimes,omitempty"`
}

// NewServer wraps a manager in the HTTP API.
func NewServer(mgr *Manager) *Server {
	s := &Server{
		mgr:               mgr,
		mux:               http.NewServeMux(),
		version:           "dev",
		eventInterval:     250 * time.Millisecond,
		heartbeatInterval: 15 * time.Second,
		writeTimeout:      10 * time.Second,
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	return s
}

// SetVersion sets the stamp GET /version reports (default "dev").
func (s *Server) SetVersion(v string) { s.version = v }

// ServeHTTP implements http.Handler. Every request runs under the
// panic-recovery middleware: job panics are already contained in the
// ensemble workers, so this is the last line for handler bugs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	Recoverer(s.mux).ServeHTTP(w, r)
}

// reqID numbers recovered-panic responses so a client-reported 500 can
// be matched to the server-side stack in the log.
var reqID atomic.Uint64

// Recoverer is the HTTP panic-containment middleware: a panicking
// handler yields a 500 JSON body carrying a request id (also echoed in
// X-Request-Id) instead of tearing down the connection with a blank
// response, and the panic with its id and stack goes to stderr so the
// client-reported id finds the server-side trace. http.ErrAbortHandler
// re-panics untouched — it is net/http's sanctioned way to abort a
// response, not a bug.
func Recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(v)
			}
			id := fmt.Sprintf("req-%d", reqID.Add(1))
			fmt.Fprintf(os.Stderr, "surfd: %s: panic serving %s %s: %v\n%s",
				id, r.Method, r.URL.Path, v, debug.Stack())
			// Best-effort 500: if the handler already wrote its status,
			// nothing better than an appended body is possible
			// mid-response.
			w.Header().Set("X-Request-Id", id)
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("internal error (request %s)", id))
		}()
		next.ServeHTTP(w, r)
	})
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes a JSON success body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var specs []*parsurf.SessionSpec
	switch {
	case req.Spec != nil && len(req.Specs) > 0:
		httpError(w, http.StatusBadRequest, fmt.Errorf(`body has both "spec" and "specs"; pick one`))
		return
	case req.Spec != nil:
		specs = []*parsurf.SessionSpec{req.Spec}
	case len(req.Specs) > 0:
		specs = req.Specs
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "spec" (or "specs") section`))
		return
	}
	var maxDur time.Duration
	if req.MaxDuration != "" {
		d, err := time.ParseDuration(req.MaxDuration)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("max_duration: %w", err))
			return
		}
		maxDur = d
	}
	j, err := s.mgr.Submit(Request{
		Specs:       specs,
		Replicas:    req.Replicas,
		Workers:     req.Workers,
		Until:       req.Until,
		Every:       req.Every,
		NoCache:     req.NoCache,
		MaxDuration: maxDur,
	})
	if err != nil {
		// Transient capacity exhaustion is load shedding, not a client
		// mistake: 429 with a retry hint. Everything else Submit
		// rejects is permanently malformed for this server — 400.
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleList serves the job listing in submission order. Query
// parameters page and filter it:
//
//	?state=running      keep only jobs in that lifecycle state
//	?after=job-12       start strictly after the given id
//	?limit=50           cap the page size (must be > 0)
//
// Filtering applies before pagination, so ?state=done&after=X&limit=N
// walks the done jobs N at a time: pass the last id of one page as the
// next page's "after". An unknown "after" id (or one filtered out)
// yields an empty page rather than an error — the job may have been
// submitted against a previous process.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var limit int
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("limit %q is not a positive integer", v))
			return
		}
		limit = n
	}
	state := State(q.Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled,
		StateQuarantined, StateDeadlineExceeded:
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", state))
		return
	}
	after := q.Get("after")
	skipping := after != ""
	out := []Status{}
	for _, j := range s.mgr.Jobs() {
		st := j.Status()
		if state != "" && st.State != state {
			continue
		}
		if skipping {
			if st.ID == after {
				skipping = false
			}
			continue
		}
		out = append(out, st)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": s.version})
}

// lookup resolves the {id} path value.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// shardFP fingerprints a shard listing: frames whose fingerprint
// differs from the previous frame's are sent as "event: shard" so fleet
// clients can watch lease churn without diffing statuses themselves.
func shardFP(shards []ShardStatus) string {
	if len(shards) == 0 {
		return ""
	}
	var b strings.Builder
	for _, sh := range shards {
		fmt.Fprintf(&b, "%s=%s/%s/%d;", sh.ID, sh.State, sh.Worker, sh.Requeues)
	}
	return b.String()
}

// handleEvents streams SSE progress frames — "event: progress" while
// the job advances, "event: shard" when the fleet shard table changed
// since the previous frame, one final "event: done" carrying the
// terminal status — so clients follow a job without polling. Between frames the
// stream carries periodic ": heartbeat" comment lines so idle
// connections stay alive through proxies, and every write runs under a
// per-write deadline so a peer that stops reading is disconnected
// instead of parking the handler goroutine. The stream ends at the
// terminal frame, on a stalled peer, or when the client hangs up.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	// arm bounds the next write. Not every ResponseWriter supports
	// deadlines (httptest recorders don't); those stream without one.
	rc := http.NewResponseController(w)
	// An SSE stream outlives any server-level ReadTimeout; clear the
	// connection's read deadline so the background close-detection read
	// cannot expire it and kill a healthy stream mid-job. Writes stay
	// bounded by the per-write deadline below.
	rc.SetReadDeadline(time.Time{})
	arm := func() {
		if s.writeTimeout > 0 {
			rc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
	}
	var lastShards string
	send := func(event string) bool {
		frame := EventFrame{Status: j.Status(), ReplicaTimes: j.ReplicaTimes()}
		if fp := shardFP(frame.Shards); fp != lastShards {
			lastShards = fp
			if event == "progress" {
				event = "shard"
			}
		}
		data, err := json.Marshal(frame)
		if err != nil {
			return false
		}
		arm()
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	heartbeat := func() bool {
		arm()
		if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	select {
	case <-j.Done():
		// Already terminal: one done frame and out.
		send("done")
		return
	default:
	}
	if !send("progress") {
		return
	}
	ticker := time.NewTicker(s.eventInterval)
	defer ticker.Stop()
	pulse := time.NewTicker(s.heartbeatInterval)
	defer pulse.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			send("done")
			return
		case <-ticker.C:
			if !send("progress") {
				return
			}
		case <-pulse.C:
			if !heartbeat() {
				return
			}
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, err := j.ResultData()
	if err != nil {
		// Not finished, cancelled, or failed: the request conflicts
		// with the job's state — 409, never a 500.
		httpError(w, http.StatusConflict, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		s.writeCSV(w, r, j, res)
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{ID: j.ID(), Cached: j.Cached(), Variants: res.Variants})
}

// writeCSV streams one variant's mean series in the same CSV shape
// surfsim prints (t column plus one column per species), row by row —
// chunked transfer, never a full body in memory.
func (s *Server) writeCSV(w http.ResponseWriter, r *http.Request, j *Job, res *store.Result) {
	variant := 0
	if v := r.URL.Query().Get("variant"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n >= len(res.Variants) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("variant %q outside [0, %d)", v, len(res.Variants)))
			return
		}
		variant = n
	}
	vr := res.Variants[variant]
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-v%d.csv", j.ID(), variant)))
	flusher, _ := w.(http.Flusher)
	// A mid-stream failure (client hung up) cannot be reported to the
	// client anymore — the 200 status and partial CSV are already on
	// the wire — so write errors end the stream silently rather than
	// appending a JSON fragment to a corrupt payload.
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "t"); err != nil {
		return
	}
	for _, sp := range vr.Species {
		fmt.Fprintf(bw, ",%s", sp)
	}
	fmt.Fprintln(bw)
	const flushEvery = 256
	for k := range vr.T {
		fmt.Fprintf(bw, "%g", vr.T[k])
		for sp := range vr.Mean {
			fmt.Fprintf(bw, ",%g", vr.Mean[sp][k])
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return
		}
		if (k+1)%flushEvery == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	bw.Flush()
}
