package job

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Oversized submissions are refused with 413 before the decoder reads
// the whole body, so a misbehaving client cannot balloon the server.
func TestServerSubmitBodyTooLarge(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	big := `{"padding": "` + strings.Repeat("x", maxSubmitBody+1) + `"}`
	code, body := postJSON(t, ts.URL+"/jobs", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %d %s, want 413", code, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("413 body %s does not explain the limit", body)
	}
	// The server still works afterwards.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after 413: %d", code)
	}
}

// A full backlog surfaces as 429 with a Retry-After hint, the
// load-shedding contract clients key off.
func TestServerBacklogFull429(t *testing.T) {
	m := NewManager(1, 1)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "replicas": 2, "workers": 2, "until": 1e9, "every": 1e6
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	runner, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	// Wait until the runner demonstrably holds the first job, so the
	// backlog is empty and its capacity the only variable.
	deadline := time.Now().Add(30 * time.Second)
	for runner.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", runner.Status().State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, body := postJSON(t, ts.URL+"/jobs", long); code != http.StatusAccepted {
		t.Fatalf("queued submit: %d %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-backlog submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
}

// The max_duration request field flows through the HTTP layer: the job
// is killed at its budget and lands in the deadline_exceeded state,
// which the list filter understands.
func TestServerMaxDuration(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "until": 1e9, "every": 1e6, "max_duration": "50ms"
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if fin := waitTerminal(t, j, 30*time.Second); fin.State != StateDeadlineExceeded {
		t.Fatalf("state %s (err %q), want deadline_exceeded", fin.State, fin.Error)
	}
	code, list := getBody(t, ts.URL+"/jobs?state=deadline_exceeded")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, list)
	}
	var sts []Status
	if err := json.Unmarshal([]byte(list), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != st.ID {
		t.Fatalf("state filter returned %+v, want just %s", sts, st.ID)
	}

	// A malformed duration is a client error, not a silent default.
	bad := strings.Replace(long, `"50ms"`, `"soon"`, 1)
	if code, body := postJSON(t, ts.URL+"/jobs", bad); code != http.StatusBadRequest {
		t.Fatalf("bogus max_duration: %d %s, want 400", code, body)
	}
}

// A panicking handler is contained by the Recoverer middleware: the
// client sees a 500 carrying a request id, and the process survives.
func TestRecovererContainsPanic(t *testing.T) {
	h := Recoverer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("500 response has no X-Request-Id")
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], id) {
		t.Errorf("error %q does not reference request id %s", out["error"], id)
	}
}

// http.ErrAbortHandler is the net/http idiom for deliberately dropping
// a connection; the middleware must let it propagate untouched.
func TestRecovererPassesAbortHandler(t *testing.T) {
	h := Recoverer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("ErrAbortHandler swallowed by Recoverer")
		}
	}()
	req := httptest.NewRequest(http.MethodGet, "/abort", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
}
