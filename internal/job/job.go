// Package job is the service layer over the declarative session spec:
// a manager that accepts specs as plain data, runs them — single
// sessions, ensembles, or whole parameter sweeps — on a bounded pool
// of job runners, tracks per-job progress (engine steps, simulated
// time, grid points merged), supports cancellation, and exposes
// results as the library's Series/moment types. cmd/surfd wraps it in
// an HTTP server; the manager itself is transport-agnostic and safe
// for concurrent use.
//
// Every run goes through parsurf.RunSweep, so a job inherits the
// ensemble machinery wholesale: replicas on split RNG streams merged
// bit-identically for any worker count, first-error/cancel semantics —
// cancelling a job cancels its context, which aborts every replica
// within one engine step — and the replica pool: each variant's model
// arena is compiled once per spec, each worker builds one session and
// runs successive replica indices through Session.Reset, and sample
// grids recycle through the streaming merge, so a job's steady-state
// per-replica allocation cost is near zero no matter how many replicas
// it fans out.
//
// A manager opened with NewManagerWithStore is additionally durable:
// every lifecycle transition persists a job record before it is
// acknowledged, completed results persist as content-addressed blobs,
// and a restart recovers the whole table — completed jobs serve their
// results from the store, jobs that were queued or running when the
// process died are re-queued automatically. Because the result key is
// the SHA-256 of the canonical (spec, run-shape) bytes, the store
// doubles as a result cache: a resubmission whose hash matches a
// stored completed result is answered `done` immediately without
// re-simulating (opt out per submission with Request.NoCache).
package job

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parsurf"
	"parsurf/internal/backoff"
	"parsurf/internal/store"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued marks a job accepted but not yet picked up by a
	// runner.
	StateQueued State = "queued"
	// StateRunning marks a job whose replicas are executing.
	StateRunning State = "running"
	// StateDone marks a successfully completed job; its result is
	// available.
	StateDone State = "done"
	// StateFailed marks a job that returned an error.
	StateFailed State = "failed"
	// StateCancelled marks a job stopped by Cancel (or manager
	// shutdown) before completing.
	StateCancelled State = "cancelled"
	// StateQuarantined marks a poison job: one whose record could not be
	// recovered, or whose runs crashed the process MaxAttempts times.
	// Quarantined jobs never re-queue; they keep their record (and
	// error) for inspection.
	StateQuarantined State = "quarantined"
	// StateDeadlineExceeded marks a job stopped because it ran past its
	// duration budget (Request.MaxDuration or the manager's default).
	// Distinct from failed — the workload was fine, just too slow for
	// the budget it was given — and terminal: a crash-recovered record
	// in this state never re-queues.
	StateDeadlineExceeded State = "deadline_exceeded"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateQuarantined, StateDeadlineExceeded:
		return true
	}
	return false
}

// ErrOverloaded marks a submission shed for transient capacity reasons
// — a full backlog or an aggregate-cost budget already committed to
// running jobs. Unlike a validation error, retrying the identical
// request later can succeed; the HTTP layer maps it to 429 with a
// Retry-After. Match with errors.Is.
var ErrOverloaded = errors.New("job: overloaded")

// Request describes one job: which specs to run and how to sample
// them. One spec is a single session or ensemble; several specs form a
// sweep (one ensemble per variant over a shared worker pool).
type Request struct {
	// Specs are the session specs to run; at least one.
	Specs []*parsurf.SessionSpec
	// Replicas per variant (default 1: a single session per spec).
	Replicas int
	// Workers is the goroutine count of the job's replica pool
	// (default 1).
	Workers int
	// Until is the simulated-time horizon (required, > 0).
	Until float64
	// Every is the sampling interval (required, > 0).
	Every float64
	// NoCache opts this submission out of the result cache: the job
	// runs even when a stored result matches its content hash. The
	// fresh result still persists when it completes (overwriting an
	// equal blob — results are deterministic).
	NoCache bool
	// MaxDuration bounds the job's wall-clock run time; past it the
	// job lands in StateDeadlineExceeded. Zero means no request-level
	// budget; a manager-level MaxJobDuration still applies and also
	// caps any request value. The budget is absolute once the job first
	// starts: a crash-recovered job gets only its remaining time, not a
	// fresh allowance. Excluded from the content hash — a completed
	// result is the same whatever budget it ran under.
	MaxDuration time.Duration
}

// Progress is a point-in-time snapshot of a running job's advancement,
// assembled from per-replica counters the replica goroutines publish
// at every grid point.
type Progress struct {
	// Replicas is the total replica count across variants.
	Replicas int `json:"replicas"`
	// Steps is the total engine Step calls across replicas (as of each
	// replica's latest grid point).
	Steps uint64 `json:"steps"`
	// SimTime is the ensemble frontier: the minimum simulated time any
	// replica has reached. Every replica is at least this far.
	SimTime float64 `json:"simTime"`
	// GridPointsMerged counts (replica, grid point) samples taken, out
	// of TotalGridPoints.
	GridPointsMerged int64 `json:"gridPointsMerged"`
	// TotalGridPoints is Replicas × grid length.
	TotalGridPoints int64 `json:"totalGridPoints"`
}

// Status is a snapshot of a job's state, progress and (terminal) error.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Hash is the content address of the job's (spec, run-shape) bytes;
	// set only on durable managers. Two jobs with equal hashes compute
	// equal results.
	Hash string `json:"hash,omitempty"`
	// Cached marks a job answered from the result cache without
	// running (its progress counters stay zero).
	Cached bool `json:"cached,omitempty"`
	// Attempts counts crash-interrupted runs of this job (see
	// store.JobRecord.Attempts).
	Attempts int `json:"attempts,omitempty"`
	// Resumed counts replicas restored from a stored checkpoint instead
	// of running from scratch.
	Resumed int64 `json:"resumed,omitempty"`
	// Deadline is the job's absolute run deadline in Unix nanoseconds,
	// set once the job starts under a duration budget; 0 otherwise.
	Deadline int64    `json:"deadline,omitempty"`
	Progress Progress `json:"progress"`
	// Shards lists the job's fleet shards when the manager runs jobs
	// through a sharding executor; nil otherwise.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one fleet shard's public snapshot, surfaced in Status
// when the manager executes jobs through a ShardLister executor.
type ShardStatus struct {
	// ID is the shard id, unique within the job (e.g. "v0-8-16").
	ID string `json:"id"`
	// Variant is the sweep variant (spec index).
	Variant int `json:"variant"`
	// Lo and Hi bound the half-open replica index range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// State is the shard lifecycle state (queued/leased/done/
	// quarantined).
	State string `json:"state"`
	// Worker names the worker currently holding the shard's lease.
	Worker string `json:"worker,omitempty"`
	// Attempts counts leases that ended in failure or expiry.
	Attempts int `json:"attempts,omitempty"`
	// Requeues counts how many times the shard went back on the queue.
	Requeues int `json:"requeues,omitempty"`
	// Error is the latest failure text reported for the shard.
	Error string `json:"error,omitempty"`
}

// Executor runs a job's workload somewhere other than the local sweep
// runner — the fleet coordinator implements it to shard the ensemble
// across worker nodes. Execute runs on the job's runner goroutine,
// observes ctx for cancellation, and returns the merged result (which
// must be bit-identical to what the local runner would compute).
type Executor interface {
	Execute(ctx context.Context, j *Job) (*store.Result, error)
}

// ShardLister is an optional Executor refinement: executors that track
// per-job shards implement it so Status can surface them.
type ShardLister interface {
	JobShards(jobID string) []ShardStatus
}

// JobDropper is an optional Executor refinement: executors that keep
// per-job state (shard tables, result blobs) implement it to discard
// that state when a job reaches a terminal state that will never
// resume (done, failed, or user-cancelled).
type JobDropper interface {
	DropJob(jobID string)
}

// Job is one submitted workload. All methods are safe for concurrent
// use.
type Job struct {
	id        string
	seq       int
	req       Request
	mgr       *Manager
	hash      string          // content address; "" on store-less managers
	rawReq    json.RawMessage // stored request bytes; nil on store-less managers
	cached    bool
	submitted time.Time

	// attempts is the crash-interruption count carried over from the
	// stored record; set before the job is visible, read-only after.
	attempts int
	// notBefore delays a crash-recovered job's restart (exponential
	// backoff); zero for fresh submissions.
	notBefore time.Time
	// resumed counts replicas restored from a stored checkpoint.
	resumed atomic.Int64

	// deadlineNS is the absolute run deadline (Unix nanoseconds; 0 =
	// none), set once when the job first starts and persisted, so a
	// crash-recovered job honors its remaining budget. Atomic because
	// the runner writes it while Cancel may concurrently persist.
	deadlineNS atomic.Int64
	// cost is the job's admission-control cost estimate (see
	// estimateCost); costCharged guards exactly-once release of the
	// manager's aggregate budget when the job goes terminal.
	cost        int64
	costCharged atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc

	gridLen int

	// userCancel distinguishes a cancellation requested through Cancel
	// from one induced by manager shutdown: the former persists as
	// cancelled, the latter leaves the stored record resumable so the
	// next boot re-queues the job.
	userCancel atomic.Bool

	// Per-replica counters, each written only by its replica's
	// goroutine at grid points; snapshots read them atomically.
	slotSteps []atomic.Uint64
	slotTime  []atomic.Uint64 // Float64bits; zero = not yet observed
	merged    atomic.Int64

	mu     sync.Mutex
	state  State
	err    error
	result []*parsurf.Ensemble
	res    *store.Result // serializable result; lazily loaded for recovered jobs

	done chan struct{}
}

// ID returns the manager-assigned job id.
func (j *Job) ID() string { return j.id }

// Request returns the job's request (shared specs; treat as
// read-only).
func (j *Job) Request() Request { return j.req }

// Hash returns the job's content address ("" on store-less managers).
func (j *Job) Hash() string { return j.hash }

// Cached reports whether the job was answered from the result cache.
func (j *Job) Cached() bool { return j.cached }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel stops the job: queued jobs never start, running jobs abort
// every replica within one engine step (the ensemble first-error/
// cancel machinery). The job is marked cancelled immediately; its
// runner is freed as soon as the replicas notice the cancelled
// context. Safe to call repeatedly and after completion — cancelling a
// terminal job is a no-op.
func (j *Job) Cancel() {
	j.userCancel.Store(true)
	j.cancel()
	if j.setState(StateCancelled, context.Canceled, nil) {
		j.persist(StateCancelled, context.Canceled)
		j.dropCheckpoints()
	}
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	state, err := j.state, j.err
	j.mu.Unlock()
	st := Status{ID: j.id, State: state, Hash: j.hash, Cached: j.cached,
		Attempts: j.attempts, Resumed: j.resumed.Load(),
		Deadline: j.deadlineNS.Load(), Progress: j.progress()}
	if err != nil {
		st.Error = err.Error()
	}
	if sl, ok := j.mgr.exec.(ShardLister); ok {
		st.Shards = sl.JobShards(j.id)
	}
	return st
}

// Result returns the per-variant ensembles of a completed job. It
// errors until the job is done (poll Status or wait on Done first).
// Jobs that did not run in this process — recovered from the store or
// answered from the result cache — hold their result as data only; use
// ResultData for those.
func (j *Job) Result() ([]*parsurf.Ensemble, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		if j.result == nil {
			return nil, fmt.Errorf("job: %s holds a stored result, not live ensembles; use ResultData", j.id)
		}
		return j.result, nil
	case StateFailed:
		return nil, j.err
	case StateCancelled:
		return nil, fmt.Errorf("job: %s was cancelled", j.id)
	default:
		return nil, fmt.Errorf("job: %s is %s; no result yet", j.id, j.state)
	}
}

// ResultData returns the serializable result of a done job — the form
// the store persists and the HTTP server serves. Jobs that ran in this
// process return it from memory; recovered jobs load it from the store
// on first call.
func (j *Job) ResultData() (*store.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
	case StateFailed:
		return nil, j.err
	case StateCancelled:
		return nil, fmt.Errorf("job: %s was cancelled", j.id)
	default:
		return nil, fmt.Errorf("job: %s is %s; no result yet", j.id, j.state)
	}
	if j.res != nil {
		return j.res, nil
	}
	if st := j.mgr.st; st != nil && j.hash != "" {
		res, err := st.GetResult(j.hash)
		if err != nil {
			return nil, fmt.Errorf("job: %s: loading stored result: %w", j.id, err)
		}
		j.res = res
		return res, nil
	}
	return nil, fmt.Errorf("job: %s has no stored result", j.id)
}

// progress assembles the counter snapshot.
func (j *Job) progress() Progress {
	p := Progress{
		Replicas:         len(j.slotSteps),
		TotalGridPoints:  int64(len(j.slotSteps)) * int64(j.gridLen),
		GridPointsMerged: j.merged.Load(),
	}
	frontier := math.Inf(1)
	for i := range j.slotSteps {
		p.Steps += j.slotSteps[i].Load()
		t := math.Float64frombits(j.slotTime[i].Load())
		if t < frontier {
			frontier = t
		}
	}
	if math.IsInf(frontier, 1) {
		frontier = 0
	}
	p.SimTime = frontier
	return p
}

// ReplicaTimes returns each replica's simulated-time frontier, straight
// from the atomic progress slots — the per-replica detail behind
// Progress.SimTime, streamed out by the SSE endpoint.
func (j *Job) ReplicaTimes() []float64 {
	out := make([]float64, len(j.slotTime))
	for i := range j.slotTime {
		out[i] = math.Float64frombits(j.slotTime[i].Load())
	}
	return out
}

// observe is the per-replica grid-point hook: it publishes the
// replica's engine counters. Each (variant, replica) slot is written
// only from that replica's goroutine.
func (j *Job) observe(variant, replica int, t float64, sess *parsurf.Session) {
	slot := variant*j.req.Replicas + replica
	eng := sess.Engine()
	j.slotSteps[slot].Store(eng.Steps())
	j.slotTime[slot].Store(math.Float64bits(eng.Time()))
	j.merged.Add(1)
}

// SetReplicaProgress publishes one replica's engine counters from
// outside the local replica pool — the fleet coordinator calls it with
// the counters workers report, so distributed jobs feed the same
// progress slots (and SSE stream) as local ones. Out-of-range slots are
// ignored rather than trusted.
func (j *Job) SetReplicaProgress(variant, replica int, steps uint64, t float64) {
	slot := variant*j.req.Replicas + replica
	if slot < 0 || slot >= len(j.slotSteps) {
		return
	}
	j.slotSteps[slot].Store(steps)
	j.slotTime[slot].Store(math.Float64bits(t))
}

// AddMerged advances the merged grid-point counter by n — the
// executor-side counterpart of the per-grid-point increment in observe.
func (j *Job) AddMerged(n int64) { j.merged.Add(n) }

// GridLen returns the job's sample-grid length.
func (j *Job) GridLen() int { return j.gridLen }

// setState transitions the job, reporting whether the transition took
// effect (a terminal job never changes again); terminal states close
// Done and cancel the job context, releasing its registration under
// the manager context (a completed job would otherwise pin a child
// context for the life of the server).
func (j *Job) setState(s State, err error, result []*parsurf.Ensemble) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = s
	j.err = err
	j.result = result
	if s.Terminal() {
		close(j.done)
		j.cancel()
		// Give the admission budget back exactly once. Atomic on
		// purpose: Submit calls setState while holding the manager
		// lock, so touching m.mu here would deadlock.
		j.releaseCost()
	}
	return true
}

// releaseCost returns the job's admission-cost charge to the manager's
// aggregate budget, exactly once. Safe to call on never-charged jobs.
func (j *Job) releaseCost() {
	if j.costCharged.CompareAndSwap(true, false) {
		j.mgr.activeCost.Add(-j.cost)
	}
}

// persist writes the job's record with the given state. Mid-flight
// persistence is best-effort: a transition that cannot be recorded
// leaves the previous record in place, which recovery treats as
// resumable — re-running a job is safe (results are deterministic),
// losing one is not. Submit surfaces its own persistence errors.
func (j *Job) persist(s State, err error) {
	st := j.mgr.st
	if st == nil {
		return
	}
	rec := &store.JobRecord{
		ID:        j.id,
		Seq:       j.seq,
		Hash:      j.hash,
		State:     string(s),
		Cached:    j.cached,
		Attempts:  j.attempts,
		Submitted: j.submitted.UnixNano(),
		Deadline:  j.deadlineNS.Load(),
		Request:   j.rawReq,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	_ = st.PutJob(rec)
}

// dropCheckpoints discards the job's stored replica checkpoints — a
// terminal job no longer resumes. Best-effort: leftover checkpoints are
// only dead weight (a later run with the same hash validates against
// them and either resumes correctly or starts over). An executor that
// keeps per-job state (the fleet shard table) is told to drop it too.
func (j *Job) dropCheckpoints() {
	if st := j.mgr.st; st != nil && j.hash != "" {
		_ = st.DeleteCheckpoints(j.hash)
	}
	if d, ok := j.mgr.exec.(JobDropper); ok {
		d.DropJob(j.id)
	}
}

// run executes the job on the calling runner goroutine.
func (j *Job) run() {
	if j.ctx.Err() != nil {
		j.finishErr(j.ctx.Err())
		return
	}
	// A crash-recovered job waits out its backoff before re-running, so
	// a job that kills the process quickly cannot crash-loop it at full
	// speed. Cancellation cuts the wait short.
	if delay := time.Until(j.notBefore); delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-j.ctx.Done():
			t.Stop()
			j.finishErr(j.ctx.Err())
			return
		case <-t.C:
		}
	}
	if j.setState(StateRunning, nil, nil) {
		j.mgr.started.Add(1)
		// Arm the deadline before the running record persists, so the
		// stored record always carries the absolute budget a recovery
		// must honor.
		j.armDeadline()
		j.persist(StateRunning, nil)
	}
	// The deadline lives on the run context, not the job context:
	// RunSweep's first-error machinery then reports DeadlineExceeded as
	// the root cause, which finishErr classifies as the distinct
	// deadline_exceeded terminal state. A deadline already in the past
	// (a recovered job that spent its whole budget before the crash)
	// fails immediately.
	runCtx := j.ctx
	if dl := j.deadlineNS.Load(); dl != 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(j.ctx, time.Unix(0, dl))
		defer cancel()
	}
	if ex := j.mgr.exec; ex != nil {
		// Executor-backed manager: the workload runs elsewhere (fleet
		// shards on worker nodes); the local checkpointer and resume
		// provider stay out of the way — workers checkpoint their own
		// shards. The executor's merged result commits through the same
		// blob-before-record path as a local run.
		res, err := ex.Execute(runCtx, j)
		if err != nil {
			j.finishErr(err)
			return
		}
		j.mu.Lock()
		j.res = res
		j.mu.Unlock()
		if j.setState(StateDone, nil, nil) {
			if st := j.mgr.st; st != nil {
				if err := st.PutResult(j.hash, res); err != nil {
					return
				}
			}
			j.persist(StateDone, nil)
			j.dropCheckpoints()
		}
		return
	}
	runOpts := []parsurf.EnsembleOption{parsurf.ObserveReplicas(j.observe)}
	if obs := j.mgr.chaosObserver(j); obs != nil {
		runOpts = append(runOpts, parsurf.ObserveReplicas(obs))
	}
	if ck := j.newCheckpointer(); ck != nil {
		runOpts = append(runOpts, parsurf.CheckpointReplicas(ck.hook))
	}
	if rp := j.resumeProvider(); rp != nil {
		runOpts = append(runOpts, parsurf.ResumeReplicas(rp))
	}
	ens, err := parsurf.RunSweep(runCtx, j.req.Specs, j.req.Replicas, j.req.Workers,
		j.req.Until, j.req.Every, runOpts...)
	if err != nil {
		j.finishErr(err)
		return
	}
	res := resultData(j.req.Specs, ens)
	j.mu.Lock()
	j.res = res
	j.mu.Unlock()
	if j.setState(StateDone, nil, ens) {
		if st := j.mgr.st; st != nil {
			// Blob before record: a record marked done must find its
			// blob. If the blob write fails the record stays at
			// "running", so a restart re-runs the job instead of
			// serving a done status with no result behind it.
			if err := st.PutResult(j.hash, res); err != nil {
				return
			}
		}
		j.persist(StateDone, nil)
		j.dropCheckpoints()
	}
}

// armDeadline fixes the job's absolute run deadline when it first
// starts: the request's MaxDuration, tightened by the manager-level
// cap when one is set (the cap alone when the request carries none). A
// recovered job that already holds a stored deadline keeps it — the
// budget is absolute, so only the remaining time is honored.
func (j *Job) armDeadline() {
	if j.deadlineNS.Load() != 0 {
		return
	}
	d := j.req.MaxDuration
	if lim := j.mgr.maxJobDuration; lim > 0 && (d <= 0 || d > lim) {
		d = lim
	}
	if d <= 0 {
		return
	}
	j.deadlineNS.Store(time.Now().Add(d).UnixNano())
}

// finishErr classifies a terminal error: running past the job's
// duration budget is the distinct deadline_exceeded state (terminal —
// never re-queued); a cancellation requested via Cancel is
// StateCancelled and persists as such; a cancellation induced by
// manager shutdown also lands in StateCancelled in memory, but
// persists as queued so the next boot resumes the job; anything else
// is a failure. A panic recovered from a replica arrives here as an
// ordinary failure error whose text carries the goroutine stack, so
// the stored record stays diagnosable — and, being failed, is terminal
// rather than crash-loop re-queued.
func (j *Job) finishErr(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		// The run context is the only deadline-carrying context in the
		// chain (the manager context is cancel-only), so this is the
		// job's own budget expiring.
		err = fmt.Errorf("job: exceeded its run deadline: %w", err)
		if j.setState(StateDeadlineExceeded, err, nil) {
			j.persist(StateDeadlineExceeded, err)
			j.dropCheckpoints()
		}
		return
	}
	if errors.Is(err, context.Canceled) {
		if j.setState(StateCancelled, err, nil) {
			if j.userCancel.Load() {
				j.persist(StateCancelled, err)
				j.dropCheckpoints()
			} else {
				// Shutdown-induced: the stored record stays resumable and
				// the replica checkpoints stay in place, so the next boot
				// continues the job from its last snapshots.
				j.persist(StateQueued, nil)
			}
		}
		return
	}
	if j.setState(StateFailed, err, nil) {
		j.persist(StateFailed, err)
		j.dropCheckpoints()
	}
}

// resultData flattens merged ensembles into the store's serializable
// result form (species labels, shared grid, mean/std rows).
func resultData(specs []*parsurf.SessionSpec, ens []*parsurf.Ensemble) *store.Result {
	res := &store.Result{Variants: make([]store.Variant, len(ens))}
	for v, e := range ens {
		vr := store.Variant{
			Species: specs[v].SpeciesNames(),
			T:       e.Grid.Times(),
			Mean:    make([][]float64, len(e.Mean)),
			Std:     make([][]float64, len(e.Std)),
		}
		for sp := range e.Mean {
			vr.Mean[sp] = e.Mean[sp].X
			vr.Std[sp] = e.Std[sp].X
		}
		res.Variants[v] = vr
	}
	return res
}

// storedRequest is the persisted form of a Request: specs as their
// canonical JSON documents plus the run shape. NoCache is transient
// and deliberately not stored. MaxDuration (nanoseconds) rides along
// so a recovered job still knows its budget, but — like Workers — it
// is excluded from the content hash: the result does not depend on it.
type storedRequest struct {
	Specs       []json.RawMessage `json:"specs"`
	Replicas    int               `json:"replicas"`
	Workers     int               `json:"workers"`
	Until       float64           `json:"until"`
	Every       float64           `json:"every"`
	MaxDuration int64             `json:"maxDuration,omitempty"`
}

// encodeRequest renders a normalized request in its stored form and
// computes its content hash. Requests carrying specs that exist only
// as Go pointers (raw partitions/type splits) cannot be persisted and
// are rejected — durable mode needs named builders.
func encodeRequest(req Request) (json.RawMessage, string, error) {
	specs := make([]json.RawMessage, len(req.Specs))
	for i, sp := range req.Specs {
		b, err := json.Marshal(sp)
		if err != nil {
			return nil, "", fmt.Errorf("job: spec %d is not serializable (durable mode needs named builders): %w", i, err)
		}
		specs[i] = b
	}
	raw, err := json.Marshal(storedRequest{
		Specs:       specs,
		Replicas:    req.Replicas,
		Workers:     req.Workers,
		Until:       req.Until,
		Every:       req.Every,
		MaxDuration: int64(req.MaxDuration),
	})
	if err != nil {
		return nil, "", fmt.Errorf("job: encoding request: %w", err)
	}
	return raw, contentHash(specs, req.Replicas, req.Until, req.Every), nil
}

// decodeRequest rebuilds a runnable Request from its stored form.
func decodeRequest(raw json.RawMessage) (Request, error) {
	var sr storedRequest
	if err := json.Unmarshal(raw, &sr); err != nil {
		return Request{}, fmt.Errorf("job: decoding stored request: %w", err)
	}
	req := Request{
		Replicas:    sr.Replicas,
		Workers:     sr.Workers,
		Until:       sr.Until,
		Every:       sr.Every,
		MaxDuration: time.Duration(sr.MaxDuration),
		Specs:       make([]*parsurf.SessionSpec, len(sr.Specs)),
	}
	for i, b := range sr.Specs {
		sp, err := parsurf.ParseSpec(b)
		if err != nil {
			return Request{}, fmt.Errorf("job: stored spec %d: %w", i, err)
		}
		req.Specs[i] = sp
	}
	return req, nil
}

// contentHash is the SHA-256 content address of (specs, replicas,
// until, every). The spec bytes are the byte-fixed-point specfile
// marshal, so identical workloads hash identically across processes.
// Workers is deliberately excluded: merged Mean/Std are bit-identical
// for every worker count, so runs differing only in worker fan-out
// share one result.
func contentHash(specs []json.RawMessage, replicas int, until, every float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "parsurf-job-v1 replicas=%d until=%016x every=%016x\n",
		replicas, math.Float64bits(until), math.Float64bits(every))
	for _, b := range specs {
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Manager owns the bounded runner pool and the job table.
type Manager struct {
	st store.Store // nil: in-memory only

	// exec, when set, runs every job instead of the local sweep runner.
	exec Executor

	// ckptEvery is the minimum wall-clock interval between replica
	// checkpoints; 0 disables checkpointing.
	ckptEvery time.Duration
	// maxAttempts bounds crash-interrupted runs before quarantine.
	maxAttempts int

	// maxJobDuration caps every job's wall-clock run time (0: none); a
	// request's own MaxDuration may only tighten it.
	maxJobDuration time.Duration
	// maxCells and maxReplicas are the per-job admission caps (0:
	// uncapped): lattice cells per variant, total replicas per job.
	// Breaching one is a permanent validation error, never overload.
	maxCells    int64
	maxReplicas int
	// maxActiveCost bounds the summed cost estimate of every admitted,
	// not-yet-terminal job (0: unbounded); activeCost is the running
	// committed total. Atomic because terminal transitions release it
	// from setState, which must not take m.mu (Submit holds it while
	// calling setState).
	maxActiveCost int64
	activeCost    atomic.Int64

	// chaosPanicSet arms panic injection: jobs whose spec seed equals
	// chaosPanicSeed panic inside a replica (see ChaosPanicSeed).
	chaosPanicSet  bool
	chaosPanicSeed uint64

	// started counts jobs that actually executed (entered RunSweep) —
	// cache hits never increment it, which is what lets tests and the
	// CI durability check assert "served from cache" without timing.
	started atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int
	closed bool

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// DefaultBacklog bounds the queued-job count when NewManager is given
// no explicit backlog.
const DefaultBacklog = 256

// DefaultMaxAttempts is how many crash-interrupted runs a job gets
// before recovery quarantines it instead of re-queueing.
const DefaultMaxAttempts = 3

// ManagerOption configures a Manager beyond its pool shape.
type ManagerOption func(*Manager)

// CheckpointEvery makes a durable manager snapshot each running replica
// into the store at most once per interval d (checked at the replica's
// grid points). A crash or shutdown then costs at most d of simulated
// work per replica: the next boot resumes each replica from its latest
// valid snapshot instead of replaying from zero. d <= 0 (the default)
// disables checkpointing; the option has no effect on store-less
// managers.
func CheckpointEvery(d time.Duration) ManagerOption {
	return func(m *Manager) { m.ckptEvery = d }
}

// MaxAttempts sets how many crash-interrupted runs a job gets before it
// is quarantined (default DefaultMaxAttempts). Values below 1 are
// ignored.
func MaxAttempts(n int) ManagerOption {
	return func(m *Manager) {
		if n >= 1 {
			m.maxAttempts = n
		}
	}
}

// MaxJobDuration caps every job's wall-clock run time: past it the job
// lands in StateDeadlineExceeded. A request's own MaxDuration may only
// tighten the cap. d <= 0 (the default) leaves run time unbounded.
func MaxJobDuration(d time.Duration) ManagerOption {
	return func(m *Manager) { m.maxJobDuration = d }
}

// MaxCells rejects submissions at admission time when any variant's
// lattice exceeds n cells (l0 × l1) — a permanent validation error,
// not load shedding. n <= 0 (the default) uncaps.
func MaxCells(n int64) ManagerOption {
	return func(m *Manager) { m.maxCells = n }
}

// MaxReplicas rejects submissions whose total replica count (specs ×
// replicas) exceeds n. n <= 0 (the default) uncaps.
func MaxReplicas(n int) ManagerOption {
	return func(m *Manager) { m.maxReplicas = n }
}

// MaxActiveCost bounds the summed cost estimate (lattice cells ×
// concurrent replicas + species × grid points, per variant) of every
// admitted job that has not yet reached a terminal state. Submissions
// past the budget shed with ErrOverloaded — transient, retryable —
// instead of being admitted into an over-committed pool. n <= 0 (the
// default) leaves the aggregate unbounded.
func MaxActiveCost(n int64) ManagerOption {
	return func(m *Manager) { m.maxActiveCost = n }
}

// ChaosPanicSeed arms fault injection for chaos drills: any job with a
// spec whose seed equals seed panics inside replica 0 at its first
// sampled grid point past t=0. The panic exercises the genuine
// containment path — recovered in the ensemble worker into a
// stack-carrying error, failing only that job while the process keeps
// serving. Off by default; never enable outside tests and drills.
func ChaosPanicSeed(seed uint64) ManagerOption {
	return func(m *Manager) { m.chaosPanicSet, m.chaosPanicSeed = true, seed }
}

// WithExecutor routes every job through ex instead of the local sweep
// runner — the fleet coordinator plugs in here. The manager still owns
// the job lifecycle (queueing, persistence, the result cache, recovery);
// only the replica execution moves. When ex also implements ShardLister
// its shards appear in job statuses, and when it implements JobDropper
// it is told to discard per-job state alongside checkpoint cleanup.
func WithExecutor(ex Executor) ManagerOption {
	return func(m *Manager) { m.exec = ex }
}

// NewManager starts an in-memory manager with the given number of
// concurrent job runners and queue capacity (DefaultBacklog when
// backlog <= 0). Each job additionally fans its replicas over its own
// Request.Workers goroutines, so the peak goroutine budget is
// runners × workers.
func NewManager(runners, backlog int, opts ...ManagerOption) *Manager {
	return newManager(runners, backlog, nil, opts...)
}

// NewManagerWithStore starts a durable manager: submissions persist
// before they are acknowledged, completed results persist as
// content-addressed blobs, and the store's existing records are
// recovered before the manager accepts new work — completed jobs serve
// their stored results, failed/cancelled jobs keep their terminal
// status, and jobs that were queued or running when the previous
// process died are re-queued in their original submission order (with
// their replicas resuming from stored checkpoints, when the manager
// checkpoints). The backlog grows to fit the recovered active set if
// needed.
//
// Recovery is poison-tolerant: a record that no longer decodes is
// quarantined (kept visible with its error, never re-run) instead of
// failing the whole boot, and a job found mid-run for the
// MaxAttempts'th time — one that keeps crashing the process — is
// quarantined too. Re-queued crash survivors restart under exponential
// backoff.
func NewManagerWithStore(runners, backlog int, st store.Store, opts ...ManagerOption) (*Manager, error) {
	if st == nil {
		return nil, fmt.Errorf("job: NewManagerWithStore needs a store")
	}
	recs, err := st.Jobs()
	if err != nil {
		return nil, fmt.Errorf("job: listing store: %w", err)
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Submitted != recs[b].Submitted {
			return recs[a].Submitted < recs[b].Submitted
		}
		return recs[a].Seq < recs[b].Seq
	})
	if backlog <= 0 {
		backlog = DefaultBacklog
	}
	if len(recs) > backlog {
		backlog = len(recs) // active set can never exceed the record count
	}
	m := newManager(runners, backlog, st, opts...)
	for _, rec := range recs {
		j, active := m.recover(rec)
		m.mu.Lock()
		m.jobs[j.id] = j
		if j.seq > m.nextID {
			m.nextID = j.seq
		}
		m.mu.Unlock()
		if active {
			m.queue <- j // sized above: cannot block
		}
	}
	return m, nil
}

// recover rebuilds one stored record into a job, deciding its fate:
// terminal records stay as they are, active ones re-queue (crash
// survivors with backoff), and anything undecodable or past its crash
// budget is quarantined.
func (m *Manager) recover(rec *store.JobRecord) (j *Job, active bool) {
	quarantine := func(qerr error) *Job {
		j := m.rebuildStub(rec, qerr)
		j.persist(StateQuarantined, qerr)
		j.dropCheckpoints()
		return j
	}
	req, err := decodeRequest(rec.Request)
	if err != nil {
		return quarantine(fmt.Errorf("recovering %s: %w", rec.ID, err)), false
	}
	grid, err := parsurf.NewTimeGrid(req.Until, req.Every)
	if err != nil {
		return quarantine(fmt.Errorf("recovering %s: %w", rec.ID, err)), false
	}
	switch State(rec.State) {
	case StateQueued:
	case StateRunning:
		// Found mid-run: the previous process died (or was killed)
		// while this job executed. Charge an attempt; past the budget
		// the job is poison.
		rec.Attempts++
		if rec.Attempts >= m.maxAttempts {
			return quarantine(fmt.Errorf("run was interrupted %d times; quarantined as a poison job", rec.Attempts)), false
		}
	case StateDone, StateFailed, StateCancelled, StateQuarantined, StateDeadlineExceeded:
		return m.rebuild(rec, req, grid.Len()), false
	default:
		return quarantine(fmt.Errorf("record %s has unknown state %q", rec.ID, rec.State)), false
	}
	j = m.rebuild(rec, req, grid.Len())
	if j.attempts > 0 {
		j.notBefore = time.Now().Add(crashDelay(j.attempts))
	}
	// A re-queued job re-joins the admission budget: it will run again
	// and hold the same resources as a fresh submission.
	j.cost = estimateCost(req, grid.Len())
	j.costCharged.Store(true)
	m.activeCost.Add(j.cost)
	// Re-persist as queued (with the attempt charge) so the stored
	// state matches the re-queue.
	j.persist(StateQueued, nil)
	return j, true
}

// crashRestartBackoff is the restart-delay schedule of crash-recovered
// jobs: the shared truncated-exponential policy, unjittered — recovery
// tests pin the exact delays, and a single process re-queueing its own
// jobs has nothing to decorrelate.
var crashRestartBackoff = backoff.Policy{Base: time.Second, Max: 30 * time.Second}

// crashDelay is the restart delay after the nth crash interruption.
func crashDelay(n int) time.Duration {
	if n < 1 {
		return 0
	}
	return crashRestartBackoff.Delay(n - 1)
}

// rebuildStub builds a quarantined placeholder for a record whose
// request cannot run: visible in listings with its error, terminal from
// birth.
func (m *Manager) rebuildStub(rec *store.JobRecord, qerr error) *Job {
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		id:        rec.ID,
		seq:       rec.Seq,
		mgr:       m,
		hash:      rec.Hash,
		rawReq:    rec.Request,
		cached:    rec.Cached,
		attempts:  rec.Attempts,
		submitted: time.Unix(0, rec.Submitted),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQuarantined,
		err:       qerr,
		done:      make(chan struct{}),
	}
	close(j.done)
	cancel()
	return j
}

// rebuild constructs the in-memory job for a stored record. Recovered
// terminal jobs start with their Done channel closed and zeroed
// progress; their results load lazily from the store.
func (m *Manager) rebuild(rec *store.JobRecord, req Request, gridLen int) *Job {
	ctx, cancel := context.WithCancel(m.ctx)
	slots := len(req.Specs) * req.Replicas
	j := &Job{
		id:        rec.ID,
		seq:       rec.Seq,
		req:       req,
		mgr:       m,
		hash:      rec.Hash,
		rawReq:    rec.Request,
		cached:    rec.Cached,
		attempts:  rec.Attempts,
		submitted: time.Unix(0, rec.Submitted),
		ctx:       ctx,
		cancel:    cancel,
		gridLen:   gridLen,
		slotSteps: make([]atomic.Uint64, slots),
		slotTime:  make([]atomic.Uint64, slots),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	// Keep the stored absolute deadline: a recovered running job gets
	// only the budget it has left, and a past deadline fails it on its
	// first step instead of granting a fresh allowance.
	j.deadlineNS.Store(rec.Deadline)
	state := State(rec.State)
	if state.Terminal() {
		j.state = state
		switch {
		case rec.Error != "":
			j.err = errors.New(rec.Error)
		case state == StateCancelled:
			j.err = context.Canceled
		}
		close(j.done)
		cancel()
	}
	return j
}

// newManager builds the manager and starts its runner goroutines.
func newManager(runners, backlog int, st store.Store, opts ...ManagerOption) *Manager {
	if runners < 1 {
		runners = 1
	}
	if backlog <= 0 {
		backlog = DefaultBacklog
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		st:          st,
		maxAttempts: DefaultMaxAttempts,
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, backlog),
		ctx:         ctx,
		cancel:      cancel,
	}
	for _, opt := range opts {
		opt(m)
	}
	m.wg.Add(runners)
	for i := 0; i < runners; i++ {
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				j.run()
			}
		}()
	}
	return m
}

// RunsStarted returns how many jobs actually executed (entered the
// sweep runner) since the manager started. Cache hits and recovered
// terminal jobs never count, so the delta across a resubmission is the
// cache-hit test.
func (m *Manager) RunsStarted() int64 { return m.started.Load() }

// ActiveCost returns the aggregate admission-cost estimate currently
// committed to admitted, not-yet-terminal jobs.
func (m *Manager) ActiveCost() int64 { return m.activeCost.Load() }

// estimateCost scores a request's resource appetite for admission
// control: per variant, lattice cells × the replicas that can be
// resident at once (bounded by the worker pool) — the live engine
// state — plus species × grid points for the merged series. A proxy,
// not a measurement; its job is only to rank a 4096²×64-replica sweep
// far above a 64² single run so the aggregate budget means something.
func estimateCost(req Request, gridLen int) int64 {
	conc := req.Workers
	if req.Replicas < conc {
		conc = req.Replicas
	}
	if conc < 1 {
		conc = 1
	}
	var total int64
	for _, sp := range req.Specs {
		l0, l1 := sp.Extents()
		total += int64(l0)*int64(l1)*int64(conc) + int64(sp.NumSpecies())*int64(gridLen)
	}
	return total
}

// admit enforces the per-job admission caps. A request over -max-cells
// or -max-replicas can never run on this server whatever the load, so
// breaching one is a plain validation error (HTTP 400) — retrying it
// unchanged is pointless — unlike the transient ErrOverloaded paths.
func (m *Manager) admit(req Request) error {
	if m.maxReplicas > 0 {
		if total := len(req.Specs) * req.Replicas; total > m.maxReplicas {
			return fmt.Errorf("job: %d total replicas (%d specs × %d) exceeds the server cap of %d",
				total, len(req.Specs), req.Replicas, m.maxReplicas)
		}
	}
	if m.maxCells > 0 {
		for i, sp := range req.Specs {
			l0, l1 := sp.Extents()
			if cells := int64(l0) * int64(l1); cells > m.maxCells {
				return fmt.Errorf("job: spec %d lattice %d×%d (%d cells) exceeds the server cap of %d cells",
					i, l0, l1, cells, m.maxCells)
			}
		}
	}
	return nil
}

// chaosObserver returns the fault-injecting replica observer for jobs
// matching the armed ChaosPanicSeed, nil (the default) for everything
// else. The returned observer panics on replica 0's first sampled grid
// point past t=0 — inside the ensemble worker goroutine, exactly where
// a real engine bug would fire.
func (m *Manager) chaosObserver(j *Job) parsurf.ReplicaObserver {
	if !m.chaosPanicSet {
		return nil
	}
	armed := false
	for _, sp := range j.req.Specs {
		if sp.Seed() == m.chaosPanicSeed {
			armed = true
			break
		}
	}
	if !armed {
		return nil
	}
	seed := m.chaosPanicSeed
	return func(variant, replica int, t float64, sess *parsurf.Session) {
		if replica == 0 && t > 0 {
			panic(fmt.Sprintf("chaos: injected replica panic (seed %d)", seed))
		}
	}
}

// Submit validates and enqueues a job, returning it immediately. It
// fails when the request is malformed, the manager is shut down, or
// the backlog is full. On a durable manager the job record is
// persisted before Submit returns, and a request whose content hash
// matches a stored completed result (unless Request.NoCache) is
// answered without running: the returned job is already done, its
// result served from the store.
func (m *Manager) Submit(req Request) (*Job, error) {
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("job: request needs at least one spec")
	}
	for i, spec := range req.Specs {
		if spec == nil {
			return nil, fmt.Errorf("job: spec %d is nil", i)
		}
	}
	if req.Replicas == 0 {
		req.Replicas = 1
	}
	if req.Replicas < 0 {
		return nil, fmt.Errorf("job: negative replica count %d", req.Replicas)
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.Workers < 0 {
		return nil, fmt.Errorf("job: negative worker count %d", req.Workers)
	}
	if req.MaxDuration < 0 {
		return nil, fmt.Errorf("job: negative max duration %s", req.MaxDuration)
	}
	// Validate the grid up front so a degenerate schedule is a Submit
	// error, not a failed job; the grid length also sizes the progress
	// denominator.
	grid, err := parsurf.NewTimeGrid(req.Until, req.Every)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	if err := m.admit(req); err != nil {
		return nil, err
	}

	var (
		rawReq    json.RawMessage
		hash      string
		cachedRes *store.Result
	)
	if m.st != nil {
		rawReq, hash, err = encodeRequest(req)
		if err != nil {
			return nil, err
		}
		if !req.NoCache {
			if res, err := m.st.GetResult(hash); err == nil {
				cachedRes = res
			}
			// A store read error (not just a miss) degrades to a cache
			// miss: availability of the run beats the shortcut.
		}
	}

	// The whole registration, including the non-blocking enqueue, runs
	// under the manager lock. Close sets the closed flag under this
	// lock before it closes the queue channel (outside the lock), so a
	// submit that reached the send must have observed !closed while
	// Close was still waiting for the lock — the send always happens
	// before the close. Moving the closed check out of the critical
	// section would break that handshake.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("job: manager is shut down")
	}
	m.nextID++
	seq := m.nextID
	id := fmt.Sprintf("job-%d", seq)
	ctx, cancel := context.WithCancel(m.ctx)
	slots := len(req.Specs) * req.Replicas
	j := &Job{
		id:        id,
		seq:       seq,
		req:       req,
		mgr:       m,
		hash:      hash,
		rawReq:    rawReq,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		gridLen:   grid.Len(),
		slotSteps: make([]atomic.Uint64, slots),
		slotTime:  make([]atomic.Uint64, slots),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	if cachedRes != nil {
		// Cache hit: the job is born done, never touches the queue,
		// and persists as a done record pointing at the shared blob.
		j.cached = true
		j.state = StateDone
		j.res = cachedRes
		close(j.done)
		cancel()
		if err := m.putJobRecord(j, StateDone, nil); err != nil {
			m.nextID--
			return nil, err
		}
		m.jobs[id] = j
		return j, nil
	}
	// Transient capacity checks, now that the request is known valid
	// and uncached: both shed with ErrOverloaded so the HTTP layer can
	// answer 429 + Retry-After instead of a terminal-looking 400.
	j.cost = estimateCost(req, grid.Len())
	if m.maxActiveCost > 0 && m.activeCost.Load()+j.cost > m.maxActiveCost {
		cancel()
		m.nextID--
		return nil, fmt.Errorf("job: active-cost budget exhausted (%d committed of %d, job needs %d); %w",
			m.activeCost.Load(), m.maxActiveCost, j.cost, ErrOverloaded)
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		m.nextID--
		return nil, fmt.Errorf("job: backlog full (%d queued); %w", cap(m.queue), ErrOverloaded)
	}
	// Charge the admission budget only after the enqueue sticks; every
	// terminal transition — including the persist-failure cancellation
	// just below — releases it exactly once via setState.
	j.costCharged.Store(true)
	m.activeCost.Add(j.cost)
	// Persist before acknowledgment: a submission the client saw
	// accepted must survive a restart. The job is already enqueued; if
	// the record cannot be written, cancel it (the runner drains it as
	// a no-op) and report the store failure instead of accepting.
	if err := m.putJobRecord(j, StateQueued, nil); err != nil {
		j.userCancel.Store(true)
		cancel()
		j.setState(StateCancelled, context.Canceled, nil)
		m.nextID--
		return nil, err
	}
	m.jobs[id] = j
	return j, nil
}

// putJobRecord persists a record for j with the given state, surfacing
// the error (unlike the best-effort mid-flight persists).
func (m *Manager) putJobRecord(j *Job, s State, jobErr error) error {
	if m.st == nil {
		return nil
	}
	rec := &store.JobRecord{
		ID:        j.id,
		Seq:       j.seq,
		Hash:      j.hash,
		State:     string(s),
		Cached:    j.cached,
		Submitted: j.submitted.UnixNano(),
		Deadline:  j.deadlineNS.Load(),
		Request:   j.rawReq,
	}
	if jobErr != nil {
		rec.Error = jobErr.Error()
	}
	if err := m.st.PutJob(rec); err != nil {
		return fmt.Errorf("job: persisting %s: %w", j.id, err)
	}
	return nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job ordered by submission time (then
// sequence number) — deterministic across restarts, where recovery
// reads records in whatever order the store lists them.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].submitted.Equal(out[b].submitted) {
			return out[a].submitted.Before(out[b].submitted)
		}
		return out[a].seq < out[b].seq
	})
	return out
}

// Close stops accepting submissions, cancels every job (queued jobs
// never start; running replicas abort within one engine step) and
// waits for the runners to drain. On a durable manager, jobs
// interrupted by Close keep resumable stored records (queued), so the
// next NewManagerWithStore on the same store re-queues them; only
// cancellations requested through Job.Cancel persist as cancelled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.cancel()
	close(m.queue)
	m.wg.Wait()
	// Queued jobs that were drained by cancelled runners still need a
	// terminal state in memory; their stored records stay queued (see
	// finishErr), which is exactly what makes them resume on restart.
	for _, j := range m.Jobs() {
		j.finishErr(context.Canceled)
	}
}
