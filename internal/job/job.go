// Package job is the service layer over the declarative session spec:
// a manager that accepts specs as plain data, runs them — single
// sessions, ensembles, or whole parameter sweeps — on a bounded pool
// of job runners, tracks per-job progress (engine steps, simulated
// time, grid points merged), supports cancellation, and exposes
// results as the library's Series/moment types. cmd/surfd wraps it in
// an HTTP server; the manager itself is transport-agnostic and safe
// for concurrent use.
//
// Every run goes through parsurf.RunSweep, so a job inherits the
// ensemble machinery wholesale: replicas on split RNG streams merged
// bit-identically for any worker count, first-error/cancel semantics —
// cancelling a job cancels its context, which aborts every replica
// within one engine step — and the replica pool: each variant's model
// arena is compiled once per spec, each worker builds one session and
// runs successive replica indices through Session.Reset, and sample
// grids recycle through the streaming merge, so a job's steady-state
// per-replica allocation cost is near zero no matter how many replicas
// it fans out.
package job

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"parsurf"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued marks a job accepted but not yet picked up by a
	// runner.
	StateQueued State = "queued"
	// StateRunning marks a job whose replicas are executing.
	StateRunning State = "running"
	// StateDone marks a successfully completed job; its result is
	// available.
	StateDone State = "done"
	// StateFailed marks a job that returned an error.
	StateFailed State = "failed"
	// StateCancelled marks a job stopped by Cancel (or manager
	// shutdown) before completing.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request describes one job: which specs to run and how to sample
// them. One spec is a single session or ensemble; several specs form a
// sweep (one ensemble per variant over a shared worker pool).
type Request struct {
	// Specs are the session specs to run; at least one.
	Specs []*parsurf.SessionSpec
	// Replicas per variant (default 1: a single session per spec).
	Replicas int
	// Workers is the goroutine count of the job's replica pool
	// (default 1).
	Workers int
	// Until is the simulated-time horizon (required, > 0).
	Until float64
	// Every is the sampling interval (required, > 0).
	Every float64
}

// Progress is a point-in-time snapshot of a running job's advancement,
// assembled from per-replica counters the replica goroutines publish
// at every grid point.
type Progress struct {
	// Replicas is the total replica count across variants.
	Replicas int `json:"replicas"`
	// Steps is the total engine Step calls across replicas (as of each
	// replica's latest grid point).
	Steps uint64 `json:"steps"`
	// SimTime is the ensemble frontier: the minimum simulated time any
	// replica has reached. Every replica is at least this far.
	SimTime float64 `json:"simTime"`
	// GridPointsMerged counts (replica, grid point) samples taken, out
	// of TotalGridPoints.
	GridPointsMerged int64 `json:"gridPointsMerged"`
	// TotalGridPoints is Replicas × grid length.
	TotalGridPoints int64 `json:"totalGridPoints"`
}

// Status is a snapshot of a job's state, progress and (terminal) error.
type Status struct {
	ID       string   `json:"id"`
	State    State    `json:"state"`
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
}

// Job is one submitted workload. All methods are safe for concurrent
// use.
type Job struct {
	id  string
	req Request

	ctx    context.Context
	cancel context.CancelFunc

	gridLen int

	// Per-replica counters, each written only by its replica's
	// goroutine at grid points; snapshots read them atomically.
	slotSteps []atomic.Uint64
	slotTime  []atomic.Uint64 // Float64bits; zero = not yet observed
	merged    atomic.Int64

	mu     sync.Mutex
	state  State
	err    error
	result []*parsurf.Ensemble

	done chan struct{}
}

// ID returns the manager-assigned job id.
func (j *Job) ID() string { return j.id }

// Request returns the job's request (shared specs; treat as
// read-only).
func (j *Job) Request() Request { return j.req }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel stops the job: queued jobs never start, running jobs abort
// every replica within one engine step (the ensemble first-error/
// cancel machinery). The job is marked cancelled immediately; its
// runner is freed as soon as the replicas notice the cancelled
// context. Safe to call repeatedly and after completion.
func (j *Job) Cancel() {
	j.cancel()
	j.setState(StateCancelled, context.Canceled, nil)
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	state, err := j.state, j.err
	j.mu.Unlock()
	st := Status{ID: j.id, State: state, Progress: j.progress()}
	if err != nil {
		st.Error = err.Error()
	}
	return st
}

// Result returns the per-variant ensembles of a completed job. It
// errors until the job is done (poll Status or wait on Done first).
func (j *Job) Result() ([]*parsurf.Ensemble, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, j.err
	case StateCancelled:
		return nil, fmt.Errorf("job: %s was cancelled", j.id)
	default:
		return nil, fmt.Errorf("job: %s is %s; no result yet", j.id, j.state)
	}
}

// progress assembles the counter snapshot.
func (j *Job) progress() Progress {
	p := Progress{
		Replicas:         len(j.slotSteps),
		TotalGridPoints:  int64(len(j.slotSteps)) * int64(j.gridLen),
		GridPointsMerged: j.merged.Load(),
	}
	frontier := math.Inf(1)
	for i := range j.slotSteps {
		p.Steps += j.slotSteps[i].Load()
		t := math.Float64frombits(j.slotTime[i].Load())
		if t < frontier {
			frontier = t
		}
	}
	if math.IsInf(frontier, 1) {
		frontier = 0
	}
	p.SimTime = frontier
	return p
}

// observe is the per-replica grid-point hook: it publishes the
// replica's engine counters. Each (variant, replica) slot is written
// only from that replica's goroutine.
func (j *Job) observe(variant, replica int, t float64, sess *parsurf.Session) {
	slot := variant*j.req.Replicas + replica
	eng := sess.Engine()
	j.slotSteps[slot].Store(eng.Steps())
	j.slotTime[slot].Store(math.Float64bits(eng.Time()))
	j.merged.Add(1)
}

// setState transitions the job; terminal states close Done and cancel
// the job context, releasing its registration under the manager
// context (a completed job would otherwise pin a child context for
// the life of the server).
func (j *Job) setState(s State, err error, result []*parsurf.Ensemble) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.err = err
	j.result = result
	if s.Terminal() {
		close(j.done)
		j.cancel()
	}
}

// run executes the job on the calling runner goroutine.
func (j *Job) run() {
	if j.ctx.Err() != nil {
		j.finishErr(j.ctx.Err())
		return
	}
	j.setState(StateRunning, nil, nil)
	ens, err := parsurf.RunSweep(j.ctx, j.req.Specs, j.req.Replicas, j.req.Workers,
		j.req.Until, j.req.Every, parsurf.ObserveReplicas(j.observe))
	if err != nil {
		j.finishErr(err)
		return
	}
	j.setState(StateDone, nil, ens)
}

// finishErr classifies a terminal error: a cancellation requested via
// Cancel (or manager shutdown) is StateCancelled, anything else is a
// failure.
func (j *Job) finishErr(err error) {
	if errors.Is(err, context.Canceled) {
		j.setState(StateCancelled, err, nil)
		return
	}
	j.setState(StateFailed, err, nil)
}

// Manager owns the bounded runner pool and the job table.
type Manager struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// DefaultBacklog bounds the queued-job count when NewManager is given
// no explicit backlog.
const DefaultBacklog = 256

// NewManager starts a manager with the given number of concurrent job
// runners and queue capacity (DefaultBacklog when backlog <= 0). Each
// job additionally fans its replicas over its own Request.Workers
// goroutines, so the peak goroutine budget is runners × workers.
func NewManager(runners, backlog int) *Manager {
	if runners < 1 {
		runners = 1
	}
	if backlog <= 0 {
		backlog = DefaultBacklog
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		jobs:   make(map[string]*Job),
		queue:  make(chan *Job, backlog),
		ctx:    ctx,
		cancel: cancel,
	}
	m.wg.Add(runners)
	for i := 0; i < runners; i++ {
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				j.run()
			}
		}()
	}
	return m
}

// Submit validates and enqueues a job, returning it immediately. It
// fails when the request is malformed, the manager is shut down, or
// the backlog is full.
func (m *Manager) Submit(req Request) (*Job, error) {
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("job: request needs at least one spec")
	}
	for i, spec := range req.Specs {
		if spec == nil {
			return nil, fmt.Errorf("job: spec %d is nil", i)
		}
	}
	if req.Replicas == 0 {
		req.Replicas = 1
	}
	if req.Replicas < 0 {
		return nil, fmt.Errorf("job: negative replica count %d", req.Replicas)
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.Workers < 0 {
		return nil, fmt.Errorf("job: negative worker count %d", req.Workers)
	}
	// Validate the grid up front so a degenerate schedule is a Submit
	// error, not a failed job; the grid length also sizes the progress
	// denominator.
	grid, err := parsurf.NewTimeGrid(req.Until, req.Every)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}

	// The whole registration, including the non-blocking enqueue, runs
	// under the manager lock. Close sets the closed flag under this
	// lock before it closes the queue channel (outside the lock), so a
	// submit that reached the send must have observed !closed while
	// Close was still waiting for the lock — the send always happens
	// before the close. Moving the closed check out of the critical
	// section would break that handshake.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("job: manager is shut down")
	}
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	ctx, cancel := context.WithCancel(m.ctx)
	slots := len(req.Specs) * req.Replicas
	j := &Job{
		id:        id,
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		gridLen:   grid.Len(),
		slotSteps: make([]atomic.Uint64, slots),
		slotTime:  make([]atomic.Uint64, slots),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, fmt.Errorf("job: backlog full (%d queued)", cap(m.queue))
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	return j, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Close stops accepting submissions, cancels every job (queued jobs
// never start; running replicas abort within one engine step) and
// waits for the runners to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.cancel()
	close(m.queue)
	m.wg.Wait()
	// Queued jobs that were drained by cancelled runners still need a
	// terminal state.
	for _, j := range m.Jobs() {
		j.finishErr(context.Canceled)
	}
}
