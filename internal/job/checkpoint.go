// Replica checkpointing: the durable manager's preemption layer. While
// a job runs, each replica periodically snapshots itself into the store
// — the engine-exact session checkpoint plus the sample rows already
// recorded on the grid — keyed by the job's content hash and the
// replica's slot index. After a crash or kill, recovery re-queues the
// job and its replicas resume from their latest valid snapshots,
// continuing the trajectory bit for bit; the merged result is
// byte-identical to an uninterrupted run. Invalid or stale snapshots
// are skipped silently (the replica just re-runs from zero): a
// checkpoint is an optimization, never a correctness dependency.

package job

import (
	"bytes"
	"math"
	"strconv"
	"time"

	"parsurf"
	"parsurf/internal/persist"
)

const (
	// replicaCkptVersion versions the replica checkpoint blob layout.
	replicaCkptVersion = 1
	// maxCkptSession bounds the embedded session checkpoint when
	// decoding untrusted blob bytes.
	maxCkptSession = 1 << 27
	// maxCkptPoints bounds the recorded grid columns when decoding.
	maxCkptPoints = 1 << 24
)

// encodeReplicaCheckpoint serializes one replica snapshot: identity
// (variant, replica), the number of grid points already recorded, the
// recorded sample rows, and the session's engine-exact checkpoint.
func encodeReplicaCheckpoint(variant, replica, nextK int, sess *parsurf.Session, values [][]float64) ([]byte, error) {
	var cp bytes.Buffer
	if err := sess.Checkpoint(&cp); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	e := persist.NewWriter(&buf)
	e.U32(replicaCkptVersion)
	e.U32(uint32(variant))
	e.U32(uint32(replica))
	e.U32(uint32(nextK))
	e.U32(uint32(len(values)))
	for _, row := range values {
		for _, x := range row[:nextK] {
			e.F64(x)
		}
	}
	e.Block(cp.Bytes())
	if err := e.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeReplicaCheckpoint parses a blob written by
// encodeReplicaCheckpoint.
func decodeReplicaCheckpoint(data []byte) (variant, replica, nextK int, rows [][]float64, session []byte, err error) {
	d := persist.NewReader(bytes.NewReader(data))
	if v := d.U32(); d.Err() == nil && v != replicaCkptVersion {
		d.Failf("job: replica checkpoint version %d, want %d", v, replicaCkptVersion)
	}
	variant = int(d.U32())
	replica = int(d.U32())
	k := d.U32()
	species := d.U32()
	if d.Err() == nil && (k < 1 || k > maxCkptPoints) {
		d.Failf("job: replica checkpoint records %d grid points", k)
	}
	if d.Err() == nil && (species < 1 || species > 256) {
		d.Failf("job: replica checkpoint carries %d species", species)
	}
	if d.Err() != nil {
		return 0, 0, 0, nil, nil, d.Err()
	}
	rows = make([][]float64, species)
	for sp := range rows {
		rows[sp] = make([]float64, k)
		for i := range rows[sp] {
			rows[sp][i] = d.F64()
		}
	}
	session = d.Block(maxCkptSession)
	if err := d.Err(); err != nil {
		return 0, 0, 0, nil, nil, err
	}
	return variant, replica, int(k), rows, session, nil
}

// EncodeReplicaCheckpoint exposes the replica snapshot codec: fleet
// workers write the same blobs for their mid-shard snapshots, keyed in
// their own local stores.
func EncodeReplicaCheckpoint(variant, replica, nextK int, sess *parsurf.Session, values [][]float64) ([]byte, error) {
	return encodeReplicaCheckpoint(variant, replica, nextK, sess, values)
}

// DecodeReplicaCheckpoint parses a blob written by
// EncodeReplicaCheckpoint.
func DecodeReplicaCheckpoint(data []byte) (variant, replica, nextK int, rows [][]float64, session []byte, err error) {
	return decodeReplicaCheckpoint(data)
}

// checkpointer rate-limits and writes replica snapshots for one job
// run. Each slot's lastSnap entry is touched only by the goroutine
// driving that replica (the ensemble runner pins a replica to one
// worker for its whole duration), so no locking is needed.
type checkpointer struct {
	j        *Job
	interval time.Duration
	lastSnap []time.Time
}

// newCheckpointer returns the job's checkpoint hook carrier, or nil
// when checkpointing is off (no store, no hash, or a zero interval).
func (j *Job) newCheckpointer() *checkpointer {
	if j.mgr.st == nil || j.hash == "" || j.mgr.ckptEvery <= 0 {
		return nil
	}
	slots := len(j.req.Specs) * j.req.Replicas
	last := make([]time.Time, slots)
	now := time.Now()
	for i := range last {
		last[i] = now // first snapshot comes one interval into the run
	}
	return &checkpointer{j: j, interval: j.mgr.ckptEvery, lastSnap: last}
}

// hook is the parsurf.ReplicaCheckpoint: called after every grid point,
// it snapshots the replica when its interval has elapsed. Failures are
// swallowed — a missed snapshot only widens the window a crash can lose.
func (c *checkpointer) hook(variant, replica, k int, sess *parsurf.Session, values [][]float64) {
	slot := variant*c.j.req.Replicas + replica
	if time.Since(c.lastSnap[slot]) < c.interval {
		return
	}
	c.lastSnap[slot] = time.Now()
	blob, err := encodeReplicaCheckpoint(variant, replica, k+1, sess, values)
	if err != nil {
		return
	}
	_ = c.j.mgr.st.PutCheckpoint(c.j.hash, strconv.Itoa(slot), blob)
}

// resumeProvider returns the parsurf.ReplicaResume for this run, or nil
// when there is nothing to resume from. It loads whatever snapshots the
// store holds under the job's hash up front (the blobs are about to be
// consumed by the run's own replicas) and validates each lazily, per
// replica: any snapshot that fails to decode, names the wrong slot, or
// no longer matches the spec is skipped and the replica runs from zero.
func (j *Job) resumeProvider() parsurf.ReplicaResume {
	st := j.mgr.st
	if st == nil || j.hash == "" {
		return nil
	}
	slots, err := st.Checkpoints(j.hash)
	if err != nil || len(slots) == 0 {
		return nil
	}
	blobs := make(map[int][]byte, len(slots))
	for _, s := range slots {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			continue
		}
		if data, err := st.GetCheckpoint(j.hash, s); err == nil {
			blobs[n] = data
		}
	}
	if len(blobs) == 0 {
		return nil
	}
	return func(variant, replica int) (*parsurf.Session, int, [][]float64, bool) {
		slot := variant*j.req.Replicas + replica
		data, ok := blobs[slot]
		if !ok {
			return nil, 0, nil, false
		}
		v, r, nextK, rows, cpBytes, err := decodeReplicaCheckpoint(data)
		if err != nil || v != variant || r != replica || nextK > j.gridLen ||
			len(rows) != j.req.Specs[variant].NumSpecies() {
			return nil, 0, nil, false
		}
		sess, err := parsurf.ResumeSession(j.req.Specs[variant], bytes.NewReader(cpBytes))
		if err != nil {
			return nil, 0, nil, false
		}
		// Pre-fill the progress slots with the resumed position so the
		// first status snapshot already reflects the carried-over work.
		j.slotSteps[slot].Store(sess.Engine().Steps())
		j.slotTime[slot].Store(math.Float64bits(sess.Engine().Time()))
		j.merged.Add(int64(nextK))
		j.resumed.Add(1)
		return sess, nextK, rows, true
	}
}
