package job

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"parsurf"
)

// ziffSpec builds a small model-free spec for job tests.
func ziffSpec(t *testing.T, y float64, seed uint64) *parsurf.SessionSpec {
	t.Helper()
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(24, 24),
		parsurf.WithEngine("ziff", parsurf.COFraction(y)),
		parsurf.WithSeed(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// waitTerminal blocks until the job finishes or the deadline passes.
func waitTerminal(t *testing.T, j *Job, d time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %s still %s after %v", j.ID(), j.Status().State, d)
	}
	return j.Status()
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	const replicas, until, every = 3, 5.0, 1.0
	j, err := m.Submit(Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 42)},
		Replicas: replicas,
		Workers:  2,
		Until:    until,
		Every:    every,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID(), "job-") {
		t.Errorf("job id %q", j.ID())
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	grid, err := parsurf.NewTimeGrid(until, every)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := int64(replicas) * int64(grid.Len())
	if st.Progress.GridPointsMerged != wantPoints || st.Progress.TotalGridPoints != wantPoints {
		t.Errorf("progress %d/%d grid points, want %d/%d",
			st.Progress.GridPointsMerged, st.Progress.TotalGridPoints, wantPoints, wantPoints)
	}
	if st.Progress.Steps == 0 {
		t.Error("no engine steps recorded")
	}
	ens, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(ens) != 1 {
		t.Fatalf("%d ensembles, want 1", len(ens))
	}
	if got := ens[0].Mean[0].Len(); got != grid.Len() {
		t.Fatalf("mean has %d points, want %d", got, grid.Len())
	}
	// The job result is exactly what a direct RunEnsemble computes:
	// same spec, same replica streams, same merge.
	if _, err := j.Result(); err != nil {
		t.Fatal(err)
	}
}

// A sweep job returns one ensemble per variant.
func TestJobSweepVariants(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close()
	j, err := m.Submit(Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.45, 1), ziffSpec(t, 0.55, 2)},
		Replicas: 2,
		Workers:  2,
		Until:    3,
		Every:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st.State != StateDone {
		t.Fatalf("state %s (err %q)", st.State, st.Error)
	}
	ens, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(ens) != 2 {
		t.Fatalf("%d ensembles, want 2", len(ens))
	}
	same := true
	for i, x := range ens[0].Mean[1].X {
		if ens[1].Mean[1].X[i] != x {
			same = false
			break
		}
	}
	if same {
		t.Error("different y variants produced identical CO means")
	}
}

// Cancelling a running job stops its replicas: with a single runner,
// a subsequent short job can only complete if the cancelled job's
// effectively-infinite replicas actually aborted and freed the runner.
func TestJobCancelStopsReplicas(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	long, err := m.Submit(Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, 7)},
		Replicas: 2,
		Workers:  2,
		Until:    1e9,
		Every:    1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is demonstrably running (progress moving).
	deadline := time.Now().Add(30 * time.Second)
	for long.Status().Progress.GridPointsMerged == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("long job never reported progress (state %s)", long.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	long.Cancel()
	if st := waitTerminal(t, long, 10*time.Second); st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if _, err := long.Result(); err == nil {
		t.Fatal("cancelled job returned a result")
	}
	// The single runner is only freed when the replicas stop.
	short, err := m.Submit(Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, 8)},
		Until: 2,
		Every: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, short, 30*time.Second); st.State != StateDone {
		t.Fatalf("follow-up job state %s (err %q), want done — cancelled job may still hold the runner",
			st.State, st.Error)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	cases := []struct {
		name string
		req  Request
	}{
		{"no specs", Request{Until: 1, Every: 1}},
		{"nil spec", Request{Specs: []*parsurf.SessionSpec{nil}, Until: 1, Every: 1}},
		{"degenerate grid", Request{Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.5, 1)}, Until: 1, Every: 0}},
		{"negative replicas", Request{Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.5, 1)}, Replicas: -1, Until: 1, Every: 1}},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.req); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// Close cancels running jobs and rejects new submissions.
func TestManagerClose(t *testing.T) {
	m := NewManager(1, 0)
	j, err := m.Submit(Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, 3)},
		Until: 1e9,
		Every: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	st := j.Status()
	if !st.State.Terminal() {
		t.Fatalf("job state %s after Close, want terminal", st.State)
	}
	if _, err := m.Submit(Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.5, 1)}, Until: 1, Every: 1,
	}); err == nil {
		t.Fatal("submit after Close accepted")
	}
}

// Queued jobs past the backlog are rejected, not silently dropped.
func TestBacklogBound(t *testing.T) {
	m := NewManager(1, 1)
	defer m.Close()
	// One long job occupies the runner; one fits the backlog; the next
	// must be rejected.
	submit := func() error {
		_, err := m.Submit(Request{
			Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, 4)},
			Until: 1e9, Every: 1e6,
		})
		return err
	}
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	// The runner may or may not have drained the first job yet, so one
	// or two more submissions fit; the third consecutive success would
	// mean the bound is not enforced.
	rejected := false
	for i := 0; i < 3; i++ {
		if err := submit(); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("backlog of 1 accepted 4 long jobs")
	}
}

// Cancelling a job that already reached a terminal state is a no-op:
// the state, error and result all stay what the terminal transition
// set.
func TestCancelAfterTerminalNoop(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	j, err := m.Submit(Request{
		Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, 5)},
		Until: 2, Every: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st.State != StateDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	j.Cancel()
	j.Cancel() // repeatedly, per the contract
	if st := j.Status(); st.State != StateDone || st.Error != "" {
		t.Fatalf("cancel after done mutated the job: %+v", st)
	}
	if _, err := j.Result(); err != nil {
		t.Fatalf("result lost after post-terminal cancel: %v", err)
	}
}

// With the single runner pinned by a running job, a backlog of one
// holds exactly one queued job: the next submission is rejected with
// the backlog error, deterministically.
func TestBacklogFullRejection(t *testing.T) {
	m := NewManager(1, 1)
	defer m.Close()
	long := func(seed uint64) (*Job, error) {
		return m.Submit(Request{
			Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, seed)},
			Until: 1e9, Every: 1e6,
		})
	}
	runner, err := long(1)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the runner demonstrably holds the first job, so the
	// queue is empty and its capacity the only variable.
	deadline := time.Now().Add(30 * time.Second)
	for runner.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", runner.Status().State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := long(2); err != nil {
		t.Fatalf("backlog of 1 rejected its first queued job: %v", err)
	}
	_, err = long(3)
	if err == nil {
		t.Fatal("backlog of 1 accepted a second queued job")
	}
	if !strings.Contains(err.Error(), "backlog full") {
		t.Fatalf("rejection says %q, want a backlog-full error", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("backlog-full rejection %q does not wrap ErrOverloaded", err)
	}
}

// Submit racing Close never panics on the closed queue and never
// strands a job: every accepted submission reaches a terminal state.
func TestSubmitRacingClose(t *testing.T) {
	m := NewManager(2, 4)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []*Job
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				j, err := m.Submit(Request{
					Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, uint64(g*100+i+1))},
					Until: 1e9, Every: 1e6,
				})
				if err != nil {
					return // shut down or backlog full: both fine
				}
				mu.Lock()
				accepted = append(accepted, j)
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	m.Close()
	wg.Wait()
	for _, j := range accepted {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s stranded in %s after Close raced Submit", j.ID(), j.Status().State)
		}
	}
}
