package job

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smokeSpec is the CI smoke workload: a 32² ziff run submitted as raw
// JSON, exactly what a curl client would post.
const smokeSpec = `{
  "spec": {
    "model": null,
    "lattice": {"l0": 32, "l1": 32},
    "engine": {"name": "ziff", "y": 0.52},
    "seed": 42
  },
  "replicas": 4,
  "workers": 2,
  "until": 10,
  "every": 1
}`

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// The full HTTP workflow: submit → status poll → JSON result → CSV
// result. This is the same sequence the CI smoke step drives with
// curl, run here under the race detector.
func TestServerSubmitStatusResult(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submit returned no job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := getBody(t, ts.URL+"/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if st.Progress.GridPointsMerged != st.Progress.TotalGridPoints || st.Progress.TotalGridPoints == 0 {
		t.Fatalf("progress %d/%d at completion",
			st.Progress.GridPointsMerged, st.Progress.TotalGridPoints)
	}

	code, body2 := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body2)
	}
	var res ResultResponse
	if err := json.Unmarshal([]byte(body2), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 1 {
		t.Fatalf("%d variants, want 1", len(res.Variants))
	}
	v := res.Variants[0]
	if len(v.T) != 11 || len(v.Mean) != 3 || len(v.Mean[0]) != 11 {
		t.Fatalf("result shape: %d grid points, %d species", len(v.T), len(v.Mean))
	}
	if v.Species[1] != "CO" {
		t.Fatalf("species %v", v.Species)
	}

	code, csv := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv result: %d %s", code, csv)
	}
	if !strings.HasPrefix(csv, "t,*,CO,O\n") {
		t.Fatalf("csv header: %q", csv[:min(len(csv), 40)])
	}
	if lines := strings.Count(strings.TrimSpace(csv), "\n"); lines != 11 {
		t.Fatalf("csv has %d data lines, want 11", lines)
	}

	// The job list includes it.
	code, list := getBody(t, ts.URL+"/jobs")
	if code != http.StatusOK || !strings.Contains(list, st.ID) {
		t.Fatalf("list: %d %s", code, list)
	}
}

// Cancelling over HTTP aborts the replicas.
func TestServerCancel(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "replicas": 2, "workers": 2, "until": 1e9, "every": 1e6
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	code, body2 := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body2)
	}
	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitTerminal(t, j, 10*time.Second)
	if s := j.Status().State; s != StateCancelled {
		t.Fatalf("state %s after cancel", s)
	}
	// Result of a cancelled job is a conflict, not a hang.
	code, _ = getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", code)
	}
}

// Malformed submissions are rejected with registry-aware messages.
func TestServerSubmitErrors(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	cases := []struct {
		name, body, wantSubstr string
	}{
		{"no spec", `{"until": 1, "every": 1}`, `spec`},
		{"unknown engine", `{"spec": {"engine": {"name": "nope"}}, "until": 1, "every": 1}`, "unknown engine"},
		{"unknown field", `{"spec": {"engine": {"name": "ziff"}, "bogus": 1}, "until": 1, "every": 1}`, "bogus"},
		{"missing model", `{"spec": {"engine": {"name": "rsm"}}, "until": 1, "every": 1}`, "needs a model"},
		{"bad grid", `{"spec": {"engine": {"name": "ziff"}}, "until": 0, "every": 1}`, "grid"},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/jobs", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
			continue
		}
		if !strings.Contains(string(body), tc.wantSubstr) {
			t.Errorf("%s: error %s does not mention %q", tc.name, body, tc.wantSubstr)
		}
	}

	if code, _ := getBody(t, ts.URL+"/jobs/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}
