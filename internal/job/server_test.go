package job

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parsurf/internal/store"
)

// smokeSpec is the CI smoke workload: a 32² ziff run submitted as raw
// JSON, exactly what a curl client would post.
const smokeSpec = `{
  "spec": {
    "model": null,
    "lattice": {"l0": 32, "l1": 32},
    "engine": {"name": "ziff", "y": 0.52},
    "seed": 42
  },
  "replicas": 4,
  "workers": 2,
  "until": 10,
  "every": 1
}`

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// The full HTTP workflow: submit → status poll → JSON result → CSV
// result. This is the same sequence the CI smoke step drives with
// curl, run here under the race detector.
func TestServerSubmitStatusResult(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submit returned no job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := getBody(t, ts.URL+"/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if st.Progress.GridPointsMerged != st.Progress.TotalGridPoints || st.Progress.TotalGridPoints == 0 {
		t.Fatalf("progress %d/%d at completion",
			st.Progress.GridPointsMerged, st.Progress.TotalGridPoints)
	}

	code, body2 := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body2)
	}
	var res ResultResponse
	if err := json.Unmarshal([]byte(body2), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 1 {
		t.Fatalf("%d variants, want 1", len(res.Variants))
	}
	v := res.Variants[0]
	if len(v.T) != 11 || len(v.Mean) != 3 || len(v.Mean[0]) != 11 {
		t.Fatalf("result shape: %d grid points, %d species", len(v.T), len(v.Mean))
	}
	if v.Species[1] != "CO" {
		t.Fatalf("species %v", v.Species)
	}

	code, csv := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv result: %d %s", code, csv)
	}
	if !strings.HasPrefix(csv, "t,*,CO,O\n") {
		t.Fatalf("csv header: %q", csv[:min(len(csv), 40)])
	}
	if lines := strings.Count(strings.TrimSpace(csv), "\n"); lines != 11 {
		t.Fatalf("csv has %d data lines, want 11", lines)
	}

	// The job list includes it.
	code, list := getBody(t, ts.URL+"/jobs")
	if code != http.StatusOK || !strings.Contains(list, st.ID) {
		t.Fatalf("list: %d %s", code, list)
	}
}

// Cancelling over HTTP aborts the replicas.
func TestServerCancel(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "replicas": 2, "workers": 2, "until": 1e9, "every": 1e6
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	code, body2 := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body2)
	}
	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitTerminal(t, j, 10*time.Second)
	if s := j.Status().State; s != StateCancelled {
		t.Fatalf("state %s after cancel", s)
	}
	// Result of a cancelled job is a conflict, not a hang.
	code, _ = getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", code)
	}
}

// Malformed submissions are rejected with registry-aware messages.
func TestServerSubmitErrors(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	cases := []struct {
		name, body, wantSubstr string
	}{
		{"no spec", `{"until": 1, "every": 1}`, `spec`},
		{"unknown engine", `{"spec": {"engine": {"name": "nope"}}, "until": 1, "every": 1}`, "unknown engine"},
		{"unknown field", `{"spec": {"engine": {"name": "ziff"}, "bogus": 1}, "until": 1, "every": 1}`, "bogus"},
		{"missing model", `{"spec": {"engine": {"name": "rsm"}}, "until": 1, "every": 1}`, "needs a model"},
		{"bad grid", `{"spec": {"engine": {"name": "ziff"}}, "until": 0, "every": 1}`, "grid"},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/jobs", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
			continue
		}
		if !strings.Contains(string(body), tc.wantSubstr) {
			t.Errorf("%s: error %s does not mention %q", tc.name, body, tc.wantSubstr)
		}
	}

	if code, _ := getBody(t, ts.URL+"/jobs/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	event string
	data  string
}

// readSSE consumes the stream until (and including) the first frame
// with the given terminal event name.
func readSSE(t *testing.T, r io.Reader, until string) []sseFrame {
	t.Helper()
	var (
		frames []sseFrame
		cur    sseFrame
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == until {
					return frames
				}
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// Comment frame (heartbeat): not an event.
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without %q (got %d frames)", until, len(frames))
	return nil
}

// GET /jobs/{id}/events streams progress frames and a terminal done
// frame in SSE framing.
func TestServerSSEEvents(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close()
	srv := NewServer(m)
	srv.eventInterval = 2 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content type %q", ct)
	}
	frames := readSSE(t, resp.Body, "done")
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("final frame event %q", last.event)
	}
	var frame EventFrame
	if err := json.Unmarshal([]byte(last.data), &frame); err != nil {
		t.Fatalf("done frame data %q: %v", last.data, err)
	}
	if frame.ID != st.ID || frame.State != StateDone {
		t.Fatalf("done frame %+v", frame)
	}
	if len(frame.ReplicaTimes) != 4 {
		t.Fatalf("done frame has %d replica times, want 4", len(frame.ReplicaTimes))
	}
	for i, rt := range frame.ReplicaTimes {
		if rt < 10 {
			t.Fatalf("replica %d frontier %v below the horizon", i, rt)
		}
	}
	for _, f := range frames[:len(frames)-1] {
		if f.event != "progress" {
			t.Fatalf("mid-stream frame event %q", f.event)
		}
	}
	// A stream opened on an already-terminal job yields the done frame
	// immediately.
	resp2, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if frames := readSSE(t, resp2.Body, "done"); len(frames) != 1 {
		t.Fatalf("terminal-job stream sent %d frames, want 1", len(frames))
	}
}

// Between progress frames the event stream carries ": heartbeat"
// comment lines, keeping idle proxied connections alive without
// emitting spurious events.
func TestServerSSEHeartbeat(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	srv := NewServer(m)
	// Progress frames effectively off; heartbeats fast.
	srv.eventInterval = time.Hour
	srv.heartbeatInterval = 2 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "replicas": 1, "workers": 1, "until": 1e9, "every": 1e6
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	heartbeats, events := 0, 0
	for sc.Scan() && heartbeats < 5 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": heartbeat"):
			heartbeats++
		case strings.HasPrefix(line, "event: "):
			events++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if heartbeats < 5 {
		t.Fatalf("stream ended after %d heartbeats", heartbeats)
	}
	// Only the initial progress frame; every later keep-alive is a
	// comment, not an event.
	if events != 1 {
		t.Fatalf("%d event frames alongside heartbeats, want 1", events)
	}

	// The terminal frame still arrives through the heartbeat cadence.
	postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", "")
	frames := readSSE(t, resp.Body, "done")
	if last := frames[len(frames)-1]; last.event != "done" {
		t.Fatalf("final frame event %q", last.event)
	}
}

// The CSV result endpoint declares its media type and download name,
// streams the same bytes the JSON grid carries, and a result requested
// before the job is terminal is a 409, not a 500.
func TestServerCSVHeadersAndConflict(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	// Non-terminal job: result is a conflict.
	long := `{
	  "spec": {"lattice": {"l0": 24, "l1": 24}, "engine": {"name": "ziff", "y": 0.51}},
	  "replicas": 2, "workers": 2, "until": 1e9, "every": 1e6
	}`
	code, body := postJSON(t, ts.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if code, _ := getBody(t, ts.URL+"/jobs/"+st.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("result of running job: %d, want 409", code)
	}
	if code, _ := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=csv"); code != http.StatusConflict {
		t.Fatalf("csv result of running job: %d, want 409", code)
	}
	postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", "")

	// Completed job: proper CSV headers.
	code, body = postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(st.ID)
	waitTerminal(t, j, 60*time.Second)

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Fatalf("csv content type %q", ct)
	}
	cd := resp.Header.Get("Content-Disposition")
	if !strings.Contains(cd, "attachment") || !strings.Contains(cd, st.ID) {
		t.Fatalf("csv content disposition %q", cd)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,*,CO,O\n") {
		t.Fatalf("csv header: %q", string(data[:min(len(data), 40)]))
	}
	if code, _ := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=csv&variant=9"); code != http.StatusBadRequest {
		t.Fatalf("out-of-range variant: %d, want 400", code)
	}
}

// /healthz answers as soon as the server is up; /version echoes the
// configured stamp.
func TestServerHealthzAndVersion(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	srv := NewServer(m)
	srv.SetVersion("v-test-1")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = getBody(t, ts.URL+"/version")
	if code != http.StatusOK || !strings.Contains(body, "v-test-1") {
		t.Fatalf("version: %d %s", code, body)
	}
}

// GET /jobs lists jobs in submission order — pinned, not
// map-iteration luck: the listing is compared against the exact
// submission sequence.
func TestServerListDeterministicOrder(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	var want []string
	for i := 0; i < 6; i++ {
		spec := strings.Replace(smokeSpec, `"seed": 42`, fmt.Sprintf(`"seed": %d`, i+1), 1)
		code, body := postJSON(t, ts.URL+"/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	for round := 0; round < 3; round++ {
		code, body := getBody(t, ts.URL+"/jobs")
		if code != http.StatusOK {
			t.Fatalf("list: %d %s", code, body)
		}
		var got []Status
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("list has %d jobs, want %d", len(got), len(want))
		}
		for i, st := range got {
			if st.ID != want[i] {
				t.Fatalf("round %d: list[%d] = %s, want %s", round, i, st.ID, want[i])
			}
		}
	}
}

// GET /jobs supports ?state= filtering and ?limit=/?after= pagination:
// filtering applies before paging, pages walk the submission order, and
// malformed parameters are 400s.
func TestServerListFilterAndPagination(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	// The first job runs long enough to pin the single runner while the
	// rest queue behind it, so cancelling the last job (still queued) and
	// then the blocker yields a deterministic mixed-state table:
	// cancelled, done ×4, cancelled. The blocker sits in the ZGB reactive
	// window (y = 0.5) on a 64² lattice so it cannot poison out early.
	spec := `{"spec": {"model": null, "lattice": {"l0": %d, "l1": %d},
		"engine": {"name": "ziff", "y": %g}, "seed": %d}, "until": %g, "every": %g}`
	var ids []string
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(spec, 16, 16, 0.52, i+1, 2.0, 1.0)
		if i == 0 {
			body = fmt.Sprintf(spec, 64, 64, 0.5, 1, 1e6, 5e5)
		}
		code, resp := postJSON(t, ts.URL+"/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, resp)
		}
		var st Status
		if err := json.Unmarshal(resp, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	last, _ := m.Get(ids[5])
	last.Cancel()
	blocker, _ := m.Get(ids[0])
	blocker.Cancel()
	for _, id := range ids {
		j, _ := m.Get(id)
		waitTerminal(t, j, 60*time.Second)
	}
	cancelled := []string{ids[0], ids[5]}

	list := func(query string) []Status {
		t.Helper()
		code, body := getBody(t, ts.URL+"/jobs"+query)
		if code != http.StatusOK {
			t.Fatalf("list%s: %d %s", query, code, body)
		}
		var out []Status
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	idsOf := func(sts []Status) []string {
		var out []string
		for _, st := range sts {
			out = append(out, st.ID)
		}
		return out
	}

	if got := idsOf(list("?state=cancelled")); !equalStrings(got, cancelled) {
		t.Fatalf("state=cancelled: %v, want %v", got, cancelled)
	}
	if got := idsOf(list("?state=done")); !equalStrings(got, ids[1:5]) {
		t.Fatalf("state=done: %v, want %v", got, ids[1:5])
	}
	if got := list("?state=queued"); len(got) != 0 {
		t.Fatalf("state=queued: %v, want empty", idsOf(got))
	}
	// Page through everything two at a time.
	var walked []string
	after := ""
	for {
		q := "?limit=2"
		if after != "" {
			q += "&after=" + after
		}
		page := list(q)
		if len(page) == 0 {
			break
		}
		if len(page) > 2 {
			t.Fatalf("page of %d with limit=2", len(page))
		}
		walked = append(walked, idsOf(page)...)
		after = page[len(page)-1].ID
	}
	if !equalStrings(walked, ids) {
		t.Fatalf("paged walk %v, want %v", walked, ids)
	}
	// Filter composes with pagination.
	if got := idsOf(list("?state=done&after=" + ids[1] + "&limit=2")); !equalStrings(got, ids[2:4]) {
		t.Fatalf("done page after %s: %v, want %v", ids[1], got, ids[2:4])
	}
	// An id the filter drops never matches "after": the page is empty.
	if got := list("?state=done&after=" + ids[0]); len(got) != 0 {
		t.Fatalf("after filtered-out id: %v, want empty", idsOf(got))
	}
	// An unknown "after" yields an empty page, not an error.
	if got := list("?after=job-999"); len(got) != 0 {
		t.Fatalf("after unknown id: %v, want empty", idsOf(got))
	}
	// Malformed parameters are client errors.
	for _, q := range []string{"?limit=0", "?limit=-3", "?limit=x", "?state=bogus"} {
		if code, _ := getBody(t, ts.URL+"/jobs"+q); code != http.StatusBadRequest {
			t.Fatalf("list%s: %d, want 400", q, code)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Over HTTP, a durable server answers a repeated submission from the
// result cache: accepted response already done and flagged cached,
// result identical, and "nocache" forces a fresh run.
func TestServerCacheHitOverHTTP(t *testing.T) {
	st := store.NewMem()
	m, err := NewManagerWithStore(2, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var first Status
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(first.ID)
	waitTerminal(t, j, 60*time.Second)
	_, want := getBody(t, ts.URL+"/jobs/"+first.ID+"/result?format=csv")

	code, body = postJSON(t, ts.URL+"/jobs", smokeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	var hit Status
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("resubmission status %+v, want cached done", hit)
	}
	_, got := getBody(t, ts.URL+"/jobs/"+hit.ID+"/result?format=csv")
	if got != want {
		t.Fatal("cached CSV differs from the original")
	}
	if n := m.RunsStarted(); n != 1 {
		t.Fatalf("RunsStarted %d after cache hit, want 1", n)
	}
	// JSON result body carries the cached flag.
	_, res := getBody(t, ts.URL+"/jobs/"+hit.ID+"/result")
	if !strings.Contains(res, `"cached":true`) {
		t.Fatalf("cached result body lacks the flag: %s", res[:min(len(res), 120)])
	}

	nocache := strings.Replace(smokeSpec, `"replicas": 4,`, `"nocache": true, "replicas": 4,`, 1)
	code, body = postJSON(t, ts.URL+"/jobs", nocache)
	if code != http.StatusAccepted {
		t.Fatalf("nocache submit: %d %s", code, body)
	}
	var fresh Status
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("nocache submission served from cache")
	}
	j, _ = m.Get(fresh.ID)
	waitTerminal(t, j, 60*time.Second)
	if n := m.RunsStarted(); n != 2 {
		t.Fatalf("RunsStarted %d after nocache, want 2", n)
	}
}
