package job

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"parsurf"
	"parsurf/internal/store"
)

// chaosSpec is a slower workload than the unit-test ziffSpec: a bigger
// lattice and a long horizon make the run last seconds, so kills land
// mid-trajectory.
func chaosSpec(t *testing.T, seed uint64) *parsurf.SessionSpec {
	t.Helper()
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(40, 40),
		parsurf.WithEngine("ziff", parsurf.COFraction(0.51)),
		parsurf.WithSeed(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// chaosReq is a workload long enough to survive several kill/restart
// cycles: a fine grid gives the checkpointer many snapshot points.
func chaosReq(t *testing.T) Request {
	t.Helper()
	return Request{
		Specs:    []*parsurf.SessionSpec{chaosSpec(t, 7)},
		Replicas: 3,
		Workers:  2,
		Until:    2000,
		Every:    2,
	}
}

// resultBytes marshals a done job's stored result.
func resultBytes(t *testing.T, j *Job) []byte {
	t.Helper()
	res, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The chaos harness: run the same workload twice — once uninterrupted,
// once through repeated mid-run manager kills at random points, each
// restart resuming replicas from their stored checkpoints — and require
// the two results byte-identical. This is the end-to-end guarantee the
// whole checkpoint stack exists for: preemption is invisible in the
// output.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	req := chaosReq(t)

	// Uninterrupted control.
	control := newStoreManager(t, store.NewMem())
	cj, err := control.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, cj, 120*time.Second); st.State != StateDone {
		t.Fatalf("control run: %s (%s)", st.State, st.Error)
	}
	want := resultBytes(t, cj)
	control.Close()

	// Chaos runs: a shared store survives each "process"; the manager
	// is the process stand-in, and Close — which abandons running
	// replicas mid-trajectory — is the kill.
	st := store.NewMem()
	rng := rand.New(rand.NewSource(1))
	const kills = 8 // bounded so the test ends even under race slowdown
	var (
		final      *Job
		sawResume  bool
		killCycles int
	)
	for cycle := 0; final == nil; cycle++ {
		m, err := NewManagerWithStore(2, 0, st, CheckpointEvery(time.Millisecond))
		if err != nil {
			t.Fatalf("cycle %d: reboot failed: %v", cycle, err)
		}
		var j *Job
		if cycle == 0 {
			if j, err = m.Submit(req); err != nil {
				t.Fatal(err)
			}
		} else {
			var ok bool
			if j, ok = m.Get("job-1"); !ok {
				t.Fatalf("cycle %d: job lost across restart", cycle)
			}
		}
		if j.Status().Resumed > 0 {
			sawResume = true
		}
		if killCycles >= kills || j.Status().State.Terminal() {
			// Kill budget spent (or the job beat the killer): let this
			// last boot run to completion undisturbed.
			final = j
			defer m.Close()
			break
		}
		// Let the run make progress for a random slice, insisting the
		// first cycle leaves snapshots behind so later cycles actually
		// exercise resume (not just restart-from-zero).
		deadline := time.Now().Add(time.Duration(30+rng.Intn(200)) * time.Millisecond)
		for time.Now().Before(deadline) || !snapshotsExist(t, st, j.Hash()) {
			if j.Status().State.Terminal() {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if j.Status().Resumed > 0 {
			sawResume = true
		}
		if j.Status().State.Terminal() {
			final = j
			defer m.Close()
			break
		}
		m.Close() // kill: running replicas abandoned mid-trajectory
		killCycles++

		// The record must have stayed resumable, never regressed to a
		// from-zero terminal state.
		rec, err := st.GetJob(j.ID())
		if err != nil {
			t.Fatal(err)
		}
		if State(rec.State) != StateQueued {
			t.Fatalf("cycle %d: record %s after kill, want queued", cycle, rec.State)
		}
	}
	if st := waitTerminal(t, final, 120*time.Second); st.State != StateDone {
		t.Fatalf("chaos run: %s (%s)", st.State, st.Error)
	}
	if final.Status().Resumed > 0 {
		sawResume = true
	}
	if killCycles == 0 {
		t.Fatal("job completed before any kill; chaos never happened")
	}
	if !sawResume {
		t.Fatal("no replica ever resumed from a checkpoint across the kills")
	}
	if got := resultBytes(t, final); !bytes.Equal(got, want) {
		t.Fatalf("result after %d kills differs from the uninterrupted run:\n got %d bytes\nwant %d bytes", killCycles, len(got), len(want))
	}
}

// snapshotsExist reports whether any replica checkpoint is stored for
// the hash.
func snapshotsExist(t *testing.T, st store.Store, hash string) bool {
	t.Helper()
	if hash == "" {
		return false
	}
	slots, err := st.Checkpoints(hash)
	if err != nil {
		t.Fatal(err)
	}
	return len(slots) > 0
}

// A store that fails every checkpoint write degrades the manager to
// exactly the no-checkpoint behavior: the job still runs to the correct
// completion, and nothing is stored to resume from.
func TestCheckpointWriteFailuresAreHarmless(t *testing.T) {
	faulty := &store.Faulty{Inner: store.NewMem(), Hook: store.FailOps("put-checkpoint", 0)}
	m, err := NewManagerWithStore(1, 0, faulty, CheckpointEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(shortReq(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 60*time.Second); st.State != StateDone {
		t.Fatalf("job under checkpoint faults: %s (%s)", st.State, st.Error)
	}
	if slots, _ := faulty.Checkpoints(j.Hash()); len(slots) != 0 {
		t.Fatalf("injected-failure store holds %d checkpoints", len(slots))
	}
}

// A torn checkpoint blob is skipped — the replica silently runs from
// zero — and the result is still byte-identical to the uninterrupted
// control: a checkpoint is an optimization, never a correctness
// dependency.
func TestTornCheckpointFallsBackToFreshRun(t *testing.T) {
	req := Request{
		Specs:    []*parsurf.SessionSpec{chaosSpec(t, 5)},
		Replicas: 2,
		Workers:  2,
		Until:    2000,
		Every:    2,
	}

	control := newStoreManager(t, store.NewMem())
	cj, err := control.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, cj, 60*time.Second); st.State != StateDone {
		t.Fatalf("control run: %s (%s)", st.State, st.Error)
	}
	want := resultBytes(t, cj)
	control.Close()

	st := store.NewMem()
	m1, err := NewManagerWithStore(1, 0, st, CheckpointEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for !snapshotsExist(t, st, j1.Hash()) && !j1.Status().State.Terminal() {
		time.Sleep(2 * time.Millisecond)
	}
	m1.Close()

	// Tear every stored snapshot.
	slots, err := st.Checkpoints(j1.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) == 0 {
		t.Skip("job finished before any checkpoint; nothing to tear")
	}
	for _, slot := range slots {
		data, err := st.GetCheckpoint(j1.Hash(), slot)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.PutCheckpoint(j1.Hash(), slot, data[:len(data)/2]); err != nil {
			t.Fatal(err)
		}
	}

	m2, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatal("job lost across restart")
	}
	fst := waitTerminal(t, j2, 60*time.Second)
	if fst.State != StateDone {
		t.Fatalf("run over torn checkpoints: %s (%s)", fst.State, fst.Error)
	}
	if fst.Resumed != 0 {
		t.Fatalf("%d replicas resumed from torn checkpoints", fst.Resumed)
	}
	if got := resultBytes(t, j2); !bytes.Equal(got, want) {
		t.Fatal("result over torn checkpoints differs from control")
	}
}

// A record found mid-run on boot charges one attempt; at the attempt
// budget the job is quarantined as poison instead of crash-looping the
// service.
func TestCrashLoopQuarantine(t *testing.T) {
	req := shortReq(t, 9)
	raw, hash, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	running := func(attempts int) *store.JobRecord {
		return &store.JobRecord{
			ID: "job-1", Seq: 1, Hash: hash, State: string(StateRunning),
			Attempts: attempts, Submitted: 1, Request: raw,
		}
	}

	// Under the budget: re-queued with the attempt charged, and the job
	// eventually completes.
	st := store.NewMem()
	if err := st.PutJob(running(0)); err != nil {
		t.Fatal(err)
	}
	m, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := m.Get("job-1")
	if !ok {
		t.Fatal("recovered job missing")
	}
	if j.Status().Attempts != 1 {
		t.Fatalf("attempts %d after one crash, want 1", j.Status().Attempts)
	}
	if st := waitTerminal(t, j, 60*time.Second); st.State != StateDone {
		t.Fatalf("crash survivor: %s (%s)", st.State, st.Error)
	}
	m.Close()

	// At the budget: quarantined, never run.
	st2 := store.NewMem()
	if err := st2.PutJob(running(DefaultMaxAttempts - 1)); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManagerWithStore(1, 0, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, _ := m2.Get("job-1")
	status := j2.Status()
	if status.State != StateQuarantined {
		t.Fatalf("state %s after %d crashes, want quarantined", status.State, DefaultMaxAttempts)
	}
	if _, err := j2.Result(); err == nil {
		t.Fatal("quarantined job served a result")
	}
	if m2.RunsStarted() != 0 {
		t.Fatal("quarantined job ran")
	}
	rec, err := st2.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if State(rec.State) != StateQuarantined {
		t.Fatalf("persisted state %s, want quarantined", rec.State)
	}

	// A tighter budget quarantines sooner.
	st3 := store.NewMem()
	if err := st3.PutJob(running(0)); err != nil {
		t.Fatal(err)
	}
	m3, err := NewManagerWithStore(1, 0, st3, MaxAttempts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	j3, _ := m3.Get("job-1")
	if got := j3.Status().State; got != StateQuarantined {
		t.Fatalf("MaxAttempts(1): state %s, want quarantined", got)
	}
}

// The replica checkpoint blob round-trips and rejects corruption.
func TestReplicaCheckpointCodec(t *testing.T) {
	spec := ziffSpec(t, 0.51, 11)
	sess, err := spec.Session()
	if err != nil {
		t.Fatal(err)
	}
	values := [][]float64{{0.5, 0.25, 0}, {0.25, 0.5, 0}, {0.25, 0.25, 0}}
	blob, err := encodeReplicaCheckpoint(2, 4, 2, sess, values)
	if err != nil {
		t.Fatal(err)
	}
	variant, replica, nextK, rows, session, err := decodeReplicaCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if variant != 2 || replica != 4 || nextK != 2 {
		t.Fatalf("identity lost: %d %d %d", variant, replica, nextK)
	}
	if len(rows) != 3 || len(rows[0]) != 2 || rows[0][0] != 0.5 || rows[1][1] != 0.5 {
		t.Fatalf("rows lost: %v", rows)
	}
	if _, err := parsurf.ResumeSession(spec, bytes.NewReader(session)); err != nil {
		t.Fatalf("embedded session checkpoint does not resume: %v", err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", blob[:len(blob)/3]},
		{"bad version", append([]byte{99, 0, 0, 0}, blob[4:]...)},
	} {
		if _, _, _, _, _, err := decodeReplicaCheckpoint(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
