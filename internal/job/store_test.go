package job

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"parsurf"
	"parsurf/internal/store"
)

// shortReq is a quick deterministic workload for durability tests.
func shortReq(t *testing.T, seed uint64) Request {
	t.Helper()
	return Request{
		Specs:    []*parsurf.SessionSpec{ziffSpec(t, 0.51, seed)},
		Replicas: 3,
		Workers:  2,
		Until:    5,
		Every:    1,
	}
}

func newStoreManager(t *testing.T, st store.Store) *Manager {
	t.Helper()
	m, err := NewManagerWithStore(2, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A submission is persisted before Submit acknowledges it.
func TestSubmitPersistsBeforeAck(t *testing.T) {
	st := store.NewMem()
	m := newStoreManager(t, st)
	defer m.Close()
	j, err := m.Submit(shortReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.GetJob(j.ID())
	if err != nil {
		t.Fatalf("no record right after Submit: %v", err)
	}
	if rec.Hash == "" || rec.Hash != j.Hash() {
		t.Fatalf("record hash %q, job hash %q", rec.Hash, j.Hash())
	}
	if len(rec.Request) == 0 {
		t.Fatal("record carries no request")
	}
	waitTerminal(t, j, 30*time.Second)
	rec, err = st.GetJob(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateDone) {
		t.Fatalf("terminal record state %q, want done", rec.State)
	}
	if _, err := st.GetResult(rec.Hash); err != nil {
		t.Fatalf("no result blob under %s: %v", rec.Hash, err)
	}
}

// A resubmission with a matching content hash is answered done from the
// cache without running; nocache forces the run; a different workload
// misses.
func TestResultCacheHitMissAndOptOut(t *testing.T) {
	st := store.NewMem()
	m := newStoreManager(t, st)
	defer m.Close()

	first, err := m.Submit(shortReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, first, 30*time.Second); st.State != StateDone {
		t.Fatalf("first run: %s (%s)", st.State, st.Error)
	}
	if n := m.RunsStarted(); n != 1 {
		t.Fatalf("RunsStarted %d after one job", n)
	}
	want, err := first.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	// Hit: identical workload, instant done, no run.
	hit, err := m.Submit(shortReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	hst := hit.Status()
	if hst.State != StateDone || !hst.Cached {
		t.Fatalf("resubmission status %+v, want immediate cached done", hst)
	}
	if hit.ID() == first.ID() {
		t.Fatal("cache hit reused the original job id")
	}
	if hit.Hash() != first.Hash() {
		t.Fatalf("hashes differ: %s vs %s", hit.Hash(), first.Hash())
	}
	if n := m.RunsStarted(); n != 1 {
		t.Fatalf("cache hit ran the simulation (RunsStarted %d)", n)
	}
	got, err := hit.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("cached result differs from the original")
	}

	// Opt-out: nocache re-runs even though the hash matches.
	req := shortReq(t, 1)
	req.NoCache = true
	fresh, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Status().Cached {
		t.Fatal("nocache submission served from cache")
	}
	if st := waitTerminal(t, fresh, 30*time.Second); st.State != StateDone {
		t.Fatalf("nocache run: %s (%s)", st.State, st.Error)
	}
	if n := m.RunsStarted(); n != 2 {
		t.Fatalf("RunsStarted %d after nocache resubmission, want 2", n)
	}
	freshRes, err := fresh.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, err := json.Marshal(freshRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(freshJSON) != string(wantJSON) {
		t.Fatal("nocache re-run not bit-identical to the cached result (determinism broken)")
	}

	// Miss: a different seed is a different hash and a real run.
	miss, err := m.Submit(shortReq(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hash() == first.Hash() {
		t.Fatal("different workloads share a hash")
	}
	if miss.Status().Cached {
		t.Fatal("different workload served from cache")
	}
	waitTerminal(t, miss, 30*time.Second)
}

// Workers only sets goroutine fan-out and results are bit-identical
// across worker counts, so it is excluded from the content hash.
func TestHashIgnoresWorkers(t *testing.T) {
	a := shortReq(t, 1)
	b := shortReq(t, 1)
	b.Workers = 7
	_, ha, err := encodeRequest(a)
	if err != nil {
		t.Fatal(err)
	}
	_, hb, err := encodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("worker count changed the hash: %s vs %s", ha, hb)
	}
	c := shortReq(t, 1)
	c.Replicas++
	if _, hc, _ := encodeRequest(c); hc == ha {
		t.Fatal("replica count did not change the hash")
	}
}

// A completed job survives restart: the recovered manager serves the
// byte-identical result from disk, and a same-hash resubmission is an
// instant cache hit with zero runs.
func TestRecoveryServesCompletedResults(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := newStoreManager(t, st1)
	j1, err := m1.Submit(shortReq(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j1, 30*time.Second); st.State != StateDone {
		t.Fatalf("first run: %s (%s)", st.State, st.Error)
	}
	res1, err := j1.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res1)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	st2, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newStoreManager(t, st2)
	defer m2.Close()
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID())
	}
	if s := j2.Status(); s.State != StateDone || s.Hash != j1.Hash() {
		t.Fatalf("recovered status %+v", s)
	}
	res2, err := j2.ResultData()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("recovered result not byte-identical to the original")
	}
	// Live ensembles are gone; Result() says so instead of lying.
	if _, err := j2.Result(); err == nil {
		t.Fatal("recovered job returned live ensembles")
	}

	hit, err := m2.Submit(shortReq(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if s := hit.Status(); s.State != StateDone || !s.Cached {
		t.Fatalf("post-restart resubmission %+v, want cached done", s)
	}
	if n := m2.RunsStarted(); n != 0 {
		t.Fatalf("recovered manager ran %d jobs for a cached workload", n)
	}
}

// A job whose record a crash left at "running" is re-queued on boot and
// completes with Mean/Std bit-identical to an uninterrupted run of the
// same (spec, seed).
func TestRecoveryRequeuesInterruptedJob(t *testing.T) {
	req := shortReq(t, 4)
	raw, hash, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMem()
	// The record a killed process leaves behind: mid-run, no result.
	if err := st.PutJob(&store.JobRecord{
		ID: "job-1", Seq: 1, Hash: hash, State: string(StateRunning),
		Submitted: time.Now().UnixNano(), Request: raw,
	}); err != nil {
		t.Fatal(err)
	}

	m := newStoreManager(t, st)
	defer m.Close()
	j, ok := m.Get("job-1")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	if s := waitTerminal(t, j, 30*time.Second); s.State != StateDone {
		t.Fatalf("re-queued job: %s (%s)", s.State, s.Error)
	}
	if n := m.RunsStarted(); n != 1 {
		t.Fatalf("RunsStarted %d, want 1 (the re-queued run)", n)
	}
	res, err := j.ResultData()
	if err != nil {
		t.Fatal(err)
	}

	// The uninterrupted reference: same spec, same shape, straight
	// through the sweep runner.
	ens, err := parsurf.RunSweep(t.Context(), req.Specs, req.Replicas, req.Workers, req.Until, req.Every)
	if err != nil {
		t.Fatal(err)
	}
	for sp := range ens[0].Mean {
		for k, x := range ens[0].Mean[sp].X {
			if res.Variants[0].Mean[sp][k] != x {
				t.Fatalf("Mean[%d][%d] differs after recovery: %v vs %v", sp, k, res.Variants[0].Mean[sp][k], x)
			}
			if res.Variants[0].Std[sp][k] != ens[0].Std[sp].X[k] {
				t.Fatalf("Std[%d][%d] differs after recovery", sp, k)
			}
		}
	}

	rec, err := st.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateDone) {
		t.Fatalf("record state %q after completion", rec.State)
	}
	if _, err := st.GetResult(hash); err != nil {
		t.Fatalf("no result blob after recovery run: %v", err)
	}
}

// Manager shutdown (Close) leaves interrupted jobs resumable on disk;
// a user Cancel persists as cancelled and stays cancelled on restart.
func TestShutdownResumableCancelSticky(t *testing.T) {
	st := store.NewMem()
	m1 := newStoreManager(t, st)

	long := func(seed uint64) Request {
		return Request{
			Specs: []*parsurf.SessionSpec{ziffSpec(t, 0.51, seed)},
			Until: 1e9, Every: 1e6,
		}
	}
	interrupted, err := m1.Submit(long(1))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := m1.Submit(long(2))
	if err != nil {
		t.Fatal(err)
	}
	cancelled.Cancel()
	m1.Close() // aborts the running job

	rec, err := st.GetJob(interrupted.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateQueued) {
		t.Fatalf("interrupted record %q after shutdown, want queued", rec.State)
	}
	rec, err = st.GetJob(cancelled.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != string(StateCancelled) {
		t.Fatalf("cancelled record %q, want cancelled", rec.State)
	}

	m2 := newStoreManager(t, st)
	defer m2.Close()
	if j, ok := m2.Get(cancelled.ID()); !ok || j.Status().State != StateCancelled {
		t.Fatal("user-cancelled job did not stay cancelled across restart")
	}
	j, ok := m2.Get(interrupted.ID())
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	if s := j.Status().State; s.Terminal() {
		t.Fatalf("interrupted job recovered terminal (%s), want re-queued", s)
	}
	j.Cancel() // let m2.Close return promptly
}

// Recovery rebuilds the listing in submission order even though the
// store lists records in arbitrary (map) order.
func TestJobsOrderedAfterRecovery(t *testing.T) {
	st := store.NewMem()
	m1 := newStoreManager(t, st)
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m1.Submit(shortReq(t, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
		waitTerminal(t, j, 30*time.Second)
	}
	m1.Close()

	m2 := newStoreManager(t, st)
	defer m2.Close()
	jobs := m2.Jobs()
	if len(jobs) != len(ids) {
		t.Fatalf("recovered %d jobs, want %d", len(jobs), len(ids))
	}
	for i, j := range jobs {
		if j.ID() != ids[i] {
			t.Fatalf("recovered order %v at %d, want %v", j.ID(), i, ids[i])
		}
	}
	// New submissions continue the id sequence past the recovered max.
	j, err := m2.Submit(shortReq(t, 99))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-6" {
		t.Fatalf("post-recovery id %s, want job-6", j.ID())
	}
	waitTerminal(t, j, 30*time.Second)
}

// A corrupt record no longer takes down the whole boot: recovery
// quarantines it — visible in the table with its decode error, terminal
// from birth, never run — and the manager comes up for everything else.
func TestRecoveryQuarantinesCorruptRecord(t *testing.T) {
	st := store.NewMem()
	if err := st.PutJob(&store.JobRecord{
		ID: "job-1", Seq: 1, State: string(StateQueued),
		Request: json.RawMessage(`{"specs": ["not a spec"]}`),
	}); err != nil {
		t.Fatal(err)
	}
	m, err := NewManagerWithStore(1, 0, st)
	if err != nil {
		t.Fatalf("corrupt record failed the boot: %v", err)
	}
	defer m.Close()
	j, ok := m.Get("job-1")
	if !ok {
		t.Fatal("quarantined job missing from the table")
	}
	status := j.Status()
	if status.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined", status.State)
	}
	if status.Error == "" {
		t.Fatal("quarantined job carries no error")
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("quarantined job is not terminal")
	}
	// The quarantine persisted: a second boot sees it terminal, no
	// re-quarantine dance.
	rec, err := st.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if State(rec.State) != StateQuarantined || rec.Error == "" {
		t.Fatalf("persisted record %+v, want quarantined with error", rec)
	}
	if m.RunsStarted() != 0 {
		t.Fatalf("quarantined job ran %d times", m.RunsStarted())
	}
}

// Specs that only exist as Go pointers cannot enter a durable manager.
func TestDurableSubmitRejectsUnserializableSpec(t *testing.T) {
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(16, 16),
		parsurf.WithModelPreset("zgb", nil),
		parsurf.WithEngine("lpndca", parsurf.PartitionWith(
			func(m *parsurf.Model, lat *parsurf.Lattice) (*parsurf.Partition, error) {
				return parsurf.SingleChunk(lat), nil
			})),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := newStoreManager(t, store.NewMem())
	defer m.Close()
	_, err = m.Submit(Request{Specs: []*parsurf.SessionSpec{spec}, Until: 1, Every: 1})
	if err == nil {
		t.Fatal("unserializable spec accepted by durable manager")
	}
	if !strings.Contains(err.Error(), "serializable") {
		t.Fatalf("error %v does not explain serialization", err)
	}
}
