// Package initpreset is the named registry of initial-configuration
// presets: the serializable replacement for the init closures the
// Session API used to accept. A preset is a name plus plain-data
// parameters, so an initial condition can live in a JSON session spec
// and be replayed bit-identically — the preset draws only from the
// random stream it is handed (the session's dedicated init stream), so
// using one never perturbs the engine's stream.
package initpreset

import (
	"fmt"
	"sort"
	"strings"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

// Params carries every preset parameter. Presets consume the fields
// they understand and reject the rest, so a spec cannot silently carry
// meaningless parameters.
type Params struct {
	// Fractions are per-species weights ("random"): species i is drawn
	// with probability Fractions[i]/Σ. Need not be normalised.
	Fractions []float64
	// Species selects explicit species values ("fill" takes one,
	// "checkerboard" takes the two alternating values).
	Species []int
}

// Func applies a resolved preset to a configuration using the given
// random stream.
type Func func(cfg *lattice.Config, src *rng.Source)

// Spec describes one registered preset.
type Spec struct {
	// Name is the registry key ("empty", "random", …).
	Name string
	// Doc is a one-line description including the accepted parameters.
	Doc string
	// Build validates the parameters and returns the initialiser.
	Build func(p Params) (Func, error)
}

var presets = map[string]Spec{}

// Register adds a preset; duplicate names and incomplete specs panic
// (programming errors caught at process start).
func Register(s Spec) {
	if s.Name == "" || s.Build == nil {
		panic("initpreset: Register with empty name or nil builder")
	}
	if _, dup := presets[s.Name]; dup {
		panic(fmt.Sprintf("initpreset: preset %q registered twice", s.Name))
	}
	presets[s.Name] = s
}

// Names returns the registered preset names, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered preset, sorted by name.
func Specs() []Spec {
	out := make([]Spec, 0, len(presets))
	for _, name := range Names() {
		out = append(out, presets[name])
	}
	return out
}

// Lookup returns the preset registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := presets[name]
	return s, ok
}

// Build resolves a preset by name and validates its parameters.
func Build(name string, p Params) (Func, error) {
	s, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("initpreset: unknown preset %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	fn, err := s.Build(p)
	if err != nil {
		return nil, fmt.Errorf("initpreset: preset %q: %w", name, err)
	}
	return fn, nil
}

// randomize assigns each site an independent draw from the weights —
// the same per-site arithmetic as Config.Randomize (one uniform per
// site, u·total against the running prefix sum), bit for bit, but
// taking the source directly: Config.Randomize's func parameter would
// force a bound-method allocation per application, and preset
// application sits on the per-replica Session.Reset path that must
// stay allocation-free. The caller (the "random" builder) has already
// validated the weights.
func randomize(cfg *lattice.Config, weights []float64, src *rng.Source) {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cells := cfg.Cells()
	for i := range cells {
		u := src.Float64() * total
		acc := 0.0
		for sp, w := range weights {
			acc += w
			if u < acc {
				cells[i] = lattice.Species(sp)
				break
			}
		}
	}
}

// checkSpecies validates explicit species values: they must fit the
// lattice.Species storage. Whether a value is meaningful for the
// session's model is the model's business, exactly as with Config.Set.
func checkSpecies(sp []int) error {
	for _, v := range sp {
		if v < 0 || v > 255 {
			return fmt.Errorf("species value %d outside [0, 255]", v)
		}
	}
	return nil
}

func init() {
	Register(Spec{
		Name: "empty",
		Doc:  "every site vacant (species 0); no parameters",
		Build: func(p Params) (Func, error) {
			if len(p.Fractions) > 0 || len(p.Species) > 0 {
				return nil, fmt.Errorf("takes no parameters")
			}
			return func(cfg *lattice.Config, _ *rng.Source) {
				cfg.Fill(0)
			}, nil
		},
	})
	Register(Spec{
		Name: "fill",
		Doc:  "every site one species; species: [s]",
		Build: func(p Params) (Func, error) {
			if len(p.Fractions) > 0 {
				return nil, fmt.Errorf("takes no fractions")
			}
			if len(p.Species) != 1 {
				return nil, fmt.Errorf("needs exactly one species value, got %d", len(p.Species))
			}
			if err := checkSpecies(p.Species); err != nil {
				return nil, err
			}
			sp := lattice.Species(p.Species[0])
			return func(cfg *lattice.Config, _ *rng.Source) {
				cfg.Fill(sp)
			}, nil
		},
	})
	Register(Spec{
		Name: "random",
		Doc:  "independent per-site draw; fractions: per-species weights, index = species value",
		Build: func(p Params) (Func, error) {
			if len(p.Species) > 0 {
				return nil, fmt.Errorf("takes no species list (weights are indexed by species value)")
			}
			if len(p.Fractions) < 2 {
				return nil, fmt.Errorf("needs at least two per-species fractions, got %d", len(p.Fractions))
			}
			total := 0.0
			for i, w := range p.Fractions {
				if w < 0 {
					return nil, fmt.Errorf("fraction %d is negative (%v)", i, w)
				}
				total += w
			}
			if total <= 0 {
				return nil, fmt.Errorf("fractions sum to %v, need a positive total", total)
			}
			weights := append([]float64(nil), p.Fractions...)
			return func(cfg *lattice.Config, src *rng.Source) {
				randomize(cfg, weights, src)
			}, nil
		},
	})
	Register(Spec{
		Name: "checkerboard",
		Doc:  "alternate two species by site parity; species: [a, b] (default [0, 1])",
		Build: func(p Params) (Func, error) {
			if len(p.Fractions) > 0 {
				return nil, fmt.Errorf("takes no fractions")
			}
			a, b := 0, 1
			switch len(p.Species) {
			case 0:
			case 2:
				if err := checkSpecies(p.Species); err != nil {
					return nil, err
				}
				a, b = p.Species[0], p.Species[1]
			default:
				return nil, fmt.Errorf("needs exactly two species values, got %d", len(p.Species))
			}
			spA, spB := lattice.Species(a), lattice.Species(b)
			return func(cfg *lattice.Config, _ *rng.Source) {
				lat := cfg.Lattice()
				for y := 0; y < lat.L1; y++ {
					for x := 0; x < lat.L0; x++ {
						if (x+y)%2 == 0 {
							cfg.SetXY(x, y, spA)
						} else {
							cfg.SetXY(x, y, spB)
						}
					}
				}
			}, nil
		},
	})
}
