package initpreset

import (
	"strings"
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/rng"
)

func apply(t *testing.T, name string, p Params, side int) *lattice.Config {
	t.Helper()
	fn, err := Build(name, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lattice.NewConfig(lattice.NewSquare(side))
	fn(cfg, rng.New(9))
	return cfg
}

func TestRegistryLists(t *testing.T) {
	names := Names()
	for _, want := range []string{"empty", "fill", "random", "checkerboard"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("preset %q not registered (have %v)", want, names)
		}
	}
	if len(Specs()) != len(names) {
		t.Errorf("Specs/Names length mismatch")
	}
}

func TestEmptyAndFill(t *testing.T) {
	cfg := apply(t, "empty", Params{}, 8)
	if got := cfg.Count(0); got != 64 {
		t.Errorf("empty left %d of 64 sites vacant", got)
	}
	cfg = apply(t, "fill", Params{Species: []int{2}}, 8)
	if got := cfg.Count(2); got != 64 {
		t.Errorf("fill covered %d of 64 sites", got)
	}
}

func TestRandomDeterministicPerStream(t *testing.T) {
	p := Params{Fractions: []float64{0.5, 0.3, 0.2}}
	a := apply(t, "random", p, 16)
	b := apply(t, "random", p, 16)
	if !a.Equal(b) {
		t.Error("same stream, different surfaces")
	}
	total := a.Count(0) + a.Count(1) + a.Count(2)
	if total != 256 {
		t.Errorf("species outside the weight set: %d of 256 accounted", total)
	}
	if a.Count(0) == 256 {
		t.Error("random draw produced the all-vacant surface")
	}
}

func TestCheckerboard(t *testing.T) {
	cfg := apply(t, "checkerboard", Params{Species: []int{1, 2}}, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			want := lattice.Species(1)
			if (x+y)%2 == 1 {
				want = 2
			}
			if got := cfg.GetXY(x, y); got != want {
				t.Fatalf("site (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
	// Default species pair.
	cfg = apply(t, "checkerboard", Params{}, 4)
	if cfg.Count(0) != 8 || cfg.Count(1) != 8 {
		t.Errorf("default checkerboard counts: %d/%d", cfg.Count(0), cfg.Count(1))
	}
}

func TestParamValidation(t *testing.T) {
	cases := []struct {
		name   string
		preset string
		p      Params
		substr string
	}{
		{"unknown preset", "stripes", Params{}, "unknown preset"},
		{"empty with params", "empty", Params{Species: []int{1}}, "no parameters"},
		{"fill without species", "fill", Params{}, "exactly one"},
		{"fill species range", "fill", Params{Species: []int{400}}, "outside"},
		{"random too few", "random", Params{Fractions: []float64{1}}, "at least two"},
		{"random negative", "random", Params{Fractions: []float64{0.5, -0.1}}, "negative"},
		{"random zero total", "random", Params{Fractions: []float64{0, 0}}, "positive total"},
		{"checkerboard one species", "checkerboard", Params{Species: []int{1}}, "exactly two"},
	}
	for _, tc := range cases {
		_, err := Build(tc.preset, tc.p)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}
