// Main: the surflint command-line entry point, shared by cmd/surflint
// and the exit-code tests.

package lint

import (
	"fmt"
	"io"
	"strings"
)

// Main runs surflint and returns the process exit code:
//
//	0  no findings
//	1  invocation or load error
//	2  findings reported
//
// Invocation forms (dir is the working directory for package
// resolution; "" means the process working directory):
//
//	surflint -V=full               version handshake for go vet
//	surflint -flags                flag schema handshake for go vet
//	surflint [flags] unit.cfg      one go vet translation unit
//	surflint [flags] ./...         standalone mode over package patterns
//
// Flags: -<analyzer>=false disables one analyzer (one flag per
// analyzer, matching the names in All).
func Main(dir string, args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			return printVersion(stdout)
		case "-flags":
			return printFlags(stdout)
		}
	}

	enabled := make(map[string]bool)
	for _, a := range All() {
		enabled[a.Name] = true
	}
	var operands []string
	for _, arg := range args {
		if name, value, ok := parseAnalyzerFlag(arg, enabled); ok {
			enabled[name] = value
			continue
		}
		if strings.HasPrefix(arg, "-") {
			fmt.Fprintf(stderr, "surflint: unknown flag %s\n", arg)
			return 1
		}
		operands = append(operands, arg)
	}
	var analyzers []*Analyzer
	for _, a := range All() {
		if enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	if len(operands) == 1 && strings.HasSuffix(operands[0], ".cfg") {
		return runUnit(operands[0], analyzers, stderr)
	}
	if len(operands) == 0 {
		fmt.Fprintln(stderr, "usage: surflint [flags] <packages>   (or a go vet .cfg file)")
		return 1
	}

	pkgs, err := Load(dir, operands)
	if err != nil {
		fmt.Fprintf(stderr, "surflint: %v\n", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		diags := RunPackage(pkg.Fset, pkg.Files, pkg.PkgPath, pkg.Pkg, pkg.TypesInfo, analyzers)
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
			found = true
		}
	}
	if found {
		return 2
	}
	return 0
}

// parseAnalyzerFlag matches -name, -name=true, -name=false for known
// analyzer names.
func parseAnalyzerFlag(arg string, known map[string]bool) (name string, value, ok bool) {
	if !strings.HasPrefix(arg, "-") {
		return "", false, false
	}
	body := strings.TrimPrefix(strings.TrimPrefix(arg, "-"), "-")
	name, val, hasVal := strings.Cut(body, "=")
	if _, isKnown := known[name]; !isKnown {
		return "", false, false
	}
	if !hasVal {
		return name, true, true
	}
	switch val {
	case "true", "1":
		return name, true, true
	case "false", "0":
		return name, false, true
	}
	return "", false, false
}
