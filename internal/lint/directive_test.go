package lint

import (
	"strings"
	"testing"
)

// Directive validation can't use want-comment fixtures: the finding
// sits on the directive's own line, and a want marker appended to a
// directive comment would become part of the directive text. The
// expectations live here instead.

// findDiag returns the diagnostics from the given analyzer name at the
// given line.
func findDiag(diags []Diagnostic, analyzer string, line int) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == analyzer && d.Pos.Line == line {
			out = append(out, d)
		}
	}
	return out
}

func TestDirectiveValidation(t *testing.T) {
	src := `package fixture

//surflint:allow nosuchanalyzer
var a = 1

//surflint:allow
var b = 1

//surflint:frobnicate
var c = 1

//surflint:
var d = 1

//surflint:hotpath
var e = 1

//surflint:hotpath extra
func f() {}

//surflint:allow maporder
var g = 1
`
	diags := analyzeSource(t, src, "parsurf/internal/fixture", All())
	cases := []struct {
		line int
		want string
	}{
		{3, `unknown analyzer "nosuchanalyzer"`},
		{6, "needs at least one analyzer name"},
		{9, `unknown surflint directive "frobnicate"`},
		{12, "empty surflint directive"},
		{15, "must be part of a function's doc comment"},
		{18, "takes no arguments"},
	}
	for _, c := range cases {
		ds := findDiag(diags, "directive", c.line)
		if len(ds) != 1 || !strings.Contains(ds[0].Message, c.want) {
			t.Errorf("line %d: got %v, want one diagnostic containing %q", c.line, ds, c.want)
		}
	}
	// The well-formed directives draw no diagnostics: line 18's hotpath
	// IS a function doc comment (only the argument is reported), and
	// line 21's allow names a known analyzer.
	if ds := findDiag(diags, "directive", 21); len(ds) != 0 {
		t.Errorf("well-formed allow reported: %v", ds)
	}
	if len(diags) != len(cases) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(cases), diags)
	}
}

// TestMisspelledAllowDoesNotSuppress pins the failure mode the
// validation exists for: a typo'd allow leaves the original finding in
// place AND reports the typo, so nothing is silently disabled.
func TestMisspelledAllowDoesNotSuppress(t *testing.T) {
	src := `package fixture

import "time"

func stamp() time.Time {
	//surflint:allow detsourc
	return time.Now()
}
`
	diags := analyzeSource(t, src, "parsurf/internal/ca", All())
	if ds := findDiag(diags, "directive", 6); len(ds) != 1 || !strings.Contains(ds[0].Message, `unknown analyzer "detsourc"`) {
		t.Errorf("typo'd allow not reported: %v", diags)
	}
	if ds := findDiag(diags, "detsource", 7); len(ds) != 1 {
		t.Errorf("typo'd allow suppressed the finding it does not name: %v", diags)
	}
}

// TestAllowIsPerAnalyzer: an allow for one analyzer does not suppress
// another's finding on the same line.
func TestAllowIsPerAnalyzer(t *testing.T) {
	src := `package fixture

import "time"

func stamp() time.Time {
	//surflint:allow maporder
	return time.Now()
}
`
	diags := analyzeSource(t, src, "parsurf/internal/ca", All())
	if ds := findDiag(diags, "detsource", 7); len(ds) != 1 {
		t.Errorf("allow for maporder suppressed a detsource finding: %v", diags)
	}
}

// TestAllowMultipleAnalyzers: one directive may name several analyzers.
func TestAllowMultipleAnalyzers(t *testing.T) {
	src := `package fixture

import "time"

func stamp() time.Time {
	//surflint:allow maporder detsource
	return time.Now()
}
`
	diags := analyzeSource(t, src, "parsurf/internal/ca", All())
	if len(diags) != 0 {
		t.Errorf("multi-name allow failed to suppress: %v", diags)
	}
}
