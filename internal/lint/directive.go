// surflint directive parsing: //surflint:allow and //surflint:hotpath,
// plus validation — a mistyped directive is a diagnostic, never a
// silent no-op.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const directivePrefix = "//surflint:"

// directive is one parsed //surflint: comment.
type directive struct {
	pos  token.Pos
	verb string   // "allow", "hotpath", or an unknown verb (reported)
	args []string // analyzer names for "allow"
}

// parseDirective parses a comment into a directive, reporting whether
// the comment is a surflint directive at all.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return directive{}, false
	}
	fields := strings.Fields(text)
	d := directive{pos: c.Pos()}
	if len(fields) > 0 {
		d.verb = fields[0]
		d.args = fields[1:]
	}
	return d, true
}

// allowIndex records, per file and line, which analyzers an
// //surflint:allow directive suppresses.
type allowIndex map[string]map[int]map[string]bool

// allows reports whether a finding by the named analyzer at position
// pos is covered by a directive on the same line or the line above.
func (idx allowIndex) allows(analyzer string, pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// buildAllowIndex scans every comment in the files for allow
// directives. Unknown analyzer names still index (suppression follows
// the author's intent) but are reported separately by
// checkDirectives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.verb != "allow" {
					continue
				}
				pos := fset.Position(d.pos)
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, name := range d.args {
					set[name] = true
				}
			}
		}
	}
	return idx
}

// hotpathFuncs returns the function declarations in f whose doc
// comment carries //surflint:hotpath.
func hotpathFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if d, ok := parseDirective(c); ok && d.verb == "hotpath" {
				out = append(out, fn)
				break
			}
		}
	}
	return out
}

// checkDirectives validates every surflint directive in the files:
// unknown verbs, allow directives naming no or unknown analyzers, and
// hotpath directives that are not a function's doc comment are all
// diagnostics (analyzer name "directive"), so a typo cannot silently
// disable a check.
func checkDirectives(fset *token.FileSet, files []*ast.File, out *[]Diagnostic) {
	known := knownAnalyzers()
	report := func(pos token.Pos, format string, args ...any) {
		*out = append(*out, Diagnostic{
			Analyzer: "directive",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		// Comments attached as a function's doc block: the only valid
		// home for //surflint:hotpath.
		funcDoc := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				for _, c := range fn.Doc.List {
					funcDoc[c] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				switch d.verb {
				case "allow":
					if len(d.args) == 0 {
						report(d.pos, "surflint:allow needs at least one analyzer name")
						continue
					}
					for _, name := range d.args {
						if !known[name] {
							report(d.pos, "surflint:allow names unknown analyzer %q (known: %s)",
								name, strings.Join(analyzerNames(), ", "))
						}
					}
				case "hotpath":
					if len(d.args) != 0 {
						report(d.pos, "surflint:hotpath takes no arguments")
					}
					if !funcDoc[c] {
						report(d.pos, "surflint:hotpath must be part of a function's doc comment")
					}
				case "":
					report(d.pos, "empty surflint directive")
				default:
					report(d.pos, "unknown surflint directive %q (known: allow, hotpath)", d.verb)
				}
			}
		}
	}
}

// analyzerNames lists the suite's analyzer names in registration
// order.
func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}
