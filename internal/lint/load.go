// Standalone package loading: `surflint ./...` without go vet. The
// loader shells out to `go list -json` for package discovery, parses
// the non-test sources itself, and type-checks against the "source"
// importer (dependencies are type-checked from source, so no export
// data or network is needed). Test files are skipped — every analyzer
// exempts them anyway, and loading them standalone would require the
// test dependency graph; under `go vet` the test variants arrive as
// their own translation units and are analyzed there.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct {
		Err string
	}
}

// LoadedPackage is one parsed, type-checked package ready for
// analysis.
type LoadedPackage struct {
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Load resolves the given package patterns (as the go tool would, in
// directory dir — "" for the current directory) and returns the
// type-checked packages.
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	// One source importer shared across packages: dependency
	// type-checks are memoized, so the module graph loads once.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*LoadedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &LoadedPackage{
			Fset:      fset,
			Files:     files,
			PkgPath:   lp.ImportPath,
			Pkg:       pkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
