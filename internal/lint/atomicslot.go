// atomicslot: a variable accessed through sync/atomic functions in one
// place and by plain load/store in another — the job progress-slot
// pattern, where one missed atomic is a data race the race detector
// only catches if a test happens to interleave it.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerAtomicSlot flags mixed atomic/plain access. It collects
// every variable (field or package-level) whose address is passed to a
// sync/atomic function — atomic.LoadUint64(&s.f), atomic.AddInt64(&n, 1)
// and friends — then reports any plain read or write of the same
// variable elsewhere in the package. Fields of the atomic.Int64-style
// wrapper types cannot mix by construction; migrating a flagged field
// to one is the canonical fix.
var AnalyzerAtomicSlot = &Analyzer{
	Name: "atomicslot",
	Doc: "flag variables accessed via sync/atomic in one place and by plain " +
		"load/store in another: every access must agree on the discipline",
	Run: runAtomicSlot,
}

// atomicFuncs are the sync/atomic functions whose first argument is
// the address of the accessed variable.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicSlot(p *Pass) error {
	// First pass: variables whose address feeds a sync/atomic call, and
	// the identifier nodes that do so (those are the sanctioned uses).
	atomicVars := make(map[types.Object]ast.Node) // var -> one atomic call site, for the message
	sanctioned := make(map[ast.Expr]bool)         // &x arguments inside atomic calls
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicFuncs[sel.Sel.Name] {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || !p.usesPackage(pkg, "sync/atomic") {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := p.accessedObject(addr.X); obj != nil {
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = call
				}
				sanctioned[addr.X] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Second pass: plain accesses of those variables. Taking the
	// address for another atomic call is sanctioned; anything else —
	// read, write, compound assign, address-of for non-atomic use —
	// is a finding.
	type finding struct {
		pos  ast.Node
		name string
		at   ast.Node
	}
	var findings []finding
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		// seenSel dedupes: a field access s.f is reported once via its
		// SelectorExpr, not again via the inner Sel identifier.
		seenSel := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			var expr ast.Expr
			switch v := n.(type) {
			case *ast.SelectorExpr:
				seenSel[v.Sel] = true
				expr = v
			case *ast.Ident:
				if seenSel[v] {
					return true
				}
				expr = v
			default:
				return true
			}
			if sanctioned[expr] {
				return true
			}
			obj := p.accessedObject(expr)
			if obj == nil {
				return true
			}
			if site, isAtomic := atomicVars[obj]; isAtomic {
				findings = append(findings, finding{pos: n, name: obj.Name(), at: site})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos.Pos() < findings[j].pos.Pos() })
	for _, f := range findings {
		p.Reportf(f.pos.Pos(), "plain access of %s, which is accessed atomically at %s: mixed atomic/plain access races",
			f.name, p.Fset.Position(f.at.Pos()))
	}
	return nil
}

// accessedObject resolves the variable a selector or identifier
// denotes: for s.f it is the field f; for a bare identifier, the
// variable itself. Only variables qualify (not types, funcs,
// packages).
func (p *Pass) accessedObject(e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		// Uses only: a declaring identifier (the field or var
		// definition itself) is not an access.
		if obj, ok := p.TypesInfo.Uses[v].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		return p.accessedObject(v.X)
	case *ast.ParenExpr:
		return p.accessedObject(v.X)
	}
	return nil
}
