// hotpath: functions annotated //surflint:hotpath are the per-event
// and per-replica loops PR 5 made allocation-free; flag the constructs
// that would put allocations back.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotPath enforces the 0 allocs/event contract on annotated
// functions (the Step/Reset/sweep paths, pinned at runtime by the CI
// bench gate). It flags alloc-prone constructs syntactically — defer,
// go, closure literals, fmt calls, string concatenation, make/new,
// map/slice composite literals, &T{…}, and explicit conversions to
// interface types (boxing) — so a regression is named at the line
// that introduced it instead of hunted down by profiler. Cold panics
// and deliberate goroutine fan-out carry //surflint:allow hotpath.
var AnalyzerHotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag alloc-prone constructs (defer, go, closures, fmt, string " +
		"concat, make/new, map/slice literals, interface boxing) in " +
		"//surflint:hotpath functions",
	Run: runHotPath,
}

func runHotPath(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, fn := range hotpathFuncs(f) {
			if fn.Body == nil {
				continue
			}
			p.checkHotBody(fn.Body)
		}
	}
	return nil
}

// checkHotBody walks one hot function body. Closure literals are
// reported once and not descended into: their body runs on whatever
// path captures them, and the capture itself is the allocation.
func (p *Pass) checkHotBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in hot path: the deferred frame is per-call overhead")
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement in hot path: goroutine launch per call")
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in hot path: capturing closures escape and allocate")
			return false
		case *ast.CallExpr:
			return p.checkHotCall(n)
		case *ast.CompositeLit:
			t := p.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal in hot path allocates")
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal in hot path allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal in hot path escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.TypesInfo.TypeOf(n)) {
				p.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, make/new, and explicit boxing
// conversions. Returns whether to descend into the call's children.
func (p *Pass) checkHotCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := p.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make":
				p.Reportf(call.Pos(), "make in hot path allocates; hoist the buffer into the struct and reuse it")
			case "new":
				p.Reportf(call.Pos(), "new in hot path allocates")
			}
			return true
		}
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok && p.usesPackage(pkg, "fmt") {
			p.Reportf(call.Pos(), "fmt.%s in hot path allocates (formatting boxes its operands)", fun.Sel.Name)
			return true
		}
	}
	// Explicit conversion to an interface type: T(x) where T is an
	// interface and x is concrete — the value boxes.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if argT := p.TypesInfo.TypeOf(call.Args[0]); argT != nil && !types.IsInterface(argT) {
				p.Reportf(call.Pos(), "conversion to interface type %s in hot path boxes the value", tv.Type.String())
			}
		}
	}
	return true
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
