// Package lint implements surflint: a suite of repo-specific static
// analyzers that enforce, at `go vet` time, the invariants the rest of
// the codebase proves at runtime — bit-identical trajectories for any
// worker count, allocation-free hot loops, and error-latched
// persistence. Each class of invariant here has been violated once in
// this repo's history (the ddrsm channel-arrival-order clock merge,
// the pndca one-ulp drift, per-replica alloc regressions), so the
// analyzers encode the exact shapes of those bugs: violations fail
// `go vet -vettool=$(surflint)` before a golden trace ever drifts.
//
// The suite is self-contained on the standard library (go/ast,
// go/types, go/parser): the build environment deliberately carries no
// external modules, so the usual golang.org/x/tools/go/analysis
// framework is reimplemented here in miniature — Analyzer, Pass,
// directive-based suppression, a unitchecker-protocol driver for
// `go vet -vettool`, and a standalone package loader.
//
// Escape directives:
//
//	//surflint:allow <analyzer> [<analyzer>...]
//	    suppresses findings from the named analyzers on the same
//	    source line, or on the line immediately below a directive
//	    that stands on its own line.
//	//surflint:hotpath
//	    in a function's doc comment, opts the function into the
//	    hotpath analyzer's allocation checks.
//
// Malformed directives (unknown analyzer names, hotpath outside a
// function doc comment) are themselves diagnostics, so a typo cannot
// silently disable a check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named surflint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //surflint:allow directives.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and
	// the bug shape it catches.
	Doc string
	// Run reports the analyzer's findings on one package via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name ("directive" for
	// malformed surflint directives).
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [surflint:%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// PkgPath is the package's import path as the build system names
	// it, normalized: a test-variant suffix like
	// " [parsurf/internal/job.test]" is stripped.
	PkgPath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results for Files.
	TypesInfo *types.Info

	allow allowIndex
	out   *[]Diagnostic
}

// Reportf records a finding unless an //surflint:allow directive for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file the node belongs to is a
// _test.go file. Test files are exempt from every analyzer: the
// invariants guard production determinism and hot paths, and tests
// legitimately use wall clocks, map iteration, and allocations.
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetSource,
		AnalyzerMapOrder,
		AnalyzerHotPath,
		AnalyzerLatchedCodec,
		AnalyzerAtomicSlot,
	}
}

// knownAnalyzers is the set of names //surflint:allow may reference.
func knownAnalyzers() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// normalizePkgPath strips a build-system test-variant suffix:
// "parsurf/internal/job [parsurf/internal/job.test]" names the same
// package as "parsurf/internal/job" for gating purposes.
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// RunPackage runs the given analyzers plus directive validation over
// one type-checked package and returns the findings sorted by
// position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	allow := buildAllowIndex(fset, files)
	checkDirectives(fset, files, &out)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			PkgPath:   normalizePkgPath(pkgPath),
			Pkg:       pkg,
			TypesInfo: info,
			allow:     allow,
			out:       &out,
		}
		// Analyzer runs are pure AST/type walks; the only error path is
		// an internal inconsistency, which is worth surfacing loudly.
		if err := a.Run(pass); err != nil {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// NewTypesInfo returns a types.Info populated with every map the
// analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
