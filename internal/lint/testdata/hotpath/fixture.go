// The hotpath fixture: every alloc-prone construct the analyzer names,
// inside an annotated function, plus a cold twin that is left alone.
package fixture

import "fmt"

type eng struct {
	buf []int
	n   int
}

func (e *eng) work() {}

// Step is the annotated hot loop: one finding per line.
//
//surflint:hotpath
func (e *eng) Step() bool {
	e.buf = make([]int, e.n) // want `make in hot path allocates`
	go e.work()              // want `go statement in hot path`
	f := func() { e.n++ }    // want `closure literal in hot path`
	f()
	m := map[int]bool{} // want `map literal in hot path allocates`
	_ = m
	s := []int{1} // want `slice literal in hot path allocates`
	_ = s
	q := new(int) // want `new in hot path allocates`
	_ = q
	p := &eng{} // want `&composite literal in hot path escapes`
	_ = p
	fmt.Println(e.n) // want `fmt\.Println in hot path allocates`
	msg := "a" + "b" // want `string concatenation in hot path allocates`
	_ = msg
	var x any = nil
	x = any(e.n) // want `conversion to interface type any in hot path boxes the value`
	_ = x
	return true
}

// Teardown is hot and defers: the deferred frame is per-call overhead.
//
//surflint:hotpath
func (e *eng) Teardown() {
	defer e.work() // want `defer in hot path`
}

// Fanout is hot but its goroutine launch is a reviewed exception.
//
//surflint:hotpath
func (e *eng) Fanout() {
	//surflint:allow hotpath
	go e.work()
}

// Cold is not annotated: the same constructs draw no findings.
func (e *eng) Cold() {
	e.buf = make([]int, e.n)
	defer e.work()
	go e.work()
	fmt.Println(e.n)
}
