// The atomicslot fixture: a field accessed atomically in one method
// and plainly in another, next to fields that keep one discipline.
package fixture

import "sync/atomic"

type counter struct {
	n    uint64
	cold int
}

// inc establishes n's atomic discipline.
func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

// load keeps the discipline: sanctioned.
func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

// read breaks it: a plain load races with inc.
func (c *counter) read() uint64 {
	return c.n // want `plain access of n, which is accessed atomically at`
}

// reset breaks it with a plain store.
func (c *counter) reset() {
	c.n = 0 // want `plain access of n`
}

// coldRead touches a field with no atomic history: clean.
func (c *counter) coldRead() int {
	return c.cold
}

// snapshot documents a reviewed exception (e.g. called only before
// the goroutines that contend on n are launched).
func (c *counter) snapshot() uint64 {
	//surflint:allow atomicslot
	return c.n
}
