// The latchedcodec fixture: persistence call sites that bypass or
// forget the error latch, next to the disciplined forms.
package fixture

import (
	"bytes"
	"encoding/binary"
	"io"

	"parsurf/internal/persist"
)

// rawBinary serializes around the codec entirely.
func rawBinary(w io.Writer, x uint32) error {
	return binary.Write(w, binary.LittleEndian, x) // want `binary\.Write bypasses the error-latching persist codec`
}

// rawBinaryRead is the decode twin.
func rawBinaryRead(r io.Reader, x *uint32) error {
	return binary.Read(r, binary.LittleEndian, x) // want `binary\.Read bypasses the error-latching persist codec`
}

// torn creates a codec and returns without consulting the latch: a
// short write is silently dropped.
func torn(w io.Writer) {
	e := persist.NewWriter(w) // want `persist\.Writer created but Err\(\) never checked`
	e.U32(1)
}

// tornReader is the decode twin.
func tornReader(r io.Reader) uint32 {
	d := persist.NewReader(r) // want `persist\.Reader created but Err\(\) never checked`
	return d.U32()
}

// disciplined checks the latch before returning: clean.
func disciplined(w io.Writer) error {
	e := persist.NewWriter(w)
	e.U32(1)
	e.U64(2)
	return e.Err()
}

// interleaved writes to the raw stream after wrapping it: those bytes
// bypass the latch.
func interleaved(w *bytes.Buffer) error {
	e := persist.NewWriter(w)
	e.U32(1)
	w.Write([]byte{0xff}) // want `raw w\.Write after wrapping in a persist\.Writer`
	return e.Err()
}

// handsOff passes the codec to a helper: the caller owns the latch, so
// no finding here.
func handsOff(w io.Writer, fill func(*persist.Writer)) {
	e := persist.NewWriter(w)
	fill(e)
}

// returned hands the codec back: same ownership transfer.
func returned(w io.Writer) *persist.Writer {
	e := persist.NewWriter(w)
	e.U32(7)
	return e
}

// sanctioned documents a reviewed exception.
func sanctioned(w io.Writer) {
	//surflint:allow latchedcodec
	e := persist.NewWriter(w)
	e.U32(1)
}
