// The detsource fixture: claimed as parsurf/internal/ca by the test
// harness, so the engine-package gate applies.
package fixture

import (
	"math/rand" // want `engine package imports "math/rand" \(unseedable-by-spec randomness\); use parsurf/internal/rng`
	"time"
)

// stamp reads the wall clock: never legal in an engine.
func stamp() int64 {
	return time.Now().UnixNano() // want `engine package reads the wall clock \(time\.Now\); engines know only simulated time`
}

// elapsed also reads the wall clock, through Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `engine package reads the wall clock \(time\.Since\)`
}

// draw uses the forbidden import; the import line is the finding, the
// call is not reported again.
func draw() int {
	return rand.Int()
}

// pollInterval does arithmetic on durations: no clock is read, so no
// finding.
func pollInterval() time.Duration {
	return 5 * time.Millisecond
}

// sanctioned carries the escape directive: a deliberate, reviewed
// exception is suppressed but stays greppable.
func sanctioned() time.Time {
	//surflint:allow detsource
	return time.Now()
}
