// The maporder fixture: map-range bodies that leak iteration order
// into results, next to the sanctioned collect-then-sort idiom.
package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// sumFloats accumulates a float across map order: the rounding of the
// reduction depends on visit order.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation across map iteration`
	}
	return total
}

// keysUnsorted fixes map order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration fixes map order into the slice`
	}
	return out
}

// keysSorted is the canonical fix: the append target is sorted in the
// same function, so the order is laundered and nothing is reported.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dump streams entries in map order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration emits in map order`
	}
}

// render writes through a builder in map order.
func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside map iteration emits in map order`
	}
	return b.String()
}

// sumInts accumulates an int: integer addition is associative, so the
// result is order-independent and nothing is reported.
func sumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// loopLocal appends to a slice scoped inside the loop body: nothing
// escapes an iteration, so nothing is reported.
func loopLocal(m map[string][]int, sink func([]int)) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		sink(local)
	}
}

// sanctioned documents a deliberate order-dependent append.
func sanctioned(m map[string]int) []string {
	var out []string
	for k := range m {
		//surflint:allow maporder
		out = append(out, k)
	}
	return out
}
