// The `go vet -vettool` protocol. When cmd/go drives a vet tool it
// invokes it three ways:
//
//	surflint -V=full          → print a versioned identity line
//	surflint -flags           → print the supported flags as JSON
//	surflint [flags] x.cfg    → analyze one translation unit
//
// The .cfg file is JSON describing a single compiled package: source
// files, the import map, and — crucially — the build cache paths of
// every dependency's export data. Type-checking against that export
// data (via the standard library's gc importer with a lookup
// function) reproduces exactly what golang.org/x/tools'
// unitchecker does, without the dependency.
//
// Diagnostics print to stderr as file:line:col: message, and the tool
// exits 2 — go vet relays both, so a finding fails the build exactly
// like a vet error. The tool writes an (empty) facts file to
// cfg.VetxOutput: surflint's analyzers are all single-package, but
// cmd/go requires the file to exist for its action cache.

package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON schema cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the translation unit described by cfgPath with the
// enabled analyzers, printing diagnostics to stderr. Return value is
// the process exit code: 0 clean, 1 broken invocation, 2 findings.
func runUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "surflint: reading config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "surflint: parsing config %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go runs the tool over the entire dependency graph so tools
	// with cross-package facts can propagate them. surflint's analyzers
	// are single-package and repo-specific: dependency units and
	// foreign modules need no analysis, only the facts file.
	if writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "surflint: writing facts: %v\n", err)
			return false
		}
		return true
	}; !writeVetx() {
		return 1
	}
	if cfg.VetxOnly || !strings.HasPrefix(normalizePkgPath(cfg.ImportPath), "parsurf") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "surflint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "surflint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := RunPackage(fset, files, cfg.ImportPath, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the identity line cmd/go's vet driver expects
// from `tool -V=full`: a name and a content-derived build identifier,
// so the action cache invalidates when the tool binary changes.
func printVersion(stdout io.Writer) int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Fprintf(stdout, "surflint version devel buildID=%s\n", id)
	return 0
}

// jsonFlag mirrors the flag-description schema cmd/go reads from
// `tool -flags` to validate user-supplied vet flags.
type jsonFlag struct {
	Name  string `json:"Name"`
	Bool  bool   `json:"Bool"`
	Usage string `json:"Usage"`
}

// printFlags describes the analyzer enable/disable flags.
func printFlags(stdout io.Writer) int {
	var flags []jsonFlag
	for _, a := range All() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", data)
	return 0
}
