package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Exit-code and driver tests: Main is exercised exactly as cmd/surflint
// and go vet invoke it, against throwaway modules named parsurf so the
// package-gated analyzers apply.

// dirtyEngineFile trips detsource (time.Now in an engine package).
const dirtyEngineFile = `package ca

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

const cleanEngineFile = `package ca

func Stamp() int64 { return 42 }
`

// writeModule materializes a temp module from path → contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module parsurf\n\ngo 1.24\n"

func TestMainExitCodes(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":             goMod,
		"internal/ca/ca.go":  dirtyEngineFile,
		"internal/ok/ok.go":  "package ok\n",
		"internal/ok/doc.go": "// Package ok is fine.\npackage ok\n",
	})
	clean := writeModule(t, map[string]string{
		"go.mod":            goMod,
		"internal/ca/ca.go": cleanEngineFile,
	})

	t.Run("findings exit 2", func(t *testing.T) {
		var out, errb bytes.Buffer
		code := Main(dirty, []string{"./..."}, &out, &errb)
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr: %s", code, errb.String())
		}
		if !strings.Contains(out.String(), "[surflint:detsource]") ||
			!strings.Contains(out.String(), "time.Now") {
			t.Fatalf("diagnostic not printed: %q", out.String())
		}
	})

	t.Run("clean exit 0", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := Main(clean, []string{"./..."}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, want 0; out: %s; stderr: %s", code, out.String(), errb.String())
		}
	})

	t.Run("disabled analyzer exit 0", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := Main(dirty, []string{"-detsource=false", "./..."}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, want 0 with detsource disabled; out: %s", code, out.String())
		}
	})

	t.Run("unknown flag exit 1", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := Main(dirty, []string{"-nosuchflag", "./..."}, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.Contains(errb.String(), "unknown flag") {
			t.Fatalf("stderr: %q", errb.String())
		}
	})

	t.Run("no operands exit 1", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := Main(dirty, nil, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})

	t.Run("broken package exit 1", func(t *testing.T) {
		bad := writeModule(t, map[string]string{
			"go.mod":            goMod,
			"internal/ca/ca.go": "package ca\n\nfunc Broken() { return 1 }\n",
		})
		var out, errb bytes.Buffer
		if code := Main(bad, []string{"./..."}, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1; out: %s", code, out.String())
		}
	})
}

func TestMainVetHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main("", []string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "surflint version ") {
		t.Fatalf("-V=full output %q", out.String())
	}

	out.Reset()
	if code := Main("", []string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []jsonFlag
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output not JSON: %v: %q", err, out.String())
	}
	if len(flags) != len(All()) {
		t.Fatalf("-flags describes %d analyzers, want %d", len(flags), len(All()))
	}
	for i, a := range All() {
		if flags[i].Name != a.Name || !flags[i].Bool {
			t.Fatalf("flag %d = %+v, want bool flag named %s", i, flags[i], a.Name)
		}
	}
}

// TestGoVetIntegration drives the real `go vet -vettool` protocol:
// build the binary, point vet at a throwaway module, and require the
// unitchecker path to relay findings (exit != 0) and stay silent on a
// clean tree. Skipped in -short mode — it compiles packages.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs go vet; skipped in -short")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "surflint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/surflint")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building surflint: %v\n%s", err, out)
	}

	vet := func(dir string) (int, string) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = dir
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		if err == nil {
			return 0, buf.String()
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), buf.String()
		}
		t.Fatalf("go vet: %v\n%s", err, buf.String())
		return -1, ""
	}

	dirty := writeModule(t, map[string]string{
		"go.mod":            goMod,
		"internal/ca/ca.go": dirtyEngineFile,
	})
	code, out := vet(dirty)
	if code == 0 {
		t.Fatalf("go vet exit 0 on a dirty module; output: %s", out)
	}
	if !strings.Contains(out, "[surflint:detsource]") {
		t.Fatalf("vet output missing the finding: %s", out)
	}

	clean := writeModule(t, map[string]string{
		"go.mod":            goMod,
		"internal/ca/ca.go": cleanEngineFile,
	})
	if code, out := vet(clean); code != 0 {
		t.Fatalf("go vet exit %d on a clean module: %s", code, out)
	}

	// The real repo must be clean under its own tool — the CI gate.
	if code, out := vet(moduleRoot); code != 0 {
		t.Fatalf("go vet exit %d on the repo itself: %s", code, out)
	}
}
