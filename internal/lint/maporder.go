// maporder: map iteration whose body leaks iteration order into a
// result — the exact shape of the ddrsm channel-arrival-order clock
// merge and the unsorted /jobs listing.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder flags `for … range m` over a map whose body makes
// iteration order observable: accumulating floats (float addition is
// not associative, so the sum depends on visit order), appending to a
// slice declared outside the loop (the listing-order bug), or writing
// to an encoder/writer. The canonical fix — collect keys, sort, range
// the sorted slice — does not iterate a map and passes by
// construction; an append whose slice is later sorted in the same
// function is recognized and skipped.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that accumulates floats, appends to an escaping " +
		"slice, or writes to an encoder: map order leaks into the result",
	Run: runMapOrder,
}

// orderSinkMethods are method names whose call inside a map-range body
// streams bytes or tokens in iteration order.
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

func runMapOrder(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		sorted := sortedSlices(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			p.checkMapRangeBody(rs, sorted)
			return true
		})
	}
	return nil
}

// checkMapRangeBody walks one map-range body for order leaks.
func (p *Pass) checkMapRangeBody(rs *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			p.checkMapRangeAssign(rs, n, sorted)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if orderSinkMethods[sel.Sel.Name] && len(n.Args) > 0 {
					p.Reportf(n.Pos(), "%s call inside map iteration emits in map order; iterate sorted keys instead", sel.Sel.Name)
				} else if pkg, ok := sel.X.(*ast.Ident); ok && p.usesPackage(pkg, "fmt") &&
					(sel.Sel.Name == "Fprintf" || sel.Sel.Name == "Fprintln" || sel.Sel.Name == "Fprint") {
					p.Reportf(n.Pos(), "fmt.%s inside map iteration emits in map order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign flags float accumulation and escaping appends.
func (p *Pass) checkMapRangeAssign(rs *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			obj := p.baseObject(lhs)
			if obj == nil || !p.declaredOutside(obj, rs) {
				continue
			}
			if isFloat(p.TypesInfo.TypeOf(lhs)) {
				p.Reportf(as.Pos(), "float accumulation across map iteration: the reduction order, and so the rounding, follows map order")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(as.Lhs) <= i {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				continue
			}
			if _, isBuiltin := p.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
				continue
			}
			obj := p.baseObject(as.Lhs[i])
			if obj == nil || !p.declaredOutside(obj, rs) {
				continue
			}
			if sorted[obj] {
				continue // collect-then-sort idiom: order is laundered
			}
			p.Reportf(as.Pos(), "append to %s inside map iteration fixes map order into the slice; sort it (or iterate sorted keys)", obj.Name())
		}
	}
}

// sortedSlices collects objects passed to a sort call anywhere in the
// file: sort.Strings(s), sort.Ints(s), sort.Float64s(s),
// sort.Slice(s, …), slices.Sort(s), slices.SortFunc(s, …). An append
// into such a slice is the collect-then-sort idiom.
func sortedSlices(p *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSortPkg := p.usesPackage(pkg, "sort") || p.usesPackage(pkg, "slices")
		if !isSortPkg {
			return true
		}
		if obj := p.baseObject(call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// baseObject resolves the variable at the root of an lvalue:
// x, x[i], x.f, *x all resolve to x's object (for x.f, the field when
// the selection names one directly on an identifier is less useful
// than the receiver for escape reasoning, so the receiver wins).
func (p *Pass) baseObject(e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return p.TypesInfo.ObjectOf(v)
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement: writes to it survive the loop, so iteration order
// escapes.
func (p *Pass) declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	if !pos.IsValid() {
		return true // fields, package-level: outside by definition
	}
	return pos < rs.Pos() || pos >= rs.End()
}

// isFloat reports whether t's underlying type is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
