// detsource: engine and simulation packages must draw every random
// number from parsurf/internal/rng and must never read a wall clock.

package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// enginePackages are the import paths whose trajectories must be a
// pure function of (spec, seed): the engines themselves plus the
// deterministic plumbing they run on. Anything else (the job service,
// the stores, the CLIs) may read clocks freely.
var enginePackages = map[string]bool{
	"parsurf/internal/ca":       true,
	"parsurf/internal/core":     true,
	"parsurf/internal/dmc":      true,
	"parsurf/internal/parallel": true,
	"parsurf/internal/ziff":     true,
	"parsurf/internal/eventq":   true,
	"parsurf/internal/fenwick":  true,
	"parsurf/internal/model":    true,
	"parsurf/internal/sim":      true,
	"parsurf/internal/ensemble": true,
}

// forbiddenImports are randomness sources other than
// parsurf/internal/rng. Importing one in an engine package is a
// finding even before any call: there is no legitimate use.
var forbiddenImports = map[string]string{
	"math/rand":    "unseedable-by-spec randomness",
	"math/rand/v2": "unseedable-by-spec randomness",
	"crypto/rand":  "nondeterministic randomness",
}

// wallClockCalls are time-package functions that read the wall clock.
// time.Duration arithmetic and constants stay legal.
var wallClockCalls = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// AnalyzerDetSource enforces the determinism-source invariant: in
// engine/sim packages, the only randomness is parsurf/internal/rng
// (splittable, spec-seeded, checkpointable) and the only clock is the
// simulated one. A time.Now or math/rand call in a Step path makes
// trajectories irreproducible across runs and breaks crash-exact
// resume, the repo's two headline guarantees.
var AnalyzerDetSource = &Analyzer{
	Name: "detsource",
	Doc: "forbid wall clocks and non-rng randomness in engine packages: " +
		"trajectories must be a pure function of (spec, seed)",
	Run: runDetSource,
}

func runDetSource(p *Pass) error {
	if !enginePackages[p.PkgPath] {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenImports[path]; bad {
				p.Reportf(imp.Pos(), "engine package imports %q (%s); use parsurf/internal/rng", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockCalls[sel.Sel.Name] {
				return true
			}
			if pkgName, ok := sel.X.(*ast.Ident); ok && p.usesPackage(pkgName, "time") {
				p.Reportf(call.Pos(), "engine package reads the wall clock (time.%s); engines know only simulated time", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// usesPackage reports whether ident resolves to an import of the
// given package path.
func (p *Pass) usesPackage(ident *ast.Ident, path string) bool {
	if obj, ok := p.TypesInfo.Uses[ident].(*types.PkgName); ok {
		return obj.Imported().Path() == path
	}
	return false
}
