// latchedcodec: checkpoint persistence must flow through the
// error-latching persist.Writer/Reader, and a function that opens a
// codec must consult its latch before returning.

package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// AnalyzerLatchedCodec enforces the persistence-codec discipline at
// every persist call site (any file importing parsurf/internal/persist,
// except the persist package itself, whose job is the raw I/O):
//
//   - encoding/binary.Write / binary.Read bypass the latch entirely —
//     their per-call error is invariably dropped in streaming code;
//   - once a raw io.Writer/io.Reader is wrapped by persist.NewWriter /
//     persist.NewReader, further direct Write/Read calls on the raw
//     stream interleave unlatched bytes with latched ones;
//   - a function that creates a codec and never consults Err() (and
//     does not hand the codec to its caller) can return having
//     silently dropped a short write: a checkpoint that looks saved
//     but is torn.
var AnalyzerLatchedCodec = &Analyzer{
	Name: "latchedcodec",
	Doc: "persist call sites must stream through the error-latching codec " +
		"and check Err() before returning",
	Run: runLatchedCodec,
}

const persistPath = "parsurf/internal/persist"

func runLatchedCodec(p *Pass) error {
	if p.PkgPath == persistPath {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f) || !importsPath(f, persistPath) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && p.usesPackage(pkg, "encoding/binary") &&
						(sel.Sel.Name == "Write" || sel.Sel.Name == "Read") {
						p.Reportf(n.Pos(), "binary.%s bypasses the error-latching persist codec; use persist.NewWriter/NewReader", sel.Sel.Name)
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					p.checkCodecFunc(n)
				}
			}
			return true
		})
	}
	return nil
}

// codecUse tracks one persist.NewWriter/NewReader call inside a
// function: the codec variable, the raw stream it wrapped, and what
// the body does with both.
type codecUse struct {
	codec      types.Object // the *persist.Writer / *persist.Reader variable
	raw        types.Object // the wrapped io.Writer / io.Reader variable (may be nil)
	pos        ast.Node
	kind       string // "Writer" or "Reader"
	errChecked bool
	escapes    bool
}

// checkCodecFunc analyzes one function for codec discipline.
func (p *Pass) checkCodecFunc(fn *ast.FuncDecl) {
	var uses []*codecUse

	// First pass: find `c := persist.NewWriter(w)` / NewReader forms.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || !p.usesPackage(pkg, persistPath) {
			return true
		}
		var kind string
		switch sel.Sel.Name {
		case "NewWriter":
			kind = "Writer"
		case "NewReader":
			kind = "Reader"
		default:
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		u := &codecUse{codec: p.TypesInfo.ObjectOf(lhs), pos: as, kind: kind}
		if len(call.Args) == 1 {
			if raw, ok := call.Args[0].(*ast.Ident); ok {
				u.raw = p.TypesInfo.ObjectOf(raw)
			}
		}
		if u.codec != nil {
			uses = append(uses, u)
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	// Second pass: classify every use of the codec and raw variables.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.ObjectOf(base)
			for _, u := range uses {
				if obj == u.codec && n.Sel.Name == "Err" {
					u.errChecked = true
				}
				if obj == u.raw && (n.Sel.Name == "Write" || n.Sel.Name == "Read") {
					p.Reportf(n.Pos(), "raw %s.%s after wrapping in a persist.%s: bytes bypass the latch and interleave with the codec stream",
						base.Name, n.Sel.Name, u.kind)
				}
			}
		case *ast.CallExpr:
			// A codec passed as an argument (not the receiver of its own
			// method) or returned escapes: the caller owns the latch.
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok {
					obj := p.TypesInfo.ObjectOf(id)
					for _, u := range uses {
						if obj == u.codec {
							u.escapes = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok {
					obj := p.TypesInfo.ObjectOf(id)
					for _, u := range uses {
						if obj == u.codec {
							u.escapes = true
						}
					}
				}
			}
		}
		return true
	})

	for _, u := range uses {
		if !u.errChecked && !u.escapes {
			p.Reportf(u.pos.Pos(), "persist.%s created but Err() never checked: a short %s is silently dropped and the checkpoint is torn",
				u.kind, map[string]string{"Writer": "write", "Reader": "read"}[u.kind])
		}
	}
}

// importsPath reports whether the file imports the given path.
func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}
