package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness: a miniature analysistest. Each analyzer has a
// directory under testdata/ whose files carry `// want `regex``
// comments on the lines where a finding is expected. The harness
// type-checks the fixture (claiming whatever import path the test
// names, so package-gated analyzers can be pointed at engine paths),
// runs RunPackage, and requires an exact match: every diagnostic
// covered by a want on its line, every want consumed by a diagnostic.

// loadFixture parses and type-checks the .go files in testdata/<dir>
// under the claimed import path. The source importer resolves both
// stdlib and parsurf/... imports (the test runs inside the module).
func loadFixture(t *testing.T, dir, pkgPath string) *LoadedPackage {
	t.Helper()
	root := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &LoadedPackage{Fset: fset, Files: files, PkgPath: pkgPath, Pkg: pkg, TypesInfo: info}
}

// expectation is one `// want` regex with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the backquoted regexes of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// collectWants scans fixture comments for `// want `re“ markers.
func collectWants(t *testing.T, p *LoadedPackage) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "// ")
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a backquoted regex", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs the analyzers over testdata/<dir> and checks the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, dir, pkgPath string, analyzers []*Analyzer) {
	t.Helper()
	p := loadFixture(t, dir, pkgPath)
	wants := collectWants(t, p)
	diags := RunPackage(p.Fset, p.Files, p.PkgPath, p.Pkg, p.TypesInfo, analyzers)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDetSourceFixture(t *testing.T) {
	// Claimed as an engine package: the analyzer is gated on the path.
	runFixture(t, "detsource", "parsurf/internal/ca", []*Analyzer{AnalyzerDetSource})
}

func TestDetSourceIgnoresNonEnginePackages(t *testing.T) {
	// The same dirty fixture under a service-layer path: every want
	// must go unmatched, so strip them by expecting zero diagnostics.
	p := loadFixture(t, "detsource", "parsurf/internal/store")
	diags := RunPackage(p.Fset, p.Files, p.PkgPath, p.Pkg, p.TypesInfo, []*Analyzer{AnalyzerDetSource})
	if len(diags) != 0 {
		t.Fatalf("detsource fired outside an engine package: %v", diags)
	}
}

func TestDetSourceIgnoresTestVariantSuffix(t *testing.T) {
	// The build system names a test variant "path [path.test]"; the
	// gate must normalize it back to the engine package.
	p := loadFixture(t, "detsource", "parsurf/internal/ca")
	diags := RunPackage(p.Fset, p.Files, "parsurf/internal/ca [parsurf/internal/ca.test]",
		p.Pkg, p.TypesInfo, []*Analyzer{AnalyzerDetSource})
	if len(diags) == 0 {
		t.Fatal("detsource silent on a test-variant package path")
	}
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, "maporder", "parsurf/internal/fixture", []*Analyzer{AnalyzerMapOrder})
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, "hotpath", "parsurf/internal/fixture", []*Analyzer{AnalyzerHotPath})
}

func TestLatchedCodecFixture(t *testing.T) {
	runFixture(t, "latchedcodec", "parsurf/internal/fixture", []*Analyzer{AnalyzerLatchedCodec})
}

func TestLatchedCodecSkipsPersistItself(t *testing.T) {
	p := loadFixture(t, "latchedcodec", persistPath)
	diags := RunPackage(p.Fset, p.Files, persistPath, p.Pkg, p.TypesInfo, []*Analyzer{AnalyzerLatchedCodec})
	if len(diags) != 0 {
		t.Fatalf("latchedcodec fired inside the persist package: %v", diags)
	}
}

func TestAtomicSlotFixture(t *testing.T) {
	runFixture(t, "atomicslot", "parsurf/internal/fixture", []*Analyzer{AnalyzerAtomicSlot})
}

// TestFixturesAreExercised guards the harness itself: a fixture whose
// wants silently stopped matching would pass runFixture with zero
// diagnostics and zero wants if the file went missing.
func TestFixturesAreExercised(t *testing.T) {
	for _, dir := range []string{"detsource", "maporder", "hotpath", "latchedcodec", "atomicslot"} {
		p := loadFixture(t, dir, "parsurf/internal/fixture")
		if len(collectWants(t, p)) == 0 {
			t.Errorf("fixture %s has no want comments", dir)
		}
	}
}

// TestAllowSuppressesSameLineAndLineBelow pins the directive's scope
// rules without fixtures.
func TestAllowSuppressesSameLineAndLineBelow(t *testing.T) {
	src := `package fixture

import "time"

func sameLine() time.Time {
	return time.Now() //surflint:allow detsource
}

func lineBelow() time.Time {
	//surflint:allow detsource
	return time.Now()
}

func twoBelow() time.Time {
	//surflint:allow detsource

	return time.Now()
}
`
	diags := analyzeSource(t, src, "parsurf/internal/ca", []*Analyzer{AnalyzerDetSource})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the out-of-range one: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 17 {
		t.Fatalf("surviving diagnostic at line %d, want 17 (two lines below the directive): %v", diags[0].Pos.Line, diags[0])
	}
}

// analyzeSource type-checks one in-memory file and runs the analyzers.
func analyzeSource(t *testing.T, src, pkgPath string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return RunPackage(fset, []*ast.File{f}, pkgPath, pkg, info, analyzers)
}

// TestDiagnosticsSortedByPosition pins RunPackage's output order,
// which the CLI relies on for stable output.
func TestDiagnosticsSortedByPosition(t *testing.T) {
	src := `package fixture

import "time"

func b() time.Time { return time.Now() }

func a() time.Time { return time.Now() }
`
	diags := analyzeSource(t, src, "parsurf/internal/ca", []*Analyzer{AnalyzerDetSource})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool { return diags[i].Pos.Line < diags[j].Pos.Line }) {
		t.Fatalf("diagnostics not sorted by line: %v", diags)
	}
	for i, d := range diags {
		want := fmt.Sprintf("fixture.go:%d", d.Pos.Line)
		if !strings.HasPrefix(d.String(), want) || !strings.HasSuffix(d.String(), "[surflint:detsource]") {
			t.Fatalf("diagnostic %d renders as %q", i, d)
		}
	}
}
