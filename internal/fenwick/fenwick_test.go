package fenwick

import (
	"math"
	"testing"
	"testing/quick"

	"parsurf/internal/rng"
)

func TestEmptyAndZero(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("empty tree not empty")
	}
	tr = New(5)
	if tr.Total() != 0 {
		t.Fatal("fresh tree has weight")
	}
}

func TestAddGetSet(t *testing.T) {
	tr := New(10)
	tr.Add(3, 2.5)
	tr.Add(3, 1.5)
	if got := tr.Get(3); got != 4 {
		t.Fatalf("Get(3) = %v", got)
	}
	tr.Set(3, 1)
	if got := tr.Get(3); got != 1 {
		t.Fatalf("after Set, Get(3) = %v", got)
	}
	if got := tr.Get(0); got != 0 {
		t.Fatalf("untouched slot = %v", got)
	}
}

func TestPrefixSum(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5}
	tr := FromWeights(w)
	want := 0.0
	for i := 0; i <= len(w); i++ {
		if got := tr.PrefixSum(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("PrefixSum(%d) = %v, want %v", i, got, want)
		}
		if i < len(w) {
			want += w[i]
		}
	}
	if tr.Total() != 15 {
		t.Fatalf("Total = %v", tr.Total())
	}
}

func TestFromWeightsMatchesAdds(t *testing.T) {
	src := rng.New(8)
	w := make([]float64, 37)
	for i := range w {
		w[i] = src.Float64() * 10
	}
	a := FromWeights(w)
	b := New(len(w))
	for i, v := range w {
		b.Add(i, v)
	}
	for i := 0; i <= len(w); i++ {
		if math.Abs(a.PrefixSum(i)-b.PrefixSum(i)) > 1e-9 {
			t.Fatalf("FromWeights differs at prefix %d", i)
		}
	}
}

func TestSearchBasic(t *testing.T) {
	tr := FromWeights([]float64{1, 0, 2, 3})
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {0.99, 0},
		{1.0, 2}, {2.99, 2},
		{3.0, 3}, {5.9, 3},
	}
	for _, c := range cases {
		if got := tr.Search(c.target); got != c.want {
			t.Errorf("Search(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestSearchClampBeyondTotal(t *testing.T) {
	tr := FromWeights([]float64{1, 2, 0, 0})
	if got := tr.Search(3.0000001); got != 1 {
		t.Fatalf("Search beyond total = %d, want last positive slot 1", got)
	}
}

func TestSearchSkipsZeroWeights(t *testing.T) {
	tr := FromWeights([]float64{0, 0, 5, 0})
	for _, target := range []float64{0, 1, 4.999} {
		if got := tr.Search(target); got != 2 {
			t.Fatalf("Search(%v) = %d, want 2", target, got)
		}
	}
}

func TestSearchDistribution(t *testing.T) {
	w := []float64{1, 3, 0, 6}
	tr := FromWeights(w)
	src := rng.New(10)
	const draws = 100000
	counts := make([]int, len(w))
	for i := 0; i < draws; i++ {
		counts[tr.Search(src.Float64()*tr.Total())]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight slot drawn %d times", counts[2])
	}
	for i, wi := range w {
		if wi == 0 {
			continue
		}
		want := wi / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("slot %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestPanics(t *testing.T) {
	tr := New(3)
	for _, f := range []func(){
		func() { tr.Add(-1, 1) },
		func() { tr.Add(3, 1) },
		func() { tr.PrefixSum(-1) },
		func() { tr.PrefixSum(4) },
		func() { New(0).Search(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	tr := FromWeights([]float64{1, 2, 3})
	tr.Reset()
	if tr.Total() != 0 {
		t.Fatal("Reset left weight")
	}
	tr.Add(1, 5)
	if tr.Get(1) != 5 || tr.Total() != 5 {
		t.Fatal("tree unusable after Reset")
	}
}

// Property: against a naive prefix-sum oracle under random updates.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		src := rng.New(seed)
		tr := New(n)
		naive := make([]float64, n)
		for op := 0; op < 100; op++ {
			i := src.Intn(n)
			delta := src.Float64()*4 - 1
			if naive[i]+delta < 0 {
				delta = -naive[i] // keep weights non-negative
			}
			tr.Add(i, delta)
			naive[i] += delta
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			if math.Abs(tr.PrefixSum(i)-sum) > 1e-9 {
				return false
			}
			sum += naive[i]
		}
		return math.Abs(tr.Total()-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Search(t) returns i with PrefixSum(i) <= t < PrefixSum(i+1)
// for in-range targets.
func TestQuickSearchInvariant(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%30) + 1
		src := rng.New(seed)
		w := make([]float64, n)
		for i := range w {
			if src.Bernoulli(0.3) {
				w[i] = 0
			} else {
				w[i] = src.Float64() * 5
			}
		}
		tr := FromWeights(w)
		if tr.Total() == 0 {
			return true
		}
		for k := 0; k < 50; k++ {
			target := src.Float64() * tr.Total() * 0.999999
			i := tr.Search(target)
			if i < 0 || i >= n {
				return false
			}
			if !(tr.PrefixSum(i) <= target+1e-9 && target < tr.PrefixSum(i+1)+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	tr := New(1 << 16)
	for i := 0; i < b.N; i++ {
		tr.Add(i&(1<<16-1), 1)
	}
}

func BenchmarkSearch(b *testing.B) {
	src := rng.New(1)
	w := make([]float64, 1<<16)
	for i := range w {
		w[i] = src.Float64()
	}
	tr := FromWeights(w)
	total := tr.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(src.Float64() * total)
	}
}

// Rebuild must clear accumulated floating-point drift: after many
// interleaved signed updates the tree totals drift away from the true
// leaf sums, and a rebuild from true values restores them exactly.
func TestRebuildClearsDrift(t *testing.T) {
	const n = 8
	tr := New(n)
	leaves := make([]float64, n)
	// Updates with awkward magnitudes accumulate representation error.
	for i := 0; i < 200000; i++ {
		slot := i % n
		delta := 0.1 * float64(1+i%7)
		if i%2 == 1 {
			delta = -delta
		}
		tr.Add(slot, delta)
		leaves[slot] += delta
	}
	if tr.Adds() != 200000 {
		t.Fatalf("Adds = %d, want 200000", tr.Adds())
	}
	tr.Rebuild(func(i int) float64 { return leaves[i] })
	if tr.Adds() != 0 {
		t.Fatalf("Adds = %d after Rebuild, want 0", tr.Adds())
	}
	for i := 0; i < n; i++ {
		// Get is a prefix-sum difference; after Rebuild from exact
		// leaves the reconstruction error is at most a few ulps of the
		// running sums, far below the 1e-9 slack.
		if math.Abs(tr.Get(i)-leaves[i]) > 1e-9 {
			t.Fatalf("leaf %d = %v, want %v", i, tr.Get(i), leaves[i])
		}
	}
	total := 0.0
	for _, v := range leaves {
		total += v
	}
	if math.Abs(tr.Total()-total) > 1e-9 {
		t.Fatalf("Total = %v, want %v", tr.Total(), total)
	}
}

func TestNeedsRebuildThreshold(t *testing.T) {
	tr := New(4)
	if tr.NeedsRebuild() {
		t.Fatal("fresh tree wants a rebuild")
	}
	for i := uint64(0); i < RebuildEvery; i++ {
		tr.Add(int(i%4), 1)
	}
	if !tr.NeedsRebuild() {
		t.Fatal("threshold did not trip")
	}
	tr.Rebuild(func(i int) float64 { return 0 })
	if tr.NeedsRebuild() {
		t.Fatal("rebuild did not reset the counter")
	}
	tr.Add(0, 1)
	tr.Reset()
	if tr.Adds() != 0 {
		t.Fatal("Reset did not clear the counter")
	}
}
