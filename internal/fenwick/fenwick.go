// Package fenwick implements a Fenwick (binary indexed) tree over
// float64 weights with O(log n) point updates, prefix sums, and weighted
// sampling by cumulative weight. It is the substrate for the VSSM/direct
// DMC method (selecting the next reaction with probability proportional
// to its rate) and for rate-weighted chunk selection in L-PNDCA.
package fenwick

import "fmt"

// Tree is a Fenwick tree over n float64 weights, indexed 0..n-1.
type Tree struct {
	tree []float64 // 1-based internal array
	n    int
	adds uint64 // signed Adds since the last Rebuild/Reset
}

// RebuildEvery is the default number of signed Adds after which the
// accumulated floating-point drift of interleaved positive and negative
// updates warrants rebuilding the tree from true leaf values (see
// NeedsRebuild). The bound is conservative: each Add can lose at most
// one ulp per touched node, so ~10⁶ ops keep the summed error orders of
// magnitude below any sampling threshold while making rebuilds
// (O(n) each) vanishingly rare.
const RebuildEvery = 1 << 20

// Adds returns the number of Add calls since the last Rebuild or Reset.
func (t *Tree) Adds() uint64 { return t.adds }

// NeedsRebuild reports whether at least RebuildEvery signed Adds have
// accumulated since the last Rebuild/Reset. Long-running owners that
// know their true leaf values (VSSM's rate·count products, the chunk
// trackers' enabled-rate sums) call Rebuild when this trips.
func (t *Tree) NeedsRebuild() bool { return t.adds >= RebuildEvery }

// Rebuild re-initialises every node from the true leaf values supplied
// by the callback, in O(n), clearing all accumulated floating-point
// drift and resetting the Add counter.
func (t *Tree) Rebuild(leaf func(i int) float64) {
	for i := 0; i < t.n; i++ {
		t.tree[i+1] = leaf(i)
	}
	for i := 1; i <= t.n; i++ {
		parent := i + (i & -i)
		if parent <= t.n {
			t.tree[parent] += t.tree[i]
		}
	}
	t.adds = 0
}

// New returns a tree of n zero weights.
func New(n int) *Tree {
	if n < 0 {
		panic("fenwick: negative size")
	}
	return &Tree{tree: make([]float64, n+1), n: n}
}

// FromWeights builds a tree initialised with the given weights in O(n).
func FromWeights(w []float64) *Tree {
	t := New(len(w))
	copy(t.tree[1:], w)
	for i := 1; i <= t.n; i++ {
		parent := i + (i & -i)
		if parent <= t.n {
			t.tree[parent] += t.tree[i]
		}
	}
	return t
}

// Len returns the number of slots.
func (t *Tree) Len() int { return t.n }

// Add adds delta to the weight at index i.
func (t *Tree) Add(i int, delta float64) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("fenwick: index %d out of range [0,%d)", i, t.n))
	}
	for j := i + 1; j <= t.n; j += j & -j {
		t.tree[j] += delta
	}
	t.adds++
}

// PrefixSum returns the sum of weights in [0, i) — i.e. of the first i
// slots. PrefixSum(0) is 0; PrefixSum(Len()) is the total.
func (t *Tree) PrefixSum(i int) float64 {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("fenwick: prefix %d out of range [0,%d]", i, t.n))
	}
	sum := 0.0
	for j := i; j > 0; j -= j & -j {
		sum += t.tree[j]
	}
	return sum
}

// Total returns the sum of all weights.
func (t *Tree) Total() float64 { return t.PrefixSum(t.n) }

// Get returns the weight at index i.
func (t *Tree) Get(i int) float64 {
	return t.PrefixSum(i+1) - t.PrefixSum(i)
}

// Set sets the weight at index i to w.
func (t *Tree) Set(i int, w float64) {
	t.Add(i, w-t.Get(i))
}

// Search returns the smallest index i such that the cumulative weight
// through slot i exceeds target, i.e. the slot a uniform draw
// target ∈ [0, Total()) lands in under weighted sampling. If the target
// is at or beyond the total (possible through floating-point drift), the
// last slot with positive weight is returned.
func (t *Tree) Search(target float64) int {
	if t.n == 0 {
		panic("fenwick: Search on empty tree")
	}
	idx := 0
	// Highest power of two ≤ n.
	bit := 1
	for bit<<1 <= t.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= t.n && t.tree[next] <= target {
			idx = next
			target -= t.tree[next]
		}
	}
	if idx >= t.n {
		// Clamp for target ≥ Total: find the last positive-weight slot.
		for i := t.n - 1; i >= 0; i-- {
			if t.Get(i) > 0 {
				return i
			}
		}
		return t.n - 1
	}
	return idx
}

// Reset zeroes all weights and the Add counter.
func (t *Tree) Reset() {
	for i := range t.tree {
		t.tree[i] = 0
	}
	t.adds = 0
}

// State appends the raw internal node array (including the unused
// 0th slot) to dst and returns it together with the Add counter.
// Together with Restore it round-trips the tree bit-exactly — a
// rebuild from true leaf values would clear the accumulated
// floating-point drift and so change subsequent weighted draws, which
// checkpoint/resume must not do.
func (t *Tree) State(dst []float64) ([]float64, uint64) {
	return append(dst, t.tree...), t.adds
}

// Restore overwrites the internal nodes and Add counter with a state
// captured by State. The node slice must match the tree's size.
func (t *Tree) Restore(nodes []float64, adds uint64) error {
	if len(nodes) != t.n+1 {
		return fmt.Errorf("fenwick: restoring %d nodes into a tree of %d", len(nodes), t.n+1)
	}
	copy(t.tree, nodes)
	t.adds = adds
	return nil
}
