// Package timegrid provides the shared sampling grid every
// time-scheduled consumer in this repository derives its points from —
// dmc.Sample, the context-aware runners in internal/sim, and the
// ensemble merge. One definition means two consumers of the same
// (origin, until, every) schedule can never disagree on grid size or
// point placement, the bug class the old duplicated arithmetic
// (`int(until/every)+1` here, an accumulated `next += dt` there)
// allowed.
package timegrid

import (
	"fmt"
	"math"
)

// maxPoints bounds the grid size; finer grids are almost certainly a
// unit mistake (and their sample storage would not fit in memory).
// Typed int64 so the constant itself survives 32-bit platforms, and
// kept at 2^30 so the derived point count (at most a few past the
// ratio) can never overflow a 32-bit int.
const maxPoints = int64(1) << 30

// Grid is a sampling grid over [origin, until]: the points
// origin + i·every for every index i with origin + i·every <= until,
// plus a tail point at exactly `until` when the last on-step point
// falls short of it. Points are derived from their index — never by
// accumulating `every`, which drifts (0.1 summed eight times is
// 0.7999999999999999, not 0.8) — so two consumers of the same grid
// always agree on both the number of points and their exact float64
// values.
type Grid struct {
	origin, every, until float64
	n                    int
	tail                 bool
}

// New returns the grid the ensemble runner samples and merges on:
// points from 0 to `until` spaced `every` apart, tail included. The
// horizon must be positive, so the grid always has at least the two
// points 0 and `until`.
func New(until, every float64) (Grid, error) {
	if !(until > 0) {
		return Grid{}, fmt.Errorf("timegrid: grid needs a positive horizon, got until=%v", until)
	}
	return From(0, until, every)
}

// From returns the grid anchored at origin (a running simulation's
// current clock). An origin past the horizon yields an empty grid, not
// an error, matching "nothing left to sample".
func From(origin, until, every float64) (Grid, error) {
	if math.IsNaN(origin) || math.IsInf(origin, 0) || math.IsNaN(until) || math.IsInf(until, 0) {
		return Grid{}, fmt.Errorf("timegrid: grid bounds must be finite, got [%v, %v]", origin, until)
	}
	if !(every > 0) || math.IsInf(every, 0) {
		return Grid{}, fmt.Errorf("timegrid: grid needs a positive finite step, got every=%v", every)
	}
	g := Grid{origin: origin, every: every, until: until}
	if origin > until {
		return g, nil
	}
	if origin+every == origin {
		return Grid{}, fmt.Errorf("timegrid: step %v vanishes against origin %v (grid cannot advance)", every, origin)
	}
	ratio := (until - origin) / every
	if ratio >= float64(maxPoints) {
		return Grid{}, fmt.Errorf("timegrid: ~%.3g grid points exceed the %d-point cap", ratio, maxPoints)
	}
	// The float division only seeds k; the exact value — the largest
	// index whose derived point is still inside the horizon — comes from
	// comparing the derived points themselves, so no representation
	// error (1.0/0.1, 0.3/0.1, ...) can shift the grid size.
	k := int(ratio)
	for g.point(k) > until {
		k--
	}
	for g.point(k+1) <= until {
		k++
	}
	g.n = k + 1
	if g.point(k) < until {
		g.tail = true
		g.n++
	}
	return g, nil
}

// point is the raw index-derived point, defined for any i.
func (g Grid) point(i int) float64 { return g.origin + float64(i)*g.every }

// Len returns the number of grid points.
func (g Grid) Len() int { return g.n }

// At returns grid point i. The final point is exactly the horizon
// `until`, whether it lies on the step lattice or is the tail sample.
func (g Grid) At(i int) float64 {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("timegrid: index %d out of range [0, %d)", i, g.n))
	}
	if i == g.n-1 {
		return g.until
	}
	return g.point(i)
}

// Times returns all grid points as a fresh slice.
func (g Grid) Times() []float64 {
	out := make([]float64, g.n)
	for i := range out {
		out[i] = g.At(i)
	}
	return out
}

// Origin returns the first grid point (meaningless when Len is 0).
func (g Grid) Origin() float64 { return g.origin }

// Until returns the grid horizon, the final point of a non-empty grid.
func (g Grid) Until() float64 { return g.until }

// Every returns the grid step.
func (g Grid) Every() float64 { return g.every }

// Tail reports whether the final point is an off-step tail sample at
// the horizon rather than an on-step point.
func (g Grid) Tail() bool { return g.tail }
