package timegrid

import (
	"math"
	"testing"
)

func TestTimeGridExactSizes(t *testing.T) {
	cases := []struct {
		until, every float64
		n            int
		tail         bool
	}{
		{1.0, 0.1, 11, false}, // the ROADMAP case: 1.0/0.1 must give 11 points
		{0.3, 0.1, 4, true},   // int(0.3/0.1)+1 == 3 — the truncation the old merge hit
		{100, 0.1, 1001, false},
		{1.1, 0.25, 6, true}, // off-grid horizon: tail point at 1.1
		{1.0, 0.25, 5, false},
		{0.05, 0.1, 2, true}, // horizon below one step: {0, until}
		{5, 5, 2, false},     // until == every
		{5, 10, 2, true},
	}
	for _, tc := range cases {
		g, err := New(tc.until, tc.every)
		if err != nil {
			t.Fatalf("New(%v, %v): %v", tc.until, tc.every, err)
		}
		if g.Len() != tc.n {
			t.Errorf("New(%v, %v): %d points, want %d", tc.until, tc.every, g.Len(), tc.n)
		}
		if g.Tail() != tc.tail {
			t.Errorf("New(%v, %v): tail %v, want %v", tc.until, tc.every, g.Tail(), tc.tail)
		}
		if last := g.At(g.Len() - 1); last != tc.until {
			t.Errorf("New(%v, %v): last point %v, want exactly the horizon", tc.until, tc.every, last)
		}
		for i := 1; i < g.Len(); i++ {
			if g.At(i) <= g.At(i-1) {
				t.Errorf("New(%v, %v): point %d (%v) not after point %d (%v)",
					tc.until, tc.every, i, g.At(i), i-1, g.At(i-1))
			}
		}
	}
}

// Grid points are index-derived: the k-th point is exactly k·every as
// float64 multiplication rounds it, not an accumulated sum (which for
// 0.1 drifts to 0.7999999999999999 by the eighth step).
func TestTimeGridIndexDerivedPoints(t *testing.T) {
	g, err := New(1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len()-1; i++ {
		if want := float64(i) * 0.1; g.At(i) != want {
			t.Errorf("At(%d) = %v, want %v", i, g.At(i), want)
		}
	}
	if g.At(8) != 0.8 {
		t.Errorf("At(8) = %v, want exactly 0.8 (accumulation would give 0.7999999999999999)", g.At(8))
	}
	if g.At(10) != 1.0 {
		t.Errorf("At(10) = %v, want exactly 1.0", g.At(10))
	}
	times := g.Times()
	if len(times) != g.Len() {
		t.Fatalf("Times() has %d points, Len() is %d", len(times), g.Len())
	}
	for i, tm := range times {
		if tm != g.At(i) {
			t.Errorf("Times()[%d] = %v, At(%d) = %v", i, tm, i, g.At(i))
		}
	}
}

func TestFromOrigin(t *testing.T) {
	g, err := From(5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.At(0) != 5 {
		t.Errorf("origin == until: got %d points, want the single point 5", g.Len())
	}
	g, err = From(6, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Errorf("origin past until: got %d points, want 0", g.Len())
	}
	g, err = From(2.5, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 || g.At(0) != 2.5 || g.At(3) != 4 {
		t.Errorf("grid from 2.5 to 4 by 0.5: got %d points %v", g.Len(), g.Times())
	}
}

func TestTimeGridRejectsDegenerates(t *testing.T) {
	if _, err := New(0, 0.1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := New(-1, 0.1); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := New(1, -0.1); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := New(1, math.NaN()); err == nil {
		t.Error("NaN step accepted")
	}
	if _, err := New(math.Inf(1), 1); err == nil {
		t.Error("infinite horizon accepted")
	}
	if _, err := From(1e16, 1e16+1, 1e-10); err == nil {
		t.Error("step below the origin's float resolution accepted")
	}
	if _, err := New(1e12, 1e-3); err == nil {
		t.Error("grid beyond the point cap accepted")
	}
}
