// Package rng provides a small, fast, deterministic pseudo-random number
// generator with splittable streams, tailored for parallel kinetic Monte
// Carlo simulation.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that arbitrary (including zero or nearly-equal) seeds
// produce well-mixed, independent states. Streams derived with Split are
// statistically independent for any practical simulation length, which
// makes parallel chunk updates reproducible regardless of goroutine
// scheduling: every chunk owns its own stream.
//
// All methods are deterministic functions of the seed and the call
// sequence. A Source is not safe for concurrent use; derive one stream per
// goroutine with Split instead of sharing.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used only for seeding and stream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Any seed value,
// including 0, yields a valid generator.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

// Seed re-initialises the source from the given seed, exactly as New
// does, without allocating. It makes a zero-value (or exhausted) Source
// usable in place — the replica pools use it to rewind a per-slot
// stream instead of constructing a fresh Source per replica.
func (s *Source) Seed(seed uint64) { s.reseed(seed) }

func (s *Source) reseed(seed uint64) {
	state := seed
	s.s0 = splitmix64(&state)
	s.s1 = splitmix64(&state)
	s.s2 = splitmix64(&state)
	s.s3 = splitmix64(&state)
	// The all-zero state is the only invalid one; splitmix64 cannot
	// produce four zero outputs in a row, but keep the check for clarity.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// FillUint64 fills dst with the next len(dst) outputs of the generator,
// exactly as len(dst) successive Uint64 calls would. Keeping the state
// words in locals for the whole batch removes the per-call state
// loads/stores from the hot loops that consume randomness in bulk.
func (s *Source) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FillFloat64 fills dst with uniform float64s in [0, 1), consuming one
// Uint64 output per element (the same conversion as Float64). Raw
// outputs come from FillUint64 in stack-buffer chunks so the generator
// core exists in exactly two forms (Uint64 and FillUint64), not three.
func (s *Source) FillFloat64(dst []float64) {
	var buf [128]uint64
	for len(dst) > 0 {
		n := len(dst)
		if n > len(buf) {
			n = len(buf)
		}
		s.FillUint64(buf[:n])
		for i := 0; i < n; i++ {
			dst[i] = float64(buf[i]>>11) * (1.0 / (1 << 53))
		}
		dst = dst[n:]
	}
}

// FillExp fills dst with exponentially distributed values of the given
// rate, consuming one Uint64 output per element (the same draw sequence
// as repeated Exp calls). It panics if rate <= 0.
func (s *Source) FillExp(dst []float64, rate float64) {
	if rate <= 0 {
		panic("rng: FillExp with non-positive rate")
	}
	s.FillFloat64(dst)
	for i, u := range dst {
		// Same arithmetic as Exp, bit for bit: -log(1-u) / rate.
		dst[i] = -math.Log(1.0-u) / rate
	}
}

// Split derives an independent child stream identified by id. Two children
// of the same parent with different ids, and children of different
// parents, are independent streams. The parent is not advanced, so Split
// is deterministic: the same (parent state, id) always yields the same
// child.
func (s *Source) Split(id uint64) *Source {
	child := new(Source)
	s.SplitInto(child, id)
	return child
}

// SplitInto derives the child stream identified by id into dst,
// overwriting dst's state — the allocation-free form of Split, for hot
// loops that derive a stream per site or per step (dst is typically a
// stack variable or a reused struct field). The derivation is
// identical to Split's: the same (parent state, id) always yields the
// same child, and the parent is not advanced.
func (s *Source) SplitInto(dst *Source, id uint64) {
	// Mix the parent state and the id through splitmix64 to seed the
	// child. Using the raw state (not an output draw) keeps the parent
	// sequence untouched.
	state := s.s0 ^ rotl(s.s2, 13) ^ (id * 0xd1342543de82ef95)
	dst.s0 = splitmix64(&state)
	dst.s1 = splitmix64(&state)
	dst.s2 = splitmix64(&state)
	dst.s3 = splitmix64(&state)
	if dst.s0|dst.s1|dst.s2|dst.s3 == 0 {
		dst.s3 = 1
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits, the standard conversion.
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Lemire rejection: draw until the 128-bit product's low half is
	// above the bias threshold.
	threshold := (-n) % n
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// Draw u in (0,1]; -log(u)/rate. Float64 returns [0,1), so flip it.
	u := 1.0 - s.Float64()
	return -math.Log(u) / rate
}

// Perm fills p with a uniform random permutation of 0..len(p)-1
// (Fisher–Yates).
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes the first n elements using the given swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// State returns the four state words, for checkpointing.
func (s *Source) State() [4]uint64 { return [4]uint64{s.s0, s.s1, s.s2, s.s3} }

// Restore sets the state words, the inverse of State.
func (s *Source) Restore(state [4]uint64) {
	s.s0, s.s1, s.s2, s.s3 = state[0], state[1], state[2], state[3]
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 1
	}
}
