package rng

import "math"

// batchSize is the maximum number of raw outputs a Batch prefetches per
// refill. One refill amortises the generator's state loads/stores over
// up to 256 draws while staying small enough to live in L1.
const batchSize = 256

// Batch is a buffered reader over a Source for hot loops that consume
// randomness in bulk (RSM's trial loop draws site, type and waiting
// time per trial). It prefetches raw Uint64 outputs with FillUint64 and
// derives uniforms, bounded integers and exponentials from the buffer
// using exactly the Source algorithms, so a Batch consumes the
// underlying stream in precisely the order the equivalent direct Source
// calls would — trajectories stay bit-identical for fixed seeds.
//
// Prefetching is bounded by reservations: Reserve(k) declares that at
// least k further draws are certain to be consumed (RSM reserves its
// per-step minimum of trials × draws-per-trial), and a refill never
// takes more than the outstanding reservation from the Source. A draw
// demanded with no reservation outstanding is fetched alone. The Source
// therefore never runs ahead of what is actually consumed by the end of
// each reserved window — after a whole engine step the buffer is empty
// and the Source state equals the sequential-consumption state, which
// keeps persist-style checkpoints of the raw Source exact.
type Batch struct {
	src      *Source
	buf      [batchSize]uint64
	i, n     int // unconsumed window buf[i:n]
	reserved int // guaranteed future draws not yet prefetched
}

// NewBatch returns a buffered reader over src. While the Batch holds
// prefetched draws the Source must not be used directly; outside
// reserved windows the buffer is empty and the Source is in sync.
func NewBatch(src *Source) *Batch {
	return &Batch{src: src}
}

// Reset redirects the batch to a fresh source, discarding any
// prefetched draws and outstanding reservations. After Reset the batch
// behaves exactly like NewBatch(src) — engine Reset uses it to rewind
// the RSM trial loop without reallocating the buffer.
func (b *Batch) Reset(src *Source) {
	b.src = src
	b.i, b.n, b.reserved = 0, 0, 0
}

// Reserve declares that at least k further draws will certainly be
// consumed, licensing prefetch up to that amount. Reservations
// accumulate; over-consumption beyond the reserved amount is always
// allowed (it just prefetches less efficiently).
func (b *Batch) Reserve(k int) {
	if k > 0 {
		b.reserved += k
	}
}

func (b *Batch) refill() {
	k := b.reserved
	if k > batchSize {
		k = batchSize
	}
	if k < 1 {
		k = 1 // unreserved demand: the draw is consumed immediately
	}
	b.src.FillUint64(b.buf[:k])
	b.i, b.n = 0, k
	b.reserved -= k
	if b.reserved < 0 {
		b.reserved = 0
	}
}

// Uint64 returns the next raw output.
func (b *Batch) Uint64() uint64 {
	if b.i == b.n {
		b.refill()
	}
	u := b.buf[b.i]
	b.i++
	return u
}

// Float64 returns a uniform float64 in [0, 1).
func (b *Batch) Float64() float64 {
	return float64(b.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(b.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) with the same
// Lemire-rejection consumption pattern as Source.Uint64n.
func (b *Batch) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	if n&(n-1) == 0 {
		return b.Uint64() & (n - 1)
	}
	threshold := (-n) % n
	for {
		v := b.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// Exp returns an exponentially distributed value with the given rate,
// consuming one output like Source.Exp. It panics if rate <= 0.
func (b *Batch) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := 1.0 - b.Float64()
	return -math.Log(u) / rate
}

// Buffered returns the number of prefetched draws not yet consumed
// (zero whenever every reserved window has been fully consumed).
func (b *Batch) Buffered() int { return b.n - b.i }
