package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 1000 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	// Must still produce varied output.
	first := s.Uint64()
	varied := false
	for i := 0; i < 10; i++ {
		if s.Uint64() != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("zero-seeded generator is constant")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 5, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d deviates from %v by >5 sigma", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Uint64n(64)
		if v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(19)
	for _, rate := range []float64{0.5, 1, 3, 10} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Exp(rate)
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.02 {
			t.Fatalf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	s := New(21)
	for i := 0; i < 100000; i++ {
		if v := s.Exp(2.5); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided %d/1000 draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	parent := New(29)
	before := parent.State()
	_ = parent.Split(5)
	if parent.State() != before {
		t.Fatal("Split advanced the parent state")
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(31)
	p2 := New(31)
	a := p1.Split(9)
	b := p2.Split(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split(9) of identical parents diverged")
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(37)
	p := make([]int, 20)
	s.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(41)
	const n, draws = 5, 50000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < draws; i++ {
		s.Perm(p)
		counts[p[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d: %d vs %v", i, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(43)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestStateRestore(t *testing.T) {
	s := New(47)
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	saved := s.State()
	want := make([]uint64, 50)
	for i := range want {
		want[i] = s.Uint64()
	}
	s.Restore(saved)
	for i := range want {
		if got := s.Uint64(); got != want[i] {
			t.Fatalf("restored sequence diverged at %d", i)
		}
	}
}

// Property: Intn never leaves its range, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm is always a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		s := New(seed)
		p := make([]int, n)
		s.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Split(id) children with distinct ids differ in their first draw
// almost always; identical ids match exactly.
func TestQuickSplitConsistent(t *testing.T) {
	f := func(seed, id uint64) bool {
		p := New(seed)
		a := p.Split(id)
		b := p.Split(id)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(10007)
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Exp(3)
	}
	_ = sink
}

// FillUint64 must reproduce exactly the sequence of successive Uint64
// calls, leaving the generator in the same state.
func TestFillUint64MatchesSequential(t *testing.T) {
	a, b := New(77), New(77)
	got := make([]uint64, 1000)
	a.FillUint64(got)
	for i, u := range got {
		if want := b.Uint64(); u != want {
			t.Fatalf("FillUint64[%d] = %d, want %d", i, u, want)
		}
	}
	if a.State() != b.State() {
		t.Fatal("states diverged after fill")
	}
}

func TestFillFloat64AndExpMatchSequential(t *testing.T) {
	a, b := New(78), New(78)
	fs := make([]float64, 257)
	a.FillFloat64(fs)
	for i, f := range fs {
		if want := b.Float64(); f != want {
			t.Fatalf("FillFloat64[%d] = %v, want %v", i, f, want)
		}
	}
	es := make([]float64, 129)
	a.FillExp(es, 2.5)
	for i, e := range es {
		if want := b.Exp(2.5); e != want {
			t.Fatalf("FillExp[%d] = %v, want %v", i, e, want)
		}
	}
}

// A Batch must consume the underlying stream exactly like direct Source
// calls for any interleaving of draw kinds, including the rejection
// loop of non-power-of-two Intn.
func TestBatchMatchesSource(t *testing.T) {
	src, ref := New(79), New(79)
	batch := NewBatch(src)
	ctl := New(80) // decides the call mix, independent stream
	for op := 0; op < 5000; op++ {
		switch ctl.Intn(4) {
		case 0:
			if got, want := batch.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("op %d: Uint64 %d != %d", op, got, want)
			}
		case 1:
			if got, want := batch.Float64(), ref.Float64(); got != want {
				t.Fatalf("op %d: Float64 %v != %v", op, got, want)
			}
		case 2:
			n := 1 + ctl.Intn(1000) // mixes power-of-two and rejection paths
			if got, want := batch.Intn(n), ref.Intn(n); got != want {
				t.Fatalf("op %d: Intn(%d) %d != %d", op, n, got, want)
			}
		case 3:
			if got, want := batch.Exp(3.25), ref.Exp(3.25); got != want {
				t.Fatalf("op %d: Exp %v != %v", op, got, want)
			}
		}
	}
}

func BenchmarkFillUint64(b *testing.B) {
	src := New(1)
	buf := make([]uint64, 256)
	b.SetBytes(256 * 8)
	for i := 0; i < b.N; i++ {
		src.FillUint64(buf)
	}
}

// After a fully consumed reserved window the batch buffer must be empty
// and the underlying Source exactly at the sequential-consumption state
// (the invariant persist-style checkpoints of the raw Source rely on),
// even when rejection sampling consumes more than the reserved minimum.
func TestBatchReserveAlignsSource(t *testing.T) {
	src, ref := New(81), New(81)
	b := NewBatch(src)
	const trials = 1000
	b.Reserve(3 * trials) // the guaranteed minimum; Intn(999) may take more
	for i := 0; i < trials; i++ {
		if got, want := b.Intn(999), ref.Intn(999); got != want {
			t.Fatalf("trial %d: Intn %d != %d", i, got, want)
		}
		if got, want := b.Float64(), ref.Float64(); got != want {
			t.Fatalf("trial %d: Float64 %v != %v", i, got, want)
		}
		if got, want := b.Exp(1.5), ref.Exp(1.5); got != want {
			t.Fatalf("trial %d: Exp %v != %v", i, got, want)
		}
	}
	if n := b.Buffered(); n != 0 {
		t.Fatalf("%d draws still buffered after the reserved window", n)
	}
	if src.State() != ref.State() {
		t.Fatal("source state ran ahead of consumption")
	}
}
