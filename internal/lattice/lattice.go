// Package lattice models the surface of the paper's §2: a two-dimensional
// periodic lattice Ω of N = L0×L1 sites, each holding a value from a
// finite species domain D. It provides site indexing, translation by
// offsets with periodic wrap-around, standard neighbourhood shapes, and
// the mutable configuration (a function Ω → D).
package lattice

import "fmt"

// Species is an element of the domain D of particle types. By convention
// species 0 is the vacant site "*"; model packages define the rest.
type Species uint8

// Vec is a lattice offset (dx, dy). Reaction-type patterns are expressed
// as offsets relative to the site the reaction is applied at, which gives
// the translation invariance required of neighbourhoods in the paper.
type Vec struct {
	DX, DY int
}

// Add returns the component-wise sum of two offsets.
func (v Vec) Add(w Vec) Vec { return Vec{v.DX + w.DX, v.DY + w.DY} }

// Neg returns the negated offset.
func (v Vec) Neg() Vec { return Vec{-v.DX, -v.DY} }

func (v Vec) String() string { return fmt.Sprintf("(%d,%d)", v.DX, v.DY) }

// Lattice is the geometry Ω: an L0×L1 torus. Sites are identified by a
// dense index in [0, N), laid out row-major: index = y*L0 + x.
type Lattice struct {
	L0, L1 int // width (x extent) and height (y extent)
	n      int
}

// New returns an L0×L1 periodic lattice. Both extents must be positive.
func New(l0, l1 int) *Lattice {
	if l0 <= 0 || l1 <= 0 {
		panic(fmt.Sprintf("lattice: non-positive extent %dx%d", l0, l1))
	}
	return &Lattice{L0: l0, L1: l1, n: l0 * l1}
}

// NewSquare returns an L×L lattice.
func NewSquare(l int) *Lattice { return New(l, l) }

// N returns the number of sites.
func (l *Lattice) N() int { return l.n }

// SameShape reports whether two lattices have identical extents. Site
// indexing and translation tables depend only on the extents, so
// engines accept any configuration whose lattice has the compiled
// shape (restored checkpoints build fresh Lattice values).
func (l *Lattice) SameShape(o *Lattice) bool {
	return o != nil && l.L0 == o.L0 && l.L1 == o.L1
}

// Index returns the dense site index for coordinates (x, y), which are
// wrapped periodically.
func (l *Lattice) Index(x, y int) int {
	x = mod(x, l.L0)
	y = mod(y, l.L1)
	return y*l.L0 + x
}

// Coords returns the (x, y) coordinates of site index s.
func (l *Lattice) Coords(s int) (x, y int) {
	return s % l.L0, s / l.L0
}

// Translate returns the site reached from s by offset v, with periodic
// wrap-around. This realises Nb(s+t) = Nb(s)+t: neighbourhoods look the
// same from every site.
func (l *Lattice) Translate(s int, v Vec) int {
	x, y := l.Coords(s)
	return l.Index(x+v.DX, y+v.DY)
}

// mod returns a modulo b with a result in [0, b), also for negative a.
func mod(a, b int) int {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// VonNeumann is the 4-neighbour cross: the site itself plus N, E, S, W.
// The paper's CO-oxidation example uses two-site subsets of this shape.
func VonNeumann() []Vec {
	return []Vec{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}}
}

// Moore is the 8-neighbour square plus the site itself.
func Moore() []Vec {
	return []Vec{
		{0, 0},
		{1, 0}, {-1, 0}, {0, 1}, {0, -1},
		{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
	}
}

// Axes4 are the four unit directions E, N, W, S in the orientation order
// Table I of the paper uses (indices 0..3).
func Axes4() []Vec {
	return []Vec{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}
}

// Config is a system state: a complete assignment of species to sites
// (a function Ω → D), stored densely.
type Config struct {
	lat   *Lattice
	cells []Species
}

// NewConfig returns the all-zero (vacant) configuration on lat.
func NewConfig(lat *Lattice) *Config {
	return &Config{lat: lat, cells: make([]Species, lat.N())}
}

// Lattice returns the geometry this configuration lives on.
func (c *Config) Lattice() *Lattice { return c.lat }

// Get returns the species at site s.
func (c *Config) Get(s int) Species { return c.cells[s] }

// Set assigns species sp to site s.
func (c *Config) Set(s int, sp Species) { c.cells[s] = sp }

// GetXY returns the species at coordinates (x, y) (periodic).
func (c *Config) GetXY(x, y int) Species { return c.cells[c.lat.Index(x, y)] }

// SetXY assigns species sp at coordinates (x, y) (periodic).
func (c *Config) SetXY(x, y int, sp Species) { c.cells[c.lat.Index(x, y)] = sp }

// Fill sets every site to species sp.
func (c *Config) Fill(sp Species) {
	for i := range c.cells {
		c.cells[i] = sp
	}
}

// Cells exposes the raw state slice. Callers must not resize it; it is
// shared with the configuration. Hot loops in the simulation engines use
// it to avoid bounds-checked accessor calls.
func (c *Config) Cells() []Species { return c.cells }

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := &Config{lat: c.lat, cells: make([]Species, len(c.cells))}
	copy(out.cells, c.cells)
	return out
}

// CopyFrom overwrites this configuration with the contents of other,
// which must live on a lattice of identical size.
func (c *Config) CopyFrom(other *Config) {
	if len(c.cells) != len(other.cells) {
		panic("lattice: CopyFrom size mismatch")
	}
	copy(c.cells, other.cells)
}

// Equal reports whether two configurations have identical state.
func (c *Config) Equal(other *Config) bool {
	if len(c.cells) != len(other.cells) {
		return false
	}
	for i, v := range c.cells {
		if other.cells[i] != v {
			return false
		}
	}
	return true
}

// Count returns the number of sites holding species sp.
func (c *Config) Count(sp Species) int {
	n := 0
	for _, v := range c.cells {
		if v == sp {
			n++
		}
	}
	return n
}

// Coverage returns Count(sp)/N, the fractional coverage the paper's
// figures plot.
func (c *Config) Coverage(sp Species) float64 {
	return float64(c.Count(sp)) / float64(c.lat.N())
}

// CountAll returns a histogram of species occupancy indexed by species
// value, sized to hold the largest species present.
func (c *Config) CountAll(numSpecies int) []int {
	return c.CountInto(make([]int, numSpecies))
}

// CountInto tallies species occupancy into counts (zeroing it first)
// and returns it, grown only when a species value exceeds its length —
// the allocation-free form of CountAll for samplers that observe the
// same configuration repeatedly (the ensemble replica runner calls it
// once per grid point).
func (c *Config) CountInto(counts []int) []int {
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range c.cells {
		if int(v) >= len(counts) {
			grown := make([]int, int(v)+1)
			copy(grown, counts)
			counts = grown
		}
		counts[v]++
	}
	return counts
}

// Randomize assigns each site independently a species drawn from the
// given weights (weights need not be normalised). rand is any function
// returning uniform values in [0,1).
func (c *Config) Randomize(weights []float64, rand func() float64) {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("lattice: Randomize with non-positive total weight")
	}
	for i := range c.cells {
		u := rand() * total
		acc := 0.0
		for sp, w := range weights {
			acc += w
			if u < acc {
				c.cells[i] = Species(sp)
				break
			}
		}
	}
}

// String renders the configuration as a compact character grid, one row
// per line, using digits for species values (useful in tests and small
// examples).
func (c *Config) String() string {
	buf := make([]byte, 0, (c.lat.L0+1)*c.lat.L1)
	for y := 0; y < c.lat.L1; y++ {
		for x := 0; x < c.lat.L0; x++ {
			sp := c.GetXY(x, y)
			if sp < 10 {
				buf = append(buf, byte('0'+sp))
			} else {
				buf = append(buf, byte('a'+sp-10))
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
