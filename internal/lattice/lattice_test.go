package lattice

import (
	"testing"
	"testing/quick"

	"parsurf/internal/rng"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	l := New(7, 5)
	for s := 0; s < l.N(); s++ {
		x, y := l.Coords(s)
		if got := l.Index(x, y); got != s {
			t.Fatalf("round trip failed: %d -> (%d,%d) -> %d", s, x, y, got)
		}
	}
}

func TestIndexWraps(t *testing.T) {
	l := New(10, 4)
	cases := []struct {
		x, y, want int
	}{
		{0, 0, 0},
		{10, 0, 0},  // wrap x
		{-1, 0, 9},  // negative x
		{0, 4, 0},   // wrap y
		{0, -1, 30}, // negative y: row 3 begins at 30
		{-11, -5, l.Index(9, 3)},
	}
	for _, c := range cases {
		if got := l.Index(c.x, c.y); got != c.want {
			t.Errorf("Index(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestTranslate(t *testing.T) {
	l := New(6, 6)
	s := l.Index(5, 5)
	if got := l.Translate(s, Vec{1, 0}); got != l.Index(0, 5) {
		t.Errorf("east from right edge: got %d", got)
	}
	if got := l.Translate(s, Vec{0, 1}); got != l.Index(5, 0) {
		t.Errorf("north from top edge: got %d", got)
	}
	if got := l.Translate(s, Vec{-7, -13}); got != l.Index(4, 4) {
		t.Errorf("long negative: got %d", got)
	}
}

// Translation invariance: Translate(Translate(s,v),w) == Translate(s,v+w).
func TestQuickTranslateComposes(t *testing.T) {
	l := New(13, 9)
	f := func(s16 uint16, a, b int8) bool {
		s := int(s16) % l.N()
		v := Vec{int(a % 5), int(b % 5)}
		w := Vec{int(b % 7), int(a % 3)}
		return l.Translate(l.Translate(s, v), w) == l.Translate(s, v.Add(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Neg inverts translation.
func TestQuickTranslateNeg(t *testing.T) {
	l := New(8, 11)
	f := func(s16 uint16, a, b int8) bool {
		s := int(s16) % l.N()
		v := Vec{int(a), int(b)}
		return l.Translate(l.Translate(s, v), v.Neg()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbourhoodShapes(t *testing.T) {
	if got := len(VonNeumann()); got != 5 {
		t.Errorf("VonNeumann size %d, want 5", got)
	}
	if got := len(Moore()); got != 9 {
		t.Errorf("Moore size %d, want 9", got)
	}
	if got := len(Axes4()); got != 4 {
		t.Errorf("Axes4 size %d, want 4", got)
	}
	// Both neighbourhoods must include the origin (paper property 1:
	// s ∈ Nb(s)).
	for _, nb := range [][]Vec{VonNeumann(), Moore()} {
		found := false
		for _, v := range nb {
			if v == (Vec{0, 0}) {
				found = true
			}
		}
		if !found {
			t.Error("neighbourhood does not include the origin")
		}
	}
}

func TestNeighbourhoodDistinct(t *testing.T) {
	for _, nb := range [][]Vec{VonNeumann(), Moore(), Axes4()} {
		seen := make(map[Vec]bool)
		for _, v := range nb {
			if seen[v] {
				t.Errorf("duplicate offset %v", v)
			}
			seen[v] = true
		}
	}
}

func TestConfigBasics(t *testing.T) {
	l := New(4, 3)
	c := NewConfig(l)
	if c.Lattice() != l {
		t.Fatal("Lattice() mismatch")
	}
	for s := 0; s < l.N(); s++ {
		if c.Get(s) != 0 {
			t.Fatal("fresh config not vacant")
		}
	}
	c.Set(5, 2)
	if c.Get(5) != 2 {
		t.Fatal("Set/Get failed")
	}
	c.SetXY(1, 1, 3)
	if c.Get(l.Index(1, 1)) != 3 {
		t.Fatal("SetXY failed")
	}
	if c.GetXY(1, 1) != 3 {
		t.Fatal("GetXY failed")
	}
}

func TestConfigFillCountCoverage(t *testing.T) {
	l := New(10, 10)
	c := NewConfig(l)
	c.Fill(1)
	if c.Count(1) != 100 || c.Count(0) != 0 {
		t.Fatal("Fill/Count failed")
	}
	if c.Coverage(1) != 1.0 {
		t.Fatal("Coverage failed")
	}
	c.Set(0, 2)
	if c.Count(1) != 99 || c.Count(2) != 1 {
		t.Fatal("Count after Set failed")
	}
	counts := c.CountAll(3)
	if counts[1] != 99 || counts[2] != 1 || counts[0] != 0 {
		t.Fatalf("CountAll = %v", counts)
	}
}

func TestCountAllGrows(t *testing.T) {
	l := New(2, 2)
	c := NewConfig(l)
	c.Set(0, 7)
	counts := c.CountAll(2) // deliberately too small
	if len(counts) < 8 || counts[7] != 1 {
		t.Fatalf("CountAll did not grow: %v", counts)
	}
}

func TestCloneIndependent(t *testing.T) {
	l := New(3, 3)
	c := NewConfig(l)
	c.Set(4, 1)
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d.Set(4, 2)
	if c.Get(4) != 1 {
		t.Fatal("clone shares storage")
	}
	if c.Equal(d) {
		t.Fatal("Equal missed difference")
	}
}

func TestCopyFrom(t *testing.T) {
	l := New(3, 3)
	a, b := NewConfig(l), NewConfig(l)
	b.Set(2, 5)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom failed")
	}
	other := NewConfig(New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom size mismatch did not panic")
		}
	}()
	a.CopyFrom(other)
}

func TestRandomizeWeights(t *testing.T) {
	l := New(100, 100)
	c := NewConfig(l)
	src := rng.New(5)
	c.Randomize([]float64{1, 1, 2}, src.Float64)
	counts := c.CountAll(3)
	n := float64(l.N())
	if f := float64(counts[2]) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("species 2 frequency %v, want ~0.5", f)
	}
	if f := float64(counts[0]) / n; f < 0.20 || f > 0.30 {
		t.Fatalf("species 0 frequency %v, want ~0.25", f)
	}
}

func TestRandomizePanicsOnZeroWeight(t *testing.T) {
	c := NewConfig(New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Randomize([]float64{0, 0}, func() float64 { return 0.5 })
}

func TestString(t *testing.T) {
	l := New(3, 2)
	c := NewConfig(l)
	c.SetXY(1, 0, 1)
	c.SetXY(2, 1, 2)
	want := "010\n002\n"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: Coverage of all species sums to 1.
func TestQuickCoverageSums(t *testing.T) {
	f := func(seed uint64) bool {
		l := New(16, 16)
		c := NewConfig(l)
		src := rng.New(seed)
		c.Randomize([]float64{1, 2, 3}, src.Float64)
		sum := c.Coverage(0) + c.Coverage(1) + c.Coverage(2)
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranslate(b *testing.B) {
	l := New(512, 512)
	v := Vec{1, 0}
	s := 12345
	for i := 0; i < b.N; i++ {
		s = l.Translate(s, v)
	}
}
