// Engine checkpoint payload (registry.Engine.SaveState/LoadState) for
// the domain-decomposition baseline.

package parallel

import (
	"io"

	"parsurf/internal/persist"
)

// SaveState writes the DDRSM clock and counters. The per-step derived
// streams are keyed off the step counter (Step increments steps, then
// splits the source by it), so restoring the counter restores the whole
// stream schedule; the per-strip scratch is rebuilt every Step.
func (d *DDRSM) SaveState(w io.Writer) error {
	e := persist.NewWriter(w)
	e.F64(d.time)
	e.U64(d.steps)
	e.U64(d.trials)
	e.U64(d.successes)
	e.U64(d.deferred)
	e.U64(d.barriers)
	return e.Err()
}

// LoadState restores a payload written by SaveState.
func (d *DDRSM) LoadState(rd io.Reader) error {
	dec := persist.NewReader(rd)
	d.time = dec.F64()
	d.steps = dec.U64()
	d.trials = dec.U64()
	d.successes = dec.U64()
	d.deferred = dec.U64()
	d.barriers = dec.U64()
	return dec.Err()
}
