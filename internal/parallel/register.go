package parallel

import (
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/registry"
	"parsurf/internal/rng"
)

// Engine-interface methods (registry.Engine) for the
// domain-decomposition baseline.

// Name returns the registry name.
func (d *DDRSM) Name() string { return "ddrsm" }

// TotalRate returns the constant trial rate N·K of the windowed RSM
// clock.
func (d *DDRSM) TotalRate() float64 { return float64(d.cm.Lat.N()) * d.cm.K }

// Steps returns the number of completed Step calls (windowed MC steps).
func (d *DDRSM) Steps() uint64 { return d.steps }

func init() {
	registry.Register(registry.Spec{
		Name:    "ddrsm",
		Doc:     "domain-decomposition RSM over strips, Segers-style baseline (§3)",
		Accepts: registry.OptWorkers | registry.OptDeterministicTime,
		New: func(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, o registry.Options) (registry.Engine, error) {
			workers := o.Workers
			if workers == 0 {
				workers = 2
			}
			d, err := NewDDRSM(cm, cfg, src, workers)
			if err != nil {
				return nil, err
			}
			d.DeterministicTime = o.DeterministicTime
			return d, nil
		},
	})
}
