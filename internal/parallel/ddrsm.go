// Package parallel implements the chunk-parallel DMC approach of Segers
// et al. that §3 of the paper describes as the prior art its partitioned
// CA methods are an alternative to: the lattice is decomposed into
// coherent strips, one worker simulates each strip with RSM, and
// reactions that touch strip boundaries require synchronisation between
// neighbours. The paper's observation — that communication overhead
// makes this profitable only when work per chunk is large relative to
// the boundary — is what internal/machine quantifies.
//
// The MPI communication of the original is rebuilt with goroutines and
// channels (see DESIGN.md §5): boundary trials are shipped over a
// channel to a sequential resolution phase, a window-synchronisation
// scheme used by parallel KMC codes.
package parallel

import (
	"fmt"
	"sync"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// DDRSM is the domain-decomposed Random Selection Method. One step is
// one MC step (N trials): every worker attempts |strip| trials at
// uniform sites of its strip; trials whose reaction pattern could reach
// outside the strip's interior are deferred over a channel and executed
// sequentially after a barrier. Within a window of one step this
// approximates RSM; the deferral is the accuracy cost of batching the
// communication.
type DDRSM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source

	strips []strip
	radius int
	time   float64

	// DeterministicTime advances 1/(N·K) per trial instead of Exp(N·K).
	DeterministicTime bool

	trials    uint64
	successes uint64
	deferred  uint64
	barriers  uint64
	steps     uint64

	// Per-step scratch, reused so the steady-state step allocates
	// nothing: the per-step base stream, one worker record per strip
	// (each with its own derived stream and deferred-trial buffer), the
	// merged deferral list, and the step barrier.
	stepBase    rng.Source
	workers     []stripWorker
	runFns      []func() // bound worker method values, allocated once
	allDeferred []deferredTrial
	wg          sync.WaitGroup
}

// stripWorker is one strip's per-step state. The strip goroutine writes
// only its own record; the sequential merge phase reads them in strip
// order after the barrier.
type stripWorker struct {
	d              *DDRSM
	idx            int
	stream         rng.Source
	deferredTrials []deferredTrial
	successes      uint64
	trials         uint64
	dt             float64
}

type strip struct {
	loRow, hiRow int // [loRow, hiRow)
	sites        int
}

type deferredTrial struct {
	site int
	rt   int
}

// NewDDRSM decomposes the lattice into p horizontal strips. Every strip
// must be at least 2·radius+1 rows tall so its interior is non-empty.
func NewDDRSM(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, p int) (*DDRSM, error) {
	if !cfg.Lattice().SameShape(cm.Lat) {
		return nil, fmt.Errorf("parallel: configuration lattice differs from compiled lattice")
	}
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one strip, got %d", p)
	}
	radius := cm.Model.MaxPatternRadius()
	rows := cm.Lat.L1
	if rows/p < 2*radius+1 {
		return nil, fmt.Errorf("parallel: %d rows cannot host %d strips of >= %d rows", rows, p, 2*radius+1)
	}
	d := &DDRSM{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, radius: radius}
	for w := 0; w < p; w++ {
		lo := w * rows / p
		hi := (w + 1) * rows / p
		d.strips = append(d.strips, strip{loRow: lo, hiRow: hi, sites: (hi - lo) * cm.Lat.L0})
	}
	d.workers = make([]stripWorker, p)
	// Deferred trials land in the 2·radius boundary rows of each strip,
	// so a step defers about 2·radius·L0 trials per strip on average
	// (binomial, sd ≈ √mean). Presizing the buffers at 4× the mean puts
	// the capacity tens of standard deviations above any count a run
	// will ever see, so the steady-state step allocates nothing.
	band := 4 * 2 * radius * cm.Lat.L0
	d.runFns = make([]func(), p)
	for w := range d.workers {
		d.workers[w].d = d
		d.workers[w].idx = w
		d.workers[w].deferredTrials = make([]deferredTrial, 0, band)
		// Bind the method value once: `go d.runFns[w]()` then passes a
		// zero-argument funcval to the scheduler, where a direct
		// `go d.workers[w].run()` would heap-allocate a wrapper
		// closure on every launch.
		d.runFns[w] = d.workers[w].run
	}
	d.allDeferred = make([]deferredTrial, 0, band*p)
	return d, nil
}

// Reset rewinds the engine over a fresh configuration (see
// registry.Engine.Reset). The strip decomposition is kept; the step
// counter rewinds, which also rewinds the per-step derived stream ids,
// so a reset engine reproduces a fresh one's trajectory exactly.
func (d *DDRSM) Reset(cfg *lattice.Config, src *rng.Source) {
	if !cfg.Lattice().SameShape(d.cm.Lat) {
		panic("parallel: Reset configuration lattice differs from compiled lattice")
	}
	d.cfg, d.cells, d.src = cfg, cfg.Cells(), src
	d.time = 0
	d.trials, d.successes, d.deferred, d.barriers, d.steps = 0, 0, 0, 0, 0
}

// Workers returns the number of strips.
func (d *DDRSM) Workers() int { return len(d.strips) }

// interior reports whether a trial at site s stays strictly inside the
// strip [loRow, hiRow): the pattern radius must not reach the strip
// edges.
func (d *DDRSM) interior(st strip, s int) bool {
	_, y := d.cm.Lat.Coords(s)
	return y-d.radius >= st.loRow && y+d.radius < st.hiRow
}

// Step performs one windowed MC step.
//
//surflint:hotpath
func (d *DDRSM) Step() bool {
	p := len(d.strips)

	// Per-step derived streams make the outcome independent of
	// goroutine scheduling.
	d.steps++
	d.src.SplitInto(&d.stepBase, d.steps)

	d.wg.Add(p)
	for w := 0; w < p; w++ {
		// Intended fan-out: one goroutine per strip per window step,
		// amortized over the whole interior sweep; runFns are built at
		// Reset so the launch itself does not allocate.
		//surflint:allow hotpath
		go d.runFns[w]()
	}
	d.wg.Wait() // barrier: all interior work done
	d.barriers++

	// Sequential boundary phase. Subtotals merge in strip order so the
	// floating-point time sum is deterministic (goroutine completion
	// order must not leak into the clock); the deferred trials are then
	// re-sorted by (site, rt) — their intra-window order is unspecified
	// anyway, which is exactly the windowing approximation. The merge
	// buffer and every per-strip deferral buffer are struct-held and
	// reused, so the steady-state step allocates nothing.
	allDeferred := d.allDeferred[:0]
	for w := range d.workers {
		wk := &d.workers[w]
		d.successes += wk.successes
		d.trials += wk.trials
		d.time += wk.dt
		allDeferred = append(allDeferred, wk.deferredTrials...)
	}
	d.allDeferred = allDeferred
	sortDeferred(allDeferred)
	for _, tr := range allDeferred {
		if d.cm.TryExecute(d.cells, tr.rt, tr.site) {
			d.successes++
		}
	}
	d.deferred += uint64(len(allDeferred))
	d.barriers++
	return true
}

// run performs one strip's interior trials for the step in flight. It
// writes only its own record; interior trials touch only this strip's
// rows, so concurrent execution cannot race with the other strips.
func (wk *stripWorker) run() {
	d := wk.d
	defer d.wg.Done()
	st := d.strips[wk.idx]
	nk := float64(d.cm.Lat.N()) * d.cm.K
	d.stepBase.SplitInto(&wk.stream, uint64(wk.idx))
	stream := &wk.stream
	wk.deferredTrials = wk.deferredTrials[:0]
	wk.successes, wk.trials, wk.dt = 0, 0, 0
	for i := 0; i < st.sites; i++ {
		row := st.loRow + stream.Intn(st.hiRow-st.loRow)
		col := stream.Intn(d.cm.Lat.L0)
		s := d.cm.Lat.Index(col, row)
		rt := d.cm.PickType(stream.Float64())
		wk.trials++
		if d.DeterministicTime {
			wk.dt += 1 / nk
		} else {
			wk.dt += stream.Exp(nk)
		}
		if d.interior(st, s) {
			if d.cm.TryExecute(d.cells, rt, s) {
				wk.successes++
			}
		} else {
			wk.deferredTrials = append(wk.deferredTrials, deferredTrial{site: s, rt: rt})
		}
	}
}

// sortDeferred orders trials by (site, rt) with an insertion sort; the
// slices are short (boundary bands only).
func sortDeferred(ts []deferredTrial) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j-1], ts[j]
			if a.site < b.site || (a.site == b.site && a.rt <= b.rt) {
				break
			}
			ts[j-1], ts[j] = b, a
		}
	}
}

// Time returns the simulated time.
func (d *DDRSM) Time() float64 { return d.time }

// Config returns the live configuration.
func (d *DDRSM) Config() *lattice.Config { return d.cfg }

// Trials returns the attempted trials.
func (d *DDRSM) Trials() uint64 { return d.trials }

// Successes returns the executed reactions.
func (d *DDRSM) Successes() uint64 { return d.successes }

// Deferred returns the number of boundary trials shipped to the
// sequential phase — the communication volume of the decomposition.
func (d *DDRSM) Deferred() uint64 { return d.deferred }

// Barriers returns the number of synchronisation barriers so far.
func (d *DDRSM) Barriers() uint64 { return d.barriers }
