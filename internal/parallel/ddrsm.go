// Package parallel implements the chunk-parallel DMC approach of Segers
// et al. that §3 of the paper describes as the prior art its partitioned
// CA methods are an alternative to: the lattice is decomposed into
// coherent strips, one worker simulates each strip with RSM, and
// reactions that touch strip boundaries require synchronisation between
// neighbours. The paper's observation — that communication overhead
// makes this profitable only when work per chunk is large relative to
// the boundary — is what internal/machine quantifies.
//
// The MPI communication of the original is rebuilt with goroutines and
// channels (see DESIGN.md §5): boundary trials are shipped over a
// channel to a sequential resolution phase, a window-synchronisation
// scheme used by parallel KMC codes.
package parallel

import (
	"fmt"
	"sync"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

// DDRSM is the domain-decomposed Random Selection Method. One step is
// one MC step (N trials): every worker attempts |strip| trials at
// uniform sites of its strip; trials whose reaction pattern could reach
// outside the strip's interior are deferred over a channel and executed
// sequentially after a barrier. Within a window of one step this
// approximates RSM; the deferral is the accuracy cost of batching the
// communication.
type DDRSM struct {
	cm    *model.Compiled
	cfg   *lattice.Config
	cells []lattice.Species
	src   *rng.Source

	strips []strip
	radius int
	time   float64

	// DeterministicTime advances 1/(N·K) per trial instead of Exp(N·K).
	DeterministicTime bool

	trials    uint64
	successes uint64
	deferred  uint64
	barriers  uint64
	steps     uint64
}

type strip struct {
	loRow, hiRow int // [loRow, hiRow)
	sites        int
}

type deferredTrial struct {
	site int
	rt   int
}

// NewDDRSM decomposes the lattice into p horizontal strips. Every strip
// must be at least 2·radius+1 rows tall so its interior is non-empty.
func NewDDRSM(cm *model.Compiled, cfg *lattice.Config, src *rng.Source, p int) (*DDRSM, error) {
	if !cfg.Lattice().SameShape(cm.Lat) {
		return nil, fmt.Errorf("parallel: configuration lattice differs from compiled lattice")
	}
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one strip, got %d", p)
	}
	radius := cm.Model.MaxPatternRadius()
	rows := cm.Lat.L1
	if rows/p < 2*radius+1 {
		return nil, fmt.Errorf("parallel: %d rows cannot host %d strips of >= %d rows", rows, p, 2*radius+1)
	}
	d := &DDRSM{cm: cm, cfg: cfg, cells: cfg.Cells(), src: src, radius: radius}
	for w := 0; w < p; w++ {
		lo := w * rows / p
		hi := (w + 1) * rows / p
		d.strips = append(d.strips, strip{loRow: lo, hiRow: hi, sites: (hi - lo) * cm.Lat.L0})
	}
	return d, nil
}

// Workers returns the number of strips.
func (d *DDRSM) Workers() int { return len(d.strips) }

// interior reports whether a trial at site s stays strictly inside the
// strip [loRow, hiRow): the pattern radius must not reach the strip
// edges.
func (d *DDRSM) interior(st strip, s int) bool {
	_, y := d.cm.Lat.Coords(s)
	return y-d.radius >= st.loRow && y+d.radius < st.hiRow
}

// Step performs one windowed MC step.
func (d *DDRSM) Step() bool {
	p := len(d.strips)
	n := d.cm.Lat.N()
	nk := float64(n) * d.cm.K

	// Per-step derived streams make the outcome independent of
	// goroutine scheduling.
	d.steps++
	stepBase := d.src.Split(d.steps)

	type result struct {
		deferredTrials []deferredTrial
		successes      uint64
		trials         uint64
		dt             float64
	}
	results := make([]result, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := d.strips[w]
			stream := stepBase.Split(uint64(w))
			res := &results[w]
			for i := 0; i < st.sites; i++ {
				row := st.loRow + stream.Intn(st.hiRow-st.loRow)
				col := stream.Intn(d.cm.Lat.L0)
				s := d.cm.Lat.Index(col, row)
				rt := d.cm.PickType(stream.Float64())
				res.trials++
				if d.DeterministicTime {
					res.dt += 1 / nk
				} else {
					res.dt += stream.Exp(nk)
				}
				if d.interior(st, s) {
					// Interior trials touch only this strip's rows, so
					// concurrent execution cannot race with the other
					// strips.
					if d.cm.TryExecute(d.cells, rt, s) {
						res.successes++
					}
				} else {
					res.deferredTrials = append(res.deferredTrials, deferredTrial{site: s, rt: rt})
				}
			}
		}(w)
	}
	wg.Wait() // barrier: all interior work done
	d.barriers++

	// Sequential boundary phase. Subtotals merge in strip order so the
	// floating-point time sum is deterministic (goroutine completion
	// order must not leak into the clock); the deferred trials are then
	// re-sorted by (site, rt) — their intra-window order is unspecified
	// anyway, which is exactly the windowing approximation.
	var allDeferred []deferredTrial
	for w := range results {
		res := &results[w]
		d.successes += res.successes
		d.trials += res.trials
		d.time += res.dt
		allDeferred = append(allDeferred, res.deferredTrials...)
	}
	sortDeferred(allDeferred)
	for _, tr := range allDeferred {
		if d.cm.TryExecute(d.cells, tr.rt, tr.site) {
			d.successes++
		}
	}
	d.deferred += uint64(len(allDeferred))
	d.barriers++
	return true
}

// sortDeferred orders trials by (site, rt) with an insertion sort; the
// slices are short (boundary bands only).
func sortDeferred(ts []deferredTrial) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j-1], ts[j]
			if a.site < b.site || (a.site == b.site && a.rt <= b.rt) {
				break
			}
			ts[j-1], ts[j] = b, a
		}
	}
}

// Time returns the simulated time.
func (d *DDRSM) Time() float64 { return d.time }

// Config returns the live configuration.
func (d *DDRSM) Config() *lattice.Config { return d.cfg }

// Trials returns the attempted trials.
func (d *DDRSM) Trials() uint64 { return d.trials }

// Successes returns the executed reactions.
func (d *DDRSM) Successes() uint64 { return d.successes }

// Deferred returns the number of boundary trials shipped to the
// sequential phase — the communication volume of the decomposition.
func (d *DDRSM) Deferred() uint64 { return d.deferred }

// Barriers returns the number of synchronisation barriers so far.
func (d *DDRSM) Barriers() uint64 { return d.barriers }
