package parallel

import (
	"math"
	"testing"

	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
)

func setup(t testing.TB, l int) (*model.Compiled, *lattice.Lattice) {
	t.Helper()
	m := model.NewZGB(model.DefaultZGBRates())
	lat := lattice.NewSquare(l)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	return cm, lat
}

func TestDDRSMConstruction(t *testing.T) {
	cm, lat := setup(t, 24)
	cfg := lattice.NewConfig(lat)
	d, err := NewDDRSM(cm, cfg, rng.New(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 4 {
		t.Fatalf("Workers = %d", d.Workers())
	}
	// Too many strips for the rows available.
	if _, err := NewDDRSM(cm, cfg, rng.New(1), 9); err == nil {
		t.Fatal("accepted strips thinner than the pattern radius allows")
	}
	if _, err := NewDDRSM(cm, cfg, rng.New(1), 0); err == nil {
		t.Fatal("accepted zero strips")
	}
	other := lattice.NewConfig(lattice.NewSquare(12))
	if _, err := NewDDRSM(cm, other, rng.New(1), 2); err == nil {
		t.Fatal("accepted mismatched lattice")
	}
}

func TestDDRSMStepAccounting(t *testing.T) {
	cm, lat := setup(t, 24)
	cfg := lattice.NewConfig(lat)
	d, _ := NewDDRSM(cm, cfg, rng.New(2), 4)
	d.Step()
	if d.Trials() != uint64(lat.N()) {
		t.Fatalf("trials %d, want %d", d.Trials(), lat.N())
	}
	if d.Barriers() != 2 {
		t.Fatalf("barriers %d, want 2", d.Barriers())
	}
	if d.Deferred() == 0 {
		t.Fatal("no boundary trials on a 4-strip decomposition")
	}
	if d.Successes() == 0 {
		t.Fatal("nothing executed on an empty lattice")
	}
	if d.Time() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestDDRSMDeterministicAcrossRuns(t *testing.T) {
	cm, lat := setup(t, 24)
	run := func() *lattice.Config {
		cfg := lattice.NewConfig(lat)
		d, _ := NewDDRSM(cm, cfg, rng.New(3), 4)
		for i := 0; i < 20; i++ {
			d.Step()
		}
		return cfg
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatal("goroutine scheduling leaked into the trajectory")
	}
}

func TestDDRSMSingleStripMatchesShape(t *testing.T) {
	// One strip: everything is interior except the wrap-around rows;
	// kinetics must track RSM closely.
	cm, lat := setup(t, 40)
	steady := func(sim dmc.Simulator) float64 {
		for i := 0; i < 150; i++ {
			sim.Step()
		}
		total := 0.0
		for i := 0; i < 50; i++ {
			sim.Step()
			total += sim.Config().Coverage(model.ZGBCO)
		}
		return total / 50
	}
	cfgD := lattice.NewConfig(lat)
	d, _ := NewDDRSM(cm, cfgD, rng.New(4), 1)
	covD := steady(d)
	cfgR := lattice.NewConfig(lat)
	covR := steady(dmc.NewRSM(cm, cfgR, rng.New(5)))
	if math.Abs(covD-covR) > 0.08 {
		t.Fatalf("DDRSM(1) steady CO %v vs RSM %v", covD, covR)
	}
}

func TestDDRSMParallelTracksRSM(t *testing.T) {
	cm, lat := setup(t, 40)
	steady := func(sim dmc.Simulator) float64 {
		for i := 0; i < 150; i++ {
			sim.Step()
		}
		total := 0.0
		for i := 0; i < 50; i++ {
			sim.Step()
			total += sim.Config().Coverage(model.ZGBCO)
		}
		return total / 50
	}
	cfgD := lattice.NewConfig(lat)
	d, _ := NewDDRSM(cm, cfgD, rng.New(6), 5)
	covD := steady(d)
	cfgR := lattice.NewConfig(lat)
	covR := steady(dmc.NewRSM(cm, cfgR, rng.New(7)))
	if math.Abs(covD-covR) > 0.08 {
		t.Fatalf("DDRSM(5) steady CO %v vs RSM %v", covD, covR)
	}
}

func TestDDRSMDeferredScalesWithStrips(t *testing.T) {
	cm, lat := setup(t, 40)
	deferredFor := func(p int) uint64 {
		cfg := lattice.NewConfig(lat)
		d, err := NewDDRSM(cm, cfg, rng.New(8), p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			d.Step()
		}
		return d.Deferred()
	}
	d2, d8 := deferredFor(2), deferredFor(8)
	if d8 <= d2 {
		t.Fatalf("more strips should defer more boundary trials: p=2 %d, p=8 %d", d2, d8)
	}
}

func BenchmarkDDRSMStep(b *testing.B) {
	cm, lat := setup(b, 64)
	cfg := lattice.NewConfig(lat)
	d, err := NewDDRSM(cm, cfg, rng.New(1), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}
