// Package machine is the simulated parallel computer used to regenerate
// the paper's Fig. 7 speedup surface on a host without real parallel
// hardware (the substitution documented in DESIGN.md §5).
//
// The model charges virtual time for the *actual* work decomposition of
// the partitioned algorithms: every site trial costs TTrial, every
// chunk sweep ends in a barrier costing TBarrier, distributing a sweep
// to p workers costs TSpawn per worker, and every boundary message of
// the domain-decomposition baseline costs TMsg. Workers within a sweep
// run concurrently, so a sweep's compute time is the maximum over the
// worker segments. Speedup is T(1,N)/T(p,N), exactly the paper's
// definition. Only the four hardware constants are synthetic; the work
// counts come from the real partitions and engines.
package machine

import (
	"fmt"

	"parsurf/internal/partition"
)

// Model holds the virtual hardware constants, all in seconds.
type Model struct {
	// TTrial is the cost of one site trial (selection, enabledness
	// check, execution).
	TTrial float64
	// TBarrier is the cost of one synchronisation barrier.
	TBarrier float64
	// TSpawn is the per-worker cost of distributing a sweep.
	TSpawn float64
	// TMsg is the cost of one boundary message (domain decomposition).
	TMsg float64
}

// Default returns constants calibrated to the paper's 2002-era setting:
// a site trial around a microsecond, cluster barriers in the low
// milliseconds, per-worker distribution cost of ~100 µs. With these the
// modeled Fig. 7 surface peaks near speedup 8 at p=10 on a 1000×1000
// lattice and stays near 1–2 on a 200×200 lattice, matching the paper's
// plot. Substitute measured constants (e.g. this host's ~50 ns/trial)
// to model modern hardware.
func Default() Model {
	return Model{
		TTrial:   1e-6,
		TBarrier: 3e-3,
		TSpawn:   100e-6,
		TMsg:     10e-6,
	}
}

// PNDCAStepTime returns the modeled wall time of one PNDCA step (every
// chunk swept once) on p workers: per chunk, the slowest worker segment
// plus the distribution and barrier costs.
func (m Model) PNDCAStepTime(part *partition.Partition, p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("machine: non-positive worker count %d", p))
	}
	total := 0.0
	for _, chunk := range part.Chunks {
		seg := ceilDiv(len(chunk), p)
		total += float64(seg) * m.TTrial
		if p > 1 {
			total += m.TBarrier + float64(p)*m.TSpawn
		}
	}
	return total
}

// PNDCASpeedup returns T(1,N)/T(p,N) for one PNDCA step over the given
// partition — the quantity of the paper's Fig. 7.
func (m Model) PNDCASpeedup(part *partition.Partition, p int) float64 {
	return m.PNDCAStepTime(part, 1) / m.PNDCAStepTime(part, p)
}

// DDRSMStepTime returns the modeled wall time of one windowed
// domain-decomposition RSM step on p strips: the slowest strip's
// interior trials, two barriers, and the sequential boundary phase whose
// trials each cost a message plus a trial.
//
// interiorTrials and boundaryTrials are the measured per-step counts
// (e.g. from parallel.DDRSM: Trials−Deferred and Deferred).
func (m Model) DDRSMStepTime(interiorTrials, boundaryTrials uint64, p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("machine: non-positive worker count %d", p))
	}
	perWorker := ceilDiv(int(interiorTrials), p)
	t := float64(perWorker) * m.TTrial
	if p > 1 {
		t += 2*m.TBarrier + float64(p)*m.TSpawn
		t += float64(boundaryTrials) * (m.TTrial + m.TMsg)
	} else {
		t += float64(boundaryTrials) * m.TTrial
	}
	return t
}

// SpeedupSurface evaluates PNDCA speedup for every combination of
// lattice side and worker count, using the canonical five-chunk
// partition (each chunk N/5 sites). Sides not divisible by 5 are
// rejected. The result is indexed [si][pi].
func (m Model) SpeedupSurface(sides []int, workers []int) ([][]float64, error) {
	out := make([][]float64, len(sides))
	for si, side := range sides {
		if side%5 != 0 {
			return nil, fmt.Errorf("machine: side %d not divisible by 5", side)
		}
		// The speedup depends only on the chunk sizes; synthesise the
		// five-chunk layout without materialising a lattice.
		n := side * side
		chunk := n / 5
		t1 := 5 * float64(chunk) * m.TTrial
		out[si] = make([]float64, len(workers))
		for pi, p := range workers {
			if p < 1 {
				return nil, fmt.Errorf("machine: worker count %d", p)
			}
			seg := ceilDiv(chunk, p)
			tp := 5 * float64(seg) * m.TTrial
			if p > 1 {
				tp += 5 * (m.TBarrier + float64(p)*m.TSpawn)
			}
			out[si][pi] = t1 / tp
		}
	}
	return out, nil
}

// Efficiency returns speedup/p, the parallel efficiency of PNDCA on p
// workers.
func (m Model) Efficiency(part *partition.Partition, p int) float64 {
	return m.PNDCASpeedup(part, p) / float64(p)
}

// OptimalWorkers returns the worker count in [1, maxP] with the highest
// modeled PNDCA speedup, and that speedup. For small systems the barrier
// and spawn costs make this finite — the volume/boundary trade-off of
// §3 in machine-model form.
func (m Model) OptimalWorkers(part *partition.Partition, maxP int) (p int, speedup float64) {
	if maxP < 1 {
		panic("machine: non-positive worker bound")
	}
	p, speedup = 1, 1
	for cand := 2; cand <= maxP; cand++ {
		if s := m.PNDCASpeedup(part, cand); s > speedup {
			p, speedup = cand, s
		}
	}
	return p, speedup
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
