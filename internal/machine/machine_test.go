package machine

import (
	"testing"

	"parsurf/internal/lattice"
	"parsurf/internal/partition"
)

func TestPNDCAStepTimeSequential(t *testing.T) {
	lat := lattice.NewSquare(10)
	part, err := partition.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{TTrial: 1, TBarrier: 100, TSpawn: 10}
	// p=1: no barriers, no spawn; 100 trials.
	if got := m.PNDCAStepTime(part, 1); got != 100 {
		t.Fatalf("T(1) = %v, want 100", got)
	}
	// p=2: five chunks of 20 -> 10 trials each, plus 5 barriers and
	// 5·2 spawns.
	want := 5.0*10 + 5*(100+2*10)
	if got := m.PNDCAStepTime(part, 2); got != want {
		t.Fatalf("T(2) = %v, want %v", got, want)
	}
}

func TestPNDCASpeedupMonotoneInN(t *testing.T) {
	m := Default()
	sides := []int{200, 500, 1000}
	surface, err := m.SpeedupSurface(sides, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sides); i++ {
		if surface[i][0] <= surface[i-1][0] {
			t.Fatalf("speedup at p=10 not increasing with N: %v", surface)
		}
	}
}

func TestSpeedupSurfaceShapeMatchesFig7(t *testing.T) {
	// Fig. 7 shape: near-linear speedup for the largest system, clearly
	// sub-linear for the smallest; speedup at N=1000² and p=10 around
	// 8 (paper's peak).
	m := Default()
	sides := []int{200, 1000}
	workers := []int{2, 10}
	s, err := m.SpeedupSurface(sides, workers)
	if err != nil {
		t.Fatal(err)
	}
	if s[1][1] < 6 || s[1][1] > 10 {
		t.Fatalf("speedup(1000, 10) = %v, want ~8", s[1][1])
	}
	if s[0][1] >= s[1][1] {
		t.Fatalf("small system should speed up less: %v", s)
	}
	if s[0][0] <= 1 {
		t.Fatalf("p=2 should still beat sequential on N=200²: %v", s[0][0])
	}
}

func TestSpeedupAtP1IsOne(t *testing.T) {
	m := Default()
	lat := lattice.NewSquare(20)
	part, err := partition.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PNDCASpeedup(part, 1); got != 1 {
		t.Fatalf("speedup(p=1) = %v", got)
	}
}

func TestSpeedupSaturatesForSmallSystems(t *testing.T) {
	// For a tiny lattice the barrier dominates: more workers must not
	// keep helping forever.
	m := Default()
	s, err := m.SpeedupSurface([]int{50}, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	last := s[0][len(s[0])-1]
	peak := 0.0
	for _, v := range s[0] {
		if v > peak {
			peak = v
		}
	}
	if last >= peak {
		t.Fatalf("tiny system speedup should decline past its peak: %v", s[0])
	}
}

func TestDDRSMStepTime(t *testing.T) {
	m := Model{TTrial: 1, TBarrier: 50, TSpawn: 5, TMsg: 2}
	// Sequential: all trials cost TTrial.
	if got := m.DDRSMStepTime(900, 100, 1); got != 1000 {
		t.Fatalf("T(1) = %v", got)
	}
	// p=4: 225 interior each, 2 barriers, 4 spawns, boundary trials at
	// TTrial+TMsg.
	want := 225.0 + 2*50 + 4*5 + 100*(1+2)
	if got := m.DDRSMStepTime(900, 100, 4); got != want {
		t.Fatalf("T(4) = %v, want %v", got, want)
	}
}

func TestDDRSMVsPNDCAOverhead(t *testing.T) {
	// The paper's motivation: for the same work, the boundary-messaging
	// decomposition pays more overhead than the partition approach.
	m := Default()
	lat := lattice.NewSquare(100)
	part, err := partition.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	p := 8
	tPNDCA := m.PNDCAStepTime(part, p)
	// A 100×100 lattice split into 8 strips: radius-1 patterns defer
	// roughly the trials landing in 2 boundary rows per strip:
	// 8 strips × 2 rows × 100 sites / (total 10000) of N trials.
	boundary := uint64(8 * 2 * 100)
	interior := uint64(lat.N()) - boundary
	tDD := m.DDRSMStepTime(interior, boundary, p)
	if tDD <= tPNDCA {
		t.Fatalf("expected DDRSM overhead above PNDCA: %v <= %v", tDD, tPNDCA)
	}
}

func TestPanics(t *testing.T) {
	m := Default()
	lat := lattice.NewSquare(10)
	part, _ := partition.VonNeumann5(lat)
	for _, f := range []func(){
		func() { m.PNDCAStepTime(part, 0) },
		func() { m.DDRSMStepTime(10, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if _, err := m.SpeedupSurface([]int{7}, []int{2}); err == nil {
		t.Error("accepted side not divisible by 5")
	}
	if _, err := m.SpeedupSurface([]int{10}, []int{0}); err == nil {
		t.Error("accepted zero workers")
	}
}

func TestEfficiencyDecreasesWithP(t *testing.T) {
	m := Default()
	lat := lattice.NewSquare(100)
	part, err := partition.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, p := range []int{1, 2, 4, 8} {
		e := m.Efficiency(part, p)
		if e > prev+1e-9 {
			t.Fatalf("efficiency rose at p=%d: %v after %v", p, e, prev)
		}
		prev = e
	}
}

func TestOptimalWorkers(t *testing.T) {
	m := Default()
	// Tiny system: optimum well below the bound.
	small, _ := partition.VonNeumann5(lattice.NewSquare(50))
	pSmall, sSmall := m.OptimalWorkers(small, 32)
	if pSmall >= 32 {
		t.Fatalf("tiny system claims optimum at the bound: p=%d", pSmall)
	}
	if sSmall < 1 {
		t.Fatalf("optimal speedup below 1: %v", sSmall)
	}
	// Huge system: more workers keep helping up to the bound.
	big, _ := partition.VonNeumann5(lattice.NewSquare(1000))
	pBig, sBig := m.OptimalWorkers(big, 16)
	if pBig != 16 {
		t.Fatalf("large system optimum %d, want the bound 16", pBig)
	}
	if sBig <= sSmall {
		t.Fatal("large system should speed up more than the tiny one")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bound")
		}
	}()
	m.OptimalWorkers(small, 0)
}
