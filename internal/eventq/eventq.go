// Package eventq provides an indexed binary min-heap of timed events for
// the First Reaction Method (FRM): every (reaction, site) pair can carry
// at most one scheduled occurrence time, and state changes must be able
// to reschedule or cancel events cheaply. The heap supports O(log n)
// push, pop, update and remove by event key.
//
// Keys live in a dense space [0, keySpace) fixed at construction (FRM
// uses rt·N + site), so the key → heap-position index is a flat slice
// rather than a hash map — no hashing, no map churn on the reschedule
// path that runs after every executed reaction.
package eventq

import "fmt"

// Event is a scheduled reaction occurrence.
type Event struct {
	Time float64
	Key  int64 // caller-defined identity in [0, keySpace), e.g. rt*N + site
}

// Queue is an indexed min-heap ordered by Event.Time. Each Key appears at
// most once; Schedule replaces an existing event for the same key.
type Queue struct {
	heap []Event
	pos  []int32 // key -> heap index + 1; 0 = absent
}

// New returns an empty queue accepting keys in [0, keySpace).
func New(keySpace int) *Queue {
	if keySpace < 0 {
		panic(fmt.Sprintf("eventq: negative key space %d", keySpace))
	}
	return &Queue{pos: make([]int32, keySpace)}
}

// KeySpace returns the exclusive upper bound on keys.
func (q *Queue) KeySpace() int { return len(q.pos) }

// Reset empties the queue, keeping the heap's capacity and the position
// index allocation — the queue behaves as freshly constructed. Engine
// Reset uses it to rewind FRM without reallocating the O(keySpace)
// index.
func (q *Queue) Reset() {
	for _, ev := range q.heap {
		q.pos[ev.Key] = 0
	}
	q.heap = q.heap[:0]
}

// Len returns the number of scheduled events.
func (q *Queue) Len() int { return len(q.heap) }

// Snapshot appends the events in internal heap order to dst and
// returns it. Restoring the exact array order (rather than re-inserting
// events one by one) makes a restored queue bit-identical to the
// original: subsequent Schedule/Remove sift sequences, and therefore
// tie-breaks between equal times, replay exactly.
func (q *Queue) Snapshot(dst []Event) []Event {
	return append(dst, q.heap...)
}

// Restore replaces the queue's contents with a Snapshot, placing the
// events verbatim (no sifting) and rebuilding the key index. Events
// must have keys in [0, KeySpace()) with no duplicates; the slice must
// already satisfy the heap property, which Snapshot output does.
func (q *Queue) Restore(events []Event) error {
	for _, ev := range q.heap {
		q.pos[ev.Key] = 0
	}
	q.heap = q.heap[:0]
	for i, ev := range events {
		if ev.Key < 0 || ev.Key >= int64(len(q.pos)) {
			q.Reset()
			return fmt.Errorf("eventq: restored key %d outside [0,%d)", ev.Key, len(q.pos))
		}
		if q.pos[ev.Key] != 0 {
			q.Reset()
			return fmt.Errorf("eventq: duplicate restored key %d", ev.Key)
		}
		q.heap = append(q.heap, ev)
		q.pos[ev.Key] = int32(i + 1)
	}
	return nil
}

// Schedule inserts an event, or reschedules the existing event with the
// same key to the new time. Rescheduling to the exact time already held
// is a no-op: the heap property cannot have changed, so the sift is
// skipped entirely.
func (q *Queue) Schedule(key int64, time float64) {
	if p := q.pos[key]; p != 0 {
		i := int(p - 1)
		old := q.heap[i].Time
		if time == old {
			return
		}
		q.heap[i].Time = time
		if time < old {
			q.up(i)
		} else {
			q.down(i)
		}
		return
	}
	q.heap = append(q.heap, Event{Time: time, Key: key})
	i := len(q.heap) - 1
	q.pos[key] = int32(i + 1)
	q.up(i)
}

// Remove cancels the event with the given key, reporting whether it was
// present.
func (q *Queue) Remove(key int64) bool {
	p := q.pos[key]
	if p == 0 {
		return false
	}
	i := int(p - 1)
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap = q.heap[:last]
	q.pos[key] = 0
	if i < last {
		if !q.down(i) {
			q.up(i)
		}
	}
	return true
}

// Contains reports whether an event with the given key is scheduled.
func (q *Queue) Contains(key int64) bool {
	return q.pos[key] != 0
}

// TimeOf returns the scheduled time for a key and whether it exists.
func (q *Queue) TimeOf(key int64) (float64, bool) {
	p := q.pos[key]
	if p == 0 {
		return 0, false
	}
	return q.heap[p-1].Time, true
}

// Peek returns the earliest event without removing it. ok is false when
// the queue is empty.
func (q *Queue) Peek() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	ev := q.heap[0]
	q.Remove(ev.Key)
	return ev, true
}

func (q *Queue) swap(i, j int) {
	if i == j {
		return
	}
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i].Key] = int32(i + 1)
	q.pos[q.heap[j].Key] = int32(j + 1)
}

// up restores the heap property moving index i toward the root; returns
// whether the element moved.
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if q.heap[parent].Time <= q.heap[i].Time {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down restores the heap property moving index i toward the leaves;
// returns whether the element moved.
func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.heap[l].Time < q.heap[smallest].Time {
			smallest = l
		}
		if r < n && q.heap[r].Time < q.heap[smallest].Time {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}
