package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"parsurf/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New(64)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if q.Remove(5) {
		t.Fatal("Remove on empty returned true")
	}
}

func TestOrdering(t *testing.T) {
	q := New(64)
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Schedule(int64(i), tm)
	}
	prev := -1.0
	for q.Len() > 0 {
		ev, _ := q.Pop()
		if ev.Time < prev {
			t.Fatalf("pop out of order: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
}

func TestScheduleReplaces(t *testing.T) {
	q := New(64)
	q.Schedule(7, 10)
	q.Schedule(7, 1) // move earlier
	if q.Len() != 1 {
		t.Fatalf("Len = %d after reschedule", q.Len())
	}
	if tm, ok := q.TimeOf(7); !ok || tm != 1 {
		t.Fatalf("TimeOf = %v,%v", tm, ok)
	}
	q.Schedule(7, 20) // move later
	ev, _ := q.Pop()
	if ev.Time != 20 || ev.Key != 7 {
		t.Fatalf("pop = %+v", ev)
	}
}

func TestRemove(t *testing.T) {
	q := New(64)
	for i := int64(0); i < 10; i++ {
		q.Schedule(i, float64(10-i))
	}
	if !q.Remove(0) { // time 10, somewhere in the heap
		t.Fatal("Remove(0) failed")
	}
	if q.Contains(0) {
		t.Fatal("removed key still present")
	}
	if q.Remove(0) {
		t.Fatal("double Remove succeeded")
	}
	// Remaining events must still come out ordered.
	prev := -1.0
	count := 0
	for q.Len() > 0 {
		ev, _ := q.Pop()
		if ev.Time < prev {
			t.Fatal("order violated after Remove")
		}
		prev = ev.Time
		count++
	}
	if count != 9 {
		t.Fatalf("drained %d events, want 9", count)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New(64)
	q.Schedule(1, 3)
	ev, ok := q.Peek()
	if !ok || ev.Key != 1 || q.Len() != 1 {
		t.Fatal("Peek misbehaved")
	}
}

// Property: popping everything yields times in non-decreasing order and
// exactly the scheduled set, under a random mix of schedules, updates
// and removals.
func TestQuickHeapInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		q := New(64)
		expected := make(map[int64]float64)
		for op := 0; op < 300; op++ {
			key := int64(src.Intn(40))
			switch src.Intn(3) {
			case 0, 1:
				tm := src.Float64() * 100
				q.Schedule(key, tm)
				expected[key] = tm
			case 2:
				removed := q.Remove(key)
				if _, want := expected[key]; want != removed {
					return false
				}
				delete(expected, key)
			}
		}
		if q.Len() != len(expected) {
			return false
		}
		var wantTimes []float64
		for _, tm := range expected {
			wantTimes = append(wantTimes, tm)
		}
		sort.Float64s(wantTimes)
		for i := 0; q.Len() > 0; i++ {
			ev, _ := q.Pop()
			if ev.Time != wantTimes[i] {
				return false
			}
			if want, ok := expected[ev.Key]; !ok || want != ev.Time {
				return false
			}
			delete(expected, ev.Key)
		}
		return len(expected) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRemove(b *testing.B) {
	q := New(10000)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		key := int64(i % 10000)
		q.Schedule(key, src.Float64()*1000)
		if i%3 == 0 {
			q.Remove(int64(src.Intn(10000)))
		}
	}
}

func BenchmarkPop(b *testing.B) {
	src := rng.New(2)
	q := New(b.N)
	for i := 0; i < b.N; i++ {
		q.Schedule(int64(i), src.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Pop()
	}
}

func TestKeySpace(t *testing.T) {
	q := New(16)
	if q.KeySpace() != 16 {
		t.Fatalf("KeySpace = %d", q.KeySpace())
	}
	q.Schedule(15, 1) // top of the range is valid
	if !q.Contains(15) {
		t.Fatal("key 15 lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key did not panic")
		}
	}()
	q.Schedule(16, 1)
}
