// Package modelfile reads and writes surface-reaction models as plain
// text, so models can be defined in configuration files instead of Go
// code (cmd/surfsim accepts them with -modelfile).
//
// Format, line oriented; '#' starts a comment; blank lines ignored:
//
//	species * CO O
//	reaction COads  0.55   (0,0): * -> CO
//	reaction O2adsE 0.275  (0,0): * -> O ; (1,0): * -> O
//	reaction rxE    10     (0,0): CO -> * ; (1,0): O -> *
//
// One "species" line declares the domain D in index order (species 0 is
// conventionally the vacant site). Each "reaction" line declares a
// reaction type: a name, a rate constant, and one or more triples
// "(dx,dy): src -> tgt" separated by semicolons — exactly the paper's
// (site, source, target) formalism.
package modelfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parsurf/internal/lattice"
	"parsurf/internal/model"
)

// Parse reads a model definition. Errors carry 1-based line numbers.
func Parse(r io.Reader) (*model.Model, error) {
	m := &model.Model{}
	speciesIdx := map[string]lattice.Species{}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "species":
			if len(m.Species) > 0 {
				return nil, fmt.Errorf("line %d: duplicate species declaration", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: species line declares nothing", lineNo)
			}
			for _, name := range fields[1:] {
				if _, dup := speciesIdx[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate species %q", lineNo, name)
				}
				speciesIdx[name] = lattice.Species(len(m.Species))
				m.Species = append(m.Species, name)
			}
		case "reaction":
			if len(m.Species) == 0 {
				return nil, fmt.Errorf("line %d: reaction before species declaration", lineNo)
			}
			rt, err := parseReaction(strings.TrimSpace(line[len("reaction"):]), speciesIdx)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			m.Types = append(m.Types, *rt)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseReaction parses `<name> <rate> <triple> [; <triple>]...`.
func parseReaction(body string, speciesIdx map[string]lattice.Species) (*model.ReactionType, error) {
	fields := strings.Fields(body)
	if len(fields) < 3 {
		return nil, fmt.Errorf("reaction needs a name, a rate and at least one triple")
	}
	name := fields[0]
	rate, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return nil, fmt.Errorf("bad rate %q: %v", fields[1], err)
	}
	// The triples are everything after the rate token.
	afterName := strings.TrimSpace(body[strings.Index(body, name)+len(name):])
	rest := strings.TrimSpace(afterName[strings.Index(afterName, fields[1])+len(fields[1]):])

	rt := &model.ReactionType{Name: name, Rate: rate}
	for _, part := range strings.Split(rest, ";") {
		tr, err := parseTriple(strings.TrimSpace(part), speciesIdx)
		if err != nil {
			return nil, fmt.Errorf("reaction %q: %w", name, err)
		}
		rt.Triples = append(rt.Triples, tr)
	}
	return rt, nil
}

// parseTriple parses `(dx,dy): src -> tgt`.
func parseTriple(s string, speciesIdx map[string]lattice.Species) (model.Triple, error) {
	var tr model.Triple
	if s == "" {
		return tr, fmt.Errorf("empty triple")
	}
	open := strings.IndexByte(s, '(')
	closeIdx := strings.IndexByte(s, ')')
	if open != 0 || closeIdx < 0 {
		return tr, fmt.Errorf("triple %q must start with an offset '(dx,dy)'", s)
	}
	coords := strings.Split(s[1:closeIdx], ",")
	if len(coords) != 2 {
		return tr, fmt.Errorf("offset %q must be '(dx,dy)'", s[:closeIdx+1])
	}
	dx, err := strconv.Atoi(strings.TrimSpace(coords[0]))
	if err != nil {
		return tr, fmt.Errorf("bad dx in %q", s)
	}
	dy, err := strconv.Atoi(strings.TrimSpace(coords[1]))
	if err != nil {
		return tr, fmt.Errorf("bad dy in %q", s)
	}
	tr.Off = lattice.Vec{DX: dx, DY: dy}

	rest := strings.TrimSpace(s[closeIdx+1:])
	rest = strings.TrimPrefix(rest, ":")
	parts := strings.Split(rest, "->")
	if len(parts) != 2 {
		return tr, fmt.Errorf("triple %q needs 'src -> tgt'", s)
	}
	srcName := strings.TrimSpace(parts[0])
	tgtName := strings.TrimSpace(parts[1])
	src, ok := speciesIdx[srcName]
	if !ok {
		return tr, fmt.Errorf("unknown source species %q", srcName)
	}
	tgt, ok := speciesIdx[tgtName]
	if !ok {
		return tr, fmt.Errorf("unknown target species %q", tgtName)
	}
	tr.Src, tr.Tgt = src, tgt
	return tr, nil
}

// Format writes the model in the canonical text form Parse accepts.
func Format(w io.Writer, m *model.Model) error {
	if _, err := fmt.Fprintf(w, "species %s\n", strings.Join(m.Species, " ")); err != nil {
		return err
	}
	for i := range m.Types {
		rt := &m.Types[i]
		parts := make([]string, len(rt.Triples))
		for j, tr := range rt.Triples {
			parts[j] = fmt.Sprintf("(%d,%d): %s -> %s",
				tr.Off.DX, tr.Off.DY, m.Species[tr.Src], m.Species[tr.Tgt])
		}
		name := strings.ReplaceAll(rt.Name, " ", "_")
		if _, err := fmt.Fprintf(w, "reaction %s %g %s\n",
			name, rt.Rate, strings.Join(parts, " ; ")); err != nil {
			return err
		}
	}
	return nil
}
