package modelfile

import (
	"bytes"
	"strings"
	"testing"

	"parsurf/internal/model"
)

const zgbText = `
# CO oxidation on a square lattice (Table I of the paper)
species * CO O

reaction COads   0.55   (0,0): * -> CO
reaction O2adsE  0.275  (0,0): * -> O ; (1,0): * -> O
reaction O2adsN  0.275  (0,0): * -> O ; (0,1): * -> O
reaction rxE     10     (0,0): CO -> * ; (1,0):  O -> *
reaction rxN     10     (0,0): CO -> * ; (0,1):  O -> *
reaction rxW     10     (0,0): CO -> * ; (-1,0): O -> *
reaction rxS     10     (0,0): CO -> * ; (0,-1): O -> *
`

func TestParseZGB(t *testing.T) {
	m, err := Parse(strings.NewReader(zgbText))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Species) != 3 || m.Species[1] != "CO" {
		t.Fatalf("species = %v", m.Species)
	}
	if len(m.Types) != 7 {
		t.Fatalf("%d reaction types", len(m.Types))
	}
	rx := m.TypeByName("rxW")
	if rx < 0 {
		t.Fatal("rxW missing")
	}
	tr := m.Types[rx].Triples[1]
	if tr.Off.DX != -1 || tr.Off.DY != 0 || tr.Src != 2 || tr.Tgt != 0 {
		t.Fatalf("rxW second triple = %+v", tr)
	}
	if m.Types[rx].Rate != 10 {
		t.Fatalf("rxW rate = %v", m.Types[rx].Rate)
	}
}

// The parsed file must be structurally equivalent to the built-in ZGB
// model up to rates and naming.
func TestParsedZGBMatchesBuiltin(t *testing.T) {
	parsed, err := Parse(strings.NewReader(zgbText))
	if err != nil {
		t.Fatal(err)
	}
	builtin := model.NewZGB(model.ZGBRates{KCO: 0.55, KO2: 0.275, KCO2: 10})
	if parsed.K() != builtin.K() {
		t.Fatalf("K: parsed %v builtin %v", parsed.K(), builtin.K())
	}
	if parsed.MaxPatternRadius() != builtin.MaxPatternRadius() {
		t.Fatal("radius mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"reaction before species", "reaction x 1 (0,0): a -> b"},
		{"unknown directive", "specie * A"},
		{"empty species", "species"},
		{"duplicate species decl", "species * A\nspecies * B"},
		{"duplicate species name", "species * *"},
		{"missing rate", "species * A\nreaction x"},
		{"bad rate", "species * A\nreaction x abc (0,0): * -> A"},
		{"unknown src", "species * A\nreaction x 1 (0,0): B -> A"},
		{"unknown tgt", "species * A\nreaction x 1 (0,0): * -> B"},
		{"bad offset", "species * A\nreaction x 1 (0): * -> A"},
		{"bad dx", "species * A\nreaction x 1 (a,0): * -> A"},
		{"no arrow", "species * A\nreaction x 1 (0,0): * A"},
		{"no offset", "species * A\nreaction x 1 * -> A"},
		{"empty triple", "species * A\nreaction x 1 (0,0): * -> A ;"},
		{"zero rate fails validate", "species * A\nreaction x 0 (0,0): * -> A"},
		{"no origin fails validate", "species * A\nreaction x 1 (1,0): * -> A"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseLineNumbersInErrors(t *testing.T) {
	text := "species * A\n\n# comment\nreaction x 1 (0,0): * -> Q\n"
	_, err := Parse(strings.NewReader(text))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v should cite line 4", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(zgbText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Format(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parsing formatted output: %v\n%s", err, buf.String())
	}
	if len(back.Types) != len(orig.Types) || len(back.Species) != len(orig.Species) {
		t.Fatal("round trip changed structure")
	}
	for i := range orig.Types {
		a, b := &orig.Types[i], &back.Types[i]
		if a.Name != b.Name || a.Rate != b.Rate || len(a.Triples) != len(b.Triples) {
			t.Fatalf("type %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Triples {
			if a.Triples[j] != b.Triples[j] {
				t.Fatalf("triple %d/%d changed", i, j)
			}
		}
	}
}

func TestFormatBuiltinModelsRoundTrip(t *testing.T) {
	// Every built-in model must survive Format → Parse. Names with
	// parentheses and commas are fine because the name token contains
	// no whitespace.
	for name, m := range map[string]*model.Model{
		"zgb":   model.NewZGB(model.DefaultZGBRates()),
		"ptco":  model.NewPtCO(model.DefaultPtCORates()),
		"dimer": model.NewDimerDiffusion(1),
		"ising": model.NewIsing(0.4),
	} {
		var buf bytes.Buffer
		if err := Format(&buf, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back.Types) != len(m.Types) {
			t.Fatalf("%s: %d types became %d", name, len(m.Types), len(back.Types))
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	text := "  \n# full comment line\nspecies * A # trailing comment\nreaction x 1 (0,0): * -> A # more\n"
	m, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Species) != 2 || len(m.Types) != 1 {
		t.Fatalf("parsed %v / %d types", m.Species, len(m.Types))
	}
}
