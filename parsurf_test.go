package parsurf_test

import (
	"math"
	"testing"

	"parsurf"
)

// The quickstart path: build a model, compile, simulate, observe.
func TestFacadeQuickstart(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm, err := parsurf.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := parsurf.NewConfig(lat)
	sim := parsurf.NewRSM(cm, cfg, parsurf.NewRNG(1))
	parsurf.RunUntil(sim, 5)
	if sim.Time() < 5 {
		t.Fatal("RunUntil under-ran")
	}
	total := cfg.Coverage(0) + cfg.Coverage(1) + cfg.Coverage(2)
	if math.Abs(total-1) > 1e-12 {
		t.Fatal("coverages do not partition")
	}
}

func TestFacadePartitionedPath(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := parsurf.VerifyNonOverlap(part, m); err != nil {
		t.Fatal(err)
	}
	cfg := parsurf.NewConfig(lat)
	p := parsurf.NewPNDCA(cm, cfg, parsurf.NewRNG(2), part)
	p.Workers = 4
	for i := 0; i < 10; i++ {
		p.Step()
	}
	if p.Successes() == 0 {
		t.Fatal("no reactions")
	}

	e := parsurf.NewLPNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(3), part, 10)
	e.Strategy = parsurf.RateWeighted
	e.Step()
	if e.Trials() == 0 {
		t.Fatal("no trials")
	}

	ts, err := parsurf.SplitByDirection(m, lat)
	if err != nil {
		t.Fatal(err)
	}
	tp := parsurf.NewTypePartitioned(cm, parsurf.NewConfig(lat), parsurf.NewRNG(4), ts)
	tp.Step()
}

func TestFacadeEngines(t *testing.T) {
	lat := parsurf.NewSquareLattice(12)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	sims := []parsurf.Simulator{
		parsurf.NewRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(5)),
		parsurf.NewVSSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(6)),
		parsurf.NewFRM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(7)),
		parsurf.NewNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(8)),
		parsurf.NewSyncNDCA(cm, parsurf.NewConfig(lat), parsurf.NewRNG(9)),
	}
	d, err := parsurf.NewDDRSM(cm, parsurf.NewConfig(lat), parsurf.NewRNG(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	sims = append(sims, d)
	for i, sim := range sims {
		if !sim.Step() {
			t.Fatalf("engine %d could not step", i)
		}
		if sim.Time() <= 0 {
			t.Fatalf("engine %d time did not advance", i)
		}
	}
}

func TestFacadeZiffAndMachine(t *testing.T) {
	z := parsurf.NewZiff(parsurf.NewSquareLattice(16), parsurf.NewRNG(11), 0.5)
	for i := 0; i < 30; i++ {
		z.Step()
	}
	if z.CO2Count() == 0 {
		t.Fatal("no CO2")
	}

	mm := parsurf.DefaultMachine()
	surface, err := mm.SpeedupSurface([]int{200, 1000}, []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if surface[1][1] <= surface[0][1] {
		t.Fatal("speedup not increasing with system size")
	}
}

func TestFacadePtCO(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewPtCOModel(parsurf.DefaultPtCORates())
	cm := parsurf.MustCompile(m, lat)
	cfg := parsurf.NewConfig(lat)
	sim := parsurf.NewVSSM(cm, cfg, parsurf.NewRNG(12))
	count := 0
	parsurf.Sample(sim, 1, 10, func(tm float64) { count++ })
	if count < 5 {
		t.Fatalf("Sample observed %d points", count)
	}
	co, o, sq := parsurf.PtCoverages(cfg)
	if co < 0 || o < 0 || sq < 0 || co > 1 || o > 1 || sq > 1 {
		t.Fatal("coverages out of range")
	}
}

func TestFacadeModularColoring(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	m := parsurf.NewIsingModel(0.4)
	p, err := parsurf.ModularColoring(m, lat, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumChunks() != 5 {
		t.Fatalf("Ising colouring chunks = %d", p.NumChunks())
	}
	if parsurf.SingleChunk(lat).NumChunks() != 1 || parsurf.Singletons(lat).NumChunks() != lat.N() {
		t.Fatal("degenerate partitions wrong")
	}
	if _, err := parsurf.Checkerboard(lat); err != nil {
		t.Fatal(err)
	}
}
