// Command surfd serves simulation jobs over HTTP: POST a serialized
// session spec (the same JSON `surfsim -spec` runs), poll its status,
// fetch the merged coverage series as JSON or CSV, cancel it. The
// library is the executor; any client that can speak JSON can drive
// the paper's whole comparison matrix without writing Go.
//
//	surfd -addr :8080 -runners 2
//
//	curl -s localhost:8080/jobs -d '{
//	  "spec": {
//	    "lattice": {"l0": 64, "l1": 64},
//	    "engine":  {"name": "ziff", "y": 0.52},
//	    "seed":    42
//	  },
//	  "replicas": 8, "workers": 4, "until": 50, "every": 0.5
//	}'
//	curl -s localhost:8080/jobs/job-1
//	curl -s localhost:8080/jobs/job-1/result?format=csv
//	curl -s -X POST localhost:8080/jobs/job-1/cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parsurf/internal/job"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		runners   = flag.Int("runners", 2, "concurrent jobs (each fans replicas over its own workers)")
		backlog   = flag.Int("backlog", job.DefaultBacklog, "queued-job capacity")
		withPprof = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/ (opt-in: profiles expose internals, keep off on untrusted networks)")
	)
	flag.Parse()
	if err := serve(*addr, *runners, *backlog, *withPprof); err != nil {
		fmt.Fprintln(os.Stderr, "surfd:", err)
		os.Exit(1)
	}
}

func serve(addr string, runners, backlog int, withPprof bool) error {
	if runners < 1 {
		runners = max(1, runtime.NumCPU()/2)
	}
	mgr := job.NewManager(runners, backlog)
	var handler http.Handler = job.NewServer(mgr)
	if withPprof {
		// Mount the profile endpoints beside the job API on an explicit
		// mux (the job server stays the fallback for everything else) —
		// never via the global DefaultServeMux, so the endpoints exist
		// only when asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "surfd: listening on %s (%d runners)\n", addr, runners)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		mgr.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "surfd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	mgr.Close() // cancels running jobs; replicas abort within one step
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
