// Command surfd serves simulation jobs over HTTP: POST a serialized
// session spec (the same JSON `surfsim -spec` runs), poll its status,
// stream its progress as SSE, fetch the merged coverage series as JSON
// or CSV, cancel it. The library is the executor; any client that can
// speak JSON can drive the paper's whole comparison matrix without
// writing Go.
//
// With -data, surfd is durable: jobs persist before acknowledgment in
// a content-addressed store under the data directory, completed
// results survive restarts, interrupted jobs are re-queued on boot,
// and a resubmission of an already-computed workload is answered from
// the result cache without re-simulating. Running replicas snapshot
// themselves every -checkpoint-interval, so a killed server resumes
// interrupted jobs from the latest checkpoints instead of from zero —
// with a result byte-identical to an uninterrupted run. Jobs whose
// run keeps crashing the process are quarantined after a few attempts
// rather than crash-looping the service.
//
//	surfd -addr :8080 -runners 2 -data /var/lib/surfd -checkpoint-interval 5s
//
//	curl -s localhost:8080/jobs -d '{
//	  "spec": {
//	    "lattice": {"l0": 64, "l1": 64},
//	    "engine":  {"name": "ziff", "y": 0.52},
//	    "seed":    42
//	  },
//	  "replicas": 8, "workers": 4, "until": 50, "every": 0.5
//	}'
//	curl -s localhost:8080/jobs/job-1
//	curl -sN localhost:8080/jobs/job-1/events
//	curl -s localhost:8080/jobs/job-1/result?format=csv
//	curl -s -X POST localhost:8080/jobs/job-1/cancel
//
// With -fleet (durable mode only), surfd also coordinates a worker
// fleet: every job's (variant × replica) space is split into
// replica-range shards handed to workers under expiring leases via the
// /fleet/ API, and the returned per-replica rows merge through the same
// index-ordered accumulator a local run uses — the result is
// byte-identical to single-node for any fleet size or shard layout.
// Workers are surfd processes started with -worker:
//
//	surfd -addr :8080 -data /var/lib/surfd -fleet -shard-size 8
//	surfd -worker -coordinator http://head:8080 -runners 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parsurf/internal/fleet"
	"parsurf/internal/job"
	"parsurf/internal/store"
)

// buildVersion is the default stamp GET /version reports; override at
// link time (-ldflags "-X main.buildVersion=v1.2.3") or at startup
// with -version.
var buildVersion = "dev"

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		runners   = flag.Int("runners", 2, "concurrent jobs (each fans replicas over its own workers); in -worker mode, replica goroutines per shard")
		backlog   = flag.Int("backlog", job.DefaultBacklog, "queued-job capacity")
		dataDir   = flag.String("data", "", "durable data directory (empty: in-memory only; set it and jobs, results and the result cache survive restarts)")
		ckptEvery = flag.Duration("checkpoint-interval", 5*time.Second, "how often running replicas snapshot into the data directory for crash-exact resume (0 disables)")
		version   = flag.String("version", buildVersion, "version stamp echoed by GET /version")
		withPprof = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/ (opt-in: profiles expose internals, keep off on untrusted networks)")

		maxJobDuration = flag.Duration("max-job-duration", 0, "wall-clock run budget per job; past it the job ends deadline_exceeded (0: unlimited; a request's max_duration may only tighten it)")
		maxCells       = flag.Int64("max-cells", 0, "reject submissions whose lattice exceeds this many cells per variant with 400 (0: uncapped)")
		maxReplicas    = flag.Int("max-replicas", 0, "reject submissions whose total replica count (specs × replicas) exceeds this with 400 (0: uncapped)")
		maxActiveCost  = flag.Int64("max-active-cost", 0, "aggregate cost budget (lattice cells × concurrent replicas + species × grid points, summed over admitted unfinished jobs); submissions past it shed with 429 (0: unbounded)")
		shutdownWait   = flag.Duration("shutdown-timeout", 5*time.Second, "bound on the graceful drain after SIGINT/SIGTERM; past it open connections (e.g. stuck SSE peers) are dropped")
		chaosPanicSeed = flag.Uint64("chaos-panic-seed", 0, "chaos drills only: jobs with a spec seed equal to this panic inside replica 0, exercising panic containment (0: disabled)")

		fleetMode = flag.Bool("fleet", false, "coordinate a worker fleet: shard jobs over workers via the /fleet/ API (requires -data)")
		shardSize = flag.Int("shard-size", fleet.DefaultShardSize, "replicas per fleet shard")
		leaseTTL  = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet shard lease duration (workers heartbeat well inside it)")

		workerMode  = flag.Bool("worker", false, "run as a fleet worker instead of a server")
		coordinator = flag.String("coordinator", "", "coordinator base URL (worker mode, required)")
		workerID    = flag.String("worker-id", "", "worker name in leases (default hostname-pid)")
	)
	flag.Parse()
	var err error
	if *workerMode {
		err = runWorker(*coordinator, *workerID, *runners, *dataDir, *ckptEvery)
	} else {
		err = serve(serverConfig{
			addr: *addr, runners: *runners, backlog: *backlog,
			dataDir: *dataDir, ckptEvery: *ckptEvery,
			version: *version, withPprof: *withPprof,
			fleet: *fleetMode, shardSize: *shardSize, leaseTTL: *leaseTTL,
			maxJobDuration: *maxJobDuration, maxCells: *maxCells,
			maxReplicas: *maxReplicas, maxActiveCost: *maxActiveCost,
			shutdownWait: *shutdownWait, chaosPanicSeed: *chaosPanicSeed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "surfd:", err)
		os.Exit(1)
	}
}

// serverConfig is the flag bundle of a server-mode surfd.
type serverConfig struct {
	addr      string
	runners   int
	backlog   int
	dataDir   string
	ckptEvery time.Duration
	version   string
	withPprof bool
	fleet     bool
	shardSize int
	leaseTTL  time.Duration

	maxJobDuration time.Duration
	maxCells       int64
	maxReplicas    int
	maxActiveCost  int64
	shutdownWait   time.Duration
	chaosPanicSeed uint64
}

// managerOptions translates the overload/containment flags into
// manager options (shared by the durable and in-memory paths).
func (cfg serverConfig) managerOptions() []job.ManagerOption {
	opts := []job.ManagerOption{job.CheckpointEvery(cfg.ckptEvery)}
	if cfg.maxJobDuration > 0 {
		opts = append(opts, job.MaxJobDuration(cfg.maxJobDuration))
	}
	if cfg.maxCells > 0 {
		opts = append(opts, job.MaxCells(cfg.maxCells))
	}
	if cfg.maxReplicas > 0 {
		opts = append(opts, job.MaxReplicas(cfg.maxReplicas))
	}
	if cfg.maxActiveCost > 0 {
		opts = append(opts, job.MaxActiveCost(cfg.maxActiveCost))
	}
	if cfg.chaosPanicSeed != 0 {
		opts = append(opts, job.ChaosPanicSeed(cfg.chaosPanicSeed))
	}
	return opts
}

func serve(cfg serverConfig) error {
	if cfg.runners < 1 {
		cfg.runners = max(1, runtime.NumCPU()/2)
	}
	var (
		mgr   *job.Manager
		coord *fleet.Coordinator
	)
	if cfg.dataDir != "" {
		st, err := store.OpenFS(cfg.dataDir)
		if err != nil {
			return err
		}
		opts := cfg.managerOptions()
		if cfg.fleet {
			coord, err = fleet.New(st, fleet.ShardSize(cfg.shardSize), fleet.LeaseTTL(cfg.leaseTTL))
			if err != nil {
				return err
			}
			opts = append(opts, job.WithExecutor(coord))
		}
		mgr, err = job.NewManagerWithStore(cfg.runners, cfg.backlog, st, opts...)
		if err != nil {
			return fmt.Errorf("recovering %s: %w", cfg.dataDir, err)
		}
	} else {
		if cfg.fleet {
			return fmt.Errorf("-fleet needs -data: the shard table is inherently durable")
		}
		mgr = job.NewManager(cfg.runners, cfg.backlog, cfg.managerOptions()...)
	}
	api := job.NewServer(mgr)
	api.SetVersion(cfg.version)
	var handler http.Handler = api
	if coord != nil || cfg.withPprof {
		// Mount the extra endpoints beside the job API on an explicit mux
		// (the job server stays the fallback for everything else) — never
		// via the global DefaultServeMux, so the endpoints exist only when
		// asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		if coord != nil {
			mux.Handle("/fleet/", fleet.NewHandler(coord))
		}
		if cfg.withPprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		// The fleet and pprof endpoints sit outside the job server's own
		// recovery middleware; give the composed mux the same panic
		// containment.
		handler = job.Recoverer(mux)
	}
	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: handler,
		// Transport hardening: a slow-loris client cannot hold a
		// connection open pre-request (ReadHeaderTimeout), a stalled
		// request read cannot wedge its handler forever (ReadTimeout —
		// the SSE endpoint exempts itself per-connection, its writes run
		// under their own per-write deadline), and idle keep-alives are
		// reaped (IdleTimeout). WriteTimeout stays zero on purpose: it
		// would sever long SSE streams and chunked CSV downloads that
		// are making progress.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		durable := "in-memory"
		if cfg.dataDir != "" {
			durable = "data " + cfg.dataDir
		}
		if coord != nil {
			durable += ", fleet"
		}
		fmt.Fprintf(os.Stderr, "surfd: listening on %s (%d runners, %s)\n", cfg.addr, cfg.runners, durable)
		errc <- srv.ListenAndServe()
	}()

	shutdown := func() {
		// Close cancels running jobs (replicas abort within one engine
		// step) and, in durable mode, leaves their stored records
		// resumable: every state transition was fsync'd when it happened,
		// so the next boot re-queues exactly the interrupted jobs — and,
		// in fleet mode, the persisted shard table lets the re-queued jobs
		// replay already-delivered shards instead of re-running them.
		mgr.Close()
		if coord != nil {
			coord.Close()
		}
	}
	select {
	case err := <-errc:
		shutdown()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "surfd: shutting down")
	wait := cfg.shutdownWait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// The graceful drain ran out its budget — some peer (a stuck
		// SSE consumer, a half-open connection) never finished. Drop
		// whatever is left; shutdown must terminate.
		srv.Close()
	}
	shutdown()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runWorker joins a fleet: lease a shard from the coordinator, run its
// replica range through the pooled session path, upload the rows,
// repeat until interrupted. With -data, running replicas snapshot into
// the local store every -checkpoint-interval and a restarted worker
// resumes a re-leased shard from its own checkpoints.
func runWorker(coordinator, id string, workers int, dataDir string, ckptEvery time.Duration) error {
	if coordinator == "" {
		return fmt.Errorf("-worker needs -coordinator URL")
	}
	if workers < 1 {
		workers = max(1, runtime.NumCPU()/2)
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var st store.Store
	if dataDir != "" {
		fs, err := store.OpenFS(dataDir)
		if err != nil {
			return err
		}
		st = fs
	}
	w := &fleet.Worker{
		ID:              id,
		Coordinator:     coordinator,
		Workers:         workers,
		Store:           st,
		CheckpointEvery: ckptEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "surfd: "+format+"\n", args...)
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "surfd: worker %s joining fleet at %s (%d replica goroutines)\n",
		id, coordinator, workers)
	return w.Run(ctx)
}
