// Command surfd serves simulation jobs over HTTP: POST a serialized
// session spec (the same JSON `surfsim -spec` runs), poll its status,
// stream its progress as SSE, fetch the merged coverage series as JSON
// or CSV, cancel it. The library is the executor; any client that can
// speak JSON can drive the paper's whole comparison matrix without
// writing Go.
//
// With -data, surfd is durable: jobs persist before acknowledgment in
// a content-addressed store under the data directory, completed
// results survive restarts, interrupted jobs are re-queued on boot,
// and a resubmission of an already-computed workload is answered from
// the result cache without re-simulating. Running replicas snapshot
// themselves every -checkpoint-interval, so a killed server resumes
// interrupted jobs from the latest checkpoints instead of from zero —
// with a result byte-identical to an uninterrupted run. Jobs whose
// run keeps crashing the process are quarantined after a few attempts
// rather than crash-looping the service.
//
//	surfd -addr :8080 -runners 2 -data /var/lib/surfd -checkpoint-interval 5s
//
//	curl -s localhost:8080/jobs -d '{
//	  "spec": {
//	    "lattice": {"l0": 64, "l1": 64},
//	    "engine":  {"name": "ziff", "y": 0.52},
//	    "seed":    42
//	  },
//	  "replicas": 8, "workers": 4, "until": 50, "every": 0.5
//	}'
//	curl -s localhost:8080/jobs/job-1
//	curl -sN localhost:8080/jobs/job-1/events
//	curl -s localhost:8080/jobs/job-1/result?format=csv
//	curl -s -X POST localhost:8080/jobs/job-1/cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parsurf/internal/job"
	"parsurf/internal/store"
)

// buildVersion is the default stamp GET /version reports; override at
// link time (-ldflags "-X main.buildVersion=v1.2.3") or at startup
// with -version.
var buildVersion = "dev"

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		runners   = flag.Int("runners", 2, "concurrent jobs (each fans replicas over its own workers)")
		backlog   = flag.Int("backlog", job.DefaultBacklog, "queued-job capacity")
		dataDir   = flag.String("data", "", "durable data directory (empty: in-memory only; set it and jobs, results and the result cache survive restarts)")
		ckptEvery = flag.Duration("checkpoint-interval", 5*time.Second, "how often running replicas snapshot into the data directory for crash-exact resume (durable mode only; 0 disables)")
		version   = flag.String("version", buildVersion, "version stamp echoed by GET /version")
		withPprof = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/ (opt-in: profiles expose internals, keep off on untrusted networks)")
	)
	flag.Parse()
	if err := serve(*addr, *runners, *backlog, *dataDir, *ckptEvery, *version, *withPprof); err != nil {
		fmt.Fprintln(os.Stderr, "surfd:", err)
		os.Exit(1)
	}
}

func serve(addr string, runners, backlog int, dataDir string, ckptEvery time.Duration, version string, withPprof bool) error {
	if runners < 1 {
		runners = max(1, runtime.NumCPU()/2)
	}
	var mgr *job.Manager
	if dataDir != "" {
		st, err := store.OpenFS(dataDir)
		if err != nil {
			return err
		}
		mgr, err = job.NewManagerWithStore(runners, backlog, st, job.CheckpointEvery(ckptEvery))
		if err != nil {
			return fmt.Errorf("recovering %s: %w", dataDir, err)
		}
	} else {
		mgr = job.NewManager(runners, backlog)
	}
	api := job.NewServer(mgr)
	api.SetVersion(version)
	var handler http.Handler = api
	if withPprof {
		// Mount the profile endpoints beside the job API on an explicit
		// mux (the job server stays the fallback for everything else) —
		// never via the global DefaultServeMux, so the endpoints exist
		// only when asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		durable := "in-memory"
		if dataDir != "" {
			durable = "data " + dataDir
		}
		fmt.Fprintf(os.Stderr, "surfd: listening on %s (%d runners, %s)\n", addr, runners, durable)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		mgr.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "surfd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	// Close cancels running jobs (replicas abort within one engine
	// step) and, in durable mode, leaves their stored records
	// resumable: every state transition was fsync'd when it happened,
	// so the next boot re-queues exactly the interrupted jobs.
	mgr.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
