package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"parsurf"
)

type specResult struct {
	spec  *parsurf.SessionSpec
	title string
}

// The -spec acceptance criterion: for a fixed seed, running a
// hand-written spec file is byte-identical to the equivalent flag
// invocation — both single sessions and ensembles, including the
// init-preset path of the diffusion/ising models.
func TestSpecFileMatchesFlagInvocation(t *testing.T) {
	cases := []struct {
		name          string
		flags         func() (specResult, error)
		specJSON      string
		replicas, par int
	}{
		{
			name: "zgb lpndca",
			flags: func() (specResult, error) {
				sp, title, err := specFromFlags("zgb", "", "lpndca", 40, 9, 10, "rates", 1, 4, 0.5)
				return specResult{sp, title}, err
			},
			specJSON: `{
			  "model":   {"name": "zgb"},
			  "lattice": {"l0": 40, "l1": 40},
			  "engine":  {"name": "lpndca", "L": 10, "strategy": "rates"},
			  "seed":    9
			}`,
			replicas: 1, par: 1,
		},
		{
			name: "diffusion rsm with init preset",
			flags: func() (specResult, error) {
				sp, title, err := specFromFlags("diffusion", "", "rsm", 30, 4, 1, "random", 1, 4, 0.5)
				return specResult{sp, title}, err
			},
			specJSON: `{
			  "model":   {"name": "diffusion"},
			  "lattice": {"l0": 30, "l1": 30},
			  "engine":  {"name": "rsm"},
			  "seed":    4,
			  "init":    {"preset": "random", "fractions": [0.5, 0.5]}
			}`,
			replicas: 1, par: 1,
		},
		{
			name: "ziff ensemble",
			flags: func() (specResult, error) {
				sp, title, err := specFromFlags("zgb", "", "ziff", 32, 11, 1, "random", 1, 4, 0.52)
				return specResult{sp, title}, err
			},
			specJSON: `{
			  "lattice": {"l0": 32, "l1": 32},
			  "engine":  {"name": "ziff", "y": 0.52},
			  "seed":    11
			}`,
			replicas: 4, par: 2,
		},
	}
	for _, tc := range cases {
		fromFlags, err := tc.flags()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		path := filepath.Join(t.TempDir(), "spec.json")
		if err := os.WriteFile(path, []byte(tc.specJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		fromFile, err := loadSpec(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		const tEnd, dt = 5, 0.5
		var flagOut, fileOut, discard bytes.Buffer
		if err := run(fromFlags.spec, fromFlags.title, tEnd, dt, tc.replicas, tc.par, false, "", "", "", &flagOut, &discard); err != nil {
			t.Fatalf("%s flags run: %v", tc.name, err)
		}
		if err := run(fromFile, path, tEnd, dt, tc.replicas, tc.par, false, "", "", "", &fileOut, &discard); err != nil {
			t.Fatalf("%s spec run: %v", tc.name, err)
		}
		if flagOut.Len() == 0 {
			t.Fatalf("%s: empty output", tc.name)
		}
		if !bytes.Equal(flagOut.Bytes(), fileOut.Bytes()) {
			t.Errorf("%s: -spec output differs from the flag invocation\nflags:\n%s\nspec:\n%s",
				tc.name, flagOut.String(), fileOut.String())
		}
	}
}

// The -checkpoint/-resume acceptance criterion: a run to t=N that
// snapshots, resumed and continued to t=N+M, prints exactly the tail
// the uninterrupted t=N+M run prints past t=N.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	spec, _, err := specFromFlags("zgb", "", "ziff", 32, 7, 1, "random", 1, 4, 0.52)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.5
	var full, head, tail, discard bytes.Buffer
	if err := run(spec, "control", 10, dt, 1, 1, false, "", "", "", &full, &discard); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := run(spec, "head", 5, dt, 1, 1, false, "", ckpt, "", &head, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "tail", 10, dt, 1, 1, false, "", "", ckpt, &tail, &discard); err != nil {
		t.Fatal(err)
	}
	// full = header + rows(0..10); head = header + rows(0..5);
	// tail = header + rows past 5. Their concatenation modulo the
	// repeated header must be the uninterrupted run.
	tailRows := bytes.SplitN(tail.Bytes(), []byte("\n"), 2)[1]
	glued := append(append([]byte{}, head.Bytes()...), tailRows...)
	if !bytes.Equal(glued, full.Bytes()) {
		t.Errorf("resumed run differs from uninterrupted control\ncontrol:\n%s\nglued:\n%s",
			full.String(), string(glued))
	}
}
